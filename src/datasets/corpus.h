// Synthetic corpus generation (the CLCDSA / POJ-104 substitutes).
//
// A corpus is a list of source files: per task, per language, several
// solutions with distinct algorithmic variants and style perturbations.
// A configurable fraction of files is deliberately corrupted — these fail
// the front-end and model the paper's "we discard any file that is not
// compilable" step (the #Sources vs #LLVM-IR gap in Table I).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/tasks.h"

namespace gbm::data {

struct SourceFile {
  std::string task_id;
  int task_index = 0;
  frontend::Lang lang = frontend::Lang::C;
  int variant = 0;
  Style style;
  std::string unit_name;
  std::string source;
  bool intact = true;  // false → deliberately corrupted ("not compilable")
  std::vector<std::int64_t> sample_input;
};

struct DatasetConfig {
  int num_tasks = 0;  // 0 = all templates
  int solutions_per_task_per_lang = 4;
  std::uint64_t seed = 42;
  double broken_fraction = 0.05;
  std::vector<frontend::Lang> langs = {frontend::Lang::C, frontend::Lang::Cpp,
                                       frontend::Lang::Java};
};

/// CLCDSA-style: three languages.
DatasetConfig clcdsa_config();
/// POJ-104-style: C++ only, more solutions per task.
DatasetConfig poj_config();

/// Deterministic corpus for a config.
std::vector<SourceFile> generate_corpus(const DatasetConfig& config);

}  // namespace gbm::data
