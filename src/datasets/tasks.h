// Programming-task templates for the synthetic CLCDSA / POJ-104 corpora.
//
// Each template is one "competition problem". Its emitter produces a
// complete solution program in MiniC, MiniC++ or MiniJava, selected by an
// algorithmic variant index and perturbed by style knobs (loop shape,
// helper extraction, dead code, constant jitter). Two solutions of the same
// task are therefore genuinely different programs solving the same problem
// — the positive-pair definition of the paper (§II) — while solutions of
// different tasks differ in semantics, constants and structure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "tensor/rng.h"

namespace gbm::data {

/// Style perturbations applied to a solution (seeded per file).
struct Style {
  bool while_loop = false;   // while-loops instead of for-loops
  bool use_helper = false;   // extract core computation into a function
  bool dead_code = false;    // insert harmless extra statements
  bool reverse_iter = false; // iterate downwards where possible
  int jitter = 0;            // small constant variation (0..3)
};

struct TaskTemplate {
  std::string id;
  int num_variants;  // algorithmic variants (all semantically equivalent
                     // up to I/O behaviour on the task's input contract)
  /// Emits a full program. `variant` in [0, num_variants).
  std::function<std::string(frontend::Lang, int variant, const Style&)> emit;
  /// Input values that exercise the program (for execution-based tests).
  std::vector<std::int64_t> sample_input;
};

/// The full template catalogue (deterministic order).
const std::vector<TaskTemplate>& all_tasks();

/// Draws a random style from an RNG (deterministic given the RNG state).
Style random_style(tensor::RNG& rng);

}  // namespace gbm::data
