// Pair construction and dataset splitting (paper §II and §IV-B).
//
// Positive pairs: two artifacts derived from solutions to the *same* task;
// negative pairs: different tasks. Splits are 6:2:2. Two split protocols:
//   * ByTask (default) — whole tasks are held out; the model must match
//     solutions of problems never seen in training (the stricter reading);
//   * ByPair — pairs are split at random (the looser protocol some
//     baselines use).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace gbm::data {

struct PairSpec {
  int a = 0;  // index into the A-side artifact list
  int b = 0;  // index into the B-side artifact list
  float label = 0.0f;
};

struct SplitPairs {
  std::vector<PairSpec> train;
  std::vector<PairSpec> val;
  std::vector<PairSpec> test;
};

enum class SplitProtocol { ByTask, ByPair };

struct PairConfig {
  std::uint64_t seed = 7;
  int max_positives_per_task = 8;  // cross-product cap
  double negative_ratio = 1.0;     // negatives per positive (balanced = 1)
  SplitProtocol protocol = SplitProtocol::ByTask;
  double train_frac = 0.6;
  double val_frac = 0.2;
};

/// Builds labelled pairs between an A-side and a B-side artifact list, given
/// each artifact's task index. A and B may be the same list (source-source
/// within one corpus); self-pairs (same index when the lists alias) are
/// excluded by passing `exclude_same_index=true`.
SplitPairs make_pairs(const std::vector<int>& task_of_a,
                      const std::vector<int>& task_of_b, const PairConfig& config,
                      bool exclude_same_index = false);

}  // namespace gbm::data
