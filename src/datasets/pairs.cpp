#include "datasets/pairs.h"

#include <algorithm>
#include <map>
#include <set>

namespace gbm::data {

namespace {

struct TaskBuckets {
  std::map<int, std::vector<int>> a_by_task;
  std::map<int, std::vector<int>> b_by_task;
  std::vector<int> tasks;  // union of task ids, sorted
};

TaskBuckets bucket(const std::vector<int>& task_of_a, const std::vector<int>& task_of_b) {
  TaskBuckets out;
  for (std::size_t i = 0; i < task_of_a.size(); ++i)
    out.a_by_task[task_of_a[i]].push_back(static_cast<int>(i));
  for (std::size_t i = 0; i < task_of_b.size(); ++i)
    out.b_by_task[task_of_b[i]].push_back(static_cast<int>(i));
  std::set<int> ids;
  for (auto& [t, v] : out.a_by_task) { (void)v; ids.insert(t); }
  for (auto& [t, v] : out.b_by_task) { (void)v; ids.insert(t); }
  out.tasks.assign(ids.begin(), ids.end());
  return out;
}

/// Builds balanced pairs restricted to tasks in `allowed`.
std::vector<PairSpec> build_for_tasks(const TaskBuckets& buckets,
                                      const std::vector<int>& allowed,
                                      const PairConfig& config, tensor::RNG& rng,
                                      bool exclude_same_index) {
  std::vector<PairSpec> out;
  std::set<int> allowed_set(allowed.begin(), allowed.end());
  // Positives.
  for (int task : allowed) {
    auto ait = buckets.a_by_task.find(task);
    auto bit = buckets.b_by_task.find(task);
    if (ait == buckets.a_by_task.end() || bit == buckets.b_by_task.end()) continue;
    std::vector<PairSpec> cand;
    for (int a : ait->second) {
      for (int b : bit->second) {
        if (exclude_same_index && a == b) continue;
        cand.push_back({a, b, 1.0f});
      }
    }
    rng.shuffle(cand);
    const std::size_t cap =
        std::min<std::size_t>(cand.size(),
                              static_cast<std::size_t>(config.max_positives_per_task));
    out.insert(out.end(), cand.begin(), cand.begin() + static_cast<long>(cap));
  }
  const std::size_t num_pos = out.size();
  // Negatives: sample (a, b) with different tasks, both within the split.
  std::vector<int> a_pool, b_pool;
  for (int task : allowed) {
    auto ait = buckets.a_by_task.find(task);
    if (ait != buckets.a_by_task.end())
      a_pool.insert(a_pool.end(), ait->second.begin(), ait->second.end());
    auto bit = buckets.b_by_task.find(task);
    if (bit != buckets.b_by_task.end())
      b_pool.insert(b_pool.end(), bit->second.begin(), bit->second.end());
  }
  std::map<int, int> task_of_a_idx, task_of_b_idx;
  for (const auto& [task, list] : buckets.a_by_task)
    for (int i : list) task_of_a_idx[i] = task;
  for (const auto& [task, list] : buckets.b_by_task)
    for (int i : list) task_of_b_idx[i] = task;

  const std::size_t want_neg =
      static_cast<std::size_t>(static_cast<double>(num_pos) * config.negative_ratio);
  std::set<std::pair<int, int>> seen;
  std::size_t attempts = 0;
  std::size_t negatives = 0;
  while (negatives < want_neg && attempts < want_neg * 50 + 100) {
    ++attempts;
    if (a_pool.empty() || b_pool.empty()) break;
    const int a = rng.pick(a_pool);
    const int b = rng.pick(b_pool);
    if (task_of_a_idx[a] == task_of_b_idx[b]) continue;
    if (!seen.insert({a, b}).second) continue;
    out.push_back({a, b, 0.0f});
    ++negatives;
  }
  rng.shuffle(out);
  return out;
}

}  // namespace

SplitPairs make_pairs(const std::vector<int>& task_of_a,
                      const std::vector<int>& task_of_b, const PairConfig& config,
                      bool exclude_same_index) {
  tensor::RNG rng(config.seed);
  TaskBuckets buckets = bucket(task_of_a, task_of_b);
  SplitPairs out;

  if (config.protocol == SplitProtocol::ByTask) {
    std::vector<int> tasks = buckets.tasks;
    rng.shuffle(tasks);
    const std::size_t n = tasks.size();
    const std::size_t n_train =
        static_cast<std::size_t>(static_cast<double>(n) * config.train_frac);
    const std::size_t n_val =
        static_cast<std::size_t>(static_cast<double>(n) * config.val_frac);
    std::vector<int> train_tasks(tasks.begin(), tasks.begin() + static_cast<long>(n_train));
    std::vector<int> val_tasks(tasks.begin() + static_cast<long>(n_train),
                               tasks.begin() + static_cast<long>(n_train + n_val));
    std::vector<int> test_tasks(tasks.begin() + static_cast<long>(n_train + n_val),
                                tasks.end());
    out.train = build_for_tasks(buckets, train_tasks, config, rng, exclude_same_index);
    out.val = build_for_tasks(buckets, val_tasks, config, rng, exclude_same_index);
    out.test = build_for_tasks(buckets, test_tasks, config, rng, exclude_same_index);
    return out;
  }

  // ByPair: build over all tasks, then split the shuffled pair list.
  std::vector<PairSpec> all =
      build_for_tasks(buckets, buckets.tasks, config, rng, exclude_same_index);
  const std::size_t n = all.size();
  const std::size_t n_train =
      static_cast<std::size_t>(static_cast<double>(n) * config.train_frac);
  const std::size_t n_val =
      static_cast<std::size_t>(static_cast<double>(n) * config.val_frac);
  out.train.assign(all.begin(), all.begin() + static_cast<long>(n_train));
  out.val.assign(all.begin() + static_cast<long>(n_train),
                 all.begin() + static_cast<long>(n_train + n_val));
  out.test.assign(all.begin() + static_cast<long>(n_train + n_val), all.end());
  return out;
}

}  // namespace gbm::data
