#include "datasets/corpus.h"

namespace gbm::data {

DatasetConfig clcdsa_config() {
  DatasetConfig config;
  config.langs = {frontend::Lang::C, frontend::Lang::Cpp, frontend::Lang::Java};
  config.solutions_per_task_per_lang = 4;
  config.seed = 42;
  return config;
}

DatasetConfig poj_config() {
  DatasetConfig config;
  config.langs = {frontend::Lang::Cpp};
  config.solutions_per_task_per_lang = 10;
  config.seed = 1042;
  return config;
}

namespace {

/// Breaks a program so the front-end rejects it (parse or semantic error).
std::string corrupt(const std::string& source, tensor::RNG& rng) {
  std::string out = source;
  switch (rng.uniform_int(0, 2)) {
    case 0: {  // drop the last closing brace → parse error
      const std::size_t pos = out.rfind('}');
      if (pos != std::string::npos) out.erase(pos, 1);
      break;
    }
    case 1: {  // drop the first semicolon → parse error
      const std::size_t pos = out.find(';');
      if (pos != std::string::npos) out.erase(pos, 1);
      break;
    }
    default: {  // reference an undeclared variable → semantic error
      const std::size_t pos = out.rfind('}');
      if (pos != std::string::npos)
        out.insert(pos, "  undeclared_thing = 1;\n");
      break;
    }
  }
  return out;
}

}  // namespace

std::vector<SourceFile> generate_corpus(const DatasetConfig& config) {
  const auto& tasks = all_tasks();
  const int task_count = config.num_tasks > 0
                             ? std::min<int>(config.num_tasks,
                                             static_cast<int>(tasks.size()))
                             : static_cast<int>(tasks.size());
  tensor::RNG rng(config.seed);
  std::vector<SourceFile> files;
  for (int t = 0; t < task_count; ++t) {
    const TaskTemplate& task = tasks[static_cast<std::size_t>(t)];
    for (frontend::Lang lang : config.langs) {
      for (int k = 0; k < config.solutions_per_task_per_lang; ++k) {
        SourceFile file;
        file.task_id = task.id;
        file.task_index = t;
        file.lang = lang;
        file.variant = k % task.num_variants;
        file.style = random_style(rng);
        file.unit_name = "Main";
        file.source = task.emit(lang, file.variant, file.style);
        file.sample_input = task.sample_input;
        if (rng.bernoulli(config.broken_fraction)) {
          file.source = corrupt(file.source, rng);
          file.intact = false;
        }
        files.push_back(std::move(file));
      }
    }
  }
  return files;
}

}  // namespace gbm::data
