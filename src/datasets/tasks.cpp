#include "datasets/tasks.h"

namespace gbm::data {

namespace {

using frontend::Lang;

/// Small program-text writer that abstracts the MiniC / MiniJava surface
/// differences (types, I/O spellings, array declarations, class wrapper).
struct W {
  Lang lang;
  const Style& st;
  std::string funcs;
  std::string body;
  int ind;

  W(Lang lang_, const Style& st_) : lang(lang_), st(st_), ind(base_indent()) {}

  bool java() const { return lang == Lang::Java; }
  bool cpp() const { return lang == Lang::Cpp; }
  int base_indent() const { return java() ? 2 : 1; }
  std::string ty() const { return java() ? "int" : "long"; }
  std::string read() const { return java() ? "Reader.read()" : "read()"; }

  void b(const std::string& s) { body += std::string(ind * 2, ' ') + s + "\n"; }
  void f(const std::string& s) {
    funcs += std::string(java() ? 2 : 0, ' ') + s + "\n";
  }
  void print(const std::string& e) {
    b(java() ? "System.out.println(" + e + ");" : "print(" + e + ");");
  }
  void decl(const std::string& name, const std::string& init) {
    b(ty() + " " + name + " = " + init + ";");
  }
  void arr(const std::string& name, int n) {
    if (java())
      b("int[] " + name + " = new int[" + std::to_string(n) + "];");
    else
      b("long " + name + "[" + std::to_string(n) + "];");
  }
  /// Counting loop [from, to) with the style's loop shape.
  void loop(const std::string& v, const std::string& from, const std::string& to,
            const std::function<void()>& fn) {
    if (st.while_loop) {
      // Own block so the induction variable does not collide with a later
      // loop reusing the same name in this scope.
      b("{");
      ++ind;
      decl(v, from);
      b("while (" + v + " < " + to + ") {");
      ++ind;
      fn();
      b(v + " = " + v + " + 1;");
      --ind;
      b("}");
      --ind;
      b("}");
      return;
    }
    {
      b("for (" + ty() + " " + v + " = " + from + "; " + v + " < " + to + "; " + v +
        "++) {");
      ++ind;
      fn();
      --ind;
      b("}");
    }
  }
  void fill_read(const std::string& name, const std::string& n) {
    loop("fi", "0", n, [&] { b(name + "[fi] = " + read() + ";"); });
  }
  void maybe_dead() {
    if (st.dead_code) {
      decl("scratch", std::to_string(19 + st.jitter));
      b("scratch = scratch * 2 - 1;");
    }
  }

  std::string prog() const {
    if (java())
      return "class Main {\n" + funcs +
             "  public static void main(String[] args) {\n" + body + "  }\n}\n";
    return funcs + "int main() {\n" + body + "  return 0;\n}\n";
  }
};

/// Shorthand for defining a helper function in both surface syntaxes.
/// `params` like "a,b" — all of the default integer type.
void define_helper(W& w, const std::string& name, const std::string& params,
                   const std::vector<std::string>& body_lines) {
  std::string sig;
  std::string param_list;
  std::string sep;
  std::string token;
  for (char c : params + ",") {
    if (c == ',') {
      if (!token.empty()) {
        param_list += sep + w.ty() + " " + token;
        sep = ", ";
      }
      token.clear();
    } else {
      token += c;
    }
  }
  if (w.java())
    sig = "static int " + name + "(" + param_list + ") {";
  else
    sig = "long " + name + "(" + param_list + ") {";
  w.f(sig);
  for (const auto& line : body_lines) w.f("  " + line);
  w.f("}");
}

TaskTemplate make(const std::string& id, int variants,
                  std::function<std::string(Lang, int, const Style&)> emit,
                  std::vector<std::int64_t> input) {
  TaskTemplate t;
  t.id = id;
  t.num_variants = variants;
  t.emit = std::move(emit);
  t.sample_input = std::move(input);
  return t;
}

std::string num(long v) { return std::to_string(v); }

}  // namespace

Style random_style(tensor::RNG& rng) {
  Style st;
  st.while_loop = rng.bernoulli(0.4);
  st.use_helper = rng.bernoulli(0.5);
  st.dead_code = rng.bernoulli(0.3);
  st.reverse_iter = rng.bernoulli(0.3);
  st.jitter = static_cast<int>(rng.uniform_int(0, 3));
  return st;
}

const std::vector<TaskTemplate>& all_tasks() {
  static const std::vector<TaskTemplate> kTasks = [] {
    std::vector<TaskTemplate> tasks;

    // 1. Sum 1..n — loop / closed formula / recursion.
    tasks.push_back(make(
        "sum_to_n", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          w.maybe_dead();
          if (variant == 0) {
            w.decl("total", "0");
            w.loop("i", "1", "n + 1", [&] { w.b("total = total + i;"); });
            w.print("total");
          } else if (variant == 1) {
            w.print("n * (n + 1) / 2");
          } else {
            define_helper(w, "sum_rec", "k",
                          {"if (k <= 0) { return 0; }",
                           "return k + sum_rec(k - 1);"});
            w.print(w.java() ? "sum_rec(n)" : "sum_rec(n)");
          }
          return w.prog();
        },
        {25}));

    // 2. Greatest common divisor — iterative mod / recursion / subtraction.
    tasks.push_back(make(
        "gcd", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          if (variant == 0) {
            w.decl("a", w.read());
            w.decl("b", w.read());
            w.b("while (b != 0) {");
            ++w.ind;
            w.decl("t", "b");
            w.b("b = a % b;");
            w.b("a = t;");
            --w.ind;
            w.b("}");
            w.print("a");
          } else if (variant == 1) {
            define_helper(w, "gcd", "a,b",
                          {"if (b == 0) { return a; }", "return gcd(b, a % b);"});
            w.decl("x", w.read());
            w.decl("y", w.read());
            w.print("gcd(x, y)");
          } else {
            w.decl("a", w.read());
            w.decl("b", w.read());
            w.b("while (a != b) {");
            ++w.ind;
            w.b("if (a > b) { a = a - b; } else { b = b - a; }");
            --w.ind;
            w.b("}");
            w.print("a");
          }
          return w.prog();
        },
        {84, 36}));

    // 3. Fibonacci — iterative pair / array table / naive recursion.
    tasks.push_back(make(
        "fibonacci", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          if (variant == 0) {
            w.decl("a", "0");
            w.decl("b", "1");
            w.loop("i", "0", "n", [&] {
              w.decl("t", "a + b");
              w.b("a = b;");
              w.b("b = t;");
            });
            w.print("a");
          } else if (variant == 1) {
            w.arr("fib", 24);
            w.b("fib[0] = 0;");
            w.b("fib[1] = 1;");
            w.loop("i", "2", num(24), [&] { w.b("fib[i] = fib[i-1] + fib[i-2];"); });
            w.print("fib[n]");
          } else {
            define_helper(w, "fib", "k",
                          {"if (k < 2) { return k; }",
                           "return fib(k - 1) + fib(k - 2);"});
            w.print("fib(n)");
          }
          return w.prog();
        },
        {13}));

    // 4. Factorial.
    tasks.push_back(make(
        "factorial", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          if (variant == 0) {
            w.decl("acc", "1");
            w.loop("i", "2", "n + 1", [&] { w.b("acc = acc * i;"); });
            w.print("acc");
          } else {
            define_helper(w, "fact", "k",
                          {"if (k <= 1) { return 1; }", "return k * fact(k - 1);"});
            w.print("fact(n)");
          }
          return w.prog();
        },
        {10}));

    // 5. Primality test — trial division / 6k±1 skip / even-first.
    tasks.push_back(make(
        "is_prime", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          w.decl("prime", "1");
          if (variant == 0) {
            w.b("if (n < 2) { prime = 0; }");
            w.loop("i", "2", "n", [&] { w.b("if (n % i == 0) { prime = 0; }"); });
          } else if (variant == 1) {
            w.b("if (n < 2) { prime = 0; }");
            w.decl("i", "2");
            w.b("while (i * i <= n) {");
            ++w.ind;
            w.b("if (n % i == 0) { prime = 0; }");
            w.b("i = i + 1;");
            --w.ind;
            w.b("}");
          } else {
            w.b("if (n < 2) { prime = 0; }");
            w.b("if (n > 2 && n % 2 == 0) { prime = 0; }");
            w.decl("i", "3");
            w.b("while (i * i <= n) {");
            ++w.ind;
            w.b("if (n % i == 0) { prime = 0; }");
            w.b("i = i + 2;");
            --w.ind;
            w.b("}");
          }
          w.print("prime");
          return w.prog();
        },
        {97}));

    // 6. Count primes below N — sieve array / repeated trial division.
    tasks.push_back(make(
        "count_primes", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int limit = 50 + st.jitter;
          if (variant == 0) {
            w.arr("composite", limit);
            w.decl("count", "0");
            w.loop("i", "2", num(limit), [&] {
              w.b("if (composite[i] == 0) {");
              ++w.ind;
              w.b("count = count + 1;");
              w.decl("j", "i + i");
              w.b("while (j < " + num(limit) + ") {");
              ++w.ind;
              w.b("composite[j] = 1;");
              w.b("j = j + i;");
              --w.ind;
              w.b("}");
              --w.ind;
              w.b("}");
            });
            w.print("count");
          } else {
            define_helper(w, "check", "n",
                          {"if (n < 2) { return 0; }",
                           w.ty() + " i = 2;",
                           "while (i * i <= n) { if (n % i == 0) { return 0; } i = i + 1; }",
                           "return 1;"});
            w.decl("count", "0");
            w.loop("i", "2", num(limit), [&] { w.b("count = count + check(i);"); });
            w.print("count");
          }
          return w.prog();
        },
        {}));

    // 7. Sum of an input array.
    tasks.push_back(make(
        "array_sum", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 6 + st.jitter;
          w.arr("a", n);
          w.fill_read("a", num(n));
          w.decl("total", "0");
          if (variant == 0) {
            w.loop("i", "0", num(n), [&] { w.b("total = total + a[i];"); });
          } else {
            w.decl("i", num(n - 1));
            w.b("while (i >= 0) {");
            ++w.ind;
            w.b("total = total + a[i];");
            w.b("i = i - 1;");
            --w.ind;
            w.b("}");
          }
          w.print("total");
          return w.prog();
        },
        {4, 8, 15, 16, 23, 42, 7, 9, 11}));

    // 8. Maximum element.
    tasks.push_back(make(
        "array_max", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 7 + st.jitter;
          w.arr("a", n);
          w.fill_read("a", num(n));
          if (variant == 0) {
            w.decl("best", "a[0]");
            w.loop("i", "1", num(n), [&] { w.b("if (a[i] > best) { best = a[i]; }"); });
            w.print("best");
          } else if (variant == 1 && lang != Lang::Java) {
            // Library max (MiniC/MiniC++ std-lib flavour).
            w.decl("best", "a[0]");
            w.loop("i", "1", num(n), [&] { w.b("best = max(best, a[i]);"); });
            w.print("best");
          } else if (variant == 1) {
            w.decl("best", "a[0]");
            w.loop("i", "1", num(n), [&] { w.b("best = Math.max(best, a[i]);"); });
            w.print("best");
          } else {
            w.decl("best", "0 - 1000000");
            w.decl("idx", "0");
            w.b("while (idx < " + num(n) + ") {");
            ++w.ind;
            w.b("if (a[idx] > best) { best = a[idx]; }");
            w.b("idx = idx + 1;");
            --w.ind;
            w.b("}");
            w.print("best");
          }
          return w.prog();
        },
        {12, 99, 7, 34, 2, 64, 31, 5, 5, 5}));

    // 9. Reverse an array and print it.
    tasks.push_back(make(
        "array_reverse", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 5 + st.jitter;
          w.arr("a", n);
          w.fill_read("a", num(n));
          if (variant == 0) {
            w.decl("lo", "0");
            w.decl("hi", num(n - 1));
            w.b("while (lo < hi) {");
            ++w.ind;
            w.decl("t", "a[lo]");
            w.b("a[lo] = a[hi];");
            w.b("a[hi] = t;");
            w.b("lo = lo + 1;");
            w.b("hi = hi - 1;");
            --w.ind;
            w.b("}");
            w.loop("i", "0", num(n), [&] { w.print("a[i]"); });
          } else {
            w.decl("i", num(n - 1));
            w.b("while (i >= 0) {");
            ++w.ind;
            w.print("a[i]");
            w.b("i = i - 1;");
            --w.ind;
            w.b("}");
          }
          return w.prog();
        },
        {3, 1, 4, 1, 5, 9, 2, 6}));

    // 10. Sort and print — library sort / bubble / insertion / selection.
    tasks.push_back(make(
        "sort_print", 4,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 6 + st.jitter;
          if (variant == 0 && lang == Lang::Cpp) {
            // std::vector + std::sort flavour (MiniC++ only).
            w.b("vec v;");
            w.loop("i", "0", num(n), [&] { w.b("v.push(" + w.read() + ");"); });
            w.b("v.sort();");
            w.loop("i", "0", num(n), [&] { w.print("v.get(i)"); });
            return w.prog();
          }
          w.arr("a", n);
          w.fill_read("a", num(n));
          if (variant == 0 && lang == Lang::C) {
            w.b("sort(a, " + num(n) + ");");
          } else if (variant == 0 || variant == 1) {
            // Bubble sort.
            w.loop("i", "0", num(n), [&] {
              w.loop("j", "0", num(n - 1), [&] {
                w.b("if (a[j] > a[j+1]) {");
                ++w.ind;
                w.decl("t", "a[j]");
                w.b("a[j] = a[j+1];");
                w.b("a[j+1] = t;");
                --w.ind;
                w.b("}");
              });
            });
          } else if (variant == 2) {
            // Insertion sort.
            w.loop("i", "1", num(n), [&] {
              w.decl("key", "a[i]");
              w.decl("j", "i - 1");
              w.b("while (j >= 0 && a[j] > key) {");
              ++w.ind;
              w.b("a[j+1] = a[j];");
              w.b("j = j - 1;");
              --w.ind;
              w.b("}");
              w.b("a[j+1] = key;");
            });
          } else {
            // Selection sort.
            w.loop("i", "0", num(n), [&] {
              w.decl("m", "i");
              w.loop("j", "i + 1", num(n), [&] {
                w.b("if (a[j] < a[m]) { m = j; }");
              });
              w.decl("t", "a[i]");
              w.b("a[i] = a[m];");
              w.b("a[m] = t;");
            });
          }
          w.loop("i", "0", num(n), [&] { w.print("a[i]"); });
          return w.prog();
        },
        {42, 7, 19, 3, 88, 21, 11, 13, 17}));

    // 11. Binary search over a filled sorted array.
    tasks.push_back(make(
        "binary_search", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 8;
          w.arr("a", n);
          w.loop("i", "0", num(n), [&] {
            w.b("a[i] = i * " + num(3 + st.jitter) + ";");
          });
          w.decl("key", w.read());
          if (variant == 0) {
            w.decl("lo", "0");
            w.decl("hi", num(n - 1));
            w.decl("found", "0 - 1");
            w.b("while (lo <= hi) {");
            ++w.ind;
            w.decl("mid", "(lo + hi) / 2");
            w.b("if (a[mid] == key) { found = mid; hi = lo - 1; }");
            w.b("else { if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; } }");
            --w.ind;
            w.b("}");
            w.print("found");
          } else {
            w.decl("found", "0 - 1");
            w.loop("i", "0", num(n), [&] {
              w.b("if (a[i] == key) { found = i; }");
            });
            w.print("found");
          }
          return w.prog();
        },
        {12}));

    // 12. Integer palindrome check (digit reversal).
    tasks.push_back(make(
        "palindrome", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          w.decl("orig", "n");
          w.decl("rev", "0");
          w.b("while (n > 0) {");
          ++w.ind;
          w.b("rev = rev * 10 + n % 10;");
          w.b("n = n / 10;");
          --w.ind;
          w.b("}");
          if (variant == 0) {
            w.b("if (rev == orig) { " +
                std::string(w.java() ? "System.out.println(1);" : "print(1);") +
                " } else { " +
                std::string(w.java() ? "System.out.println(0);" : "print(0);") + " }");
          } else {
            w.print("rev == orig ? 1 : 0");
          }
          return w.prog();
        },
        {12321}));

    // 13. Sum of digits.
    tasks.push_back(make(
        "digit_sum", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          if (variant == 0) {
            w.decl("s", "0");
            w.b("while (n > 0) {");
            ++w.ind;
            w.b("s = s + n % 10;");
            w.b("n = n / 10;");
            --w.ind;
            w.b("}");
            w.print("s");
          } else {
            define_helper(w, "dsum", "k",
                          {"if (k == 0) { return 0; }",
                           "return k % 10 + dsum(k / 10);"});
            w.print("dsum(n)");
          }
          return w.prog();
        },
        {98765}));

    // 14. Collatz step count.
    tasks.push_back(make(
        "collatz", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("n", w.read());
          w.decl("steps", "0");
          w.b("while (n != 1) {");
          ++w.ind;
          if (variant == 0) {
            w.b("if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }");
          } else {
            w.b("n = n % 2 == 0 ? n / 2 : 3 * n + 1;");
          }
          w.b("steps = steps + 1;");
          --w.ind;
          w.b("}");
          w.print("steps");
          return w.prog();
        },
        {27}));

    // 15. Integer power — loop / fast exponentiation / library pow.
    tasks.push_back(make(
        "power", 3,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          w.decl("base", w.read());
          w.decl("e", w.read());
          if (variant == 0) {
            w.decl("acc", "1");
            w.loop("i", "0", "e", [&] { w.b("acc = acc * base;"); });
            w.print("acc");
          } else if (variant == 1) {
            w.decl("acc", "1");
            w.b("while (e > 0) {");
            ++w.ind;
            w.b("if (e % 2 == 1) { acc = acc * base; }");
            w.b("base = base * base;");
            w.b("e = e / 2;");
            --w.ind;
            w.b("}");
            w.print("acc");
          } else if (lang == Lang::Java) {
            define_helper(w, "ipow", "b,k",
                          {"if (k == 0) { return 1; }", "return b * ipow(b, k - 1);"});
            w.print("ipow(base, e)");
          } else {
            w.print("pow(base, e)");
          }
          return w.prog();
        },
        {3, 7}));

    // 16. Flattened matrix diagonal sum (k x k in one array).
    tasks.push_back(make(
        "diag_sum", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int k = 4;
          w.arr("m", k * k);
          w.fill_read("m", num(k * k));
          w.decl("s", "0");
          if (variant == 0) {
            w.loop("i", "0", num(k),
                   [&] { w.b("s = s + m[i * " + num(k) + " + i];"); });
          } else {
            w.decl("i", "0");
            w.b("while (i < " + num(k * k) + ") {");
            ++w.ind;
            w.b("s = s + m[i];");
            w.b("i = i + " + num(k + 1) + ";");
            --w.ind;
            w.b("}");
          }
          w.print("s");
          return w.prog();
        },
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}));

    // 17. Count even and odd inputs.
    tasks.push_back(make(
        "even_odd", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 9 + st.jitter;
          w.decl("even", "0");
          w.decl("odd", "0");
          w.loop("i", "0", num(n), [&] {
            w.decl("v", w.read());
            if (variant == 0) {
              w.b("if (v % 2 == 0) { even = even + 1; } else { odd = odd + 1; }");
            } else {
              w.b("even = even + (v % 2 == 0 ? 1 : 0);");
              w.b("odd = odd + (v % 2 == 0 ? 0 : 1);");
            }
          });
          w.print("even");
          w.print("odd");
          return w.prog();
        },
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));

    // 18. Second largest element.
    tasks.push_back(make(
        "second_largest", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 7;
          w.arr("a", n);
          w.fill_read("a", num(n));
          if (variant == 0) {
            w.decl("first", "0 - 1000000");
            w.decl("second", "0 - 1000000");
            w.loop("i", "0", num(n), [&] {
              w.b("if (a[i] > first) { second = first; first = a[i]; }");
              w.b("else { if (a[i] > second && a[i] < first) { second = a[i]; } }");
            });
            w.print("second");
          } else {
            // Sort (bubble) then scan from the top for a distinct value.
            w.loop("i", "0", num(n), [&] {
              w.loop("j", "0", num(n - 1), [&] {
                w.b("if (a[j] > a[j+1]) {");
                ++w.ind;
                w.decl("t", "a[j]");
                w.b("a[j] = a[j+1];");
                w.b("a[j+1] = t;");
                --w.ind;
                w.b("}");
              });
            });
            w.decl("k", num(n - 2));
            w.b("while (k >= 0 && a[k] == a[" + num(n - 1) + "]) { k = k - 1; }");
            w.print("a[k]");
          }
          return w.prog();
        },
        {10, 85, 23, 85, 47, 11, 62}));

    // 19. Running mean of doubles (MiniC) / scaled integers (MiniJava).
    tasks.push_back(make(
        "running_mean", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 5;
          if (lang == Lang::Java) {
            // Java subset has no double: fixed-point by 100.
            w.decl("acc", "0");
            w.loop("i", "0", num(n), [&] { w.b("acc = acc + " + w.read() + ";"); });
            w.print("acc * 100 / " + num(n));
          } else if (variant == 0) {
            w.b("double acc = 0.0;");
            w.loop("i", "0", num(n), [&] {
              w.b("double v = read();");
              w.b("acc = acc + v;");
            });
            w.b("print(acc / " + num(n) + ".0);");
          } else {
            w.decl("acc", "0");
            w.loop("i", "0", num(n), [&] { w.b("acc = acc + " + w.read() + ";"); });
            w.b("double mean = acc;");
            w.b("print(mean / " + num(n) + ".0);");
          }
          return w.prog();
        },
        {10, 20, 30, 40, 55}));

    // 20. Dot product of two input vectors.
    tasks.push_back(make(
        "dot_product", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 5 + st.jitter;
          w.arr("x", n);
          w.arr("y", n);
          w.fill_read("x", num(n));
          w.fill_read("y", num(n));
          w.decl("dot", "0");
          if (variant == 0) {
            w.loop("i", "0", num(n), [&] { w.b("dot = dot + x[i] * y[i];"); });
          } else {
            w.decl("i", num(n - 1));
            w.b("while (i >= 0) {");
            ++w.ind;
            w.b("dot = dot + x[i] * y[i];");
            w.b("i = i - 1;");
            --w.ind;
            w.b("}");
          }
          w.print("dot");
          return w.prog();
        },
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}));

    // 21. Minimum adjacent difference after sorting.
    tasks.push_back(make(
        "min_gap", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 6;
          w.arr("a", n);
          w.fill_read("a", num(n));
          if (variant == 0 && lang == Lang::C) {
            w.b("sort(a, " + num(n) + ");");
          } else {
            w.loop("i", "0", num(n), [&] {
              w.loop("j", "0", num(n - 1), [&] {
                w.b("if (a[j] > a[j+1]) {");
                ++w.ind;
                w.decl("t", "a[j]");
                w.b("a[j] = a[j+1];");
                w.b("a[j+1] = t;");
                --w.ind;
                w.b("}");
              });
            });
          }
          w.decl("best", "1000000");
          w.loop("i", "1", num(n), [&] {
            w.decl("d", "a[i] - a[i-1]");
            if (lang == Lang::Java)
              w.b("best = Math.min(best, d);");
            else
              w.b("best = min(best, d);");
          });
          w.print("best");
          return w.prog();
        },
        {30, 5, 20, 9, 100, 57}));

    // 22. Modular exponentiation.
    tasks.push_back(make(
        "mod_exp", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int mod = 1000 + st.jitter * 7;
          w.decl("b", w.read());
          w.decl("e", w.read());
          w.decl("acc", "1");
          if (variant == 0) {
            w.loop("i", "0", "e", [&] {
              w.b("acc = acc * b % " + num(mod) + ";");
            });
          } else {
            w.b("b = b % " + num(mod) + ";");
            w.b("while (e > 0) {");
            ++w.ind;
            w.b("if (e % 2 == 1) { acc = acc * b % " + num(mod) + "; }");
            w.b("b = b * b % " + num(mod) + ";");
            w.b("e = e / 2;");
            --w.ind;
            w.b("}");
          }
          w.print("acc");
          return w.prog();
        },
        {7, 13}));

    // 23. Count inversions (quadratic scan) — list-flavoured in Java/C++.
    tasks.push_back(make(
        "inversions", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 6;
          if (variant == 1 && lang == Lang::Java) {
            w.b("ArrayList a = new ArrayList();");
            w.loop("i", "0", num(n), [&] { w.b("a.add(" + w.read() + ");"); });
            w.decl("count", "0");
            w.loop("i", "0", num(n), [&] {
              w.loop("j", "i + 1", num(n), [&] {
                w.b("if (a.get(i) > a.get(j)) { count = count + 1; }");
              });
            });
            w.print("count");
            return w.prog();
          }
          if (variant == 1 && lang == Lang::Cpp) {
            w.b("vec a;");
            w.loop("i", "0", num(n), [&] { w.b("a.push(" + w.read() + ");"); });
            w.decl("count", "0");
            w.loop("i", "0", num(n), [&] {
              w.loop("j", "i + 1", num(n), [&] {
                w.b("if (a.get(i) > a.get(j)) { count = count + 1; }");
              });
            });
            w.print("count");
            return w.prog();
          }
          w.arr("a", n);
          w.fill_read("a", num(n));
          w.decl("count", "0");
          w.loop("i", "0", num(n), [&] {
            w.loop("j", "i + 1", num(n), [&] {
              w.b("if (a[i] > a[j]) { count = count + 1; }");
            });
          });
          w.print("count");
          return w.prog();
        },
        {5, 3, 8, 1, 9, 2}));

    // 24. Triangular-number table with a switch-style classifier.
    tasks.push_back(make(
        "classify_mod3", 2,
        [](Lang lang, int variant, const Style& st) {
          W w(lang, st);
          const int n = 8 + st.jitter;
          w.loop("i", "1", num(n), [&] {
            w.decl("r", "i % 3");
            if (variant == 0) {
              w.b("if (r == 0) { " +
                  std::string(lang == Lang::Java ? "System.out.println(i * 2);"
                                                 : "print(i * 2);") +
                  " }");
              w.b("else { if (r == 1) { " +
                  std::string(lang == Lang::Java ? "System.out.println(i);"
                                                 : "print(i);") +
                  " } else { " +
                  std::string(lang == Lang::Java ? "System.out.println(0 - i);"
                                                 : "print(0 - i);") +
                  " } }");
            } else {
              w.print("r == 0 ? i * 2 : (r == 1 ? i : 0 - i)");
            }
          });
          return w.prog();
        },
        {}));

    return tasks;
  }();
  return kTasks;
}

}  // namespace gbm::data
