#include "frontend/frontend.h"

namespace gbm::frontend {

std::unique_ptr<ir::Module> compile_source(const std::string& source, Lang lang,
                                           const std::string& unit_name) {
  Program prog;
  switch (lang) {
    case Lang::C: prog = parse_minic(source, /*cpp_dialect=*/false, unit_name); break;
    case Lang::Cpp: prog = parse_minic(source, /*cpp_dialect=*/true, unit_name); break;
    case Lang::Java: prog = parse_minijava(source, unit_name); break;
  }
  return lower(prog);
}

const char* lang_name(Lang lang) {
  switch (lang) {
    case Lang::C: return "c";
    case Lang::Cpp: return "cpp";
    case Lang::Java: return "java";
  }
  return "?";
}

}  // namespace gbm::frontend
