#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

namespace gbm::frontend {

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](Tok kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (c == ' ' || c == '\t' || c == '\r') { ++i; continue; }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) throw CompileError(line, "unterminated comment");
      i += 2;
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_'))
        ++i;
      push(Tok::Ident, src.substr(start, i - start));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(src[i])) ||
                       src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                       ((src[i] == '-' || src[i] == '+') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') is_float = true;
        ++i;
      }
      // Allow 'L' suffix on integers (MiniC long literals).
      const std::string text = src.substr(start, i - start);
      if (i < n && (src[i] == 'L' || src[i] == 'l') && !is_float) ++i;
      Token t;
      t.line = line;
      t.text = text;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = Tok::IntLit;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      ++i;
      std::string text;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          const char e = src[i + 1];
          if (e == 'n') text += '\n';
          else if (e == 't') text += '\t';
          else if (e == '\\') text += '\\';
          else if (e == '"') text += '"';
          else throw CompileError(line, "bad escape in string");
          i += 2;
        } else {
          if (src[i] == '\n') throw CompileError(line, "newline in string");
          text += src[i++];
        }
      }
      if (i >= n) throw CompileError(line, "unterminated string");
      ++i;
      push(Tok::StrLit, std::move(text));
      continue;
    }
    // Character literal → integer token (MiniC only; 'a').
    if (c == '\'') {
      if (i + 2 < n && src[i + 2] == '\'') {
        Token t;
        t.kind = Tok::IntLit;
        t.int_value = static_cast<unsigned char>(src[i + 1]);
        t.line = line;
        out.push_back(std::move(t));
        i += 3;
        continue;
      }
      throw CompileError(line, "bad character literal");
    }
    // Operators.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && src[i + 1] == b;
    };
    if (two('=', '=')) { push(Tok::EqEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::Ne); i += 2; continue; }
    if (two('<', '=')) { push(Tok::Le); i += 2; continue; }
    if (two('>', '=')) { push(Tok::Ge); i += 2; continue; }
    if (two('&', '&')) { push(Tok::AndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::OrOr); i += 2; continue; }
    if (two('<', '<')) { push(Tok::Shl); i += 2; continue; }
    if (two('>', '>')) { push(Tok::Shr); i += 2; continue; }
    if (two('+', '+')) { push(Tok::PlusPlus); i += 2; continue; }
    if (two('-', '-')) { push(Tok::MinusMinus); i += 2; continue; }
    if (two('+', '=')) { push(Tok::PlusAssign); i += 2; continue; }
    if (two('-', '=')) { push(Tok::MinusAssign); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ';': push(Tok::Semi); break;
      case ',': push(Tok::Comma); break;
      case '.': push(Tok::Dot); break;
      case '=': push(Tok::Assign); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '%': push(Tok::Percent); break;
      case '<': push(Tok::Lt); break;
      case '>': push(Tok::Gt); break;
      case '!': push(Tok::Not); break;
      case '&': push(Tok::Amp); break;
      case '|': push(Tok::Pipe); break;
      case '^': push(Tok::Caret); break;
      case '?': push(Tok::Question); break;
      case ':': push(Tok::Colon); break;
      default:
        throw CompileError(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  push(Tok::End);
  return out;
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer";
    case Tok::FloatLit: return "float";
    case Tok::StrLit: return "string";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Comma: return ",";
    case Tok::Dot: return ".";
    case Tok::Assign: return "=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::Ne: return "!=";
    case Tok::Not: return "!";
    case Tok::AndAnd: return "&&";
    case Tok::OrOr: return "||";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
    case Tok::PlusAssign: return "+=";
    case Tok::MinusAssign: return "-=";
    case Tok::Question: return "?";
    case Tok::Colon: return ":";
  }
  return "?";
}

}  // namespace gbm::frontend
