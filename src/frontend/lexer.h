// Shared lexer for the MiniC and MiniJava front-ends. Both surface
// languages use C-family tokens; keywords are classified by the parsers.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gbm::frontend {

class CompileError : public std::runtime_error {
 public:
  CompileError(int line, const std::string& msg)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

enum class Tok : std::uint8_t {
  End, Ident, IntLit, FloatLit, StrLit,
  // punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Dot, Assign,
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne, Not, AndAnd, OrOr,
  Amp, Pipe, Caret, Shl, Shr,
  PlusPlus, MinusMinus, PlusAssign, MinusAssign,
  Question, Colon,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier / literal spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
};

/// Tokenises the whole input eagerly. Throws CompileError on bad input.
std::vector<Token> lex(const std::string& source);

const char* tok_name(Tok t);

}  // namespace gbm::frontend
