// Language-neutral AST shared by the MiniC and MiniJava parsers.
//
// The two surface languages differ in syntax (declarations, class wrapper,
// builtin spellings) but share expression/statement structure, so a single
// AST keeps the lowering logic in one place. Language-specific semantics
// (integer widths, bounds checks, runtime mapping) are applied by the
// lowerer based on Program::language.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gbm::frontend {

enum class Lang { C, Cpp, Java };

/// Front-end types (mapped to IR types by the lowerer; MiniJava `int` is
/// i32, MiniC `int` is i32, `long` is i64).
enum class Ty : std::uint8_t {
  Void, Bool, Int, Long, Double,
  IntArray,   // MiniJava int[] (heap, bounds-checked) / MiniC int[N] (stack)
  LongArray,  // MiniC long[N]
  DoubleArray,
  Vec,        // MiniC++ vec (std::vector<long>-like)
  List,       // MiniJava ArrayList (boxed ints)
  Str,        // string literal / String
};

const char* ty_name(Ty t);
bool is_array(Ty t);
Ty element_type(Ty t);

// ---- expressions ------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, StrLit, BoolLit,
  Var,
  Binary,   // op, lhs, rhs
  Unary,    // op ("-", "!"), operand
  Call,     // callee name, args (user function or builtin)
  Index,    // base expr, index expr
  Method,   // receiver expr, method name, args (vec/list/string methods)
  NewArray, // element type, length expr (MiniJava `new int[n]`)
  NewList,  // MiniJava `new ArrayList()`
  Ternary,  // cond ? a : b
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,           // short-circuit logical
  BitAnd, BitOr, BitXor, Shl, Shr,
};

struct Expr {
  ExprKind kind;
  int line = 0;
  // literals
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;
  bool bool_value = false;
  // var / call / method
  std::string name;
  std::vector<ExprPtr> args;
  // binary / unary / index / ternary
  BinOp bin_op = BinOp::Add;
  std::string un_op;
  ExprPtr lhs, rhs, third;
  // new array
  Ty elem_ty = Ty::Int;

  static ExprPtr make(ExprKind k, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->line = line;
    return e;
  }
};

// ---- statements ----------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  Block,
  VarDecl,   // type, name, optional init (or array size for stack arrays)
  Assign,    // target (Var or Index expr), value; op for += / -=
  If,        // cond, then, optional else
  While,     // cond, body
  DoWhile,   // body, cond
  For,       // init stmt, cond, step stmt, body
  Return,    // optional value
  ExprStmt,  // expression evaluated for side effects
  Break,
  Continue,
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  std::vector<StmtPtr> body;     // Block
  Ty decl_ty = Ty::Void;         // VarDecl
  std::string name;              // VarDecl
  long array_size = 0;           // VarDecl of stack array (MiniC)
  ExprPtr expr;                  // init / cond / return value / expr
  ExprPtr target;                // Assign target
  std::string assign_op;         // "", "+", "-" for compound assignment
  StmtPtr then_branch, else_branch;  // If
  StmtPtr init, step, loop_body;     // For / While body

  static StmtPtr make(StmtKind k, int line) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->line = line;
    return s;
  }
};

// ---- program -----------------------------------------------------------

struct Param {
  Ty type;
  std::string name;
};

struct FuncDecl {
  std::string name;
  Ty return_type;
  std::vector<Param> params;
  StmtPtr body;  // Block
  int line = 0;
};

struct Program {
  Lang language = Lang::C;
  std::string unit_name;  // class name (Java) or file stem
  std::vector<FuncDecl> functions;
};

}  // namespace gbm::frontend
