#include "frontend/lower.h"

#include <stdexcept>
#include <unordered_map>

#include "frontend/lexer.h"
#include "ir/builder.h"

namespace gbm::frontend {

namespace {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Opcode;

/// A typed IR value during expression lowering.
struct TV {
  ir::Value* v = nullptr;
  Ty ty = Ty::Void;
};

struct VarInfo {
  Ty ty = Ty::Void;
  ir::Value* slot = nullptr;       // alloca holding the value
  const ir::Type* ir_ty = nullptr; // type stored in the slot
  bool direct = false;  // value IS the slot address (MiniC stack arrays)
};

class Lowerer {
 public:
  explicit Lowerer(const Program& prog)
      : prog_(prog),
        mod_(std::make_unique<ir::Module>(prog.unit_name)),
        b_(*mod_) {}

  std::unique_ptr<ir::Module> run() {
    declare_signatures();
    if (prog_.language == Lang::Java) make_clinit();
    for (const auto& fn : prog_.functions) lower_function(fn);
    return std::move(mod_);
  }

 private:
  // ---- types ---------------------------------------------------------------
  const ir::Type* ir_ty(Ty t) const {
    auto& types = mod_->types();
    switch (t) {
      case Ty::Void: return types.void_ty();
      case Ty::Bool: return types.i1();
      case Ty::Int: return types.i32();
      case Ty::Long: return types.i64();
      case Ty::Double: return types.f64();
      default: return types.ptr();  // arrays, vec, list, string
    }
  }

  [[noreturn]] void err(int line, const std::string& msg) const {
    throw CompileError(line, msg);
  }

  // ---- runtime declarations ----------------------------------------------
  ir::Function* runtime_fn(const std::string& name) {
    if (ir::Function* f = mod_->function(name)) return f;
    auto& t = mod_->types();
    using P = std::vector<const ir::Type*>;
    struct Sig { const ir::Type* ret; P params; };
    const std::unordered_map<std::string, Sig> sigs = {
        {"gbm_print_i64", {t.void_ty(), {t.i64()}}},
        {"gbm_print_f64", {t.void_ty(), {t.f64()}}},
        {"gbm_print_str", {t.void_ty(), {t.ptr()}}},
        {"gbm_read_i64", {t.i64(), {}}},
        {"gbm_alloc", {t.ptr(), {t.i64()}}},
        {"jrt_newarray_i32", {t.ptr(), {t.i64()}}},
        {"jrt_arraylen", {t.i64(), {t.ptr()}}},
        {"jrt_boundscheck", {t.void_ty(), {t.ptr(), t.i64()}}},
        {"jrt_box_i32", {t.ptr(), {t.i32()}}},
        {"jrt_unbox_i32", {t.i32(), {t.ptr()}}},
        {"jrt_list_new", {t.ptr(), {}}},
        {"jrt_list_add", {t.void_ty(), {t.ptr(), t.ptr()}}},
        {"jrt_list_get", {t.ptr(), {t.ptr(), t.i64()}}},
        {"jrt_list_set", {t.void_ty(), {t.ptr(), t.i64(), t.ptr()}}},
        {"jrt_list_size", {t.i64(), {t.ptr()}}},
        {"jrt_println_i32", {t.void_ty(), {t.i32()}}},
        {"jrt_println_str", {t.void_ty(), {t.ptr()}}},
        {"jrt_string_charat", {t.i64(), {t.ptr(), t.i64()}}},
        {"jrt_string_len", {t.i64(), {t.ptr()}}},
        {"crt_sort_i64", {t.void_ty(), {t.ptr(), t.i64()}}},
        {"crt_abs_i64", {t.i64(), {t.i64()}}},
        {"crt_min_i64", {t.i64(), {t.i64(), t.i64()}}},
        {"crt_max_i64", {t.i64(), {t.i64(), t.i64()}}},
        {"crt_vec_new", {t.ptr(), {}}},
        {"crt_vec_push", {t.void_ty(), {t.ptr(), t.i64()}}},
        {"crt_vec_get", {t.i64(), {t.ptr(), t.i64()}}},
        {"crt_vec_set", {t.void_ty(), {t.ptr(), t.i64(), t.i64()}}},
        {"crt_vec_size", {t.i64(), {t.ptr()}}},
        {"crt_vec_sort", {t.void_ty(), {t.ptr()}}},
        {"crt_strlen", {t.i64(), {t.ptr()}}},
        {"crt_pow_i64", {t.i64(), {t.i64(), t.i64()}}},
    };
    auto it = sigs.find(name);
    if (it == sigs.end()) throw std::logic_error("unknown runtime fn " + name);
    return mod_->create_function(name, it->second.ret, it->second.params);
  }

  // ---- program structure ----------------------------------------------------
  std::string mangled(const std::string& fn_name) const {
    if (prog_.language == Lang::Java && fn_name != "main")
      return prog_.unit_name + "_" + fn_name;
    return fn_name;
  }

  void declare_signatures() {
    for (const auto& fn : prog_.functions) {
      std::vector<const ir::Type*> params;
      for (const auto& p : fn.params) params.push_back(ir_ty(p.type));
      // IR entry point always returns i32 (exit code).
      const ir::Type* ret =
          fn.name == "main" ? mod_->types().i32() : ir_ty(fn.return_type);
      user_fns_[fn.name] = mod_->create_function(mangled(fn.name), ret, params);
    }
  }

  void make_clinit() {
    // JLang-style runtime state: a pending-exception flag checked after
    // every call. This is the boilerplate that makes Java-derived IR
    // severalfold larger than C/C++ IR for the same task (paper Fig. 4).
    exc_flag_ = mod_->create_global("jexc", mod_->types().i32(), {}, false);
    clinit_ = mod_->create_function(prog_.unit_name + "_clinit",
                                    mod_->types().void_ty(), {});
    BasicBlock* bb = clinit_->create_block("entry");
    b_.set_insertion(bb);
    b_.store(mod_->const_i32(0), exc_flag_);
    b_.ret();
  }

  // ---- function lowering -----------------------------------------------------
  void lower_function(const FuncDecl& fn) {
    cur_ = user_fns_.at(fn.name);
    cur_decl_ = &fn;
    entry_ = cur_->create_block("entry");
    unwind_bb_ = nullptr;
    alloca_idx_ = 0;
    scopes_.clear();
    scopes_.emplace_back();
    b_.set_insertion(entry_);

    // Parameters spill to allocas (clang -O0 style).
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const Param& p = fn.params[i];
      ir::Value* slot = entry_alloca(ir_ty(p.type));
      b_.store(cur_->arg(i), slot);
      scopes_.back()[p.name] = {p.type, slot, ir_ty(p.type)};
    }
    if (prog_.language == Lang::Java && fn.name == "main")
      b_.call(clinit_, {});

    lower_stmt(*fn.body);

    // Terminate any open block with a default return.
    finalize_returns();
    cur_decl_ = nullptr;
  }

  void finalize_returns() {
    for (const auto& bb : cur_->blocks()) {
      if (bb->terminator()) continue;
      b_.set_insertion(bb.get());
      const ir::Type* ret = cur_->return_type();
      if (ret->is_void()) b_.ret();
      else if (ret->is_float()) b_.ret(mod_->const_float(0.0));
      else b_.ret(mod_->const_int(ret, 0));
    }
  }

  ir::Value* entry_alloca(const ir::Type* ty, long array_len = 0) {
    auto* inst = new ir::Instruction(Opcode::Alloca, mod_->types().ptr(),
                                     cur_->next_value_name());
    inst->set_pointee(array_len > 0 ? mod_->types().array(ty, array_len) : ty);
    entry_->insert(alloca_idx_++, std::unique_ptr<ir::Instruction>(inst));
    return inst;
  }

  // ---- scope helpers -----------------------------------------------------
  VarInfo* find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  // ---- statements --------------------------------------------------------
  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (const auto& child : s.body) lower_stmt(*child);
        scopes_.pop_back();
        break;
      }
      case StmtKind::VarDecl: lower_decl(s); break;
      case StmtKind::Assign: lower_assign(s); break;
      case StmtKind::If: lower_if(s); break;
      case StmtKind::While: lower_while(s); break;
      case StmtKind::DoWhile: lower_do_while(s); break;
      case StmtKind::For: lower_for(s); break;
      case StmtKind::Return: lower_return(s); break;
      case StmtKind::ExprStmt: lower_expr(*s.expr); break;
      case StmtKind::Break:
        if (loops_.empty()) err(s.line, "break outside loop");
        b_.br(loops_.back().break_bb);
        start_dead_block();
        break;
      case StmtKind::Continue:
        if (loops_.empty()) err(s.line, "continue outside loop");
        b_.br(loops_.back().continue_bb);
        start_dead_block();
        break;
    }
  }

  /// After an unconditional jump mid-block, subsequent statements are
  /// unreachable; give them a fresh (dead) block so lowering can continue.
  void start_dead_block() { b_.set_insertion(cur_->create_block("dead")); }

  void lower_decl(const Stmt& s) {
    if (find_var(s.name) && scopes_.back().count(s.name))
      err(s.line, "redefinition of " + s.name);
    if (is_array(s.decl_ty) && s.array_size > 0) {
      // MiniC stack array.
      if (prog_.language == Lang::Java) err(s.line, "stack arrays not in MiniJava");
      ir::Value* slot = entry_alloca(ir_ty(element_type(s.decl_ty)), s.array_size);
      scopes_.back()[s.name] = {s.decl_ty, slot, mod_->types().ptr(), /*direct=*/true};
      return;
    }
    const ir::Type* ty = ir_ty(s.decl_ty);
    ir::Value* slot = entry_alloca(ty);
    scopes_.back()[s.name] = {s.decl_ty, slot, ty};
    if (s.expr) {
      TV init = lower_expr(*s.expr);
      b_.store(coerce(init, s.decl_ty, s.line), slot);
    } else if (s.decl_ty == Ty::Vec) {
      b_.store(b_.call(runtime_fn("crt_vec_new"), {}), slot);
    }
  }

  void lower_assign(const Stmt& s) {
    const Expr& target = *s.target;
    if (target.kind == ExprKind::Var) {
      VarInfo* var = find_var(target.name);
      if (!var) err(s.line, "undefined variable " + target.name);
      if (var->direct) err(s.line, "cannot assign to array " + target.name);
      TV value = lower_expr(*s.expr);
      if (!s.assign_op.empty()) {
        TV old{b_.load(var->ir_ty, var->slot), var->ty};
        value = arith(s.assign_op == "+" ? BinOp::Add : BinOp::Sub, old, value, s.line);
      }
      b_.store(coerce(value, var->ty, s.line), var->slot);
      return;
    }
    if (target.kind == ExprKind::Index) {
      TV base = lower_expr(*target.lhs);
      TV index = lower_expr(*target.rhs);
      TV value = lower_expr(*s.expr);
      if (!s.assign_op.empty()) {
        TV old = load_element(base, index, s.line);
        value = arith(s.assign_op == "+" ? BinOp::Add : BinOp::Sub, old, value, s.line);
      }
      store_element(base, index, value, s.line);
      return;
    }
    err(s.line, "invalid assignment target");
  }

  void lower_if(const Stmt& s) {
    ir::Value* cond = lower_cond(*s.expr);
    BasicBlock* then_bb = cur_->create_block("if.then");
    BasicBlock* merge_bb = cur_->create_block("if.end");
    BasicBlock* else_bb = s.else_branch ? cur_->create_block("if.else") : merge_bb;
    b_.cond_br(cond, then_bb, else_bb);
    b_.set_insertion(then_bb);
    lower_stmt(*s.then_branch);
    if (!b_.block()->terminator()) b_.br(merge_bb);
    if (s.else_branch) {
      b_.set_insertion(else_bb);
      lower_stmt(*s.else_branch);
      if (!b_.block()->terminator()) b_.br(merge_bb);
    }
    b_.set_insertion(merge_bb);
  }

  void lower_while(const Stmt& s) {
    BasicBlock* cond_bb = cur_->create_block("while.cond");
    BasicBlock* body_bb = cur_->create_block("while.body");
    BasicBlock* end_bb = cur_->create_block("while.end");
    b_.br(cond_bb);
    b_.set_insertion(cond_bb);
    b_.cond_br(lower_cond(*s.expr), body_bb, end_bb);
    loops_.push_back({end_bb, cond_bb});
    b_.set_insertion(body_bb);
    lower_stmt(*s.loop_body);
    if (!b_.block()->terminator()) b_.br(cond_bb);
    loops_.pop_back();
    b_.set_insertion(end_bb);
  }

  void lower_do_while(const Stmt& s) {
    BasicBlock* body_bb = cur_->create_block("do.body");
    BasicBlock* cond_bb = cur_->create_block("do.cond");
    BasicBlock* end_bb = cur_->create_block("do.end");
    b_.br(body_bb);
    loops_.push_back({end_bb, cond_bb});
    b_.set_insertion(body_bb);
    lower_stmt(*s.loop_body);
    if (!b_.block()->terminator()) b_.br(cond_bb);
    loops_.pop_back();
    b_.set_insertion(cond_bb);
    b_.cond_br(lower_cond(*s.expr), body_bb, end_bb);
    b_.set_insertion(end_bb);
  }

  void lower_for(const Stmt& s) {
    scopes_.emplace_back();
    if (s.init) lower_stmt(*s.init);
    BasicBlock* cond_bb = cur_->create_block("for.cond");
    BasicBlock* body_bb = cur_->create_block("for.body");
    BasicBlock* step_bb = cur_->create_block("for.step");
    BasicBlock* end_bb = cur_->create_block("for.end");
    b_.br(cond_bb);
    b_.set_insertion(cond_bb);
    if (s.expr) b_.cond_br(lower_cond(*s.expr), body_bb, end_bb);
    else b_.br(body_bb);
    loops_.push_back({end_bb, step_bb});
    b_.set_insertion(body_bb);
    lower_stmt(*s.loop_body);
    if (!b_.block()->terminator()) b_.br(step_bb);
    loops_.pop_back();
    b_.set_insertion(step_bb);
    if (s.step) lower_stmt(*s.step);
    b_.br(cond_bb);
    b_.set_insertion(end_bb);
    scopes_.pop_back();
  }

  void lower_return(const Stmt& s) {
    const bool is_main = cur_decl_->name == "main";
    const Ty want = is_main ? Ty::Int : cur_decl_->return_type;
    if (want == Ty::Void && !is_main) {
      if (s.expr) err(s.line, "return value in void function");
      b_.ret();
    } else if (is_main && !s.expr) {
      b_.ret(mod_->const_i32(0));
    } else {
      if (!s.expr) err(s.line, "missing return value");
      TV v = lower_expr(*s.expr);
      b_.ret(coerce(v, want, s.line));
    }
    start_dead_block();
  }

  // ---- expression lowering ----------------------------------------------
  TV lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        const Ty ty = prog_.language == Lang::Java
                          ? Ty::Int
                          : (e.int_value > INT32_MAX || e.int_value < INT32_MIN
                                 ? Ty::Long
                                 : Ty::Int);
        return {mod_->const_int(ir_ty(ty), e.int_value), ty};
      }
      case ExprKind::FloatLit:
        return {mod_->const_float(e.float_value), Ty::Double};
      case ExprKind::BoolLit:
        return {mod_->const_i1(e.bool_value), Ty::Bool};
      case ExprKind::StrLit:
        return {mod_->string_literal(e.str_value), Ty::Str};
      case ExprKind::Var: {
        VarInfo* var = find_var(e.name);
        if (!var) err(e.line, "undefined variable " + e.name);
        if (var->direct) return {var->slot, var->ty};
        return {b_.load(var->ir_ty, var->slot), var->ty};
      }
      case ExprKind::Binary: return lower_binary(e);
      case ExprKind::Unary: return lower_unary(e);
      case ExprKind::Call: return lower_call(e);
      case ExprKind::Index: {
        TV base = lower_expr(*e.lhs);
        TV index = lower_expr(*e.rhs);
        return load_element(base, index, e.line);
      }
      case ExprKind::Method: return lower_method(e);
      case ExprKind::NewArray: {
        TV n = lower_expr(*e.lhs);
        ir::Value* len = coerce(n, Ty::Long, e.line);
        return {checked_call(runtime_fn("jrt_newarray_i32"), {len}), Ty::IntArray};
      }
      case ExprKind::NewList:
        return {checked_call(runtime_fn("jrt_list_new"), {}), Ty::List};
      case ExprKind::Ternary: return lower_ternary(e);
    }
    err(e.line, "unhandled expression");
  }

  TV lower_ternary(const Expr& e) {
    ir::Value* cond = lower_cond(*e.lhs);
    BasicBlock* then_bb = cur_->create_block("sel.then");
    BasicBlock* else_bb = cur_->create_block("sel.else");
    BasicBlock* merge_bb = cur_->create_block("sel.end");
    b_.cond_br(cond, then_bb, else_bb);
    b_.set_insertion(then_bb);
    TV a = lower_expr(*e.rhs);
    BasicBlock* a_end = b_.block();
    b_.set_insertion(else_bb);
    TV bv = lower_expr(*e.third);
    BasicBlock* b_end = b_.block();
    const Ty ty = promote(a.ty, bv.ty, e.line);
    b_.set_insertion(a_end);
    ir::Value* av = coerce(a, ty, e.line);
    b_.br(merge_bb);
    b_.set_insertion(b_end);
    ir::Value* bvv = coerce(bv, ty, e.line);
    b_.br(merge_bb);
    b_.set_insertion(merge_bb);
    ir::Instruction* phi = b_.phi(ir_ty(ty));
    phi->add_incoming(av, a_end);
    phi->add_incoming(bvv, b_end);
    return {phi, ty};
  }

  TV lower_binary(const Expr& e) {
    if (e.bin_op == BinOp::And || e.bin_op == BinOp::Or) return lower_logical(e);
    TV l = lower_expr(*e.lhs);
    TV r = lower_expr(*e.rhs);
    switch (e.bin_op) {
      case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
      case BinOp::Eq: case BinOp::Ne:
        return compare(e.bin_op, l, r, e.line);
      default:
        return arith(e.bin_op, l, r, e.line);
    }
  }

  TV lower_logical(const Expr& e) {
    // Short-circuit evaluation with explicit control flow.
    const bool is_and = e.bin_op == BinOp::And;
    ir::Value* lhs = lower_cond(*e.lhs);
    BasicBlock* lhs_end = b_.block();
    BasicBlock* rhs_bb = cur_->create_block(is_and ? "and.rhs" : "or.rhs");
    BasicBlock* merge_bb = cur_->create_block(is_and ? "and.end" : "or.end");
    if (is_and) b_.cond_br(lhs, rhs_bb, merge_bb);
    else b_.cond_br(lhs, merge_bb, rhs_bb);
    b_.set_insertion(rhs_bb);
    ir::Value* rhs = lower_cond(*e.rhs);
    BasicBlock* rhs_end = b_.block();
    b_.br(merge_bb);
    b_.set_insertion(merge_bb);
    ir::Instruction* phi = b_.phi(mod_->types().i1());
    phi->add_incoming(mod_->const_i1(!is_and), lhs_end);
    phi->add_incoming(rhs, rhs_end);
    return {phi, Ty::Bool};
  }

  TV lower_unary(const Expr& e) {
    TV v = lower_expr(*e.lhs);
    if (e.un_op == "-") {
      if (v.ty == Ty::Double)
        return {b_.binop(Opcode::FSub, mod_->const_float(0.0), v.v), Ty::Double};
      const Ty ty = v.ty == Ty::Long ? Ty::Long : Ty::Int;
      ir::Value* val = coerce(v, ty, e.line);
      return {b_.binop(Opcode::Sub, mod_->const_int(ir_ty(ty), 0), val), ty};
    }
    if (e.un_op == "!") {
      ir::Value* c = lower_cond_value(v, e.line);
      return {b_.icmp(CmpPred::EQ, c, mod_->const_i1(false)), Ty::Bool};
    }
    err(e.line, "unknown unary operator " + e.un_op);
  }

  /// MiniJava: after any call, test the pending-exception flag and branch
  /// to the function's unwind block (the JVM's implicit exception edges).
  void emit_exception_check() {
    if (prog_.language != Lang::Java || !exc_flag_) return;
    if (!unwind_bb_) {
      unwind_bb_ = cur_->create_block("unwind");
      BasicBlock* saved = b_.block();
      b_.set_insertion(unwind_bb_);
      const ir::Type* ret = cur_->return_type();
      if (ret->is_void()) b_.ret();
      else if (ret->is_float()) b_.ret(mod_->const_float(0.0));
      else b_.ret(mod_->const_int(ret, 0));
      b_.set_insertion(saved);
    }
    ir::Value* flag = b_.load(mod_->types().i32(), exc_flag_);
    ir::Value* pending = b_.icmp(CmpPred::NE, flag, mod_->const_i32(0));
    BasicBlock* cont = cur_->create_block("nothrow");
    b_.cond_br(pending, unwind_bb_, cont);
    b_.set_insertion(cont);
  }

  /// Call wrapper that appends the MiniJava exception check.
  ir::Value* checked_call(ir::Function* callee, const std::vector<ir::Value*>& args) {
    ir::Value* result = b_.call(callee, args);
    emit_exception_check();
    return result;
  }

  // ---- calls ----------------------------------------------------------------
  TV lower_call(const Expr& e) {
    const std::string& name = e.name;
    auto arg = [&](std::size_t i) -> const Expr& { return *e.args[i]; };
    const Lang lang = prog_.language;

    // Builtins (language-specific spellings).
    if (lang != Lang::Java) {
      if (name == "print") {
        TV v = lower_expr(arg(0));
        if (v.ty == Ty::Double)
          b_.call(runtime_fn("gbm_print_f64"), {v.v});
        else
          b_.call(runtime_fn("gbm_print_i64"), {coerce(v, Ty::Long, e.line)});
        return {nullptr, Ty::Void};
      }
      if (name == "puts") {
        if (arg(0).kind != ExprKind::StrLit) err(e.line, "puts needs a literal");
        ir::Value* s = mod_->string_literal(arg(0).str_value + "\n");
        b_.call(runtime_fn("gbm_print_str"), {s});
        return {nullptr, Ty::Void};
      }
      if (name == "read")
        return {b_.call(runtime_fn("gbm_read_i64"), {}), Ty::Long};
      if (name == "abs" || name == "min" || name == "max" || name == "pow") {
        std::vector<ir::Value*> args;
        for (const auto& a : e.args) args.push_back(coerce(lower_expr(*a), Ty::Long, e.line));
        const std::string rt = name == "pow" ? "crt_pow_i64" : "crt_" + name + "_i64";
        return {b_.call(runtime_fn(rt), args), Ty::Long};
      }
      if (name == "sort") {
        // sort(arr, n) — library sort over a long array.
        TV base = lower_expr(arg(0));
        if (base.ty == Ty::Vec) {
          b_.call(runtime_fn("crt_vec_sort"), {base.v});
          return {nullptr, Ty::Void};
        }
        if (base.ty != Ty::LongArray) err(e.line, "sort needs long[] or vec");
        TV n = lower_expr(arg(1));
        b_.call(runtime_fn("crt_sort_i64"), {base.v, coerce(n, Ty::Long, e.line)});
        return {nullptr, Ty::Void};
      }
    } else {
      if (name == "System.out.println") {
        TV v = lower_expr(arg(0));
        if (v.ty == Ty::Str)
          checked_call(runtime_fn("jrt_println_str"), {v.v});
        else
          checked_call(runtime_fn("jrt_println_i32"), {coerce(v, Ty::Int, e.line)});
        return {nullptr, Ty::Void};
      }
      if (name == "Reader.read" || name == "read") {
        ir::Value* v = checked_call(runtime_fn("gbm_read_i64"), {});
        return {b_.cast(Opcode::Trunc, v, mod_->types().i32()), Ty::Int};
      }
      if (name == "Math.abs" || name == "Math.min" || name == "Math.max") {
        std::vector<ir::Value*> args;
        for (const auto& a : e.args)
          args.push_back(coerce(lower_expr(*a), Ty::Long, e.line));
        const std::string rt = "crt_" + name.substr(5) + "_i64";
        ir::Value* v = checked_call(runtime_fn(rt), args);
        return {b_.cast(Opcode::Trunc, v, mod_->types().i32()), Ty::Int};
      }
    }

    // User functions.
    auto it = user_fns_.find(name);
    if (it == user_fns_.end()) err(e.line, "call to undefined function " + name);
    const FuncDecl* decl = nullptr;
    for (const auto& f : prog_.functions)
      if (f.name == name) decl = &f;
    if (!decl || decl->params.size() != e.args.size())
      err(e.line, "argument count mismatch calling " + name);
    std::vector<ir::Value*> args;
    for (std::size_t i = 0; i < e.args.size(); ++i)
      args.push_back(coerce(lower_expr(arg(i)), decl->params[i].type, e.line));
    ir::Value* result = checked_call(it->second, args);
    return {decl->return_type == Ty::Void ? nullptr : result, decl->return_type};
  }

  TV lower_method(const Expr& e) {
    TV recv = lower_expr(*e.lhs);
    auto argv = [&](std::size_t i, Ty want) {
      return coerce(lower_expr(*e.args[i]), want, e.line);
    };
    if (recv.ty == Ty::Vec) {
      if (e.name == "push" || e.name == "add") {
        b_.call(runtime_fn("crt_vec_push"), {recv.v, argv(0, Ty::Long)});
        return TV{nullptr, Ty::Void};
      }
      if (e.name == "get")
        return TV{b_.call(runtime_fn("crt_vec_get"), {recv.v, argv(0, Ty::Long)}),
                  Ty::Long};
      if (e.name == "set") {
        b_.call(runtime_fn("crt_vec_set"),
                {recv.v, argv(0, Ty::Long), argv(1, Ty::Long)});
        return TV{nullptr, Ty::Void};
      }
      if (e.name == "size")
        return TV{b_.call(runtime_fn("crt_vec_size"), {recv.v}), Ty::Long};
      if (e.name == "sort") {
        b_.call(runtime_fn("crt_vec_sort"), {recv.v});
        return TV{nullptr, Ty::Void};
      }
      err(e.line, "unknown vec method " + e.name);
    }
    if (recv.ty == Ty::List) {
      if (e.name == "add") {
        ir::Value* boxed = checked_call(runtime_fn("jrt_box_i32"), {argv(0, Ty::Int)});
        checked_call(runtime_fn("jrt_list_add"), {recv.v, boxed});
        return TV{nullptr, Ty::Void};
      }
      if (e.name == "get") {
        ir::Value* boxed =
            checked_call(runtime_fn("jrt_list_get"), {recv.v, argv(0, Ty::Long)});
        return TV{checked_call(runtime_fn("jrt_unbox_i32"), {boxed}), Ty::Int};
      }
      if (e.name == "set") {
        ir::Value* boxed = checked_call(runtime_fn("jrt_box_i32"), {argv(1, Ty::Int)});
        checked_call(runtime_fn("jrt_list_set"), {recv.v, argv(0, Ty::Long), boxed});
        return TV{nullptr, Ty::Void};
      }
      if (e.name == "size") {
        ir::Value* n = checked_call(runtime_fn("jrt_list_size"), {recv.v});
        return TV{b_.cast(Opcode::Trunc, n, mod_->types().i32()), Ty::Int};
      }
      err(e.line, "unknown ArrayList method " + e.name);
    }
    if (recv.ty == Ty::IntArray && e.name == "length" && prog_.language == Lang::Java) {
      ir::Value* n = checked_call(runtime_fn("jrt_arraylen"), {recv.v});
      return TV{b_.cast(Opcode::Trunc, n, mod_->types().i32()), Ty::Int};
    }
    if (recv.ty == Ty::Str) {
      if (e.name == "charAt") {
        ir::Value* c =
            checked_call(runtime_fn("jrt_string_charat"), {recv.v, argv(0, Ty::Long)});
        return TV{b_.cast(Opcode::Trunc, c, mod_->types().i32()), Ty::Int};
      }
      if (e.name == "length") {
        ir::Value* n = checked_call(runtime_fn("jrt_string_len"), {recv.v});
        return TV{b_.cast(Opcode::Trunc, n, mod_->types().i32()), Ty::Int};
      }
    }
    err(e.line, "unknown method " + e.name + " on " + ty_name(recv.ty));
  }

  // ---- element access -----------------------------------------------------
  TV load_element(TV base, TV index, int line) {
    if (base.ty == Ty::Vec)
      return {b_.call(runtime_fn("crt_vec_get"),
                      {base.v, coerce(index, Ty::Long, line)}),
              Ty::Long};
    if (base.ty == Ty::List) {
      ir::Value* boxed = checked_call(runtime_fn("jrt_list_get"),
                                 {base.v, coerce(index, Ty::Long, line)});
      return {checked_call(runtime_fn("jrt_unbox_i32"), {boxed}), Ty::Int};
    }
    if (!is_array(base.ty)) err(line, "indexing non-array");
    const Ty elem = element_type(base.ty);
    ir::Value* ep = element_ptr(base, index, line);
    return {b_.load(ir_ty(elem), ep), elem};
  }

  void store_element(TV base, TV index, TV value, int line) {
    if (base.ty == Ty::Vec) {
      b_.call(runtime_fn("crt_vec_set"),
              {base.v, coerce(index, Ty::Long, line), coerce(value, Ty::Long, line)});
      return;
    }
    if (base.ty == Ty::List) {
      ir::Value* boxed =
          checked_call(runtime_fn("jrt_box_i32"), {coerce(value, Ty::Int, line)});
      checked_call(runtime_fn("jrt_list_set"),
              {base.v, coerce(index, Ty::Long, line), boxed});
      return;
    }
    if (!is_array(base.ty)) err(line, "indexing non-array");
    const Ty elem = element_type(base.ty);
    ir::Value* ep = element_ptr(base, index, line);
    b_.store(coerce(value, elem, line), ep);
  }

  ir::Value* element_ptr(TV base, TV index, int line) {
    ir::Value* idx = coerce(index, Ty::Long, line);
    if (prog_.language == Lang::Java) {
      // Heap array: header (8 bytes) + 4-byte elements, with bounds check.
      checked_call(runtime_fn("jrt_boundscheck"), {base.v, idx});
      ir::Value* scaled = b_.binop(Opcode::Mul, idx, mod_->const_i64(4));
      ir::Value* off = b_.binop(Opcode::Add, scaled, mod_->const_i64(8));
      return b_.gep(mod_->types().i8(), base.v, off);
    }
    return b_.gep(ir_ty(element_type(base.ty)), base.v, idx);
  }

  // ---- conversions / arithmetic ---------------------------------------------
  Ty promote(Ty a, Ty b, int line) const {
    if (a == b) return a;
    if (a == Ty::Double || b == Ty::Double) return Ty::Double;
    if (a == Ty::Long || b == Ty::Long) return Ty::Long;
    if ((a == Ty::Int || a == Ty::Bool) && (b == Ty::Int || b == Ty::Bool))
      return Ty::Int;
    err(line, std::string("cannot combine ") + ty_name(a) + " and " + ty_name(b));
  }

  ir::Value* coerce(TV v, Ty want, int line) {
    if (v.ty == want) return v.v;
    auto& t = mod_->types();
    if (want == Ty::Long && v.ty == Ty::Int) return b_.cast(Opcode::SExt, v.v, t.i64());
    if (want == Ty::Long && v.ty == Ty::Bool) return b_.cast(Opcode::ZExt, v.v, t.i64());
    if (want == Ty::Int && v.ty == Ty::Long) return b_.cast(Opcode::Trunc, v.v, t.i32());
    if (want == Ty::Int && v.ty == Ty::Bool) return b_.cast(Opcode::ZExt, v.v, t.i32());
    if (want == Ty::Double && v.ty == Ty::Int)
      return b_.cast(Opcode::SIToFP, v.v, t.f64());
    if (want == Ty::Double && v.ty == Ty::Long)
      return b_.cast(Opcode::SIToFP, v.v, t.f64());
    if (want == Ty::Bool) return lower_cond_value(v, line);
    if (want == Ty::Long && v.ty == Ty::Double)
      return b_.cast(Opcode::FPToSI, v.v, t.i64());
    if (want == Ty::Int && v.ty == Ty::Double)
      return b_.cast(Opcode::FPToSI, v.v, t.i32());
    err(line, std::string("cannot convert ") + ty_name(v.ty) + " to " + ty_name(want));
  }

  TV arith(BinOp op, TV l, TV r, int line) {
    const Ty ty = promote(l.ty, r.ty, line);
    ir::Value* a = coerce(l, ty, line);
    ir::Value* c = coerce(r, ty, line);
    Opcode opc;
    if (ty == Ty::Double) {
      switch (op) {
        case BinOp::Add: opc = Opcode::FAdd; break;
        case BinOp::Sub: opc = Opcode::FSub; break;
        case BinOp::Mul: opc = Opcode::FMul; break;
        case BinOp::Div: opc = Opcode::FDiv; break;
        default: err(line, "operator not defined on double");
      }
    } else {
      switch (op) {
        case BinOp::Add: opc = Opcode::Add; break;
        case BinOp::Sub: opc = Opcode::Sub; break;
        case BinOp::Mul: opc = Opcode::Mul; break;
        case BinOp::Div: opc = Opcode::SDiv; break;
        case BinOp::Rem: opc = Opcode::SRem; break;
        case BinOp::BitAnd: opc = Opcode::And; break;
        case BinOp::BitOr: opc = Opcode::Or; break;
        case BinOp::BitXor: opc = Opcode::Xor; break;
        case BinOp::Shl: opc = Opcode::Shl; break;
        case BinOp::Shr: opc = Opcode::AShr; break;
        default: err(line, "bad arithmetic operator");
      }
    }
    return {b_.binop(opc, a, c), ty};
  }

  TV compare(BinOp op, TV l, TV r, int line) {
    const Ty ty = promote(l.ty, r.ty, line);
    ir::Value* a = coerce(l, ty, line);
    ir::Value* c = coerce(r, ty, line);
    CmpPred pred;
    switch (op) {
      case BinOp::Lt: pred = CmpPred::SLT; break;
      case BinOp::Le: pred = CmpPred::SLE; break;
      case BinOp::Gt: pred = CmpPred::SGT; break;
      case BinOp::Ge: pred = CmpPred::SGE; break;
      case BinOp::Eq: pred = CmpPred::EQ; break;
      default: pred = CmpPred::NE; break;
    }
    ir::Value* v = ty == Ty::Double ? b_.fcmp(pred, a, c) : b_.icmp(pred, a, c);
    return {v, Ty::Bool};
  }

  /// Lowers an expression used as a condition into an i1.
  ir::Value* lower_cond(const Expr& e) { return lower_cond_value(lower_expr(e), e.line); }

  ir::Value* lower_cond_value(TV v, int line) {
    if (v.ty == Ty::Bool) return v.v;
    if (v.ty == Ty::Int || v.ty == Ty::Long)
      return b_.icmp(CmpPred::NE, v.v, mod_->const_int(ir_ty(v.ty), 0));
    if (v.ty == Ty::Double)
      return b_.fcmp(CmpPred::NE, v.v, mod_->const_float(0.0));
    err(line, std::string("type ") + ty_name(v.ty) + " is not a condition");
  }

  struct LoopCtx {
    BasicBlock* break_bb;
    BasicBlock* continue_bb;
  };

  const Program& prog_;
  std::unique_ptr<ir::Module> mod_;
  ir::IRBuilder b_;
  std::unordered_map<std::string, ir::Function*> user_fns_;
  ir::Function* clinit_ = nullptr;
  ir::GlobalVar* exc_flag_ = nullptr;   // MiniJava pending-exception flag
  BasicBlock* unwind_bb_ = nullptr;     // per-function exception exit
  ir::Function* cur_ = nullptr;
  const FuncDecl* cur_decl_ = nullptr;
  BasicBlock* entry_ = nullptr;
  std::size_t alloca_idx_ = 0;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

std::unique_ptr<ir::Module> lower(const Program& program) {
  return Lowerer(program).run();
}

}  // namespace gbm::frontend
