// AST → IR lowering (the "code generation" half of the front-ends).
//
// Lowering style mirrors clang -O0: every local lives in an entry-block
// alloca, all control flow is explicit blocks, and library constructs
// become runtime calls. Language-specific behaviour:
//
//  * MiniC   — int=i32, long=i64, double=f64; stack arrays; no checks.
//  * MiniC++ — MiniC plus vec/sort/min/max/abs lowered to crt_* calls.
//  * MiniJava — int=i32 arithmetic; heap arrays with bounds checks; boxed
//    ArrayList; println; a synthesized <Class>_clinit called from main
//    (class-initialisation boilerplate, as JLang emits). These extra
//    instructions reproduce the paper's observation that Java IR graphs
//    are several times larger than C/C++ graphs for the same task.
#pragma once

#include <memory>

#include "frontend/ast.h"
#include "ir/module.h"

namespace gbm::frontend {

/// Lowers a parsed program to a fresh IR module. Performs type checking on
/// the way; throws CompileError on semantic errors (undefined variables,
/// type mismatches, bad calls).
std::unique_ptr<ir::Module> lower(const Program& program);

}  // namespace gbm::frontend
