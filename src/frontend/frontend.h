// One-call front-end facade: source text → verified IR module.
#pragma once

#include <memory>
#include <string>

#include "frontend/ast.h"
#include "frontend/lower.h"
#include "frontend/parsers.h"

namespace gbm::frontend {

/// Parses and lowers `source` in the given language. Throws CompileError on
/// any syntax or semantic error ("file is not compilable" in dataset terms).
std::unique_ptr<ir::Module> compile_source(const std::string& source, Lang lang,
                                           const std::string& unit_name = "unit");

const char* lang_name(Lang lang);

}  // namespace gbm::frontend
