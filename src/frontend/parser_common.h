// Token-stream cursor shared by both recursive-descent parsers.
#pragma once

#include <vector>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace gbm::frontend {

class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool at(Tok k) const { return peek().kind == k; }
  bool at_ident(const char* word) const {
    return peek().kind == Tok::Ident && peek().text == word;
  }
  bool accept(Tok k) {
    if (at(k)) {
      next();
      return true;
    }
    return false;
  }
  bool accept_ident(const char* word) {
    if (at_ident(word)) {
      next();
      return true;
    }
    return false;
  }
  const Token& expect(Tok k, const char* what) {
    if (!at(k))
      throw CompileError(peek().line, std::string("expected ") + what + ", found '" +
                                          (peek().kind == Tok::Ident ? peek().text
                                                                     : tok_name(peek().kind)) +
                                          "'");
    return next();
  }
  void expect_ident(const char* word) {
    if (!accept_ident(word))
      throw CompileError(peek().line, std::string("expected '") + word + "'");
  }
  int line() const { return peek().line; }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace gbm::frontend
