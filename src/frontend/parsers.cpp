#include "frontend/parsers.h"

#include <functional>

#include "frontend/parser_common.h"

namespace gbm::frontend {

namespace {

/// Grammar shared by both languages: statements and expressions with
/// C-family precedence. Language hooks: type parsing, primary expressions,
/// declaration shapes.
class BaseParser {
 public:
  explicit BaseParser(TokenStream ts) : ts_(std::move(ts)) {}
  virtual ~BaseParser() = default;

 protected:
  // ---- expressions (precedence climbing) --------------------------------
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!ts_.accept(Tok::Question)) return cond;
    auto e = Expr::make(ExprKind::Ternary, ts_.line());
    e->lhs = std::move(cond);
    e->rhs = parse_expr();
    ts_.expect(Tok::Colon, "':'");
    e->third = parse_expr();
    return e;
  }

  struct OpLevel {
    Tok tok;
    BinOp op;
    int prec;
  };

  static const std::vector<OpLevel>& op_table() {
    static const std::vector<OpLevel> kOps = {
        {Tok::OrOr, BinOp::Or, 1},    {Tok::AndAnd, BinOp::And, 2},
        {Tok::Pipe, BinOp::BitOr, 3}, {Tok::Caret, BinOp::BitXor, 4},
        {Tok::Amp, BinOp::BitAnd, 5}, {Tok::EqEq, BinOp::Eq, 6},
        {Tok::Ne, BinOp::Ne, 6},      {Tok::Lt, BinOp::Lt, 7},
        {Tok::Le, BinOp::Le, 7},      {Tok::Gt, BinOp::Gt, 7},
        {Tok::Ge, BinOp::Ge, 7},      {Tok::Shl, BinOp::Shl, 8},
        {Tok::Shr, BinOp::Shr, 8},    {Tok::Plus, BinOp::Add, 9},
        {Tok::Minus, BinOp::Sub, 9},  {Tok::Star, BinOp::Mul, 10},
        {Tok::Slash, BinOp::Div, 10}, {Tok::Percent, BinOp::Rem, 10},
    };
    return kOps;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const OpLevel* found = nullptr;
      for (const auto& lvl : op_table()) {
        if (ts_.at(lvl.tok) && lvl.prec >= min_prec) {
          found = &lvl;
          break;
        }
      }
      if (!found) return lhs;
      const int line = ts_.line();
      ts_.next();
      ExprPtr rhs = parse_binary(found->prec + 1);
      auto e = Expr::make(ExprKind::Binary, line);
      e->bin_op = found->op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    const int line = ts_.line();
    if (ts_.accept(Tok::Minus)) {
      auto e = Expr::make(ExprKind::Unary, line);
      e->un_op = "-";
      e->lhs = parse_unary();
      return e;
    }
    if (ts_.accept(Tok::Not)) {
      auto e = Expr::make(ExprKind::Unary, line);
      e->un_op = "!";
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (true) {
      if (ts_.at(Tok::LBracket)) {
        const int line = ts_.line();
        ts_.next();
        auto idx = Expr::make(ExprKind::Index, line);
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        ts_.expect(Tok::RBracket, "']'");
        e = std::move(idx);
      } else if (ts_.at(Tok::Dot)) {
        const int line = ts_.line();
        ts_.next();
        const std::string method = ts_.expect(Tok::Ident, "method name").text;
        auto m = Expr::make(ExprKind::Method, line);
        m->name = method;
        m->lhs = std::move(e);
        if (ts_.accept(Tok::LParen)) {
          if (!ts_.accept(Tok::RParen)) {
            do {
              m->args.push_back(parse_expr());
            } while (ts_.accept(Tok::Comma));
            ts_.expect(Tok::RParen, "')'");
          }
        }
        e = std::move(m);
      } else {
        return e;
      }
    }
  }

  virtual ExprPtr parse_primary() = 0;

  ExprPtr parse_call(const std::string& name, int line) {
    auto e = Expr::make(ExprKind::Call, line);
    e->name = name;
    ts_.expect(Tok::LParen, "'('");
    if (!ts_.accept(Tok::RParen)) {
      do {
        e->args.push_back(parse_expr());
      } while (ts_.accept(Tok::Comma));
      ts_.expect(Tok::RParen, "')'");
    }
    return e;
  }

  // ---- statements --------------------------------------------------------
  StmtPtr parse_block() {
    const int line = ts_.line();
    ts_.expect(Tok::LBrace, "'{'");
    auto block = Stmt::make(StmtKind::Block, line);
    while (!ts_.accept(Tok::RBrace)) {
      if (ts_.at(Tok::End)) throw CompileError(ts_.line(), "unterminated block");
      block->body.push_back(parse_statement());
    }
    return block;
  }

  StmtPtr parse_statement() {
    const int line = ts_.line();
    if (ts_.at(Tok::LBrace)) return parse_block();
    if (ts_.accept_ident("if")) {
      auto s = Stmt::make(StmtKind::If, line);
      ts_.expect(Tok::LParen, "'('");
      s->expr = parse_expr();
      ts_.expect(Tok::RParen, "')'");
      s->then_branch = parse_statement();
      if (ts_.accept_ident("else")) s->else_branch = parse_statement();
      return s;
    }
    if (ts_.accept_ident("while")) {
      auto s = Stmt::make(StmtKind::While, line);
      ts_.expect(Tok::LParen, "'('");
      s->expr = parse_expr();
      ts_.expect(Tok::RParen, "')'");
      s->loop_body = parse_statement();
      return s;
    }
    if (ts_.accept_ident("do")) {
      auto s = Stmt::make(StmtKind::DoWhile, line);
      s->loop_body = parse_statement();
      ts_.expect_ident("while");
      ts_.expect(Tok::LParen, "'('");
      s->expr = parse_expr();
      ts_.expect(Tok::RParen, "')'");
      ts_.expect(Tok::Semi, "';'");
      return s;
    }
    if (ts_.accept_ident("for")) {
      auto s = Stmt::make(StmtKind::For, line);
      ts_.expect(Tok::LParen, "'('");
      if (!ts_.at(Tok::Semi)) s->init = parse_simple_statement();
      ts_.expect(Tok::Semi, "';'");
      if (!ts_.at(Tok::Semi)) s->expr = parse_expr();
      ts_.expect(Tok::Semi, "';'");
      if (!ts_.at(Tok::RParen)) s->step = parse_simple_statement();
      ts_.expect(Tok::RParen, "')'");
      s->loop_body = parse_statement();
      return s;
    }
    if (ts_.accept_ident("return")) {
      auto s = Stmt::make(StmtKind::Return, line);
      if (!ts_.at(Tok::Semi)) s->expr = parse_expr();
      ts_.expect(Tok::Semi, "';'");
      return s;
    }
    if (ts_.accept_ident("break")) {
      ts_.expect(Tok::Semi, "';'");
      return Stmt::make(StmtKind::Break, line);
    }
    if (ts_.accept_ident("continue")) {
      ts_.expect(Tok::Semi, "';'");
      return Stmt::make(StmtKind::Continue, line);
    }
    StmtPtr s = parse_simple_statement();
    ts_.expect(Tok::Semi, "';'");
    return s;
  }

  /// Declaration, assignment or expression statement (no trailing ';').
  StmtPtr parse_simple_statement() {
    const int line = ts_.line();
    Ty decl_ty;
    if (try_parse_type(decl_ty)) {
      auto s = Stmt::make(StmtKind::VarDecl, line);
      s->decl_ty = decl_ty;
      s->name = ts_.expect(Tok::Ident, "variable name").text;
      if (ts_.accept(Tok::LBracket)) {  // MiniC stack array: long a[10];
        const Token& n = ts_.expect(Tok::IntLit, "array size");
        s->array_size = n.int_value;
        ts_.expect(Tok::RBracket, "']'");
        s->decl_ty = to_array_type(decl_ty, line);
      } else if (ts_.accept(Tok::Assign)) {
        s->expr = parse_expr();
      }
      return s;
    }
    // Assignment / increment / expression statement.
    ExprPtr target = parse_expr();
    if (ts_.at(Tok::Assign) || ts_.at(Tok::PlusAssign) || ts_.at(Tok::MinusAssign)) {
      auto s = Stmt::make(StmtKind::Assign, line);
      if (ts_.accept(Tok::PlusAssign)) s->assign_op = "+";
      else if (ts_.accept(Tok::MinusAssign)) s->assign_op = "-";
      else ts_.next();
      s->target = std::move(target);
      s->expr = parse_expr();
      return s;
    }
    if (ts_.at(Tok::PlusPlus) || ts_.at(Tok::MinusMinus)) {
      auto s = Stmt::make(StmtKind::Assign, line);
      s->assign_op = ts_.accept(Tok::PlusPlus) ? "+" : (ts_.next(), "-");
      s->target = std::move(target);
      auto one = Expr::make(ExprKind::IntLit, line);
      one->int_value = 1;
      s->expr = std::move(one);
      return s;
    }
    auto s = Stmt::make(StmtKind::ExprStmt, line);
    s->expr = std::move(target);
    return s;
  }

  static Ty to_array_type(Ty elem, int line) {
    switch (elem) {
      case Ty::Int: return Ty::IntArray;
      case Ty::Long: return Ty::LongArray;
      case Ty::Double: return Ty::DoubleArray;
      default: throw CompileError(line, "cannot form array of this type");
    }
  }

  /// If the lookahead is a type keyword, consumes it and returns true.
  virtual bool try_parse_type(Ty& out) = 0;

  TokenStream ts_;
};

// ---- MiniC ----------------------------------------------------------------

class MiniCParser : public BaseParser {
 public:
  MiniCParser(TokenStream ts, bool cpp_dialect)
      : BaseParser(std::move(ts)), cpp_(cpp_dialect) {}

  Program run(const std::string& unit_name) {
    Program prog;
    prog.language = cpp_ ? Lang::Cpp : Lang::C;
    prog.unit_name = unit_name;
    while (!ts_.at(Tok::End)) prog.functions.push_back(parse_function());
    return prog;
  }

 private:
  bool try_parse_type(Ty& out) override {
    if (ts_.at_ident("int")) { ts_.next(); out = Ty::Int; return true; }
    if (ts_.at_ident("long")) { ts_.next(); out = Ty::Long; return true; }
    if (ts_.at_ident("double")) { ts_.next(); out = Ty::Double; return true; }
    if (ts_.at_ident("bool")) { ts_.next(); out = Ty::Bool; return true; }
    if (cpp_ && ts_.at_ident("vec")) { ts_.next(); out = Ty::Vec; return true; }
    return false;
  }

  FuncDecl parse_function() {
    FuncDecl fn;
    fn.line = ts_.line();
    Ty ret;
    if (ts_.accept_ident("void")) ret = Ty::Void;
    else if (!try_parse_type(ret))
      throw CompileError(ts_.line(), "expected return type");
    fn.return_type = ret;
    fn.name = ts_.expect(Tok::Ident, "function name").text;
    ts_.expect(Tok::LParen, "'('");
    if (!ts_.accept(Tok::RParen)) {
      do {
        Param p;
        if (!try_parse_type(p.type))
          throw CompileError(ts_.line(), "expected parameter type");
        // `long* a` and `long a[]` both mean "array of long" here.
        if (ts_.accept(Tok::Star)) p.type = to_array_type(p.type, ts_.line());
        p.name = ts_.expect(Tok::Ident, "parameter name").text;
        if (ts_.accept(Tok::LBracket)) {
          ts_.expect(Tok::RBracket, "']'");
          p.type = to_array_type(p.type, ts_.line());
        }
        fn.params.push_back(std::move(p));
      } while (ts_.accept(Tok::Comma));
      ts_.expect(Tok::RParen, "')'");
    }
    fn.body = parse_block();
    return fn;
  }

  ExprPtr parse_primary() override {
    const int line = ts_.line();
    if (ts_.at(Tok::IntLit)) {
      auto e = Expr::make(ExprKind::IntLit, line);
      e->int_value = ts_.next().int_value;
      return e;
    }
    if (ts_.at(Tok::FloatLit)) {
      auto e = Expr::make(ExprKind::FloatLit, line);
      e->float_value = ts_.next().float_value;
      return e;
    }
    if (ts_.at(Tok::StrLit)) {
      auto e = Expr::make(ExprKind::StrLit, line);
      e->str_value = ts_.next().text;
      return e;
    }
    if (ts_.accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      ts_.expect(Tok::RParen, "')'");
      return e;
    }
    if (ts_.at(Tok::Ident)) {
      const std::string name = ts_.next().text;
      if (name == "true" || name == "false") {
        auto e = Expr::make(ExprKind::BoolLit, line);
        e->bool_value = (name == "true");
        return e;
      }
      if (ts_.at(Tok::LParen)) return parse_call(name, line);
      auto e = Expr::make(ExprKind::Var, line);
      e->name = name;
      return e;
    }
    throw CompileError(line, "expected expression");
  }

  bool cpp_;
};

// ---- MiniJava ---------------------------------------------------------------

class MiniJavaParser : public BaseParser {
 public:
  explicit MiniJavaParser(TokenStream ts) : BaseParser(std::move(ts)) {}

  Program run(const std::string& unit_name) {
    Program prog;
    prog.language = Lang::Java;
    prog.unit_name = unit_name;
    ts_.expect_ident("class");
    prog.unit_name = ts_.expect(Tok::Ident, "class name").text;
    ts_.expect(Tok::LBrace, "'{'");
    while (!ts_.accept(Tok::RBrace)) {
      if (ts_.at(Tok::End)) throw CompileError(ts_.line(), "unterminated class");
      prog.functions.push_back(parse_method());
    }
    return prog;
  }

 private:
  bool try_parse_type(Ty& out) override {
    // `int` / `int[]` / `boolean` / `ArrayList` / `String`.
    if (ts_.at_ident("int")) {
      if (ts_.peek(1).kind == Tok::LBracket && ts_.peek(2).kind == Tok::RBracket) {
        ts_.next(); ts_.next(); ts_.next();
        out = Ty::IntArray;
        return true;
      }
      // Disambiguate declaration from expression use (`int` only starts decls).
      ts_.next();
      out = Ty::Int;
      return true;
    }
    if (ts_.at_ident("boolean")) { ts_.next(); out = Ty::Bool; return true; }
    if (ts_.at_ident("ArrayList")) { ts_.next(); out = Ty::List; return true; }
    if (ts_.at_ident("String") && ts_.peek(1).kind == Tok::Ident) {
      ts_.next();
      out = Ty::Str;
      return true;
    }
    return false;
  }

  FuncDecl parse_method() {
    FuncDecl fn;
    fn.line = ts_.line();
    ts_.accept_ident("public");
    ts_.expect_ident("static");
    Ty ret;
    if (ts_.accept_ident("void")) ret = Ty::Void;
    else if (!try_parse_type(ret))
      throw CompileError(ts_.line(), "expected return type");
    fn.return_type = ret;
    fn.name = ts_.expect(Tok::Ident, "method name").text;
    ts_.expect(Tok::LParen, "'('");
    if (!ts_.accept(Tok::RParen)) {
      do {
        // `String[] args` of main is accepted and ignored.
        if (ts_.at_ident("String") && ts_.peek(1).kind == Tok::LBracket) {
          ts_.next(); ts_.next();
          ts_.expect(Tok::RBracket, "']'");
          ts_.expect(Tok::Ident, "parameter name");
          continue;
        }
        Param p;
        if (!try_parse_type(p.type))
          throw CompileError(ts_.line(), "expected parameter type");
        p.name = ts_.expect(Tok::Ident, "parameter name").text;
        fn.params.push_back(std::move(p));
      } while (ts_.accept(Tok::Comma));
      ts_.expect(Tok::RParen, "')'");
    }
    fn.body = parse_block();
    return fn;
  }

  ExprPtr parse_primary() override {
    const int line = ts_.line();
    if (ts_.at(Tok::IntLit)) {
      auto e = Expr::make(ExprKind::IntLit, line);
      e->int_value = ts_.next().int_value;
      return e;
    }
    if (ts_.at(Tok::StrLit)) {
      auto e = Expr::make(ExprKind::StrLit, line);
      e->str_value = ts_.next().text;
      return e;
    }
    if (ts_.accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      ts_.expect(Tok::RParen, "')'");
      return e;
    }
    if (ts_.accept_ident("new")) {
      if (ts_.accept_ident("int")) {
        ts_.expect(Tok::LBracket, "'['");
        auto e = Expr::make(ExprKind::NewArray, line);
        e->elem_ty = Ty::Int;
        e->lhs = parse_expr();
        ts_.expect(Tok::RBracket, "']'");
        return e;
      }
      if (ts_.accept_ident("ArrayList")) {
        ts_.expect(Tok::LParen, "'('");
        ts_.expect(Tok::RParen, "')'");
        return Expr::make(ExprKind::NewList, line);
      }
      throw CompileError(line, "unsupported 'new' type");
    }
    if (ts_.at(Tok::Ident)) {
      const std::string name = ts_.next().text;
      if (name == "true" || name == "false") {
        auto e = Expr::make(ExprKind::BoolLit, line);
        e->bool_value = (name == "true");
        return e;
      }
      // Qualified builtins: System.out.println(x), Reader.read(), Math.abs(x).
      if ((name == "System" || name == "Reader" || name == "Math" ||
           name == "Integer") &&
          ts_.at(Tok::Dot)) {
        std::string qualified = name;
        while (ts_.accept(Tok::Dot)) {
          qualified += "." + ts_.expect(Tok::Ident, "member").text;
          if (ts_.at(Tok::LParen)) return parse_call(qualified, line);
        }
        throw CompileError(line, "expected call on " + qualified);
      }
      if (ts_.at(Tok::LParen)) return parse_call(name, line);
      auto e = Expr::make(ExprKind::Var, line);
      e->name = name;
      return e;
    }
    throw CompileError(line, "expected expression");
  }
};

}  // namespace

const char* ty_name(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::Bool: return "bool";
    case Ty::Int: return "int";
    case Ty::Long: return "long";
    case Ty::Double: return "double";
    case Ty::IntArray: return "int[]";
    case Ty::LongArray: return "long[]";
    case Ty::DoubleArray: return "double[]";
    case Ty::Vec: return "vec";
    case Ty::List: return "ArrayList";
    case Ty::Str: return "string";
  }
  return "?";
}

bool is_array(Ty t) {
  return t == Ty::IntArray || t == Ty::LongArray || t == Ty::DoubleArray;
}

Ty element_type(Ty t) {
  switch (t) {
    case Ty::IntArray: return Ty::Int;
    case Ty::LongArray: return Ty::Long;
    case Ty::DoubleArray: return Ty::Double;
    case Ty::Vec: return Ty::Long;
    case Ty::List: return Ty::Int;
    default: return Ty::Void;
  }
}

Program parse_minic(const std::string& source, bool cpp_dialect,
                    const std::string& unit_name) {
  MiniCParser parser(TokenStream(lex(source)), cpp_dialect);
  return parser.run(unit_name);
}

Program parse_minijava(const std::string& source, const std::string& unit_name) {
  MiniJavaParser parser(TokenStream(lex(source)));
  return parser.run(unit_name);
}

}  // namespace gbm::frontend
