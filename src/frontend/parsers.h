// Entry points of the two surface-language parsers.
//
// MiniC is the Clang analogue front-end: C syntax with `int`/`long`/
// `double`, stack arrays, and (in the "cpp" dialect) a `vec` container and
// library algorithms mimicking std::vector / <algorithm>.
//
// MiniJava is the JLang analogue: a single class of static methods,
// `int`/`boolean`/`int[]`/`ArrayList`, `System.out.println`, and implicit
// array bounds checks.
#pragma once

#include <string>

#include "frontend/ast.h"

namespace gbm::frontend {

/// Parses MiniC source. `cpp_dialect` enables vec/sort/min/max/abs
/// library constructs (the "C++" front-end). Throws CompileError.
Program parse_minic(const std::string& source, bool cpp_dialect,
                    const std::string& unit_name = "unit");

/// Parses MiniJava source (one class with static methods). Throws
/// CompileError.
Program parse_minijava(const std::string& source,
                       const std::string& unit_name = "Unit");

}  // namespace gbm::frontend
