#include "graph/program_graph.h"

#include <unordered_map>

#include "ir/printer.h"

namespace gbm::graph {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

class GraphBuilder {
 public:
  GraphBuilder(const ir::Module& m, const GraphOptions& options)
      : m_(m), options_(options) {}

  ProgramGraph run() {
    // Pass 1: instruction nodes (and variable nodes for produced values).
    int fn_index = 0;
    for (const auto& fn : m_.functions()) {
      if (fn->is_declaration()) continue;
      for (const auto& arg : fn->args()) {
        var_node_[arg.get()] =
            add_node(NodeKind::Variable, arg->type()->str(),
                     arg->type()->str() + " %" + arg->name(), fn_index);
      }
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          const int node = add_node(NodeKind::Instruction,
                                    ir::opcode_name(inst->opcode()),
                                    ir::print_instruction(*inst), fn_index);
          inst_node_[inst.get()] = node;
          if (!inst->type()->is_void()) {
            const int var =
                add_node(NodeKind::Variable, inst->type()->str(),
                         inst->type()->str() + " %" + inst->name(), fn_index);
            var_node_[inst.get()] = var;
            if (options_.data_edges) add_edge(EdgeKind::Data, node, var, 0);  // def
          }
        }
      }
      entry_inst_[fn.get()] = inst_node_.at(fn->entry()->instructions()[0].get());
      ++fn_index;
    }

    // Pass 2: edges.
    for (const auto& fn : m_.functions()) {
      if (fn->is_declaration()) continue;
      for (const auto& bb : fn->blocks()) {
        const auto& insts = bb->instructions();
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const Instruction* inst = insts[i].get();
          const int node = inst_node_.at(inst);
          // Control: sequential flow within the block.
          if (options_.control_edges && i + 1 < insts.size())
            add_edge(EdgeKind::Control, node, inst_node_.at(insts[i + 1].get()), 0);
          // Control: terminator → target block heads.
          if (options_.control_edges && inst->is_term()) {
            int pos = 0;
            for (BasicBlock* target : inst->targets()) {
              add_edge(EdgeKind::Control, node,
                       inst_node_.at(target->instructions()[0].get()), pos++);
            }
          }
          // Data: operand uses (variable / constant → instruction).
          if (options_.data_edges) {
            for (std::size_t op = 0; op < inst->num_operands(); ++op) {
              const Value* v = inst->operand(op);
              const int src = value_node(v);
              if (src >= 0) add_edge(EdgeKind::Data, src, node, static_cast<int>(op));
            }
          }
          // Call edges.
          if (options_.call_edges && inst->opcode() == Opcode::Call) {
            const Function* callee = inst->callee();
            if (callee && !callee->is_declaration()) {
              add_edge(EdgeKind::Call, node, entry_inst_.at(callee), 0);
              // Return edges: every ret of the callee → this call site.
              for (const auto& cb : callee->blocks()) {
                const Instruction* term = cb->terminator();
                if (term && term->opcode() == Opcode::Ret)
                  add_edge(EdgeKind::Call, inst_node_.at(term), node, 1);
              }
            }
          }
        }
      }
    }
    return std::move(graph_);
  }

 private:
  int add_node(NodeKind kind, std::string text, std::string full_text, int fn) {
    Node node;
    node.kind = kind;
    node.text = std::move(text);
    node.full_text = std::move(full_text);
    node.function = fn;
    graph_.nodes.push_back(std::move(node));
    return static_cast<int>(graph_.nodes.size()) - 1;
  }

  void add_edge(EdgeKind kind, int src, int dst, int position) {
    graph_.edges.push_back({kind, src, dst, position});
  }

  /// Node for an operand value; creates constant nodes on first use.
  int value_node(const Value* v) {
    switch (v->kind()) {
      case ir::ValueKind::Instruction:
      case ir::ValueKind::Argument: {
        auto it = var_node_.find(v);
        return it == var_node_.end() ? -1 : it->second;
      }
      case ir::ValueKind::ConstantInt: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const auto* c = static_cast<const ir::ConstantInt*>(v);
        const int node =
            add_node(NodeKind::Constant, c->type()->str(),
                     c->type()->str() + " " + std::to_string(c->value()), -1);
        const_node_[v] = node;
        return node;
      }
      case ir::ValueKind::ConstantFloat: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const int node = add_node(NodeKind::Constant, v->type()->str(),
                                  v->type()->str() + " " + v->ref(), -1);
        const_node_[v] = node;
        return node;
      }
      case ir::ValueKind::Global: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const auto* g = static_cast<const ir::GlobalVar*>(v);
        // String globals expose their content as part of the feature —
        // string literals are a strong matching signal.
        std::string full = "ptr @" + g->name();
        if (g->is_string()) {
          full += " \"";
          for (std::size_t i = 0; i + 1 < g->data().size(); ++i)
            full += static_cast<char>(g->data()[i]);
          full += "\"";
        }
        const int node = add_node(NodeKind::Constant, "ptr", full, -1);
        const_node_[v] = node;
        return node;
      }
      default:
        return -1;
    }
  }

  const ir::Module& m_;
  const GraphOptions& options_;
  ProgramGraph graph_;
  std::unordered_map<const Value*, int> inst_node_;
  std::unordered_map<const Value*, int> var_node_;
  std::unordered_map<const Value*, int> const_node_;
  std::unordered_map<const Function*, int> entry_inst_;
};

}  // namespace

std::string ProgramGraph::stats() const {
  return "nodes=" + std::to_string(num_nodes()) +
         " (inst=" + std::to_string(count_nodes(NodeKind::Instruction)) +
         ", var=" + std::to_string(count_nodes(NodeKind::Variable)) +
         ", const=" + std::to_string(count_nodes(NodeKind::Constant)) +
         ") edges=" + std::to_string(num_edges()) +
         " (control=" + std::to_string(count_edges(EdgeKind::Control)) +
         ", data=" + std::to_string(count_edges(EdgeKind::Data)) +
         ", call=" + std::to_string(count_edges(EdgeKind::Call)) + ")";
}

ProgramGraph build_graph(const ir::Module& m, const GraphOptions& options) {
  GraphBuilder builder(m, options);
  return builder.run();
}

}  // namespace gbm::graph
