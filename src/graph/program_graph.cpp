#include "graph/program_graph.h"

#include <unordered_map>

#include "ir/printer.h"

namespace gbm::graph {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

class GraphBuilder {
 public:
  GraphBuilder(const ir::Module& m, const GraphOptions& options)
      : m_(m), options_(options) {}

  ProgramGraph run() {
    // Pass 1: instruction nodes (and variable nodes for produced values).
    int fn_index = 0;
    for (const auto& fn : m_.functions()) {
      if (fn->is_declaration()) continue;
      for (const auto& arg : fn->args()) {
        var_node_[arg.get()] =
            graph_.add_node(NodeKind::Variable, arg->type()->str(),
                            arg->type()->str() + " %" + arg->name(), fn_index);
      }
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          const int node = graph_.add_node(NodeKind::Instruction,
                                           ir::opcode_name(inst->opcode()),
                                           ir::print_instruction(*inst), fn_index);
          inst_node_[inst.get()] = node;
          if (!inst->type()->is_void()) {
            const int var = graph_.add_node(
                NodeKind::Variable, inst->type()->str(),
                inst->type()->str() + " %" + inst->name(), fn_index);
            var_node_[inst.get()] = var;
            if (options_.data_edges)
              graph_.add_edge(EdgeKind::Data, node, var, 0);  // def
          }
        }
      }
      entry_inst_[fn.get()] = inst_node_.at(fn->entry()->instructions()[0].get());
      ++fn_index;
    }

    // Pass 2: edges.
    for (const auto& fn : m_.functions()) {
      if (fn->is_declaration()) continue;
      for (const auto& bb : fn->blocks()) {
        const auto& insts = bb->instructions();
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const Instruction* inst = insts[i].get();
          const int node = inst_node_.at(inst);
          // Control: sequential flow within the block.
          if (options_.control_edges && i + 1 < insts.size())
            graph_.add_edge(EdgeKind::Control, node,
                            inst_node_.at(insts[i + 1].get()), 0);
          // Control: terminator → target block heads.
          if (options_.control_edges && inst->is_term()) {
            int pos = 0;
            for (BasicBlock* target : inst->targets()) {
              graph_.add_edge(EdgeKind::Control, node,
                              inst_node_.at(target->instructions()[0].get()), pos++);
            }
          }
          // Data: operand uses (variable / constant → instruction).
          if (options_.data_edges) {
            for (std::size_t op = 0; op < inst->num_operands(); ++op) {
              const Value* v = inst->operand(op);
              const int src = value_node(v);
              if (src >= 0)
                graph_.add_edge(EdgeKind::Data, src, node, static_cast<int>(op));
            }
          }
          // Call edges.
          if (options_.call_edges && inst->opcode() == Opcode::Call) {
            const Function* callee = inst->callee();
            if (callee && !callee->is_declaration()) {
              graph_.add_edge(EdgeKind::Call, node, entry_inst_.at(callee), 0);
              // Return edges: every ret of the callee → this call site.
              for (const auto& cb : callee->blocks()) {
                const Instruction* term = cb->terminator();
                if (term && term->opcode() == Opcode::Ret)
                  graph_.add_edge(EdgeKind::Call, inst_node_.at(term), node, 1);
              }
            }
          }
        }
      }
    }
    graph_.finalize();
    return std::move(graph_);
  }

 private:
  /// Node for an operand value; creates constant nodes on first use.
  int value_node(const Value* v) {
    switch (v->kind()) {
      case ir::ValueKind::Instruction:
      case ir::ValueKind::Argument: {
        auto it = var_node_.find(v);
        return it == var_node_.end() ? -1 : it->second;
      }
      case ir::ValueKind::ConstantInt: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const auto* c = static_cast<const ir::ConstantInt*>(v);
        const int node = graph_.add_node(
            NodeKind::Constant, c->type()->str(),
            c->type()->str() + " " + std::to_string(c->value()), -1);
        const_node_[v] = node;
        return node;
      }
      case ir::ValueKind::ConstantFloat: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const int node = graph_.add_node(NodeKind::Constant, v->type()->str(),
                                         v->type()->str() + " " + v->ref(), -1);
        const_node_[v] = node;
        return node;
      }
      case ir::ValueKind::Global: {
        auto it = const_node_.find(v);
        if (it != const_node_.end()) return it->second;
        const auto* g = static_cast<const ir::GlobalVar*>(v);
        // String globals expose their content as part of the feature —
        // string literals are a strong matching signal.
        std::string full = "ptr @" + g->name();
        if (g->is_string()) {
          full += " \"";
          for (std::size_t i = 0; i + 1 < g->data().size(); ++i)
            full += static_cast<char>(g->data()[i]);
          full += "\"";
        }
        const int node = graph_.add_node(NodeKind::Constant, "ptr", full, -1);
        const_node_[v] = node;
        return node;
      }
      default:
        return -1;
    }
  }

  const ir::Module& m_;
  const GraphOptions& options_;
  ProgramGraph graph_;
  std::unordered_map<const Value*, int> inst_node_;
  std::unordered_map<const Value*, int> var_node_;
  std::unordered_map<const Value*, int> const_node_;
  std::unordered_map<const Function*, int> entry_inst_;
};

}  // namespace

GraphMemory& GraphMemory::operator+=(const GraphMemory& o) {
  node_bytes += o.node_bytes;
  edge_bytes += o.edge_bytes;
  csr_bytes += o.csr_bytes;
  pool_bytes += o.pool_bytes;
  legacy_bytes += o.legacy_bytes;
  feature_refs += o.feature_refs;
  distinct_features += o.distinct_features;
  return *this;
}

int ProgramGraph::add_node(NodeKind kind, std::string text, std::string full_text,
                           int function) {
  Node node;
  node.kind = kind;
  node.text = pool.intern(std::move(text));
  node.full_text = pool.intern(std::move(full_text));
  node.function = function;
  nodes.push_back(node);
  return static_cast<int>(nodes.size()) - 1;
}

void ProgramGraph::finalize() {
  const std::size_t n = nodes.size();
  for (std::size_t k = 0; k < kNumEdgeKinds; ++k) {
    const EdgeArray& list = edges[k];
    std::vector<int>& offsets = in_offsets[k];
    std::vector<int>& order = in_edges[k];
    offsets.assign(n + 1, 0);
    for (int d : list.dst) ++offsets[static_cast<std::size_t>(d) + 1];
    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    order.resize(list.src.size());
    std::vector<int> cursor(offsets.begin(), offsets.end() - 1);
    // Stable by construction: edges of one destination keep append order.
    for (long e = 0; e < list.size(); ++e)
      order[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(list.dst[e])]++)] = static_cast<int>(e);
  }
}

GraphMemory ProgramGraph::memory() const {
  // Tight (as-persisted) layout on both sides of the comparison, so the
  // numbers are deterministic and capacity growth policy cancels out.
  GraphMemory m;
  m.node_bytes = nodes.size() * sizeof(Node);
  for (const auto& list : edges)
    m.edge_bytes += 3 * static_cast<std::size_t>(list.size()) * sizeof(int);
  for (std::size_t k = 0; k < kNumEdgeKinds; ++k)
    m.csr_bytes += (in_offsets[k].size() + in_edges[k].size()) * sizeof(int);
  m.pool_bytes = pool.bytes();
  m.distinct_features = static_cast<long>(pool.size()) - 1;  // minus empty
  // Legacy layout, like-for-like: every node owned text + full_text
  // std::strings (2×sizeof(std::string) + out-of-SSO heap buffers) next to
  // kind/function, and edges lived in one flat array-of-struct vector
  // {kind, src, dst, position} (16 B padded). No CSR index existed — its
  // bytes count against the interned side.
  constexpr std::size_t kLegacyNode = 2 * sizeof(std::string) + 8;
  constexpr std::size_t kLegacyEdge = 16;
  constexpr std::size_t kSso = 15;
  m.legacy_bytes = nodes.size() * kLegacyNode +
                   static_cast<std::size_t>(num_edges()) * kLegacyEdge;
  for (const auto& node : nodes) {
    m.feature_refs += 1 + (node.full_text != StringPool::kEmpty);
    const std::size_t text_len = pool.str(node.text).size();
    const std::size_t full_len = pool.str(node.full_text).size();
    if (text_len > kSso) m.legacy_bytes += text_len + 1;
    if (full_len > kSso) m.legacy_bytes += full_len + 1;
  }
  return m;
}

std::string ProgramGraph::stats() const {
  return "nodes=" + std::to_string(num_nodes()) +
         " (inst=" + std::to_string(count_nodes(NodeKind::Instruction)) +
         ", var=" + std::to_string(count_nodes(NodeKind::Variable)) +
         ", const=" + std::to_string(count_nodes(NodeKind::Constant)) +
         ") edges=" + std::to_string(num_edges()) +
         " (control=" + std::to_string(count_edges(EdgeKind::Control)) +
         ", data=" + std::to_string(count_edges(EdgeKind::Data)) +
         ", call=" + std::to_string(count_edges(EdgeKind::Call)) + ")";
}

ProgramGraph build_graph(const ir::Module& m, const GraphOptions& options) {
  GraphBuilder builder(m, options);
  return builder.run();
}

}  // namespace gbm::graph
