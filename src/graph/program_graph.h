// ProGraML-style heterogeneous program graphs (Cummins et al. 2020), built
// directly from IR modules.
//
// Schema (matching the paper's §III-B/C):
//   * node kinds — instruction, variable (one per SSA value / argument),
//     constant (one per distinct constant or global);
//   * edge kinds — control (CFG successor), data (def: instruction→variable,
//     use: variable/constant→instruction), call (call→callee entry,
//     callee ret→call);
//   * every edge carries a `position` (operand index for data-use edges,
//     successor index for control edges — the paper's edge feature);
//   * every node carries `text` (the opcode / type — ProGraML's default
//     feature) and `full_text` (the complete printed instruction — the
//     feature GraphBinMatch advocates), with `text` as fallback where no
//     full text exists, exactly as §III-C describes.
//
// Representation: feature strings are interned in a per-graph StringPool and
// nodes store u32 pool ids (see string_pool.h), so repeated types/opcodes
// cost one string for the whole graph. Edges live in per-kind
// structure-of-arrays form (EdgeArray) in append order — exactly the layout
// gnn::encode_graph and GraphBatch consume — and finalize() additionally
// builds a CSR index over incoming edges (row pointers by destination node)
// for O(degree) adjacency queries.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/string_pool.h"
#include "ir/module.h"

namespace gbm::graph {

enum class NodeKind : std::uint8_t { Instruction, Variable, Constant };
enum class EdgeKind : std::uint8_t { Control, Data, Call };
inline constexpr std::size_t kNumEdgeKinds = 3;

struct Node {
  NodeKind kind;
  std::uint32_t text = StringPool::kEmpty;       // opcode / type pool id
  std::uint32_t full_text = StringPool::kEmpty;  // printed instruction pool id
  std::int32_t function = -1;  // defining function index, -1 for module-level

  /// Pool id of the feature string under the chosen featurisation:
  /// full_text with fallback to text (the paper's rule).
  std::uint32_t feature_id(bool use_full_text) const {
    return use_full_text && full_text != StringPool::kEmpty ? full_text : text;
  }
};

/// One edge kind as parallel src/dst/position arrays, in append order.
struct EdgeArray {
  std::vector<int> src;
  std::vector<int> dst;
  std::vector<int> pos;

  long size() const { return static_cast<long>(src.size()); }
  void add(int s, int d, int p) {
    src.push_back(s);
    dst.push_back(d);
    pos.push_back(p);
  }
};

/// Memory footprint of one graph, interned layout vs the legacy layout
/// where every node owned two std::strings.
struct GraphMemory {
  std::size_t node_bytes = 0;   // node array
  std::size_t edge_bytes = 0;   // per-kind edge arrays
  std::size_t csr_bytes = 0;    // incoming-CSR index
  std::size_t pool_bytes = 0;   // interned strings
  std::size_t legacy_bytes = 0; // estimate: nodes with owned text/full_text
  long feature_refs = 0;        // node→string references (text + full_text)
  long distinct_features = 0;   // pooled strings (excluding the empty entry)

  std::size_t interned_bytes() const {
    return node_bytes + edge_bytes + csr_bytes + pool_bytes;
  }
  /// How many node→string references share each pooled string.
  double dedup_ratio() const {
    return distinct_features > 0
               ? static_cast<double>(feature_refs) / static_cast<double>(distinct_features)
               : 0.0;
  }
  GraphMemory& operator+=(const GraphMemory& o);
};

struct ProgramGraph {
  StringPool pool;
  std::vector<Node> nodes;
  /// Edges grouped by kind (index = EdgeKind), append order preserved.
  std::array<EdgeArray, kNumEdgeKinds> edges;

  // ---- construction -------------------------------------------------------

  /// By-value strings move through into the pool's intern (no copy for the
  /// temporaries build_graph constructs).
  int add_node(NodeKind kind, std::string text, std::string full_text, int function);
  void add_edge(EdgeKind kind, int src, int dst, int position) {
    edges[static_cast<std::size_t>(kind)].add(src, dst, position);
  }
  /// Builds the incoming-CSR index. Idempotent; called by build_graph and
  /// after deserialisation. Edge arrays must not grow afterwards.
  void finalize();
  bool finalized() const {
    return in_offsets[0].size() == nodes.size() + 1;
  }

  // ---- feature access -----------------------------------------------------

  const std::string& text_of(const Node& n) const { return pool.str(n.text); }
  const std::string& full_text_of(const Node& n) const { return pool.str(n.full_text); }
  /// The feature string under the chosen featurisation (full_text with
  /// fallback to text).
  const std::string& feature(const Node& n, bool use_full_text) const {
    return pool.str(n.feature_id(use_full_text));
  }

  // ---- topology -----------------------------------------------------------

  long num_nodes() const { return static_cast<long>(nodes.size()); }
  long num_edges() const {
    long n = 0;
    for (const auto& list : edges) n += list.size();
    return n;
  }
  long count_nodes(NodeKind k) const {
    long n = 0;
    for (const auto& node : nodes) n += node.kind == k;
    return n;
  }
  long count_edges(EdgeKind k) const {
    return edges[static_cast<std::size_t>(k)].size();
  }
  /// Visits every edge as f(EdgeKind, src, dst, position), kind-major in
  /// append order.
  template <typename F>
  void for_each_edge(F&& f) const {
    for (std::size_t k = 0; k < kNumEdgeKinds; ++k) {
      const EdgeArray& list = edges[k];
      for (long e = 0; e < list.size(); ++e)
        f(static_cast<EdgeKind>(k), list.src[e], list.dst[e], list.pos[e]);
    }
  }

  // ---- CSR incoming index (valid after finalize()) ------------------------

  /// in_offsets[k] has num_nodes+1 row pointers; in_edges[k][in_offsets[k][v]
  /// .. in_offsets[k][v+1]) are the indices into edges[k] whose dst == v.
  std::array<std::vector<int>, kNumEdgeKinds> in_offsets;
  std::array<std::vector<int>, kNumEdgeKinds> in_edges;

  long in_degree(EdgeKind k, int node) const {
    const auto& off = in_offsets[static_cast<std::size_t>(k)];
    return off[static_cast<std::size_t>(node) + 1] - off[static_cast<std::size_t>(node)];
  }

  GraphMemory memory() const;
  std::string stats() const;
};

struct GraphOptions {
  bool call_edges = true;
  bool data_edges = true;
  bool control_edges = true;
};

/// Builds the heterogeneous program graph of a module. Deterministic: node
/// order follows module order (functions → blocks → instructions, then
/// constants in first-use order). The result is finalized.
ProgramGraph build_graph(const ir::Module& m, const GraphOptions& options = {});

}  // namespace gbm::graph
