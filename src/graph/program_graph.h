// ProGraML-style heterogeneous program graphs (Cummins et al. 2020), built
// directly from IR modules.
//
// Schema (matching the paper's §III-B/C):
//   * node kinds — instruction, variable (one per SSA value / argument),
//     constant (one per distinct constant or global);
//   * edge kinds — control (CFG successor), data (def: instruction→variable,
//     use: variable/constant→instruction), call (call→callee entry,
//     callee ret→call);
//   * every edge carries a `position` (operand index for data-use edges,
//     successor index for control edges — the paper's edge feature);
//   * every node carries `text` (the opcode / type — ProGraML's default
//     feature) and `full_text` (the complete printed instruction — the
//     feature GraphBinMatch advocates), with `text` as fallback where no
//     full text exists, exactly as §III-C describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace gbm::graph {

enum class NodeKind : std::uint8_t { Instruction, Variable, Constant };
enum class EdgeKind : std::uint8_t { Control, Data, Call };

struct Node {
  NodeKind kind;
  std::string text;       // opcode (instructions) or type (values)
  std::string full_text;  // full printed instruction / typed value; may be ""
  int function = -1;      // defining function index, -1 for module-level

  /// The feature string under the chosen featurisation: full_text with
  /// fallback to text (the paper's rule).
  const std::string& feature(bool use_full_text) const {
    return use_full_text && !full_text.empty() ? full_text : text;
  }
};

struct Edge {
  EdgeKind kind;
  int src;
  int dst;
  int position;
};

struct ProgramGraph {
  std::vector<Node> nodes;
  std::vector<Edge> edges;

  long num_nodes() const { return static_cast<long>(nodes.size()); }
  long num_edges() const { return static_cast<long>(edges.size()); }
  long count_nodes(NodeKind k) const {
    long n = 0;
    for (const auto& node : nodes) n += node.kind == k;
    return n;
  }
  long count_edges(EdgeKind k) const {
    long n = 0;
    for (const auto& e : edges) n += e.kind == k;
    return n;
  }
  std::string stats() const;
};

struct GraphOptions {
  bool call_edges = true;
  bool data_edges = true;
  bool control_edges = true;
};

/// Builds the heterogeneous program graph of a module. Deterministic: node
/// order follows module order (functions → blocks → instructions, then
/// constants in first-use order).
ProgramGraph build_graph(const ir::Module& m, const GraphOptions& options = {});

}  // namespace gbm::graph
