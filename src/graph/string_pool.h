// Interned feature-string pool for program graphs.
//
// Every node of a ProGraML-style graph carries two feature strings (opcode /
// type and the full printed instruction), but the distinct-string count is a
// small fraction of the node count — types like "i64", opcodes, and repeated
// instruction shapes dominate. A StringPool stores each distinct string once
// and hands out dense u32 ids; nodes keep ids instead of owned std::strings,
// which shrinks the node struct from ~72B + string heap to 16B and lets
// tokenisation memoise per distinct feature instead of per node.
//
// Id 0 is always the empty string (kEmpty), so "no full text" is the zero
// value and the full-text→text fallback is an id comparison.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gbm::graph {

class StringPool {
 public:
  static constexpr std::uint32_t kEmpty = 0;

  StringPool() { reset(); }

  /// Interns `s`, returning its dense id. Ids are assigned in first-intern
  /// order, so equal build sequences produce equal pools (determinism).
  std::uint32_t intern(std::string s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    index_.emplace(s, id);
    strings_.push_back(std::move(s));
    return id;
  }

  const std::string& str(std::uint32_t id) const { return strings_.at(id); }

  /// Number of pooled strings, including the reserved empty entry.
  std::uint32_t size() const { return static_cast<std::uint32_t>(strings_.size()); }

  /// All pooled strings in id order (serialisation / iteration).
  const std::vector<std::string>& strings() const { return strings_; }

  /// Rebuilds a pool from a deserialised id-ordered string list. Entry 0
  /// must be the empty string; duplicates are rejected (both indicate a
  /// corrupted stream).
  static StringPool from_strings(std::vector<std::string> strings) {
    StringPool pool;
    if (strings.empty() || !strings.front().empty())
      throw std::invalid_argument("StringPool: entry 0 must be the empty string");
    pool.strings_ = std::move(strings);
    pool.index_.clear();
    pool.index_.reserve(pool.strings_.size());
    for (std::uint32_t id = 0; id < pool.size(); ++id) {
      if (!pool.index_.emplace(pool.strings_[id], id).second)
        throw std::invalid_argument("StringPool: duplicate pooled string");
    }
    return pool;
  }

  /// Bytes held by the pooled strings in tight layout (vector slots +
  /// out-of-SSO heap buffers, as persisted / after shrink_to_fit). The
  /// lookup index is excluded: it is rebuildable and not part of the
  /// persisted representation.
  std::size_t bytes() const {
    std::size_t total = strings_.size() * sizeof(std::string);
    for (const auto& s : strings_)
      if (s.size() > kSsoCapacity) total += s.size() + 1;
    return total;
  }

  void reset() {
    strings_.assign(1, std::string());
    index_.clear();
    index_.emplace(std::string(), kEmpty);
  }

 private:
  // libstdc++/libc++ small-string buffer: strings at or under this length
  // live inline and cost no heap.
  static constexpr std::size_t kSsoCapacity = 15;

  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace gbm::graph
