#include "tensor/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace gbm::tensor {

namespace io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void Writer::raw(const void* p, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void Writer::ints(const std::vector<int>& xs) {
  u64(xs.size());
  static_assert(sizeof(int) == 4, "i32 element width");
  raw(xs.data(), xs.size() * sizeof(int));
}

void Writer::floats(const std::vector<float>& xs) {
  u64(xs.size());
  raw(xs.data(), xs.size() * sizeof(float));
}

void Writer::to_file(const std::string& path) const {
  // Same-directory temp + rename: a crash mid-write leaves the old file (or
  // nothing) in place, never a truncated one. The temp name folds in the
  // pid (distinct processes sharing a store directory) and the writer
  // address (distinct writers within one process) so concurrent writers of
  // one path cannot collide.
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, ".tmp%ld.%p", static_cast<long>(::getpid()),
                static_cast<const void*>(this));
  const std::string tmp = path + suffix;
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw std::runtime_error("Writer::to_file: cannot open " + tmp);
    if (std::fwrite(buf_.data(), 1, buf_.size(), f.get()) != buf_.size()) {
      std::remove(tmp.c_str());
      throw std::runtime_error("Writer::to_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("Writer::to_file: cannot rename " + tmp + " to " + path);
  }
}

Reader::Reader(const std::uint8_t* data, std::size_t size, std::string context)
    : data_(data), size_(size), context_(std::move(context)) {}

void Reader::fail(const std::string& what) const {
  throw std::runtime_error(context_ + ": " + what);
}

void Reader::need(std::size_t n) {
  if (size_ - off_ < n)
    fail("truncated file (need " + std::to_string(n) + " bytes at offset " +
         std::to_string(off_) + ", have " + std::to_string(size_ - off_) + ")");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[off_++];
}

std::uint32_t Reader::u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}

std::int32_t Reader::i32() {
  std::int32_t v;
  raw(&v, sizeof v);
  return v;
}

std::int64_t Reader::i64() {
  std::int64_t v;
  raw(&v, sizeof v);
  return v;
}

float Reader::f32() {
  float v;
  raw(&v, sizeof v);
  return v;
}

void Reader::raw(void* p, std::size_t n) {
  need(n);
  std::memcpy(p, data_ + off_, n);
  off_ += n;
}

void Reader::expect_magic(const char (&m)[5]) {
  char got[4];
  raw(got, 4);
  if (std::memcmp(got, m, 4) != 0)
    fail("bad magic '" + std::string(got, 4) + "' (expected '" + std::string(m, 4) +
         "')");
}

bool Reader::peek_magic(const char (&m)[5]) const {
  return remaining() >= 4 && std::memcmp(data_ + off_, m, 4) == 0;
}

void Reader::expect_version(std::uint32_t expected, const char* format_name) {
  const std::uint32_t v = u32();
  if (v != expected)
    fail("unsupported " + std::string(format_name) + " version " + std::to_string(v) +
         " (this build reads version " + std::to_string(expected) + ")");
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + off_), len);
  off_ += len;
  return s;
}

std::vector<int> Reader::ints() {
  const std::uint64_t count = u64();
  // Division-side check: count * 4 could overflow for a corrupted prefix.
  if (count > remaining() / sizeof(int)) fail("truncated file (array of " +
                                              std::to_string(count) + " ints)");
  std::vector<int> xs(count);
  raw(xs.data(), count * sizeof(int));
  return xs;
}

std::vector<float> Reader::floats() {
  const std::uint64_t count = u64();
  if (count > remaining() / sizeof(float))
    fail("truncated file (array of " + std::to_string(count) + " floats)");
  std::vector<float> xs(count);
  raw(xs.data(), count * sizeof(float));
  return xs;
}

std::vector<std::uint8_t> read_file(const std::string& path, const std::string& context) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error(context + ": cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f.get())) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  if (std::ferror(f.get())) throw std::runtime_error(context + ": read failed for " + path);
  return bytes;
}

}  // namespace io

namespace {

constexpr char kParamsMagic[5] = "GBMT";
constexpr std::uint32_t kParamsVersion = 1;

}  // namespace

void write_params(io::Writer& w, const std::vector<NamedParam>& params) {
  w.magic(kParamsMagic);
  w.u32(kParamsVersion);
  w.u64(params.size());
  for (const auto& p : params) {
    w.str(p.name);
    w.i64(p.tensor.rows());
    w.i64(p.tensor.cols());
    w.raw(p.tensor.data().data(), sizeof(float) * p.tensor.size());
  }
}

std::size_t read_params(io::Reader& r, std::vector<NamedParam>& params) {
  r.expect_magic(kParamsMagic);
  r.expect_version(kParamsVersion, "parameter-set");
  const std::uint64_t count = r.u64();

  std::unordered_map<std::string, Tensor*> by_name;
  for (auto& p : params) by_name[p.name] = &p.tensor;

  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    const std::int64_t rows = r.i64(), cols = r.i64();
    if (rows < 0 || cols < 0) r.fail("negative tensor shape for " + name);
    const auto elems = static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    if (elems > r.remaining() / sizeof(float))
      r.fail("truncated file (tensor " + name + " claims " + std::to_string(elems) +
             " values)");
    std::vector<float> values(static_cast<std::size_t>(elems));
    r.raw(values.data(), sizeof(float) * values.size());
    auto it = by_name.find(name);
    if (it == by_name.end()) continue;  // unknown tensors are skipped
    Tensor& t = *it->second;
    if (t.rows() != rows || t.cols() != cols)
      r.fail("shape mismatch for " + name + " (file " + std::to_string(rows) + "x" +
             std::to_string(cols) + ", model " + std::to_string(t.rows()) + "x" +
             std::to_string(t.cols()) + ")");
    t.mutable_data() = std::move(values);
    ++restored;
  }
  return restored;
}

void save_params(const std::vector<NamedParam>& params, const std::string& path) {
  io::Writer w;
  write_params(w, params);
  w.to_file(path);
}

std::size_t load_params(std::vector<NamedParam>& params, const std::string& path) {
  const auto bytes = io::read_file(path, "load_params");
  io::Reader r(bytes, "load_params(" + path + ")");
  return read_params(r, params);
}

}  // namespace gbm::tensor
