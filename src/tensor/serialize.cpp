#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace gbm::tensor {

namespace {

constexpr char kMagic[4] = {'G', 'B', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("save_params: write failed");
}

void read_bytes(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) throw std::runtime_error("load_params: truncated file");
}

}  // namespace

void save_params(const std::vector<NamedParam>& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  write_bytes(f.get(), kMagic, 4);
  write_bytes(f.get(), &kVersion, sizeof kVersion);
  const std::uint64_t count = params.size();
  write_bytes(f.get(), &count, sizeof count);
  for (const auto& p : params) {
    const std::uint32_t len = static_cast<std::uint32_t>(p.name.size());
    write_bytes(f.get(), &len, sizeof len);
    write_bytes(f.get(), p.name.data(), len);
    const std::int64_t rows = p.tensor.rows(), cols = p.tensor.cols();
    write_bytes(f.get(), &rows, sizeof rows);
    write_bytes(f.get(), &cols, sizeof cols);
    write_bytes(f.get(), p.tensor.data().data(), sizeof(float) * p.tensor.size());
  }
}

std::size_t load_params(std::vector<NamedParam>& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("load_params: cannot open " + path);
  char magic[4];
  read_bytes(f.get(), magic, 4);
  if (std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_params: bad magic");
  std::uint32_t version = 0;
  read_bytes(f.get(), &version, sizeof version);
  if (version != kVersion) throw std::runtime_error("load_params: unsupported version");
  std::uint64_t count = 0;
  read_bytes(f.get(), &count, sizeof count);

  std::unordered_map<std::string, Tensor*> by_name;
  for (auto& p : params) by_name[p.name] = &p.tensor;

  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    read_bytes(f.get(), &len, sizeof len);
    std::string name(len, '\0');
    read_bytes(f.get(), name.data(), len);
    std::int64_t rows = 0, cols = 0;
    read_bytes(f.get(), &rows, sizeof rows);
    read_bytes(f.get(), &cols, sizeof cols);
    std::vector<float> values(static_cast<std::size_t>(rows * cols));
    read_bytes(f.get(), values.data(), sizeof(float) * values.size());
    auto it = by_name.find(name);
    if (it == by_name.end()) continue;  // unknown tensors are skipped
    Tensor& t = *it->second;
    if (t.rows() != rows || t.cols() != cols)
      throw std::runtime_error("load_params: shape mismatch for " + name);
    t.mutable_data() = std::move(values);
    ++restored;
  }
  return restored;
}

}  // namespace gbm::tensor
