#include "tensor/nn.h"

#include <stdexcept>

namespace gbm::tensor {

// ---- Linear ------------------------------------------------------------

Linear::Linear(long in_features, long out_features, RNG& rng, bool bias,
               std::string name)
    : name_(std::move(name)),
      weight_(Tensor::xavier(in_features, out_features, rng, true)) {
  if (bias) bias_ = Tensor::zeros(1, out_features, true);
}

Tensor Linear::forward(const Tensor& x) const {
  Tensor y = matmul(x, weight_);
  if (bias_.defined()) y = add(y, bias_);
  return y;
}

std::vector<NamedParam> Linear::params() const {
  std::vector<NamedParam> out{{name_ + ".weight", weight_}};
  if (bias_.defined()) out.push_back({name_ + ".bias", bias_});
  return out;
}

// ---- Embedding -----------------------------------------------------------

Embedding::Embedding(long vocab, long dim, RNG& rng, std::string name)
    : name_(std::move(name)),
      table_(Tensor::randn(vocab, dim, rng, 0.1f, true)) {}

Tensor Embedding::forward_bag_max(const std::vector<int>& ids, long n, long bag_len,
                                  int pad_id) const {
  return embedding_bag_max(table_, ids, n, bag_len, pad_id);
}

Tensor Embedding::forward_rows(const std::vector<int>& ids) const {
  return index_rows(table_, ids);
}

std::vector<NamedParam> Embedding::params() const {
  return {{name_ + ".table", table_}};
}

// ---- LayerNorm ----------------------------------------------------------

LayerNorm::LayerNorm(long dim, std::string name)
    : name_(std::move(name)),
      gamma_(Tensor::full(1, dim, 1.0f, true)),
      beta_(Tensor::zeros(1, dim, true)) {}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layer_norm_rows(x, gamma_, beta_);
}

std::vector<NamedParam> LayerNorm::params() const {
  return {{name_ + ".gamma", gamma_}, {name_ + ".beta", beta_}};
}

// ---- LSTMCell -------------------------------------------------------------

LSTMCell::LSTMCell(long input_dim, long hidden_dim, RNG& rng, std::string name)
    : name_(std::move(name)),
      hidden_(hidden_dim),
      ih_(input_dim, 4 * hidden_dim, rng, true, name + ".ih"),
      hh_(hidden_dim, 4 * hidden_dim, rng, false, name + ".hh") {}

Tensor LSTMCell::forward_sequence(const Tensor& seq) const {
  const long t_steps = seq.rows();
  Tensor h = Tensor::zeros(1, hidden_);
  Tensor c = Tensor::zeros(1, hidden_);
  std::vector<Tensor> outputs;
  outputs.reserve(t_steps);
  for (long t = 0; t < t_steps; ++t) {
    const Tensor xt = slice_rows(seq, t, t + 1);
    const Tensor gates = add(ih_.forward(xt), hh_.forward(h));
    // Gate layout: [input | forget | cell | output], each `hidden_` wide.
    const Tensor i_g = sigmoid(slice_cols(gates, 0, hidden_));
    const Tensor f_g = sigmoid(slice_cols(gates, hidden_, 2 * hidden_));
    const Tensor g_g = tanh_t(slice_cols(gates, 2 * hidden_, 3 * hidden_));
    const Tensor o_g = sigmoid(slice_cols(gates, 3 * hidden_, 4 * hidden_));
    c = add(mul(f_g, c), mul(i_g, g_g));
    h = mul(o_g, tanh_t(c));
    outputs.push_back(h);
  }
  return concat_rows(outputs);
}

Tensor LSTMCell::forward_last(const Tensor& seq) const {
  const Tensor all = forward_sequence(seq);
  return slice_rows(all, all.rows() - 1, all.rows());
}

std::vector<NamedParam> LSTMCell::params() const {
  std::vector<NamedParam> out;
  for (auto& p : ih_.params()) out.push_back(p);
  for (auto& p : hh_.params()) out.push_back(p);
  return out;
}

}  // namespace gbm::tensor
