// First-order optimisers over NamedParam lists, plus gradient clipping.
// Adam follows Kingma & Ba (2014) with bias correction — the optimiser the
// paper uses (lr 6.6e-5 at paper scale; benches document their own lr).
#pragma once

#include <vector>

#include "tensor/nn.h"

namespace gbm::tensor {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
};

class Adam {
 public:
  Adam(std::vector<NamedParam> params, AdamConfig cfg = {});
  /// Applies one update using the gradients currently stored on the params.
  void step();
  void zero_grad();
  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }
  long step_count() const { return t_; }

 private:
  std::vector<NamedParam> params_;
  AdamConfig cfg_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  long t_ = 0;
};

/// Plain SGD (reference optimiser used in gradient-check tests).
class SGD {
 public:
  SGD(std::vector<NamedParam> params, float lr) : params_(std::move(params)), lr_(lr) {}
  void step();
  void zero_grad();

 private:
  std::vector<NamedParam> params_;
  float lr_;
};

/// Scales all gradients so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<NamedParam>& params, double max_norm);

}  // namespace gbm::tensor
