// Neural-network building blocks on top of the autograd tensor.
//
// Modules own their parameters (Tensors with requires_grad=true) and expose
// them through `params()` so optimisers and serialisation can walk a model
// uniformly. Forward passes are plain functions of Tensors and build the
// autograd graph implicitly.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gbm::tensor {

/// Named parameter handle used by optimisers and (de)serialisation.
struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// Base for parameterised modules. Children register their parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameters (recursively).
  virtual std::vector<NamedParam> params() const = 0;
  void zero_grad() {
    for (auto& p : params()) p.tensor.zero_grad();
  }
  /// Total number of trainable scalars.
  long param_count() const {
    long n = 0;
    for (const auto& p : params()) n += p.tensor.size();
    return n;
  }
};

/// Affine map y = x W + b.
class Linear : public Module {
 public:
  Linear() = default;
  Linear(long in_features, long out_features, RNG& rng, bool bias = true,
         std::string name = "linear");
  Tensor forward(const Tensor& x) const;
  std::vector<NamedParam> params() const override;
  long in_features() const { return weight_.rows(); }
  long out_features() const { return weight_.cols(); }

 private:
  std::string name_;
  Tensor weight_;  // (in, out)
  Tensor bias_;    // (1, out) — undefined if bias=false
};

/// Token embedding table; lookup is the fused embedding-bag-max op that
/// implements the paper's "embedding layer + max over the token sequence".
class Embedding : public Module {
 public:
  Embedding() = default;
  Embedding(long vocab, long dim, RNG& rng, std::string name = "embedding");
  /// ids is n bags of bag_len ids; returns (n, dim).
  Tensor forward_bag_max(const std::vector<int>& ids, long n, long bag_len,
                         int pad_id) const;
  /// Plain row lookup: returns (ids.size(), dim).
  Tensor forward_rows(const std::vector<int>& ids) const;
  std::vector<NamedParam> params() const override;
  long vocab() const { return table_.rows(); }
  long dim() const { return table_.cols(); }

 private:
  std::string name_;
  Tensor table_;  // (vocab, dim)
};

/// Per-row layer normalisation with learnable scale and shift.
class LayerNorm : public Module {
 public:
  LayerNorm() = default;
  explicit LayerNorm(long dim, std::string name = "layernorm");
  Tensor forward(const Tensor& x) const;
  std::vector<NamedParam> params() const override;

 private:
  std::string name_;
  Tensor gamma_;  // (1, dim)
  Tensor beta_;   // (1, dim)
};

/// Stateless dropout wrapper carrying its probability.
class Dropout {
 public:
  explicit Dropout(float p = 0.5f) : p_(p) {}
  Tensor forward(const Tensor& x, bool training, RNG& rng) const {
    return dropout(x, p_, training, rng);
  }
  float p() const { return p_; }

 private:
  float p_;
};

/// A single LSTM layer processed step by step (used by the XLIR-LSTM
/// baseline). Input is a (T, in) sequence; output is the final hidden state
/// (1, hidden) or the full (T, hidden) sequence.
class LSTMCell : public Module {
 public:
  LSTMCell() = default;
  LSTMCell(long input_dim, long hidden_dim, RNG& rng, std::string name = "lstm");
  /// Runs the recurrence over all T rows of `seq`; returns (T, hidden).
  Tensor forward_sequence(const Tensor& seq) const;
  /// Final hidden state only, (1, hidden).
  Tensor forward_last(const Tensor& seq) const;
  std::vector<NamedParam> params() const override;
  long hidden_dim() const { return hidden_; }

 private:
  std::string name_;
  long hidden_ = 0;
  Linear ih_;  // input -> 4*hidden (i, f, g, o gates)
  Linear hh_;  // hidden -> 4*hidden
};

}  // namespace gbm::tensor
