#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/parallel.h"
#include "tensor/kernels/kernels.h"

namespace gbm::tensor {

// Every hot loop below dispatches through the runtime-selected kernel table
// (tensor/kernels/): `kn()` is the scalar reference tier, an AVX2/FMA tier,
// or a NEON tier, chosen once at startup (GBM_KERNEL override respected).
// Elementwise and segment kernels are bit-exact across tiers; matmul and
// the retrieval prefilter are tolerance class (see kernels.h).
namespace {
inline const kernels::Kernels& kn() { return kernels::active(); }
}  // namespace

namespace {

std::shared_ptr<TensorImpl> make_impl(long rows, long cols, bool rg) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->val.assign(static_cast<std::size_t>(rows * cols), 0.0f);
  impl->requires_grad = rg;
  return impl;
}

[[noreturn]] void shape_error(const char* op, const Tensor& a, const Tensor& b) {
  throw std::invalid_argument(std::string(op) + ": incompatible shapes (" +
                              std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                              ") vs (" + std::to_string(b.rows()) + "x" +
                              std::to_string(b.cols()) + ")");
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols();
}

bool row_broadcastable(const Tensor& a, const Tensor& b) {
  return b.rows() == 1 && a.cols() == b.cols();
}

}  // namespace

// ---- factories --------------------------------------------------------

Tensor Tensor::zeros(long rows, long cols, bool requires_grad) {
  return Tensor(make_impl(rows, cols, requires_grad));
}

Tensor Tensor::full(long rows, long cols, float value, bool requires_grad) {
  auto impl = make_impl(rows, cols, requires_grad);
  std::fill(impl->val.begin(), impl->val.end(), value);
  return Tensor(impl);
}

Tensor Tensor::from(std::vector<float> values, long rows, long cols, bool requires_grad) {
  if (static_cast<long>(values.size()) != rows * cols)
    throw std::invalid_argument("Tensor::from: size mismatch");
  auto impl = make_impl(rows, cols, requires_grad);
  impl->val = std::move(values);
  return Tensor(impl);
}

Tensor Tensor::randn(long rows, long cols, RNG& rng, float stddev, bool requires_grad) {
  auto impl = make_impl(rows, cols, requires_grad);
  for (auto& v : impl->val) v = static_cast<float>(rng.normal()) * stddev;
  return Tensor(impl);
}

Tensor Tensor::xavier(long fan_in, long fan_out, RNG& rng, bool requires_grad) {
  auto impl = make_impl(fan_in, fan_out, requires_grad);
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : impl->val) v = static_cast<float>(rng.uniform(-limit, limit));
  return Tensor(impl);
}

// ---- accessors --------------------------------------------------------

float Tensor::item() const {
  if (size() != 1) throw std::logic_error("Tensor::item on non-scalar");
  return impl_->val[0];
}

Tensor Tensor::detach() const {
  auto impl = make_impl(rows(), cols(), false);
  impl->val = impl_->val;
  return Tensor(impl);
}

void Tensor::zero_grad() {
  impl_->ensure_grad();
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::backward() const {
  if (size() != 1) throw std::logic_error("Tensor::backward requires a scalar root");
  // Topological order via iterative post-order DFS.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->inputs.size()) {
      TensorImpl* child = node->inputs[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  for (TensorImpl* n : order) n->ensure_grad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward();
  }
}

std::string Tensor::to_string(int max_rows, int max_cols) const {
  std::string out = "Tensor(" + std::to_string(rows()) + "x" + std::to_string(cols()) + ")[";
  char buf[32];
  for (long r = 0; r < std::min<long>(rows(), max_rows); ++r) {
    out += (r ? "; " : "");
    for (long c = 0; c < std::min<long>(cols(), max_cols); ++c) {
      std::snprintf(buf, sizeof buf, "%s%.4g", c ? ", " : "", at(r, c));
      out += buf;
    }
    if (cols() > max_cols) out += ", ...";
  }
  if (rows() > max_rows) out += "; ...";
  return out + "]";
}

// ---- helpers for op construction ---------------------------------------

namespace {

Tensor unary_op(const Tensor& a, long rows, long cols,
                const std::function<void(const TensorImpl&, TensorImpl&)>& fwd,
                const std::function<void(TensorImpl&, TensorImpl&)>& bwd) {
  auto out = make_impl(rows, cols, a.requires_grad());
  fwd(*a.impl(), *out);
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, bwd]() {
      ai->ensure_grad();
      bwd(*ai, *o);
    };
  }
  return Tensor(out);
}

}  // namespace

// ---- elementwise algebra ------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  const bool bc = !same_shape(a, b) && row_broadcastable(a, b);
  if (!same_shape(a, b) && !bc) shape_error("add", a, b);
  auto out = make_impl(a.rows(), a.cols(), a.requires_grad() || b.requires_grad());
  const auto& av = a.data();
  const auto& bv = b.data();
  const long n = a.rows(), d = a.cols();
  if (bc) {
    for (long r = 0; r < n; ++r)
      kn().add_n(out->val.data() + r * d, av.data() + r * d, bv.data(), d);
  } else {
    kn().add_n(out->val.data(), av.data(), bv.data(), n * d);
  }
  if (out->requires_grad) {
    out->inputs = {a.impl(), b.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), bi = b.impl();
    out->backward = [o, ai, bi, bc, n, d]() {
      if (ai->requires_grad) {
        ai->ensure_grad();
        kn().acc_n(ai->grad.data(), o->grad.data(), n * d);
      }
      if (bi->requires_grad) {
        bi->ensure_grad();
        if (bc) {
          for (long r = 0; r < n; ++r)
            kn().acc_n(bi->grad.data(), o->grad.data() + r * d, d);
        } else {
          kn().acc_n(bi->grad.data(), o->grad.data(), n * d);
        }
      }
    };
  }
  return Tensor(out);
}

Tensor sub(const Tensor& a, const Tensor& b) { return add(a, neg(b)); }

Tensor mul(const Tensor& a, const Tensor& b) {
  const bool bc = !same_shape(a, b) && row_broadcastable(a, b);
  if (!same_shape(a, b) && !bc) shape_error("mul", a, b);
  auto out = make_impl(a.rows(), a.cols(), a.requires_grad() || b.requires_grad());
  const auto& av = a.data();
  const auto& bv = b.data();
  const long n = a.rows(), d = a.cols();
  if (bc) {
    for (long r = 0; r < n; ++r)
      kn().mul_n(out->val.data() + r * d, av.data() + r * d, bv.data(), d);
  } else {
    kn().mul_n(out->val.data(), av.data(), bv.data(), n * d);
  }
  if (out->requires_grad) {
    out->inputs = {a.impl(), b.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), bi = b.impl();
    out->backward = [o, ai, bi, bc, n, d]() {
      if (ai->requires_grad) {
        ai->ensure_grad();
        if (bc) {
          for (long r = 0; r < n; ++r)
            kn().fma_acc_n(ai->grad.data() + r * d, o->grad.data() + r * d,
                           bi->val.data(), d);
        } else {
          kn().fma_acc_n(ai->grad.data(), o->grad.data(), bi->val.data(), n * d);
        }
      }
      if (bi->requires_grad) {
        bi->ensure_grad();
        if (bc) {
          for (long r = 0; r < n; ++r)
            kn().fma_acc_n(bi->grad.data(), o->grad.data() + r * d,
                           ai->val.data() + r * d, d);
        } else {
          kn().fma_acc_n(bi->grad.data(), o->grad.data(), ai->val.data(), n * d);
        }
      }
    };
  }
  return Tensor(out);
}

Tensor scale(const Tensor& a, float s) {
  return unary_op(
      a, a.rows(), a.cols(),
      [s](const TensorImpl& x, TensorImpl& o) {
        kn().scale_n(o.val.data(), x.val.data(), s, x.size());
      },
      [s](TensorImpl& x, TensorImpl& o) {
        kn().axpy_n(x.grad.data(), o.grad.data(), s, x.size());
      });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      a, a.rows(), a.cols(),
      [s](const TensorImpl& x, TensorImpl& o) {
        kn().adds_n(o.val.data(), x.val.data(), s, x.size());
      },
      [](TensorImpl& x, TensorImpl& o) {
        kn().acc_n(x.grad.data(), o.grad.data(), x.size());
      });
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor abs_t(const Tensor& a) {
  return unary_op(
      a, a.rows(), a.cols(),
      [](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) o.val[i] = std::fabs(x.val[i]);
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          x.grad[i] += o.grad[i] * (x.val[i] >= 0.0f ? 1.0f : -1.0f);
      });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) shape_error("maximum", a, b);
  auto out = make_impl(a.rows(), a.cols(), a.requires_grad() || b.requires_grad());
  for (long i = 0; i < a.size(); ++i)
    out->val[i] = std::max(a.data()[i], b.data()[i]);
  if (out->requires_grad) {
    out->inputs = {a.impl(), b.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), bi = b.impl();
    out->backward = [o, ai, bi]() {
      for (long i = 0; i < o->size(); ++i) {
        // Ties route the gradient to the first argument.
        if (ai->val[i] >= bi->val[i]) {
          if (ai->requires_grad) { ai->ensure_grad(); ai->grad[i] += o->grad[i]; }
        } else if (bi->requires_grad) {
          bi->ensure_grad();
          bi->grad[i] += o->grad[i];
        }
      }
    };
  }
  return Tensor(out);
}

// ---- dense linear algebra -------------------------------------------------

namespace {

thread_local int g_matmul_threads = 1;

}  // namespace

int matmul_threads() { return g_matmul_threads; }

MatmulParallelGuard::MatmulParallelGuard(int threads) : prev_(g_matmul_threads) {
  g_matmul_threads = core::resolve_threads(threads);
}

MatmulParallelGuard::~MatmulParallelGuard() { g_matmul_threads = prev_; }

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) shape_error("matmul", a, b);
  const long n = a.rows(), k = a.cols(), m = b.cols();
  // Captured at op-build time so forward and backward split identically no
  // matter which thread later runs backward().
  const int mt = g_matmul_threads;
  auto out = make_impl(n, m, a.requires_grad() || b.requires_grad());
  kn().matmul_fwd(a.data().data(), b.data().data(), out->val.data(), n, k, m, mt);
  if (out->requires_grad) {
    out->inputs = {a.impl(), b.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), bi = b.impl();
    out->backward = [o, ai, bi, n, k, m, mt]() {
      const float* G = o->grad.data();
      if (ai->requires_grad) {
        ai->ensure_grad();  // dA += G * B^T — rows of dA are independent.
        kn().matmul_bwd_a(G, bi->val.data(), ai->grad.data(), n, k, m, mt);
      }
      if (bi->requires_grad) {
        bi->ensure_grad();  // dB += A^T * G — rows of dB (k range) independent.
        kn().matmul_bwd_b(ai->val.data(), G, bi->grad.data(), n, k, m, mt);
      }
    };
  }
  return Tensor(out);
}

Tensor transpose(const Tensor& a) {
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(d, n, a.requires_grad());
  for (long r = 0; r < n; ++r)
    for (long c = 0; c < d; ++c) out->val[c * n + r] = a.data()[r * d + c];
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, n, d]() {
      ai->ensure_grad();
      for (long r = 0; r < n; ++r)
        for (long c = 0; c < d; ++c) ai->grad[r * d + c] += o->grad[c * n + r];
    };
  }
  return Tensor(out);
}

// ---- nonlinearities ---------------------------------------------------

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, a.rows(), a.cols(),
      [](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          o.val[i] = 1.0f / (1.0f + std::exp(-x.val[i]));
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          x.grad[i] += o.grad[i] * o.val[i] * (1.0f - o.val[i]);
      });
}

Tensor tanh_t(const Tensor& a) {
  return unary_op(
      a, a.rows(), a.cols(),
      [](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) o.val[i] = std::tanh(x.val[i]);
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          x.grad[i] += o.grad[i] * (1.0f - o.val[i] * o.val[i]);
      });
}

Tensor exp_t(const Tensor& a) {
  return unary_op(
      a, a.rows(), a.cols(),
      [](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) o.val[i] = std::exp(x.val[i]);
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) x.grad[i] += o.grad[i] * o.val[i];
      });
}

Tensor log_t(const Tensor& a) {
  return unary_op(
      a, a.rows(), a.cols(),
      [](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          o.val[i] = std::log(std::max(x.val[i], 1e-12f));
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i)
          x.grad[i] += o.grad[i] / std::max(x.val[i], 1e-12f);
      });
}

Tensor relu(const Tensor& a) { return leaky_relu(a, 0.0f); }

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  return unary_op(
      a, a.rows(), a.cols(),
      [negative_slope](const TensorImpl& x, TensorImpl& o) {
        kn().lrelu_fwd_n(o.val.data(), x.val.data(), negative_slope, x.size());
      },
      [negative_slope](TensorImpl& x, TensorImpl& o) {
        kn().lrelu_bwd_n(x.grad.data(), x.val.data(), o.grad.data(),
                         negative_slope, x.size());
      });
}

Tensor softmax_rows(const Tensor& a) {
  const long n = a.rows(), d = a.cols();
  return unary_op(
      a, n, d,
      [n, d](const TensorImpl& x, TensorImpl& o) {
        for (long r = 0; r < n; ++r) {
          float mx = -std::numeric_limits<float>::infinity();
          for (long c = 0; c < d; ++c) mx = std::max(mx, x.val[r * d + c]);
          float sum = 0.0f;
          for (long c = 0; c < d; ++c) {
            o.val[r * d + c] = std::exp(x.val[r * d + c] - mx);
            sum += o.val[r * d + c];
          }
          for (long c = 0; c < d; ++c) o.val[r * d + c] /= sum;
        }
      },
      [n, d](TensorImpl& x, TensorImpl& o) {
        for (long r = 0; r < n; ++r) {
          float dot = 0.0f;
          for (long c = 0; c < d; ++c) dot += o.grad[r * d + c] * o.val[r * d + c];
          for (long c = 0; c < d; ++c)
            x.grad[r * d + c] += o.val[r * d + c] * (o.grad[r * d + c] - dot);
        }
      });
}

// ---- reductions --------------------------------------------------------

Tensor sum_all(const Tensor& a) {
  return unary_op(
      a, 1, 1,
      [](const TensorImpl& x, TensorImpl& o) {
        double s = 0.0;
        for (long i = 0; i < x.size(); ++i) s += x.val[i];
        o.val[0] = static_cast<float>(s);
      },
      [](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) x.grad[i] += o.grad[0];
      });
}

Tensor mean_all(const Tensor& a) { return scale(sum_all(a), 1.0f / a.size()); }

Tensor sum_rows(const Tensor& a) {
  const long n = a.rows(), d = a.cols();
  return unary_op(
      a, 1, d,
      [n, d](const TensorImpl& x, TensorImpl& o) {
        for (long r = 0; r < n; ++r)
          for (long c = 0; c < d; ++c) o.val[c] += x.val[r * d + c];
      },
      [n, d](TensorImpl& x, TensorImpl& o) {
        for (long r = 0; r < n; ++r)
          for (long c = 0; c < d; ++c) x.grad[r * d + c] += o.grad[c];
      });
}

Tensor mean_rows(const Tensor& a) {
  return scale(sum_rows(a), 1.0f / static_cast<float>(a.rows()));
}

Tensor max_rows(const Tensor& a) {
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(1, d, a.requires_grad());
  std::vector<int> argmax(d, 0);
  for (long c = 0; c < d; ++c) {
    float best = a.data()[c];
    for (long r = 1; r < n; ++r) {
      if (a.data()[r * d + c] > best) {
        best = a.data()[r * d + c];
        argmax[c] = static_cast<int>(r);
      }
    }
    out->val[c] = best;
  }
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, argmax, d]() {
      ai->ensure_grad();
      for (long c = 0; c < d; ++c) ai->grad[argmax[c] * d + c] += o->grad[c];
    };
  }
  return Tensor(out);
}

// ---- shape ops ---------------------------------------------------------

Tensor concat_cols(const std::vector<Tensor>& xs) {
  if (xs.empty()) throw std::invalid_argument("concat_cols: empty input");
  const long n = xs[0].rows();
  long total = 0;
  bool rg = false;
  for (const auto& x : xs) {
    if (x.rows() != n) shape_error("concat_cols", xs[0], x);
    total += x.cols();
    rg = rg || x.requires_grad();
  }
  auto out = make_impl(n, total, rg);
  long off = 0;
  for (const auto& x : xs) {
    const long d = x.cols();
    for (long r = 0; r < n; ++r)
      std::copy_n(x.data().begin() + r * d, d, out->val.begin() + r * total + off);
    off += d;
  }
  if (rg) {
    for (const auto& x : xs) out->inputs.push_back(x.impl());
    TensorImpl* o = out.get();
    auto inputs = out->inputs;
    out->backward = [o, inputs, n, total]() {
      long off2 = 0;
      for (const auto& xi : inputs) {
        const long d = xi->cols;
        if (xi->requires_grad) {
          xi->ensure_grad();
          for (long r = 0; r < n; ++r)
            for (long c = 0; c < d; ++c)
              xi->grad[r * d + c] += o->grad[r * total + off2 + c];
        }
        off2 += d;
      }
    };
  }
  return Tensor(out);
}

Tensor concat_rows(const std::vector<Tensor>& xs) {
  if (xs.empty()) throw std::invalid_argument("concat_rows: empty input");
  const long d = xs[0].cols();
  long total = 0;
  bool rg = false;
  for (const auto& x : xs) {
    if (x.cols() != d) shape_error("concat_rows", xs[0], x);
    total += x.rows();
    rg = rg || x.requires_grad();
  }
  auto out = make_impl(total, d, rg);
  long off = 0;
  for (const auto& x : xs) {
    std::copy(x.data().begin(), x.data().end(), out->val.begin() + off * d);
    off += x.rows();
  }
  if (rg) {
    for (const auto& x : xs) out->inputs.push_back(x.impl());
    TensorImpl* o = out.get();
    auto inputs = out->inputs;
    out->backward = [o, inputs, d]() {
      long off2 = 0;
      for (const auto& xi : inputs) {
        if (xi->requires_grad) {
          xi->ensure_grad();
          for (long i = 0; i < xi->size(); ++i) xi->grad[i] += o->grad[off2 * d + i];
        }
        off2 += xi->rows;
      }
    };
  }
  return Tensor(out);
}

Tensor slice_rows(const Tensor& a, long begin, long end) {
  if (begin < 0 || end > a.rows() || begin > end)
    throw std::out_of_range("slice_rows: bad range");
  const long d = a.cols(), n = end - begin;
  auto out = make_impl(n, d, a.requires_grad());
  std::copy_n(a.data().begin() + begin * d, n * d, out->val.begin());
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, begin, d]() {
      ai->ensure_grad();
      for (long i = 0; i < o->size(); ++i) ai->grad[begin * d + i] += o->grad[i];
    };
  }
  return Tensor(out);
}

Tensor slice_cols(const Tensor& a, long begin, long end) {
  if (begin < 0 || end > a.cols() || begin > end)
    throw std::out_of_range("slice_cols: bad range");
  const long n = a.rows(), d = a.cols(), w = end - begin;
  auto out = make_impl(n, w, a.requires_grad());
  for (long r = 0; r < n; ++r)
    std::copy_n(a.data().begin() + r * d + begin, w, out->val.begin() + r * w);
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, begin, d, w, n]() {
      ai->ensure_grad();
      for (long r = 0; r < n; ++r)
        for (long c = 0; c < w; ++c)
          ai->grad[r * d + begin + c] += o->grad[r * w + c];
    };
  }
  return Tensor(out);
}

// ---- gather / scatter ---------------------------------------------------

Tensor index_rows(const Tensor& a, const std::vector<int>& idx) {
  const long d = a.cols(), n = static_cast<long>(idx.size());
  auto out = make_impl(n, d, a.requires_grad());
  for (long i = 0; i < n; ++i)
    std::copy_n(a.data().begin() + static_cast<long>(idx[i]) * d, d,
                out->val.begin() + i * d);
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, idx, d, n]() {
      ai->ensure_grad();
      for (long i = 0; i < n; ++i)
        for (long c = 0; c < d; ++c)
          ai->grad[static_cast<long>(idx[i]) * d + c] += o->grad[i * d + c];
    };
  }
  return Tensor(out);
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<int>& idx, long out_rows) {
  if (static_cast<long>(idx.size()) != a.rows())
    throw std::invalid_argument("scatter_add_rows: index count != rows");
  const long d = a.cols(), n = a.rows();
  auto out = make_impl(out_rows, d, a.requires_grad());
  for (long i = 0; i < n; ++i)
    for (long c = 0; c < d; ++c)
      out->val[static_cast<long>(idx[i]) * d + c] += a.data()[i * d + c];
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, idx, d, n]() {
      ai->ensure_grad();
      for (long i = 0; i < n; ++i)
        for (long c = 0; c < d; ++c)
          ai->grad[i * d + c] += o->grad[static_cast<long>(idx[i]) * d + c];
    };
  }
  return Tensor(out);
}

Tensor segment_softmax(const Tensor& scores, const std::vector<int>& seg, long nseg) {
  if (scores.cols() != 1 || static_cast<long>(seg.size()) != scores.rows())
    throw std::invalid_argument("segment_softmax: scores must be (E,1) with E segment ids");
  const long e = scores.rows();
  auto out = make_impl(e, 1, scores.requires_grad());
  std::vector<float> seg_max(nseg, -std::numeric_limits<float>::infinity());
  std::vector<double> seg_sum(nseg, 0.0);
  for (long i = 0; i < e; ++i)
    seg_max[seg[i]] = std::max(seg_max[seg[i]], scores.data()[i]);
  for (long i = 0; i < e; ++i) {
    out->val[i] = std::exp(scores.data()[i] - seg_max[seg[i]]);
    seg_sum[seg[i]] += out->val[i];
  }
  for (long i = 0; i < e; ++i)
    out->val[i] = static_cast<float>(out->val[i] / seg_sum[seg[i]]);
  if (out->requires_grad) {
    out->inputs = {scores.impl()};
    TensorImpl* o = out.get();
    auto si = scores.impl();
    out->backward = [o, si, seg, nseg, e]() {
      si->ensure_grad();
      std::vector<double> dot(nseg, 0.0);  // sum_j y_j g_j per segment
      for (long i = 0; i < e; ++i) dot[seg[i]] += double(o->val[i]) * o->grad[i];
      for (long i = 0; i < e; ++i)
        si->grad[i] += o->val[i] * (o->grad[i] - static_cast<float>(dot[seg[i]]));
    };
  }
  return Tensor(out);
}

Tensor segment_max(const Tensor& a, const std::vector<int>& seg, long nseg) {
  if (static_cast<long>(seg.size()) != a.rows())
    throw std::invalid_argument("segment_max: segment count != rows");
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(nseg, d, a.requires_grad());
  // argmax[s*d+c] is the winning input row for (segment s, column c), or -1
  // for a segment with no rows (whose output stays zero).
  std::vector<int> argmax(static_cast<std::size_t>(nseg * d), -1);
  kn().segment_max_fwd(a.data().data(), seg.data(), n, d, nseg, out->val.data(),
                       argmax.data());
  if (out->requires_grad) {
    out->inputs = {a.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl();
    out->backward = [o, ai, argmax = std::move(argmax), nseg, d]() {
      ai->ensure_grad();
      for (long j = 0; j < nseg * d; ++j) {
        const long i = argmax[j];
        if (i >= 0) ai->grad[i * d + (j % d)] += o->grad[j];
      }
    };
  }
  return Tensor(out);
}

Tensor segment_rowwise_dot(const Tensor& a, const Tensor& b,
                           const std::vector<int>& seg) {
  if (static_cast<long>(seg.size()) != a.rows())
    throw std::invalid_argument("segment_rowwise_dot: segment count != rows");
  if (a.cols() != b.cols()) shape_error("segment_rowwise_dot", a, b);
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(n, 1, a.requires_grad() || b.requires_grad());
  kn().segment_rowwise_dot_fwd(a.data().data(), b.data().data(), seg.data(), n,
                               d, out->val.data());
  if (out->requires_grad) {
    out->inputs = {a.impl(), b.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), bi = b.impl();
    out->backward = [o, ai, bi, seg, n, d]() {
      if (ai->requires_grad) {
        ai->ensure_grad();
        for (long i = 0; i < n; ++i)
          kn().axpy_n(ai->grad.data() + i * d,
                      bi->val.data() + static_cast<long>(seg[i]) * d,
                      o->grad[i], d);
      }
      if (bi->requires_grad) {
        bi->ensure_grad();
        for (long i = 0; i < n; ++i)
          kn().axpy_n(bi->grad.data() + static_cast<long>(seg[i]) * d,
                      ai->val.data() + i * d, o->grad[i], d);
      }
    };
  }
  return Tensor(out);
}

Tensor segment_weighted_sum(const Tensor& a, const Tensor& w,
                            const std::vector<int>& seg, long nseg) {
  if (static_cast<long>(seg.size()) != a.rows())
    throw std::invalid_argument("segment_weighted_sum: segment count != rows");
  if (w.cols() != 1 || w.rows() != a.rows()) shape_error("segment_weighted_sum", a, w);
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(nseg, d, a.requires_grad() || w.requires_grad());
  kn().segment_weighted_sum_fwd(a.data().data(), w.data().data(), seg.data(), n,
                                d, out->val.data());
  if (out->requires_grad) {
    out->inputs = {a.impl(), w.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), wi = w.impl();
    out->backward = [o, ai, wi, seg, n, d]() {
      if (ai->requires_grad) {
        ai->ensure_grad();
        for (long i = 0; i < n; ++i)
          kn().axpy_n(ai->grad.data() + i * d,
                      o->grad.data() + static_cast<long>(seg[i]) * d,
                      wi->val[i], d);
      }
      if (wi->requires_grad) {
        wi->ensure_grad();
        for (long i = 0; i < n; ++i) {
          const float* arow = ai->val.data() + i * d;
          const float* grow = o->grad.data() + static_cast<long>(seg[i]) * d;
          float acc = 0.0f;
          for (long c = 0; c < d; ++c) acc += arow[c] * grow[c];
          wi->grad[i] += acc;
        }
      }
    };
  }
  return Tensor(out);
}

Tensor scale_rows(const Tensor& a, const Tensor& s) {
  if (s.cols() != 1 || s.rows() != a.rows()) shape_error("scale_rows", a, s);
  const long n = a.rows(), d = a.cols();
  auto out = make_impl(n, d, a.requires_grad() || s.requires_grad());
  for (long r = 0; r < n; ++r)
    kn().scale_n(out->val.data() + r * d, a.data().data() + r * d, s.data()[r], d);
  if (out->requires_grad) {
    out->inputs = {a.impl(), s.impl()};
    TensorImpl* o = out.get();
    auto ai = a.impl(), si = s.impl();
    out->backward = [o, ai, si, n, d]() {
      if (ai->requires_grad) {
        ai->ensure_grad();
        for (long r = 0; r < n; ++r)
          kn().axpy_n(ai->grad.data() + r * d, o->grad.data() + r * d,
                      si->val[r], d);
      }
      if (si->requires_grad) {
        si->ensure_grad();
        for (long r = 0; r < n; ++r) {
          float acc = 0.0f;
          for (long c = 0; c < d; ++c) acc += o->grad[r * d + c] * ai->val[r * d + c];
          si->grad[r] += acc;
        }
      }
    };
  }
  return Tensor(out);
}

// ---- embedding ----------------------------------------------------------

Tensor embedding_bag_max(const Tensor& table, const std::vector<int>& ids, long n,
                         long bag_len, int pad_id) {
  if (static_cast<long>(ids.size()) != n * bag_len)
    throw std::invalid_argument("embedding_bag_max: ids size mismatch");
  const long d = table.cols();
  auto out = make_impl(n, d, table.requires_grad());
  // argmax[i*d+c] records which table row won the max for (bag i, dim c),
  // or -1 if the bag was entirely padding.
  std::vector<int> argmax(static_cast<std::size_t>(n * d), -1);
  for (long i = 0; i < n; ++i) {
    bool any = false;
    for (long l = 0; l < bag_len; ++l) {
      const int id = ids[i * bag_len + l];
      if (id == pad_id) continue;
      const float* row = table.data().data() + static_cast<long>(id) * d;
      if (!any) {
        for (long c = 0; c < d; ++c) {
          out->val[i * d + c] = row[c];
          argmax[i * d + c] = id;
        }
        any = true;
      } else {
        for (long c = 0; c < d; ++c) {
          if (row[c] > out->val[i * d + c]) {
            out->val[i * d + c] = row[c];
            argmax[i * d + c] = id;
          }
        }
      }
    }
  }
  if (out->requires_grad) {
    out->inputs = {table.impl()};
    TensorImpl* o = out.get();
    auto ti = table.impl();
    out->backward = [o, ti, argmax, n, d]() {
      ti->ensure_grad();
      for (long i = 0; i < n * d; ++i) {
        const int id = argmax[i];
        if (id >= 0) ti->grad[static_cast<long>(id) * d + (i % d)] += o->grad[i];
      }
    };
  }
  return Tensor(out);
}

// ---- regularisation -----------------------------------------------------

Tensor dropout(const Tensor& a, float p, bool training, RNG& rng) {
  if (!training || p <= 0.0f) return a;
  const float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(a.size());
  for (auto& m : *mask) m = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  return unary_op(
      a, a.rows(), a.cols(),
      [mask](const TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) o.val[i] = x.val[i] * (*mask)[i];
      },
      [mask](TensorImpl& x, TensorImpl& o) {
        for (long i = 0; i < x.size(); ++i) x.grad[i] += o.grad[i] * (*mask)[i];
      });
}

Tensor layer_norm_rows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       float eps) {
  const long n = x.rows(), d = x.cols();
  if (gamma.rows() != 1 || gamma.cols() != d) shape_error("layer_norm gamma", x, gamma);
  if (beta.rows() != 1 || beta.cols() != d) shape_error("layer_norm beta", x, beta);
  auto out = make_impl(n, d,
                       x.requires_grad() || gamma.requires_grad() || beta.requires_grad());
  auto xhat = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n * d));
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n));
  for (long r = 0; r < n; ++r) {
    double mean = 0.0;
    for (long c = 0; c < d; ++c) mean += x.data()[r * d + c];
    mean /= d;
    double var = 0.0;
    for (long c = 0; c < d; ++c) {
      const double diff = x.data()[r * d + c] - mean;
      var += diff * diff;
    }
    var /= d;
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_std)[r] = is;
    for (long c = 0; c < d; ++c) {
      (*xhat)[r * d + c] = (x.data()[r * d + c] - static_cast<float>(mean)) * is;
      out->val[r * d + c] = (*xhat)[r * d + c] * gamma.data()[c] + beta.data()[c];
    }
  }
  if (out->requires_grad) {
    out->inputs = {x.impl(), gamma.impl(), beta.impl()};
    TensorImpl* o = out.get();
    auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
    out->backward = [o, xi, gi, bi, xhat, inv_std, n, d]() {
      if (bi->requires_grad) {
        bi->ensure_grad();
        for (long r = 0; r < n; ++r)
          for (long c = 0; c < d; ++c) bi->grad[c] += o->grad[r * d + c];
      }
      if (gi->requires_grad) {
        gi->ensure_grad();
        for (long r = 0; r < n; ++r)
          for (long c = 0; c < d; ++c)
            gi->grad[c] += o->grad[r * d + c] * (*xhat)[r * d + c];
      }
      if (xi->requires_grad) {
        xi->ensure_grad();
        for (long r = 0; r < n; ++r) {
          // dxhat = dy * gamma; dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * inv_std
          double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
          for (long c = 0; c < d; ++c) {
            const double dxh = double(o->grad[r * d + c]) * gi->val[c];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * (*xhat)[r * d + c];
          }
          mean_dxhat /= d;
          mean_dxhat_xhat /= d;
          for (long c = 0; c < d; ++c) {
            const double dxh = double(o->grad[r * d + c]) * gi->val[c];
            xi->grad[r * d + c] += static_cast<float>(
                (dxh - mean_dxhat - (*xhat)[r * d + c] * mean_dxhat_xhat) *
                (*inv_std)[r]);
          }
        }
      }
    };
  }
  return Tensor(out);
}

// ---- losses --------------------------------------------------------------

Tensor bce_with_logits(const Tensor& logits, const std::vector<float>& targets) {
  if (logits.cols() != 1 || static_cast<long>(targets.size()) != logits.rows())
    throw std::invalid_argument("bce_with_logits: logits must be (n,1) with n targets");
  const long n = logits.rows();
  auto out = make_impl(1, 1, logits.requires_grad());
  double loss = 0.0;
  for (long i = 0; i < n; ++i) {
    const double x = logits.data()[i];
    const double y = targets[i];
    // max(x,0) - x*y + log(1 + exp(-|x|)) — stable for large |x|.
    loss += std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::fabs(x)));
  }
  out->val[0] = static_cast<float>(loss / n);
  if (out->requires_grad) {
    out->inputs = {logits.impl()};
    TensorImpl* o = out.get();
    auto li = logits.impl();
    out->backward = [o, li, targets, n]() {
      li->ensure_grad();
      for (long i = 0; i < n; ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-li->val[i]));
        li->grad[i] += o->grad[0] * (sig - targets[i]) / n;
      }
    };
  }
  return Tensor(out);
}

Tensor mse_loss(const Tensor& pred, const std::vector<float>& targets) {
  if (static_cast<long>(targets.size()) != pred.size())
    throw std::invalid_argument("mse_loss: target size mismatch");
  const long n = pred.size();
  auto out = make_impl(1, 1, pred.requires_grad());
  double loss = 0.0;
  for (long i = 0; i < n; ++i) {
    const double diff = pred.data()[i] - targets[i];
    loss += diff * diff;
  }
  out->val[0] = static_cast<float>(loss / n);
  if (out->requires_grad) {
    out->inputs = {pred.impl()};
    TensorImpl* o = out.get();
    auto pi = pred.impl();
    out->backward = [o, pi, targets, n]() {
      pi->ensure_grad();
      for (long i = 0; i < n; ++i)
        pi->grad[i] += o->grad[0] * 2.0f * (pi->val[i] - targets[i]) / n;
    };
  }
  return Tensor(out);
}

}  // namespace gbm::tensor
