// AVX2/FMA kernels for the tensor hot paths.
//
// This TU is compiled with -mavx2 -mfma -ffp-contract=off on x86-64 builds
// (see the root CMakeLists) and compiled to a nullptr factory everywhere
// else. Two accuracy classes, per the contract in kernels.h:
//
//   * bit-exact ops (elementwise, segment): every lane performs the exact
//     mul-then-add sequence the scalar loop performs for that element —
//     explicit _mm256_add_ps(_mm256_mul_ps(...)) pairs, never FMA — and
//     the segment dot kernel assigns one row per lane (strided gathers)
//     so each row's accumulation runs in the scalar order;
//   * tolerance ops (matmul, centered_dot_batch): register-blocked FMA
//     micro-kernels. The matmul forward packs B into zero-padded 16-column
//     panels and runs a 4x16 accumulator tile; every row's FMA sequence
//     depends only on the shape (never on the thread split or on which
//     rows share a tile), so results are bit-stable per tier at any
//     MatmulParallelGuard worker count.

#include "tensor/kernels/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <climits>
#include <cmath>
#include <vector>

namespace gbm::tensor::kernels {
namespace {

// ---- elementwise (bit-exact: mul and add kept separate) -------------------

void add_n(float* out, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void mul_n(float* out, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void adds_n(float* out, const float* a, float s, long n) {
  const __m256 sv = _mm256_set1_ps(s);
  long i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), sv));
  for (; i < n; ++i) out[i] = a[i] + s;
}

void scale_n(float* out, const float* a, float s, long n) {
  const __m256 sv = _mm256_set1_ps(s);
  long i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  for (; i < n; ++i) out[i] = a[i] * s;
}

void acc_n(float* dst, const float* src, long n) {
  long i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

void axpy_n(float* dst, const float* src, float s, long n) {
  const __m256 sv = _mm256_set1_ps(s);
  long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(src + i), sv);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += src[i] * s;
}

void fma_acc_n(float* dst, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void lrelu_fwd_n(float* out, const float* x, float slope, long n) {
  const __m256 sv = _mm256_set1_ps(slope);
  const __m256 zero = _mm256_setzero_ps();
  long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 neg = _mm256_mul_ps(xv, sv);
    const __m256 pos = _mm256_cmp_ps(xv, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(out + i, _mm256_blendv_ps(neg, xv, pos));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void lrelu_bwd_n(float* dst, const float* x, const float* g, float slope, long n) {
  const __m256 sv = _mm256_set1_ps(slope);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  long i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 factor = _mm256_blendv_ps(sv, one, _mm256_cmp_ps(xv, zero, _CMP_GT_OQ));
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(g + i), factor);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
}

// ---- segment ops (bit-exact) ----------------------------------------------

void segment_max_fwd(const float* a, const int* seg, long n, long d, long nseg,
                     float* out, int* argmax) {
  for (long j = 0; j < nseg * d; ++j) argmax[j] = -1;
  const __m256i minus1 = _mm256_set1_epi32(-1);
  for (long i = 0; i < n; ++i) {
    const long s = seg[i];
    const float* ar = a + i * d;
    float* orow = out + s * d;
    int* arow = argmax + s * d;
    const __m256i iv = _mm256_set1_epi32(static_cast<int>(i));
    long c = 0;
    for (; c + 8 <= d; c += 8) {
      const __m256 cur = _mm256_loadu_ps(orow + c);
      const __m256 v = _mm256_loadu_ps(ar + c);
      const __m256i am = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + c));
      // argmax < 0 || v > out — the scalar first-win / strict-greater rule.
      const __m256 take = _mm256_or_ps(
          _mm256_cmp_ps(v, cur, _CMP_GT_OQ),
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(am, minus1)));
      _mm256_storeu_ps(orow + c, _mm256_blendv_ps(cur, v, take));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(arow + c),
                          _mm256_blendv_epi8(am, iv, _mm256_castps_si256(take)));
    }
    for (; c < d; ++c) {
      const float v = ar[c];
      if (arow[c] < 0 || v > orow[c]) {
        orow[c] = v;
        arow[c] = static_cast<int>(i);
      }
    }
  }
}

void segment_rowwise_dot_fwd(const float* a, const float* b, const int* seg,
                             long n, long d, float* out) {
  long i = 0;
  // One row per lane: lane r walks row i+r column by column with the exact
  // scalar mul-then-add sequence, via strided gathers. Offsets are int32;
  // fall back to scalar if the matrices are (absurdly) past 2^31 floats.
  if (n * d <= static_cast<long>(INT_MAX) && d <= static_cast<long>(INT_MAX)) {
    for (; i + 8 <= n; i += 8) {
      alignas(32) int aoff[8], boff[8];
      for (int r = 0; r < 8; ++r) {
        aoff[r] = static_cast<int>((i + r) * d);
        boff[r] = static_cast<int>(static_cast<long>(seg[i + r]) * d);
      }
      const __m256i av = _mm256_load_si256(reinterpret_cast<const __m256i*>(aoff));
      const __m256i bv = _mm256_load_si256(reinterpret_cast<const __m256i*>(boff));
      __m256 acc = _mm256_setzero_ps();
      for (long c = 0; c < d; ++c) {
        const __m256 va = _mm256_i32gather_ps(a + c, av, 4);
        const __m256 vb = _mm256_i32gather_ps(b + c, bv, 4);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
      }
      _mm256_storeu_ps(out + i, acc);
    }
  }
  for (; i < n; ++i) {
    const float* ai = a + i * d;
    const float* bi = b + static_cast<long>(seg[i]) * d;
    float acc = 0.0f;
    for (long c = 0; c < d; ++c) acc += ai[c] * bi[c];
    out[i] = acc;
  }
}

void segment_weighted_sum_fwd(const float* a, const float* w, const int* seg,
                              long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    const float wi = w[i];
    const float* ai = a + i * d;
    float* orow = out + static_cast<long>(seg[i]) * d;
    const __m256 wv = _mm256_set1_ps(wi);
    long c = 0;
    for (; c + 8 <= d; c += 8) {
      const __m256 prod = _mm256_mul_ps(wv, _mm256_loadu_ps(ai + c));
      _mm256_storeu_ps(orow + c, _mm256_add_ps(_mm256_loadu_ps(orow + c), prod));
    }
    for (; c < d; ++c) orow[c] += wi * ai[c];
  }
}

// ---- matmul (tolerance class) ---------------------------------------------

float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// Packs B (k x m) into ceil(m/16) panels of 16 columns, zero-padded, so the
// micro-kernel streams contiguous 16-wide slices per k step.
void pack_b16(const float* B, long k, long m, std::vector<float>& pack) {
  const long panels = (m + 15) / 16;
  pack.assign(static_cast<std::size_t>(panels * k * 16), 0.0f);
  for (long p = 0; p < panels; ++p) {
    const long j0 = p * 16;
    const long w = m - j0 < 16 ? m - j0 : 16;
    float* dst = pack.data() + p * k * 16;
    for (long kk = 0; kk < k; ++kk) {
      const float* src = B + kk * m + j0;
      for (long j = 0; j < w; ++j) dst[kk * 16 + j] = src[j];
    }
  }
}

// One output row against one 16-column panel; identical FMA sequence to a
// lane of the 4-row tile, so row results never depend on tile grouping.
void mm_row_panel(const float* Ai, const float* panel, long k, float* Ci, long w) {
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  for (long kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(panel + kk * 16);
    const __m256 b1 = _mm256_loadu_ps(panel + kk * 16 + 8);
    const __m256 av = _mm256_set1_ps(Ai[kk]);
    c0 = _mm256_fmadd_ps(av, b0, c0);
    c1 = _mm256_fmadd_ps(av, b1, c1);
  }
  alignas(32) float tmp[16];
  _mm256_store_ps(tmp, c0);
  _mm256_store_ps(tmp + 8, c1);
  for (long j = 0; j < w; ++j) Ci[j] += tmp[j];
}

void mm_rows_packed(const float* A, const float* pack, float* C, long k, long m,
                    long i0, long i1) {
  const long panels = (m + 15) / 16;
  long i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* A0 = A + (i + 0) * k;
    const float* A1 = A + (i + 1) * k;
    const float* A2 = A + (i + 2) * k;
    const float* A3 = A + (i + 3) * k;
    for (long p = 0; p < panels; ++p) {
      const float* panel = pack + p * k * 16;
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      for (long kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(panel + kk * 16);
        const __m256 b1 = _mm256_loadu_ps(panel + kk * 16 + 8);
        __m256 av = _mm256_set1_ps(A0[kk]);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_set1_ps(A1[kk]);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_set1_ps(A2[kk]);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_set1_ps(A3[kk]);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
      }
      const long j0 = p * 16;
      const long w = m - j0 < 16 ? m - j0 : 16;
      alignas(32) float tmp[16];
      const __m256 accs[4][2] = {{c00, c01}, {c10, c11}, {c20, c21}, {c30, c31}};
      for (int r = 0; r < 4; ++r) {
        _mm256_store_ps(tmp, accs[r][0]);
        _mm256_store_ps(tmp + 8, accs[r][1]);
        float* Cr = C + (i + r) * m + j0;
        for (long j = 0; j < w; ++j) Cr[j] += tmp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    for (long p = 0; p < panels; ++p) {
      const long j0 = p * 16;
      const long w = m - j0 < 16 ? m - j0 : 16;
      mm_row_panel(A + i * k, pack + p * k * 16, k, C + i * m + j0, w);
    }
  }
}

// Unpacked i-k-j with a broadcast FMA over C's row; used when the output is
// too narrow or short for packing to pay for itself.
void mm_rows_simple(const float* A, const float* B, float* C, long k, long m,
                    long i0, long i1) {
  for (long i = i0; i < i1; ++i) {
    float* Ci = C + i * m;
    for (long kk = 0; kk < k; ++kk) {
      const float aik = A[i * k + kk];
      if (aik == 0.0f) continue;
      const float* Bk = B + kk * m;
      const __m256 av = _mm256_set1_ps(aik);
      long j = 0;
      for (; j + 8 <= m; j += 8)
        _mm256_storeu_ps(Ci + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(Bk + j),
                                                 _mm256_loadu_ps(Ci + j)));
      for (; j < m; ++j) Ci[j] += aik * Bk[j];
    }
  }
}

void matmul_fwd(const float* A, const float* B, float* C, long n, long k,
                long m, int mt) {
  // Path choice depends only on the shape — never on mt — so a fixed shape
  // computes every row identically at any worker count.
  const bool packed = n >= 4 && m >= 16;
  std::vector<float> pack;
  if (packed) pack_b16(B, k, m, pack);
  const float* pk = pack.data();
  const auto rows = [&, pk](long i0, long i1) {
    if (packed)
      mm_rows_packed(A, pk, C, k, m, i0, i1);
    else
      mm_rows_simple(A, B, C, k, m, i0, i1);
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

// dA += G * B^T: both G's row i and B's row kk are contiguous along j, so
// this is a row-vs-row dot kernel — 4 B rows per pass, 8-wide FMA, one
// horizontal sum per output element plus a scalar tail.
void matmul_bwd_a(const float* G, const float* B, float* dA, long n, long k,
                  long m, int mt) {
  const auto rows = [G, B, dA, k, m](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const float* Gi = G + i * m;
      float* dAi = dA + i * k;
      long kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
        long j = 0;
        for (; j + 8 <= m; j += 8) {
          const __m256 g = _mm256_loadu_ps(Gi + j);
          a0 = _mm256_fmadd_ps(g, _mm256_loadu_ps(B + (kk + 0) * m + j), a0);
          a1 = _mm256_fmadd_ps(g, _mm256_loadu_ps(B + (kk + 1) * m + j), a1);
          a2 = _mm256_fmadd_ps(g, _mm256_loadu_ps(B + (kk + 2) * m + j), a2);
          a3 = _mm256_fmadd_ps(g, _mm256_loadu_ps(B + (kk + 3) * m + j), a3);
        }
        float t0 = hsum8(a0), t1 = hsum8(a1), t2 = hsum8(a2), t3 = hsum8(a3);
        for (; j < m; ++j) {
          const float g = Gi[j];
          t0 += g * B[(kk + 0) * m + j];
          t1 += g * B[(kk + 1) * m + j];
          t2 += g * B[(kk + 2) * m + j];
          t3 += g * B[(kk + 3) * m + j];
        }
        dAi[kk + 0] += t0;
        dAi[kk + 1] += t1;
        dAi[kk + 2] += t2;
        dAi[kk + 3] += t3;
      }
      for (; kk < k; ++kk) {
        __m256 acc = _mm256_setzero_ps();
        long j = 0;
        for (; j + 8 <= m; j += 8)
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(Gi + j),
                                _mm256_loadu_ps(B + kk * m + j), acc);
        float t = hsum8(acc);
        for (; j < m; ++j) t += Gi[j] * B[kk * m + j];
        dAi[kk] += t;
      }
    }
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

// dB += A^T * G: for each dB row kk, an FMA axpy of G's rows weighted by
// A[i][kk] — contiguous along m.
void matmul_bwd_b(const float* A, const float* G, float* dB, long n, long k,
                  long m, int mt) {
  const auto rows = [A, G, dB, n, k, m](long k0, long k1) {
    for (long kk = k0; kk < k1; ++kk) {
      float* dBk = dB + kk * m;
      for (long i = 0; i < n; ++i) {
        const float aik = A[i * k + kk];
        if (aik == 0.0f) continue;
        const float* Gi = G + i * m;
        const __m256 av = _mm256_set1_ps(aik);
        long j = 0;
        for (; j + 8 <= m; j += 8)
          _mm256_storeu_ps(dBk + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(Gi + j),
                                                    _mm256_loadu_ps(dBk + j)));
        for (; j < m; ++j) dBk[j] += aik * Gi[j];
      }
    }
  };
  if (parallel_worthwhile(n * k * m, k, mt))
    parallel_blocks(k, mt, rows);
  else
    rows(0, k);
}

// ---- retrieval prefilter (tolerance class, double accumulation) -----------

double hsum4d(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

void centered_dot_batch(const float* rows, const double* norms, const float* q,
                        double q_norm, long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    if (norms[i] <= 0.0 || q_norm <= 0.0) {
      out[i] = 0.0f;
      continue;
    }
    const float* r = rows + i * d;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    long c = 0;
    for (; c + 8 <= d; c += 8) {
      const __m256 rv = _mm256_loadu_ps(r + c);
      const __m256 qv = _mm256_loadu_ps(q + c);
      acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(qv)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(rv)), acc0);
      acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(qv, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(rv, 1)), acc1);
    }
    double dot = hsum4d(_mm256_add_pd(acc0, acc1));
    for (; c < d; ++c) dot += static_cast<double>(q[c]) * r[c];
    out[i] = static_cast<float>(dot / (q_norm * norms[i]));
  }
}

const Kernels kAvx2Kernels = {
    "avx2",
    add_n,
    mul_n,
    adds_n,
    scale_n,
    acc_n,
    axpy_n,
    fma_acc_n,
    lrelu_fwd_n,
    lrelu_bwd_n,
    segment_max_fwd,
    segment_rowwise_dot_fwd,
    segment_weighted_sum_fwd,
    matmul_fwd,
    matmul_bwd_a,
    matmul_bwd_b,
    centered_dot_batch,
};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace gbm::tensor::kernels

#else  // !(__AVX2__ && __FMA__)

namespace gbm::tensor::kernels {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace gbm::tensor::kernels

#endif
