// Kernel tier selection: CPUID-style runtime detection + GBM_KERNEL
// override, resolved exactly once (thread-safe function-local static) so
// every tensor op dispatches through one stable table for the process
// lifetime — a fixed kernel choice gives bit-stable results.

#include "tensor/kernels/kernels.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/parallel.h"

namespace gbm::tensor::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#endif

struct Selection {
  const Kernels* table;
  Tier tier;
};

Selection best_available() {
#if defined(__x86_64__) || defined(__i386__)
  if (cpu_has_avx2_fma()) {
    if (const Kernels* k = avx2_kernels()) return {k, Tier::kAvx2};
  }
#elif defined(__aarch64__)
  if (const Kernels* k = neon_kernels()) return {k, Tier::kNeon};
#endif
  return {scalar_kernels(), Tier::kScalar};
}

Selection select() {
  const char* env = std::getenv("GBM_KERNEL");
  const std::string want = env ? env : "auto";
  if (want != "auto" && !want.empty()) {
    if (const auto tier = parse_tier(want)) {
      if (const Kernels* k = for_tier(*tier)) return {k, *tier};
      std::fprintf(stderr,
                   "[gbm] GBM_KERNEL=%s requested but that tier is unavailable "
                   "on this host; falling back to auto\n",
                   want.c_str());
    } else {
      std::fprintf(stderr,
                   "[gbm] unknown GBM_KERNEL=%s (expected scalar|avx2|neon|auto); "
                   "falling back to auto\n",
                   want.c_str());
    }
  }
  return best_available();
}

const Selection& selection() {
  static const Selection chosen = select();
  return chosen;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
  }
  return "?";
}

std::optional<Tier> parse_tier(const std::string& s) {
  if (s == "scalar") return Tier::kScalar;
  if (s == "avx2") return Tier::kAvx2;
  if (s == "neon") return Tier::kNeon;
  return std::nullopt;
}

const Kernels* for_tier(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return scalar_kernels();
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (cpu_has_avx2_fma()) return avx2_kernels();
#endif
      return nullptr;
    case Tier::kNeon:
      return neon_kernels();
  }
  return nullptr;
}

bool available(Tier t) { return for_tier(t) != nullptr; }

const Kernels& active() { return *selection().table; }

Tier active_tier() { return selection().tier; }

// ---- shared row-split helpers ---------------------------------------------

namespace {

// Below this many multiply-adds the parallel_for fan-out costs more than
// the split saves: parallel_for spins up (and joins) a fresh ThreadPool per
// call, so the break-even point is set by thread creation — on the order of
// a hundred microseconds — not by wake-up latency. 2^22 multiply-adds is a
// few milliseconds of serial work in a Release build.
constexpr long kParallelMinWork = 1L << 22;

}  // namespace

bool parallel_worthwhile(long work, long range, int mt) {
  return mt > 1 && range > 1 && work >= kParallelMinWork;
}

void parallel_blocks(long range, int mt, const std::function<void(long, long)>& fn) {
  const long tasks = std::min<long>(range, static_cast<long>(mt) * 4);
  const long block = (range + tasks - 1) / tasks;
  core::parallel_for(
      static_cast<std::size_t>(tasks),
      [&](std::size_t t) {
        const long begin = static_cast<long>(t) * block;
        const long end = std::min(range, begin + block);
        if (begin < end) fn(begin, end);
      },
      mt);
}

}  // namespace gbm::tensor::kernels
