// AArch64 NEON kernels for the tensor hot paths. NEON is baseline on
// AArch64, so this TU needs no extra flags; on every other architecture it
// compiles to a nullptr factory. Same two accuracy classes as avx2.cpp:
// bit-exact ops keep mul and add separate (vmulq + vaddq, never vfmaq) and
// the segment dot kernel gives each lane one whole row; matmul and the
// prefilter use fused vfmaq and are tolerance class. Kept deliberately
// simple (4-wide, no packing): correctness and the contract first, peak
// NEON throughput when an AArch64 CI leg can measure it.

#include "tensor/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace gbm::tensor::kernels {
namespace {

// ---- elementwise (bit-exact: mul and add kept separate) -------------------

void add_n(float* out, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void mul_n(float* out, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void adds_n(float* out, const float* a, float s, long n) {
  const float32x4_t sv = vdupq_n_f32(s);
  long i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), sv));
  for (; i < n; ++i) out[i] = a[i] + s;
}

void scale_n(float* out, const float* a, float s, long n) {
  const float32x4_t sv = vdupq_n_f32(s);
  long i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), sv));
  for (; i < n; ++i) out[i] = a[i] * s;
}

void acc_n(float* dst, const float* src, long n) {
  long i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

void axpy_n(float* dst, const float* src, float s, long n) {
  const float32x4_t sv = vdupq_n_f32(s);
  long i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(vld1q_f32(src + i), sv);
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += src[i] * s;
}

void fma_acc_n(float* dst, const float* a, const float* b, long n) {
  long i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void lrelu_fwd_n(float* out, const float* x, float slope, long n) {
  const float32x4_t sv = vdupq_n_f32(slope);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  long i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t neg = vmulq_f32(xv, sv);
    const uint32x4_t pos = vcgtq_f32(xv, zero);
    vst1q_f32(out + i, vbslq_f32(pos, xv, neg));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void lrelu_bwd_n(float* dst, const float* x, const float* g, float slope, long n) {
  const float32x4_t sv = vdupq_n_f32(slope);
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  long i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t factor = vbslq_f32(vcgtq_f32(xv, zero), one, sv);
    const float32x4_t prod = vmulq_f32(vld1q_f32(g + i), factor);
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
}

// ---- segment ops (bit-exact) ----------------------------------------------

void segment_max_fwd(const float* a, const int* seg, long n, long d, long nseg,
                     float* out, int* argmax) {
  for (long j = 0; j < nseg * d; ++j) argmax[j] = -1;
  const int32x4_t minus1 = vdupq_n_s32(-1);
  for (long i = 0; i < n; ++i) {
    const long s = seg[i];
    const float* ar = a + i * d;
    float* orow = out + s * d;
    int* arow = argmax + s * d;
    const int32x4_t iv = vdupq_n_s32(static_cast<int>(i));
    long c = 0;
    for (; c + 4 <= d; c += 4) {
      const float32x4_t cur = vld1q_f32(orow + c);
      const float32x4_t v = vld1q_f32(ar + c);
      const int32x4_t am = vld1q_s32(arow + c);
      const uint32x4_t take =
          vorrq_u32(vcgtq_f32(v, cur), vceqq_s32(am, minus1));
      vst1q_f32(orow + c, vbslq_f32(take, v, cur));
      vst1q_s32(arow + c, vbslq_s32(take, iv, am));
    }
    for (; c < d; ++c) {
      const float v = ar[c];
      if (arow[c] < 0 || v > orow[c]) {
        orow[c] = v;
        arow[c] = static_cast<int>(i);
      }
    }
  }
}

void segment_rowwise_dot_fwd(const float* a, const float* b, const int* seg,
                             long n, long d, float* out) {
  long i = 0;
  // One row per lane, columns loaded lane-by-lane: each lane performs the
  // scalar mul-then-add sequence for its row, so results are bit-exact.
  for (; i + 4 <= n; i += 4) {
    const float* a0 = a + (i + 0) * d;
    const float* a1 = a + (i + 1) * d;
    const float* a2 = a + (i + 2) * d;
    const float* a3 = a + (i + 3) * d;
    const float* b0 = b + static_cast<long>(seg[i + 0]) * d;
    const float* b1 = b + static_cast<long>(seg[i + 1]) * d;
    const float* b2 = b + static_cast<long>(seg[i + 2]) * d;
    const float* b3 = b + static_cast<long>(seg[i + 3]) * d;
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (long c = 0; c < d; ++c) {
      const float ta[4] = {a0[c], a1[c], a2[c], a3[c]};
      const float tb[4] = {b0[c], b1[c], b2[c], b3[c]};
      acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(ta), vld1q_f32(tb)));
    }
    vst1q_f32(out + i, acc);
  }
  for (; i < n; ++i) {
    const float* ai = a + i * d;
    const float* bi = b + static_cast<long>(seg[i]) * d;
    float acc = 0.0f;
    for (long c = 0; c < d; ++c) acc += ai[c] * bi[c];
    out[i] = acc;
  }
}

void segment_weighted_sum_fwd(const float* a, const float* w, const int* seg,
                              long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    const float wi = w[i];
    const float* ai = a + i * d;
    float* orow = out + static_cast<long>(seg[i]) * d;
    const float32x4_t wv = vdupq_n_f32(wi);
    long c = 0;
    for (; c + 4 <= d; c += 4) {
      const float32x4_t prod = vmulq_f32(wv, vld1q_f32(ai + c));
      vst1q_f32(orow + c, vaddq_f32(vld1q_f32(orow + c), prod));
    }
    for (; c < d; ++c) orow[c] += wi * ai[c];
  }
}

// ---- matmul (tolerance class, fused vfmaq) --------------------------------

void matmul_fwd(const float* A, const float* B, float* C, long n, long k,
                long m, int mt) {
  const auto rows = [A, B, C, k, m](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      float* Ci = C + i * m;
      for (long kk = 0; kk < k; ++kk) {
        const float aik = A[i * k + kk];
        if (aik == 0.0f) continue;
        const float* Bk = B + kk * m;
        long j = 0;
        for (; j + 4 <= m; j += 4)
          vst1q_f32(Ci + j, vfmaq_n_f32(vld1q_f32(Ci + j), vld1q_f32(Bk + j), aik));
        for (; j < m; ++j) Ci[j] += aik * Bk[j];
      }
    }
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

void matmul_bwd_a(const float* G, const float* B, float* dA, long n, long k,
                  long m, int mt) {
  const auto rows = [G, B, dA, k, m](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      const float* Gi = G + i * m;
      float* dAi = dA + i * k;
      for (long kk = 0; kk < k; ++kk) {
        const float* Bk = B + kk * m;
        float32x4_t acc = vdupq_n_f32(0.0f);
        long j = 0;
        for (; j + 4 <= m; j += 4)
          acc = vfmaq_f32(acc, vld1q_f32(Gi + j), vld1q_f32(Bk + j));
        float t = vaddvq_f32(acc);
        for (; j < m; ++j) t += Gi[j] * Bk[j];
        dAi[kk] += t;
      }
    }
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

void matmul_bwd_b(const float* A, const float* G, float* dB, long n, long k,
                  long m, int mt) {
  const auto rows = [A, G, dB, n, k, m](long k0, long k1) {
    for (long kk = k0; kk < k1; ++kk) {
      float* dBk = dB + kk * m;
      for (long i = 0; i < n; ++i) {
        const float aik = A[i * k + kk];
        if (aik == 0.0f) continue;
        const float* Gi = G + i * m;
        long j = 0;
        for (; j + 4 <= m; j += 4)
          vst1q_f32(dBk + j, vfmaq_n_f32(vld1q_f32(dBk + j), vld1q_f32(Gi + j), aik));
        for (; j < m; ++j) dBk[j] += aik * Gi[j];
      }
    }
  };
  if (parallel_worthwhile(n * k * m, k, mt))
    parallel_blocks(k, mt, rows);
  else
    rows(0, k);
}

// ---- retrieval prefilter (tolerance class, double accumulation) -----------

void centered_dot_batch(const float* rows, const double* norms, const float* q,
                        double q_norm, long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    if (norms[i] <= 0.0 || q_norm <= 0.0) {
      out[i] = 0.0f;
      continue;
    }
    const float* r = rows + i * d;
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    long c = 0;
    for (; c + 4 <= d; c += 4) {
      const float32x4_t rv = vld1q_f32(r + c);
      const float32x4_t qv = vld1q_f32(q + c);
      acc0 = vfmaq_f64(acc0, vcvt_f64_f32(vget_low_f32(qv)),
                       vcvt_f64_f32(vget_low_f32(rv)));
      acc1 = vfmaq_f64(acc1, vcvt_f64_f32(vget_high_f32(qv)),
                       vcvt_f64_f32(vget_high_f32(rv)));
    }
    double dot = vaddvq_f64(vaddq_f64(acc0, acc1));
    for (; c < d; ++c) dot += static_cast<double>(q[c]) * r[c];
    out[i] = static_cast<float>(dot / (q_norm * norms[i]));
  }
}

const Kernels kNeonKernels = {
    "neon",
    add_n,
    mul_n,
    adds_n,
    scale_n,
    acc_n,
    axpy_n,
    fma_acc_n,
    lrelu_fwd_n,
    lrelu_bwd_n,
    segment_max_fwd,
    segment_rowwise_dot_fwd,
    segment_weighted_sum_fwd,
    matmul_fwd,
    matmul_bwd_a,
    matmul_bwd_b,
    centered_dot_batch,
};

}  // namespace

const Kernels* neon_kernels() { return &kNeonKernels; }

}  // namespace gbm::tensor::kernels

#else  // !__aarch64__

namespace gbm::tensor::kernels {
const Kernels* neon_kernels() { return nullptr; }
}  // namespace gbm::tensor::kernels

#endif
