// Scalar reference kernels: the original tensor.cpp hot loops, moved here
// verbatim. This tier is always available, is the bit-exactness oracle the
// SIMD tiers are tested against, and (with GBM_KERNEL=scalar) reproduces
// the pre-kernel-tier results bit for bit. Compiled with -ffp-contract=off
// so the semantics stay pinned to mul-then-add even if a future toolchain
// default would contract.

#include "tensor/kernels/kernels.h"

#include <cmath>

namespace gbm::tensor::kernels {
namespace {

// ---- elementwise ----------------------------------------------------------

void add_n(float* out, const float* a, const float* b, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void mul_n(float* out, const float* a, const float* b, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void adds_n(float* out, const float* a, float s, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] + s;
}

void scale_n(float* out, const float* a, float s, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] * s;
}

void acc_n(float* dst, const float* src, long n) {
  for (long i = 0; i < n; ++i) dst[i] += src[i];
}

void axpy_n(float* dst, const float* src, float s, long n) {
  for (long i = 0; i < n; ++i) dst[i] += src[i] * s;
}

void fma_acc_n(float* dst, const float* a, const float* b, long n) {
  for (long i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void lrelu_fwd_n(float* out, const float* x, float slope, long n) {
  for (long i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void lrelu_bwd_n(float* dst, const float* x, const float* g, float slope, long n) {
  for (long i = 0; i < n; ++i) dst[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
}

// ---- segment ops ----------------------------------------------------------

void segment_max_fwd(const float* a, const int* seg, long n, long d, long nseg,
                     float* out, int* argmax) {
  for (long j = 0; j < nseg * d; ++j) argmax[j] = -1;
  for (long i = 0; i < n; ++i) {
    const long s = seg[i];
    for (long c = 0; c < d; ++c) {
      const float v = a[i * d + c];
      if (argmax[s * d + c] < 0 || v > out[s * d + c]) {
        out[s * d + c] = v;
        argmax[s * d + c] = static_cast<int>(i);
      }
    }
  }
}

void segment_rowwise_dot_fwd(const float* a, const float* b, const int* seg,
                             long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    const float* ai = a + i * d;
    const float* bi = b + static_cast<long>(seg[i]) * d;
    float acc = 0.0f;
    for (long c = 0; c < d; ++c) acc += ai[c] * bi[c];
    out[i] = acc;
  }
}

void segment_weighted_sum_fwd(const float* a, const float* w, const int* seg,
                              long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    const float wi = w[i];
    const float* ai = a + i * d;
    float* orow = out + static_cast<long>(seg[i]) * d;
    for (long c = 0; c < d; ++c) orow[c] += wi * ai[c];
  }
}

// ---- matmul ---------------------------------------------------------------

void matmul_fwd(const float* A, const float* B, float* C, long n, long k,
                long m, int mt) {
  // i-k-j loop order: unit-stride inner loop over both B and C rows. Output
  // rows are independent, so the row range parallelises bit-identically.
  const auto rows = [A, B, C, k, m](long i0, long i1) {
    for (long i = i0; i < i1; ++i) {
      float* Ci = C + i * m;
      for (long kk = 0; kk < k; ++kk) {
        const float aik = A[i * k + kk];
        if (aik == 0.0f) continue;
        const float* Bk = B + kk * m;
        for (long j = 0; j < m; ++j) Ci[j] += aik * Bk[j];
      }
    }
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

void matmul_bwd_a(const float* G, const float* B, float* dA, long n, long k,
                  long m, int mt) {
  const auto rows = [G, B, dA, k, m](long i0, long i1) {
    for (long i = i0; i < i1; ++i)
      for (long j = 0; j < m; ++j) {
        const float g = G[i * m + j];
        if (g == 0.0f) continue;
        const float* Bcol = B + j;  // column j, stride m
        for (long kk = 0; kk < k; ++kk) dA[i * k + kk] += g * Bcol[kk * m];
      }
  };
  if (parallel_worthwhile(n * k * m, n, mt))
    parallel_blocks(n, mt, rows);
  else
    rows(0, n);
}

void matmul_bwd_b(const float* A, const float* G, float* dB, long n, long k,
                  long m, int mt) {
  const auto rows = [A, G, dB, n, k, m](long k0, long k1) {
    for (long kk = k0; kk < k1; ++kk)
      for (long i = 0; i < n; ++i) {
        const float aik = A[i * k + kk];
        if (aik == 0.0f) continue;
        const float* Gi = G + i * m;
        for (long j = 0; j < m; ++j) dB[kk * m + j] += aik * Gi[j];
      }
  };
  if (parallel_worthwhile(n * k * m, k, mt))
    parallel_blocks(k, mt, rows);
  else
    rows(0, k);
}

// ---- retrieval prefilter --------------------------------------------------

void centered_dot_batch(const float* rows, const double* norms, const float* q,
                        double q_norm, long n, long d, float* out) {
  for (long i = 0; i < n; ++i) {
    if (norms[i] <= 0.0 || q_norm <= 0.0) {
      out[i] = 0.0f;
      continue;
    }
    const float* r = rows + i * d;
    double dot = 0.0;
    for (long c = 0; c < d; ++c) dot += static_cast<double>(q[c]) * r[c];
    out[i] = static_cast<float>(dot / (q_norm * norms[i]));
  }
}

const Kernels kScalarKernels = {
    "scalar",
    add_n,
    mul_n,
    adds_n,
    scale_n,
    acc_n,
    axpy_n,
    fma_acc_n,
    lrelu_fwd_n,
    lrelu_bwd_n,
    segment_max_fwd,
    segment_rowwise_dot_fwd,
    segment_weighted_sum_fwd,
    matmul_fwd,
    matmul_bwd_a,
    matmul_bwd_b,
    centered_dot_batch,
};

}  // namespace

const Kernels* scalar_kernels() { return &kScalarKernels; }

}  // namespace gbm::tensor::kernels
