// Runtime-dispatched CPU kernel tier for the tensor hot paths.
//
// The tensor library's proven hot loops — matmul forward/backward, the
// relu/add/axpy-style elementwise ops, the segment reductions behind batched
// attention pooling, and the centered-cosine retrieval prefilter — dispatch
// through a table of function pointers (`Kernels`) instead of hand-rolled
// loops in tensor.cpp. The table is selected ONCE, at first use:
//
//   * `scalar` — the original portable loops, moved here verbatim. Always
//     available; the reference implementation and bit-exactness oracle.
//   * `avx2`   — AVX2/FMA x86-64 kernels, used when the CPU reports both
//     avx2 and fma (CPUID via __builtin_cpu_supports) AND the binary was
//     built with the AVX2 translation unit enabled (x86-64 builds).
//   * `neon`   — AArch64 NEON kernels (NEON is baseline on AArch64).
//
// The `GBM_KERNEL` environment variable overrides auto-detection:
// `scalar|avx2|neon|auto`. Requesting an unavailable or unknown tier falls
// back to auto with a one-line stderr warning (a service must come up, not
// die, on a mis-set env var).
//
// Determinism / accuracy contract, per op class:
//
//   * elementwise and segment ops are BIT-EXACT across tiers: every SIMD
//     lane performs the identical mul-then-add (never fused) sequence the
//     scalar loop performs for that element, and the segment dot kernels
//     assign one row per lane so each row's accumulation order is the
//     scalar order. Kernel TUs are compiled with -ffp-contract=off so the
//     compiler cannot re-fuse what the contract keeps separate.
//   * matmul and centered_dot_batch are TOLERANCE class: FMA and wider
//     accumulators re-associate the reduction, so tiers agree to <= 1e-5
//     (relative), not bitwise. Within ONE tier results are bit-stable —
//     including across matmul thread counts, because the row split never
//     changes any row's own accumulation order.
//
// Adding a kernel: add the function pointer here, implement it in
// scalar.cpp (reference), wire the SIMD versions in avx2.cpp/neon.cpp, add
// a parity case to tests/test_kernels.cpp (label `kernel`), and dispatch to
// it from tensor.cpp via kernels::active().
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace gbm::tensor::kernels {

struct Kernels {
  const char* name;  // "scalar" | "avx2" | "neon"

  // ---- elementwise (bit-exact across tiers) -----------------------------
  /// out[i] = a[i] + b[i]
  void (*add_n)(float* out, const float* a, const float* b, long n);
  /// out[i] = a[i] * b[i]
  void (*mul_n)(float* out, const float* a, const float* b, long n);
  /// out[i] = a[i] + s
  void (*adds_n)(float* out, const float* a, float s, long n);
  /// out[i] = a[i] * s
  void (*scale_n)(float* out, const float* a, float s, long n);
  /// dst[i] += src[i]
  void (*acc_n)(float* dst, const float* src, long n);
  /// dst[i] += s * src[i]  (multiply then add — never fused)
  void (*axpy_n)(float* dst, const float* src, float s, long n);
  /// dst[i] += a[i] * b[i]  (multiply then add — never fused)
  void (*fma_acc_n)(float* dst, const float* a, const float* b, long n);
  /// out[i] = x[i] > 0 ? x[i] : slope * x[i]
  void (*lrelu_fwd_n)(float* out, const float* x, float slope, long n);
  /// dst[i] += g[i] * (x[i] > 0 ? 1 : slope)
  void (*lrelu_bwd_n)(float* dst, const float* x, const float* g, float slope,
                      long n);

  // ---- segment ops (bit-exact across tiers) -----------------------------
  /// Per-segment column-wise max of a (n x d) into out (nseg x d), recording
  /// the winning row per (segment, column) in argmax (nseg*d entries, -1 for
  /// a segment with no rows; its output row stays as passed in — callers
  /// hand in zeros). Ties keep the earliest row, exactly the scalar rule.
  void (*segment_max_fwd)(const float* a, const int* seg, long n, long d,
                          long nseg, float* out, int* argmax);
  /// out[i] = dot(a[i], b[seg[i]]) over d columns; out is n floats. Each
  /// row's accumulation order is the scalar order (SIMD tiers give each
  /// lane one whole row), so results are bit-exact across tiers.
  void (*segment_rowwise_dot_fwd)(const float* a, const float* b,
                                  const int* seg, long n, long d, float* out);
  /// out[seg[i]] += w[i] * a[i] over (nseg x d) pre-zeroed output rows.
  void (*segment_weighted_sum_fwd)(const float* a, const float* w,
                                   const int* seg, long n, long d, float* out);

  // ---- matmul (tolerance class; bit-stable per tier at any mt) ----------
  /// C += A(n x k) * B(k x m). C is pre-zeroed by the caller. `mt` is the
  /// worker count captured from MatmulParallelGuard; the kernel splits
  /// output rows itself (parallel_blocks) once the product is large enough.
  void (*matmul_fwd)(const float* A, const float* B, float* C, long n, long k,
                     long m, int mt);
  /// dA += G(n x m) * B^T (B is k x m); accumulates into dA (n x k).
  void (*matmul_bwd_a)(const float* G, const float* B, float* dA, long n,
                       long k, long m, int mt);
  /// dB += A^T (A is n x k) * G(n x m); accumulates into dB (k x m).
  void (*matmul_bwd_b)(const float* A, const float* G, float* dB, long n,
                       long k, long m, int mt);

  // ---- retrieval prefilter (tolerance class) ----------------------------
  /// Fused centered-cosine scan: out[i] = dot(rows[i], q) / (norms[i] *
  /// q_norm) computed in double, or 0 when either norm is <= 0. `rows` is a
  /// row-major (n x d) matrix of mean-centered stored embeddings with
  /// precomputed centered L2 norms in `norms`; q is the centered query.
  /// The scalar tier reproduces cosine_similarity's double-accumulation
  /// bit-for-bit, so a scalar-tier index returns the historical cosines.
  void (*centered_dot_batch)(const float* rows, const double* norms,
                             const float* q, double q_norm, long n, long d,
                             float* out);
};

/// Kernel tiers in preference order (highest wins when available).
enum class Tier { kScalar, kAvx2, kNeon };

const char* tier_name(Tier t);
/// Parses a GBM_KERNEL value ("scalar"|"avx2"|"neon"); nullopt for
/// "auto"/unknown (callers distinguish via the raw string).
std::optional<Tier> parse_tier(const std::string& s);

/// The tier's kernel table, or nullptr when the tier is not compiled into
/// this binary or the CPU lacks the required features. kScalar never
/// returns nullptr.
const Kernels* for_tier(Tier t);
bool available(Tier t);

/// The table every tensor op dispatches through, selected once at first
/// use: GBM_KERNEL override if set and available, else the best available
/// SIMD tier, else scalar.
const Kernels& active();
Tier active_tier();

// ---- shared row-split helpers (used by every tier's matmul) -------------

/// True when splitting `range` rows of `work` total multiply-adds across
/// `mt` workers amortises the parallel_for fan-out (same threshold the
/// pre-kernel matmul used).
bool parallel_worthwhile(long work, long range, int mt);

/// Runs fn(begin, end) over contiguous blocks covering [0, range). Each
/// index belongs to exactly one block and the loop inside a block is the
/// serial order, so the result is bit-identical to fn(0, range) at any
/// worker count.
void parallel_blocks(long range, int mt, const std::function<void(long, long)>& fn);

// Per-tier factories (defined in their own TUs; nullptr when compiled out).
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* neon_kernels();

}  // namespace gbm::tensor::kernels
