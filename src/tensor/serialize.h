// Binary persistence primitives and the named-parameter-set format.
//
// io::Writer / io::Reader are the bounds-checked little-endian byte-stream
// primitives shared by every on-disk format in the tree (model params,
// tokenizer vocab, program graphs, the artifact store, MatchingSystem
// snapshots). Conventions, applied by all formats:
//   * a format starts with a 4-byte magic and a u32 version; readers reject
//     unknown magics and versions with descriptive errors;
//   * variable-length data is length-prefixed (u32 for strings, u64 for
//     arrays), so a Reader always knows how much to expect and truncated /
//     corrupted files fail with std::runtime_error instead of reading junk;
//   * multi-byte values are host-endian (little-endian on every supported
//     target), written/read as raw bytes.
//
// The parameter-set format ("GBMT", version 1) is unchanged from the
// original save_params/load_params layout: magic, u32 version, u64 count,
// then per tensor u32 name_len + name + i64 rows + i64 cols + f32 values.
// write_params/read_params expose it as an embeddable chunk so snapshots
// can carry a parameter set inline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/nn.h"

namespace gbm::tensor {

namespace io {

/// FNV-1a, the tree's shared content-hash primitive (artifact-store keys,
/// tokenizer fingerprints). Fold bytes into `h` starting from kFnvOffset.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
inline void fnv1a(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n);
  /// 4-byte format magic (exactly 4 chars, e.g. "GBMS").
  void magic(const char (&m)[5]) { raw(m, 4); }
  /// u32 length + bytes.
  void str(const std::string& s);
  /// u64 count + i32 elements.
  void ints(const std::vector<int>& xs);
  /// u64 count + f32 elements.
  void floats(const std::vector<float>& xs);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  /// Writes the buffer to `path` via a same-directory temp file + rename,
  /// so readers never observe a half-written file. Throws on I/O failure.
  void to_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  /// `context` prefixes every error message (e.g. "load_params(model.bin)").
  Reader(const std::uint8_t* data, std::size_t size, std::string context);
  Reader(const std::vector<std::uint8_t>& bytes, std::string context)
      : Reader(bytes.data(), bytes.size(), std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  float f32();
  void raw(void* p, std::size_t n);
  /// Reads 4 bytes and throws "<context>: bad magic (expected <m>)" on
  /// mismatch.
  void expect_magic(const char (&m)[5]);
  /// True when the next 4 bytes equal `m`. Never consumes or throws — the
  /// format-sniffing primitive for readers that dispatch on magic (snapshot
  /// legacy-format detection, shard-file validation).
  bool peek_magic(const char (&m)[5]) const;
  /// Reads the u32 version and throws unless it equals `expected`.
  void expect_version(std::uint32_t expected, const char* format_name);
  std::string str();
  std::vector<int> ints();
  std::vector<float> floats();

  std::size_t remaining() const { return size_ - off_; }
  const std::string& context() const { return context_; }
  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  std::string context_;
};

/// Reads a whole file; throws std::runtime_error (with `context`) if the
/// file cannot be opened or read.
std::vector<std::uint8_t> read_file(const std::string& path, const std::string& context);

}  // namespace io

/// Writes all parameters to `path`. Throws std::runtime_error on I/O failure.
void save_params(const std::vector<NamedParam>& params, const std::string& path);

/// Loads values into matching (by name and shape) parameters of `params`.
/// Returns the number of tensors restored; throws on I/O or format errors,
/// and on shape mismatch for a matching name.
std::size_t load_params(std::vector<NamedParam>& params, const std::string& path);

/// Embeddable-chunk versions of save_params/load_params (same byte layout,
/// including magic and version, so a chunk is self-describing).
void write_params(io::Writer& w, const std::vector<NamedParam>& params);
std::size_t read_params(io::Reader& r, std::vector<NamedParam>& params);

}  // namespace gbm::tensor
