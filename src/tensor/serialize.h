// Binary (de)serialisation of named parameter sets, so trained models can be
// saved from one example/bench and reloaded in another.
//
// Format: magic "GBMT", u32 version, u64 count, then per tensor:
//   u32 name_len, name bytes, i64 rows, i64 cols, rows*cols f32 values.
#pragma once

#include <string>
#include <vector>

#include "tensor/nn.h"

namespace gbm::tensor {

/// Writes all parameters to `path`. Throws std::runtime_error on I/O failure.
void save_params(const std::vector<NamedParam>& params, const std::string& path);

/// Loads values into matching (by name and shape) parameters of `params`.
/// Returns the number of tensors restored; throws on I/O or format errors,
/// and on shape mismatch for a matching name.
std::size_t load_params(std::vector<NamedParam>& params, const std::string& path);

}  // namespace gbm::tensor
