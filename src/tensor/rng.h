// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (weight init, dropout, dataset
// synthesis, shuffling) draw from this generator so that a fixed seed
// reproduces a run bit-for-bit across platforms. std::mt19937_64 is used as
// the engine because its output sequence is specified by the standard;
// distributions are implemented here (not via <random> distribution objects,
// whose sequences are implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace gbm::tensor {

class RNG {
 public:
  explicit RNG(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// Raw 64-bit output (splitmix64 — small, fast, well distributed).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  long uniform_int(long lo, long hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<long>(next_u64() % span);
  }

  /// Standard normal via Box-Muller (no caching so the stream is stateless
  /// with respect to call sites).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_u64() % i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <class T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(next_u64() % v.size())];
  }

  /// Fork a derived generator (stable with respect to the parent stream).
  RNG fork() { return RNG(next_u64()); }

 private:
  std::uint64_t state_;
};

}  // namespace gbm::tensor
