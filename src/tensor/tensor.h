// A small dense 2-D float tensor with reverse-mode automatic
// differentiation.
//
// This module replaces the role PyTorch / PyTorch-Geometric play in the
// original GraphBinMatch implementation. Design constraints:
//
//  * every tensor is a dense row-major (rows x cols) float matrix; scalars
//    are 1x1 — two dimensions are sufficient for every layer in the paper
//    (node-feature matrices, edge score vectors, graph embeddings);
//  * value semantics: `Tensor` is a cheap shared handle onto an immutable
//    autograd node; operations build a DAG, `backward()` runs reverse-mode
//    accumulation over a topological order;
//  * deterministic: no global state, all randomness is passed in as RNG.
//
// The op set is exactly what the GraphBinMatch model family needs:
// dense algebra, row gather/scatter for message passing, segment softmax
// for GATv2 attention, embedding-bag-max for node featurisation, layer
// norm, dropout and a numerically stable BCE-with-logits loss.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace gbm::tensor {

struct TensorImpl {
  long rows = 0;
  long cols = 0;
  std::vector<float> val;
  std::vector<float> grad;  // allocated lazily by ensure_grad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void()> backward;  // accumulates into inputs' grads

  long size() const { return rows * cols; }
  void ensure_grad() {
    if (grad.size() != static_cast<std::size_t>(size())) grad.assign(size(), 0.0f);
  }
};

/// Shared handle to an autograd node. Copy is O(1).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- factories -------------------------------------------------------
  static Tensor zeros(long rows, long cols, bool requires_grad = false);
  static Tensor full(long rows, long cols, float value, bool requires_grad = false);
  static Tensor from(std::vector<float> values, long rows, long cols,
                     bool requires_grad = false);
  /// Gaussian init with standard deviation `stddev`.
  static Tensor randn(long rows, long cols, RNG& rng, float stddev,
                      bool requires_grad = true);
  /// Xavier/Glorot uniform init for a (fan_in x fan_out) weight.
  static Tensor xavier(long fan_in, long fan_out, RNG& rng,
                       bool requires_grad = true);

  // ---- accessors -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  long rows() const { return impl_->rows; }
  long cols() const { return impl_->cols; }
  long size() const { return impl_->size(); }
  bool requires_grad() const { return impl_->requires_grad; }
  const std::vector<float>& data() const { return impl_->val; }
  std::vector<float>& mutable_data() { return impl_->val; }
  const std::vector<float>& grad() const { return impl_->grad; }
  float at(long r, long c) const { return impl_->val[r * impl_->cols + c]; }
  /// Value of a 1x1 tensor.
  float item() const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  /// Copy of the value with no autograd history.
  Tensor detach() const;
  /// Zero this node's gradient buffer (used on parameters between steps).
  void zero_grad();
  /// Reverse-mode accumulation from this scalar (1x1) tensor.
  void backward() const;

  std::string to_string(int max_rows = 6, int max_cols = 8) const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// ---- elementwise algebra (row-broadcast: (n,d) op (1,d) is allowed) ------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor abs_t(const Tensor& a);
Tensor maximum(const Tensor& a, const Tensor& b);  // elementwise max

// ---- dense linear algebra -------------------------------------------------
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

/// Worker count matmul() uses on the calling thread (default 1 = serial).
int matmul_threads();

/// Scoped, thread-local opt-in to row-parallel matmul. While a guard with
/// more than one worker is active, matmul() splits its output rows (and the
/// row-/column-parallel halves of its backward pass) across
/// core::parallel_for workers once the product is large enough to amortise
/// the fan-out. Every split is by independent output row, so values and
/// gradients are bit-identical to the serial path at any worker count.
/// The setting is thread-local on purpose: workers of an outer parallel
/// phase (data-parallel training, chunked batch embedding) default to
/// serial matmuls instead of oversubscribing the machine.
class MatmulParallelGuard {
 public:
  /// `threads` as in core::resolve_threads (<= 0 means all hardware).
  explicit MatmulParallelGuard(int threads);
  ~MatmulParallelGuard();
  MatmulParallelGuard(const MatmulParallelGuard&) = delete;
  MatmulParallelGuard& operator=(const MatmulParallelGuard&) = delete;

 private:
  int prev_;
};

// ---- nonlinearities ---------------------------------------------------
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor exp_t(const Tensor& a);
Tensor log_t(const Tensor& a);  // clamps input at 1e-12
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float negative_slope = 0.01f);
Tensor softmax_rows(const Tensor& a);

// ---- reductions --------------------------------------------------------
Tensor sum_all(const Tensor& a);    // -> 1x1
Tensor mean_all(const Tensor& a);   // -> 1x1
Tensor sum_rows(const Tensor& a);   // (n,d) -> (1,d)
Tensor mean_rows(const Tensor& a);  // (n,d) -> (1,d)
Tensor max_rows(const Tensor& a);   // (n,d) -> (1,d), column-wise max

// ---- shape ops ---------------------------------------------------------
Tensor concat_cols(const std::vector<Tensor>& xs);  // same rows
Tensor concat_rows(const std::vector<Tensor>& xs);  // same cols
Tensor slice_rows(const Tensor& a, long begin, long end);  // [begin, end)
Tensor slice_cols(const Tensor& a, long begin, long end);  // [begin, end)

// ---- gather / scatter (message passing primitives) ---------------------
/// out[i] = a[idx[i]] — row gather.
Tensor index_rows(const Tensor& a, const std::vector<int>& idx);
/// out[idx[i]] += a[i] — row scatter-add into `out_rows` rows.
Tensor scatter_add_rows(const Tensor& a, const std::vector<int>& idx, long out_rows);
/// Softmax of scores (E x 1) within segments given by `seg` (values in
/// [0, nseg)). Standard GAT attention normalisation over incoming edges.
Tensor segment_softmax(const Tensor& scores, const std::vector<int>& seg, long nseg);
/// Per-segment column-wise max: out[s][c] = max over rows i with seg[i] == s
/// of a[i][c]; a segment with no rows yields a zero row. This is max_rows
/// generalised to a batch of row groups (the per-graph max-pooling channel
/// of a GraphBatch forward). Gradient routes to the winning row per
/// (segment, column), ties to the earliest row — exactly max_rows' rule.
Tensor segment_max(const Tensor& a, const std::vector<int>& seg, long nseg);
/// out[i] = Σ_c a[i][c] * b[seg[i]][c] — dot of each row of a (n x d) with
/// its segment's row of b (nseg x d), yielding (n, 1). The batched form of
/// matmul(h, transpose(c)) in attention scoring: fused so no (n, d)
/// intermediate (gather or product) is materialised.
Tensor segment_rowwise_dot(const Tensor& a, const Tensor& b,
                           const std::vector<int>& seg);
/// out[seg[i]] += w[i] * a[i] over (nseg, d) output rows — per-segment
/// weighted sum of a's rows (w is n x 1). The batched form of
/// matmul(transpose(attention), h) in attention pooling, fused for the same
/// reason as segment_rowwise_dot.
Tensor segment_weighted_sum(const Tensor& a, const Tensor& w,
                            const std::vector<int>& seg, long nseg);
/// out[i][c] = a[i][c] * s[i][0] — per-row scalar scaling (attention
/// weighting of per-edge messages).
Tensor scale_rows(const Tensor& a, const Tensor& s);

// ---- embedding ----------------------------------------------------------
/// For each of `n` bags of `bag_len` token ids, looks up rows of `table`
/// (vocab x dim) and reduces with elementwise max, ignoring `pad_id`
/// entries. A bag of only padding produces a zero row. This is the paper's
/// "embedding layer then max" node featurisation in one fused op.
Tensor embedding_bag_max(const Tensor& table, const std::vector<int>& ids,
                         long n, long bag_len, int pad_id);

// ---- regularisation -----------------------------------------------------
Tensor dropout(const Tensor& a, float p, bool training, RNG& rng);
/// Per-row layer normalisation with learnable gamma/beta (1 x d).
Tensor layer_norm_rows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       float eps = 1e-5f);

// ---- losses --------------------------------------------------------------
/// Numerically stable mean binary-cross-entropy on logits (n x 1).
Tensor bce_with_logits(const Tensor& logits, const std::vector<float>& targets);
/// Mean squared error against constant targets (n x d).
Tensor mse_loss(const Tensor& pred, const std::vector<float>& targets);

}  // namespace gbm::tensor
