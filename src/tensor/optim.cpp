#include "tensor/optim.h"

#include <cmath>

namespace gbm::tensor {

Adam::Adam(std::vector<NamedParam> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.tensor.size(), 0.0f);
    v_.emplace_back(p.tensor.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, t_);
  const double bc2 = 1.0 - std::pow(cfg_.beta2, t_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto impl = params_[pi].tensor.impl();
    impl->ensure_grad();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (long i = 0; i < impl->size(); ++i) {
      const float g = impl->grad[i];
      m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * g;
      v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      float upd = static_cast<float>(cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps));
      if (cfg_.weight_decay > 0.0f) upd += cfg_.lr * cfg_.weight_decay * impl->val[i];
      impl->val[i] -= upd;
    }
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.tensor.zero_grad();
}

void SGD::step() {
  for (auto& p : params_) {
    auto impl = p.tensor.impl();
    impl->ensure_grad();
    for (long i = 0; i < impl->size(); ++i) impl->val[i] -= lr_ * impl->grad[i];
  }
}

void SGD::zero_grad() {
  for (auto& p : params_) p.tensor.zero_grad();
}

double clip_grad_norm(const std::vector<NamedParam>& params, double max_norm) {
  double sq = 0.0;
  for (const auto& p : params) {
    auto impl = p.tensor.impl();
    impl->ensure_grad();
    for (float g : impl->grad) sq += double(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float s = static_cast<float>(max_norm / norm);
    for (const auto& p : params)
      for (auto& g : p.tensor.impl()->grad) g *= s;
  }
  return norm;
}

}  // namespace gbm::tensor
