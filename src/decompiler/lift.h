// VBin → IR lifter (the RetDec substitute).
//
// Reverse-engineers a compiled binary back into IR the way a machine-code
// decompiler does:
//   * instruction decoding, then control-flow reconstruction from branch
//     targets (leaders → basic blocks);
//   * machine registers become i64/f64 stack slots; every register
//     read/write is an explicit load/store;
//   * the frame pointer is recovered as one opaque byte buffer per
//     function — source-level variables and their types are *not*
//     recovered (the paper's "decompiled IR differs from source IR" gap);
//   * runtime calls (syscalls) are recognised by table and rebuilt with
//     typed signatures, as RetDec does for known library imports;
//   * functions are renamed fn0, fn1, ... (symbols are not trusted).
//
// The lifted module re-executes under the IR interpreter with the same
// observable behaviour as the binary — validated by integration tests.
#pragma once

#include <memory>

#include "backend/isa.h"
#include "ir/module.h"

namespace gbm::decompiler {

struct LiftOptions {
  /// Run a light cleanup (constant folding/DCE) after lifting, as real
  /// decompilers do. Off = raw lifted code.
  bool cleanup = true;
};

/// Lifts a decoded binary to a fresh IR module.
std::unique_ptr<ir::Module> lift(const backend::VBinary& bin,
                                 const LiftOptions& options = {});

}  // namespace gbm::decompiler
