#include "decompiler/lift.h"

#include <map>
#include <set>
#include <stdexcept>

#include "interp/runtime.h"
#include "ir/builder.h"
#include "opt/passes.h"

namespace gbm::decompiler {

namespace {

using backend::VBinary;
using backend::VFunction;
using backend::VInst;
using backend::VOp;
using ir::BasicBlock;
using ir::CmpPred;
using ir::Opcode;
using ir::Value;

class Lifter {
 public:
  Lifter(const VBinary& bin, ir::Module& m) : bin_(bin), m_(m), b_(m) {}

  void run() {
    make_data_global();
    declare_functions();
    for (std::size_t i = 0; i < bin_.functions.size(); ++i)
      lift_function(bin_.functions[i], lifted_[i]);
  }

 private:
  void make_data_global() {
    std::vector<std::uint8_t> data = bin_.data;
    if (data.empty()) data.resize(8, 0);
    data_ = m_.create_global(
        "data", m_.types().array(m_.types().i8(), static_cast<long>(data.size())),
        data, /*is_const=*/false);
  }

  void declare_functions() {
    for (std::size_t i = 0; i < bin_.functions.size(); ++i) {
      // Symbols are not trusted: functions are renamed, except the entry
      // point which the loader identifies.
      const std::string name =
          static_cast<int>(i) == bin_.entry ? "main" : "fn" + std::to_string(i);
      std::vector<const ir::Type*> params(
          static_cast<std::size_t>(bin_.functions[i].arity), m_.types().i64());
      lifted_.push_back(m_.create_function(name, m_.types().i64(), params));
    }
  }

  /// Typed declaration of a recognised library (runtime) function.
  ir::Function* runtime_decl(const std::string& name) {
    if (ir::Function* f = m_.function(name)) return f;
    auto& t = m_.types();
    struct Sig { const ir::Type* ret; std::vector<const ir::Type*> params; };
    // Built per module: Type pointers are interned per ir::Module.
    std::map<std::string, Sig> sig_map;
    {
      auto* sigs = &sig_map;
      (*sigs)["gbm_print_i64"] = {t.void_ty(), {t.i64()}};
      (*sigs)["gbm_print_f64"] = {t.void_ty(), {t.f64()}};
      (*sigs)["gbm_print_str"] = {t.void_ty(), {t.ptr()}};
      (*sigs)["gbm_read_i64"] = {t.i64(), {}};
      (*sigs)["gbm_alloc"] = {t.ptr(), {t.i64()}};
      (*sigs)["jrt_newarray_i32"] = {t.ptr(), {t.i64()}};
      (*sigs)["jrt_arraylen"] = {t.i64(), {t.ptr()}};
      (*sigs)["jrt_boundscheck"] = {t.void_ty(), {t.ptr(), t.i64()}};
      (*sigs)["jrt_box_i32"] = {t.ptr(), {t.i32()}};
      (*sigs)["jrt_unbox_i32"] = {t.i32(), {t.ptr()}};
      (*sigs)["jrt_list_new"] = {t.ptr(), {}};
      (*sigs)["jrt_list_add"] = {t.void_ty(), {t.ptr(), t.ptr()}};
      (*sigs)["jrt_list_get"] = {t.ptr(), {t.ptr(), t.i64()}};
      (*sigs)["jrt_list_set"] = {t.void_ty(), {t.ptr(), t.i64(), t.ptr()}};
      (*sigs)["jrt_list_size"] = {t.i64(), {t.ptr()}};
      (*sigs)["jrt_println_i32"] = {t.void_ty(), {t.i32()}};
      (*sigs)["jrt_println_str"] = {t.void_ty(), {t.ptr()}};
      (*sigs)["jrt_string_charat"] = {t.i64(), {t.ptr(), t.i64()}};
      (*sigs)["jrt_string_len"] = {t.i64(), {t.ptr()}};
      (*sigs)["crt_sort_i64"] = {t.void_ty(), {t.ptr(), t.i64()}};
      (*sigs)["crt_abs_i64"] = {t.i64(), {t.i64()}};
      (*sigs)["crt_min_i64"] = {t.i64(), {t.i64(), t.i64()}};
      (*sigs)["crt_max_i64"] = {t.i64(), {t.i64(), t.i64()}};
      (*sigs)["crt_vec_new"] = {t.ptr(), {}};
      (*sigs)["crt_vec_push"] = {t.void_ty(), {t.ptr(), t.i64()}};
      (*sigs)["crt_vec_get"] = {t.i64(), {t.ptr(), t.i64()}};
      (*sigs)["crt_vec_set"] = {t.void_ty(), {t.ptr(), t.i64(), t.i64()}};
      (*sigs)["crt_vec_size"] = {t.i64(), {t.ptr()}};
      (*sigs)["crt_vec_sort"] = {t.void_ty(), {t.ptr()}};
      (*sigs)["crt_strlen"] = {t.i64(), {t.ptr()}};
      (*sigs)["crt_pow_i64"] = {t.i64(), {t.i64(), t.i64()}};
    }
    auto it = sig_map.find(name);
    if (it == sig_map.end()) throw std::runtime_error("lift: unknown import " + name);
    return m_.create_function(name, it->second.ret, it->second.params);
  }

  // ---- register slots ---------------------------------------------------
  Value* rload(int k) { return b_.load(m_.types().i64(), rslot_[k]); }
  void rstore(int k, Value* v) { b_.store(v, rslot_[k]); }
  Value* fload(int k) { return b_.load(m_.types().f64(), fslot_[k]); }
  void fstore(int k, Value* v) { b_.store(v, fslot_[k]); }

  Value* mem_ptr(int base_reg, std::int64_t off) {
    Value* a = rload(base_reg);
    if (off != 0) a = b_.binop(Opcode::Add, a, m_.const_i64(off));
    return b_.cast(Opcode::IntToPtr, a, m_.types().ptr());
  }

  void lift_function(const VFunction& vf, ir::Function* fn) {
    // ---- control-flow reconstruction: find leaders -----------------------
    std::set<std::size_t> leaders{0};
    for (std::size_t pc = 0; pc < vf.code.size(); ++pc) {
      const VInst& inst = vf.code[pc];
      if (inst.op == VOp::JMP || inst.op == VOp::JZ || inst.op == VOp::JNZ) {
        leaders.insert(static_cast<std::size_t>(inst.imm));
        if (pc + 1 < vf.code.size()) leaders.insert(pc + 1);
      }
      if ((inst.op == VOp::RET || inst.op == VOp::HALT) && pc + 1 < vf.code.size())
        leaders.insert(pc + 1);
    }
    std::map<std::size_t, BasicBlock*> blocks;
    for (std::size_t leader : leaders) blocks[leader] = fn->create_block("dec");

    // ---- entry: register slots, recovered frame, parameters ---------------
    BasicBlock* entry = blocks.at(0);
    b_.set_insertion(entry);
    for (int k = 0; k < 16; ++k) {
      rslot_[k] = b_.alloca_(m_.types().i64());
      rslot_[k]->set_name("r" + std::to_string(k));
    }
    for (int k = 0; k < 8; ++k) {
      fslot_[k] = b_.alloca_(m_.types().f64());
      fslot_[k]->set_name("f" + std::to_string(k));
    }
    // Zero-initialise registers (decompilers emit defined values).
    for (int k = 0; k < 16; ++k) rstore(k, m_.const_i64(0));
    std::int64_t frame_size = 0;
    if (!vf.code.empty() && vf.code[0].op == VOp::ENTER) frame_size = vf.code[0].imm;
    if (frame_size > 0) {
      ir::Instruction* frame =
          b_.alloca_(m_.types().array(m_.types().i8(), frame_size));
      frame->set_name("stack");
      Value* base = b_.cast(Opcode::PtrToInt, frame, m_.types().i64());
      Value* top = b_.binop(Opcode::Add, base, m_.const_i64(frame_size));
      rstore(backend::kRegFP, top);
    }
    for (int i = 0; i < vf.arity; ++i) rstore(1 + i, fn->arg(i));

    // ---- lift instructions block by block ---------------------------------
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
      const std::size_t start = it->first;
      auto next_it = std::next(it);
      const std::size_t end = next_it == blocks.end() ? vf.code.size() : next_it->first;
      b_.set_insertion(it->second);
      bool terminated = false;
      for (std::size_t pc = start; pc < end && !terminated; ++pc)
        terminated = lift_inst(vf, pc, blocks);
      if (!terminated) {
        // Fallthrough into the next block.
        if (next_it != blocks.end()) b_.br(next_it->second);
        else b_.ret(m_.const_i64(0));
      }
    }
  }

  /// Lifts one instruction; returns true if it terminated the block.
  bool lift_inst(const VFunction& vf, std::size_t pc,
                 const std::map<std::size_t, BasicBlock*>& blocks) {
    const VInst& inst = vf.code[pc];
    auto& t = m_.types();
    switch (inst.op) {
      case VOp::LDI: rstore(inst.a, m_.const_i64(inst.imm)); return false;
      case VOp::MOV: rstore(inst.a, rload(inst.b)); return false;
      case VOp::ADD: case VOp::SUB: case VOp::MUL: case VOp::DIV: case VOp::REM:
      case VOp::AND: case VOp::OR: case VOp::XOR: case VOp::SHL: case VOp::SAR: {
        Opcode op;
        switch (inst.op) {
          case VOp::ADD: op = Opcode::Add; break;
          case VOp::SUB: op = Opcode::Sub; break;
          case VOp::MUL: op = Opcode::Mul; break;
          case VOp::DIV: op = Opcode::SDiv; break;
          case VOp::REM: op = Opcode::SRem; break;
          case VOp::AND: op = Opcode::And; break;
          case VOp::OR: op = Opcode::Or; break;
          case VOp::XOR: op = Opcode::Xor; break;
          case VOp::SHL: op = Opcode::Shl; break;
          default: op = Opcode::AShr; break;
        }
        rstore(inst.a, b_.binop(op, rload(inst.b), rload(inst.c)));
        return false;
      }
      case VOp::SX32: {
        Value* v = b_.cast(Opcode::Trunc, rload(inst.b), t.i32());
        rstore(inst.a, b_.cast(Opcode::SExt, v, t.i64()));
        return false;
      }
      case VOp::SX8: {
        Value* v = b_.cast(Opcode::Trunc, rload(inst.b), t.i8());
        rstore(inst.a, b_.cast(Opcode::SExt, v, t.i64()));
        return false;
      }
      case VOp::AND1:
        rstore(inst.a, b_.binop(Opcode::And, rload(inst.b), m_.const_i64(1)));
        return false;
      case VOp::FADD: case VOp::FSUB: case VOp::FMUL: case VOp::FDIV: {
        Opcode op = inst.op == VOp::FADD   ? Opcode::FAdd
                    : inst.op == VOp::FSUB ? Opcode::FSub
                    : inst.op == VOp::FMUL ? Opcode::FMul
                                           : Opcode::FDiv;
        fstore(inst.a, b_.binop(op, fload(inst.b), fload(inst.c)));
        return false;
      }
      case VOp::CMPEQ: case VOp::CMPNE: case VOp::CMPLT:
      case VOp::CMPLE: case VOp::CMPGT: case VOp::CMPGE: {
        Value* c = b_.icmp(pred_of(inst.op), rload(inst.b), rload(inst.c));
        rstore(inst.a, b_.cast(Opcode::ZExt, c, t.i64()));
        return false;
      }
      case VOp::FCMPEQ: case VOp::FCMPNE: case VOp::FCMPLT:
      case VOp::FCMPLE: case VOp::FCMPGT: case VOp::FCMPGE: {
        Value* c = b_.fcmp(fpred_of(inst.op), fload(inst.b), fload(inst.c));
        rstore(inst.a, b_.cast(Opcode::ZExt, c, t.i64()));
        return false;
      }
      case VOp::LD1: {
        Value* v = b_.load(t.i8(), mem_ptr(inst.b, inst.imm));
        rstore(inst.a, b_.cast(Opcode::SExt, v, t.i64()));
        return false;
      }
      case VOp::LD4: {
        Value* v = b_.load(t.i32(), mem_ptr(inst.b, inst.imm));
        rstore(inst.a, b_.cast(Opcode::SExt, v, t.i64()));
        return false;
      }
      case VOp::LD8:
        rstore(inst.a, b_.load(t.i64(), mem_ptr(inst.b, inst.imm)));
        return false;
      case VOp::ST1:
        b_.store(b_.cast(Opcode::Trunc, rload(inst.b), t.i8()),
                 mem_ptr(inst.a, inst.imm));
        return false;
      case VOp::ST4:
        b_.store(b_.cast(Opcode::Trunc, rload(inst.b), t.i32()),
                 mem_ptr(inst.a, inst.imm));
        return false;
      case VOp::ST8:
        b_.store(rload(inst.b), mem_ptr(inst.a, inst.imm));
        return false;
      case VOp::FLD:
        fstore(inst.a, b_.load(t.f64(), mem_ptr(inst.b, inst.imm)));
        return false;
      case VOp::FST:
        b_.store(fload(inst.b), mem_ptr(inst.a, inst.imm));
        return false;
      case VOp::ITOF:
        fstore(inst.a, b_.cast(Opcode::SIToFP, rload(inst.b), t.f64()));
        return false;
      case VOp::FTOI:
        rstore(inst.a, b_.cast(Opcode::FPToSI, fload(inst.b), t.i64()));
        return false;
      case VOp::FMOV: fstore(inst.a, fload(inst.b)); return false;
      case VOp::LEA: {
        Value* fp = rload(backend::kRegFP);
        rstore(inst.a, b_.binop(Opcode::Add, fp, m_.const_i64(inst.imm)));
        return false;
      }
      case VOp::GADDR: {
        Value* base = b_.cast(Opcode::PtrToInt, data_, t.i64());
        rstore(inst.a, b_.binop(Opcode::Add, base, m_.const_i64(inst.imm)));
        return false;
      }
      case VOp::JMP:
        b_.br(blocks.at(static_cast<std::size_t>(inst.imm)));
        return true;
      case VOp::JZ: case VOp::JNZ: {
        Value* v = rload(inst.a);
        Value* c = b_.icmp(inst.op == VOp::JZ ? CmpPred::EQ : CmpPred::NE, v,
                           m_.const_i64(0));
        BasicBlock* taken = blocks.at(static_cast<std::size_t>(inst.imm));
        BasicBlock* fall = blocks.at(pc + 1);
        b_.cond_br(c, taken, fall);
        return true;
      }
      case VOp::CALL: {
        const int target = static_cast<int>(inst.imm);
        ir::Function* callee = lifted_.at(static_cast<std::size_t>(target));
        std::vector<Value*> args;
        for (int i = 0; i < bin_.functions[target].arity; ++i)
          args.push_back(rload(1 + i));
        rstore(0, b_.call(callee, args));
        return false;
      }
      case VOp::SYSCALL: {
        const auto& sig =
            interp::Runtime::table().at(static_cast<std::size_t>(inst.imm));
        ir::Function* callee = runtime_decl(sig.name);
        std::vector<Value*> args;
        int int_reg = 1, flt_reg = 1;
        for (std::size_t i = 0; i < callee->num_args(); ++i) {
          const ir::Type* want = callee->arg(i)->type();
          if (want->is_float()) {
            args.push_back(fload(flt_reg++));
          } else if (want->is_pointer()) {
            args.push_back(b_.cast(Opcode::IntToPtr, rload(int_reg++), t.ptr()));
          } else if (want->kind() == ir::TypeKind::I32) {
            args.push_back(b_.cast(Opcode::Trunc, rload(int_reg++), t.i32()));
          } else {
            args.push_back(rload(int_reg++));
          }
        }
        Value* result = b_.call(callee, args);
        const ir::Type* rt = callee->return_type();
        if (rt->is_pointer())
          rstore(0, b_.cast(Opcode::PtrToInt, result, t.i64()));
        else if (rt->kind() == ir::TypeKind::I32)
          rstore(0, b_.cast(Opcode::SExt, result, t.i64()));
        else if (!rt->is_void())
          rstore(0, result);
        return false;
      }
      case VOp::ENTER:  // frame recovered in entry setup
      case VOp::LEAVE:  // no-op: each lifted frame is function-local
      case VOp::NOP:
        return false;
      case VOp::RET:
        b_.ret(rload(0));
        return true;
      case VOp::HALT:
        b_.unreachable_();
        return true;
    }
    return false;
  }

  static CmpPred pred_of(VOp op) {
    switch (op) {
      case VOp::CMPEQ: return CmpPred::EQ;
      case VOp::CMPNE: return CmpPred::NE;
      case VOp::CMPLT: return CmpPred::SLT;
      case VOp::CMPLE: return CmpPred::SLE;
      case VOp::CMPGT: return CmpPred::SGT;
      default: return CmpPred::SGE;
    }
  }
  static CmpPred fpred_of(VOp op) {
    switch (op) {
      case VOp::FCMPEQ: return CmpPred::EQ;
      case VOp::FCMPNE: return CmpPred::NE;
      case VOp::FCMPLT: return CmpPred::SLT;
      case VOp::FCMPLE: return CmpPred::SLE;
      case VOp::FCMPGT: return CmpPred::SGT;
      default: return CmpPred::SGE;
    }
  }

  const VBinary& bin_;
  ir::Module& m_;
  ir::IRBuilder b_;
  ir::GlobalVar* data_ = nullptr;
  std::vector<ir::Function*> lifted_;
  ir::Instruction* rslot_[16] = {nullptr};
  ir::Instruction* fslot_[8] = {nullptr};
};

}  // namespace

std::unique_ptr<ir::Module> lift(const VBinary& bin, const LiftOptions& options) {
  auto m = std::make_unique<ir::Module>("decompiled");
  Lifter lifter(bin, *m);
  lifter.run();
  if (options.cleanup) {
    // RetDec-style cleanup: SSA-form register slots, folded address
    // arithmetic, no dead loads. The result is compact decompiled IR that
    // still carries the lifting scars (i64-only types, inttoptr memory
    // access, renamed functions, restructured control flow).
    for (const auto& fn : m->functions()) {
      if (fn->is_declaration()) continue;
      opt::mem2reg(*fn);
      bool changed = true;
      int rounds = 0;
      while (changed && rounds++ < 6) {
        changed = false;
        changed |= opt::constant_fold(*fn);
        changed |= opt::dead_code_elim(*fn);
        changed |= opt::simplify_cfg(*fn);
      }
    }
  }
  return m;
}

}  // namespace gbm::decompiler
