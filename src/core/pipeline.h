// End-to-end GraphBinMatch pipeline — the library's primary public API.
//
// Two halves:
//   * artifact production — Figure 1's left side: a source file is compiled
//     to IR (the Clang/JLang role) or compiled to a VBin binary and lifted
//     back by the decompiler (the RetDec role); either way the result is a
//     ProGraML-style program graph;
//   * matching — a MatchingSystem owns the trained tokenizer and the
//     GraphBinMatch model, and scores pairs of artifacts.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/codegen.h"
#include "core/embedding_engine.h"
#include "datasets/corpus.h"
#include "gnn/trainer.h"
#include "graph/program_graph.h"
#include "opt/passes.h"
#include "tokenizer/tokenizer.h"

namespace gbm::core {

/// Which artifact of a source file enters the matcher.
enum class Side {
  SourceIR,  // front-end IR (paper: Clang/JLang output)
  Binary,    // compile → binary → RetDec-style lift → decompiled IR
};

/// How far the toolchain got on a file. Stages complete strictly in order;
/// the source side never passes through Binary/Decompiled.
enum class Stage {
  None,        // front-end (or optimiser) rejected the file
  IR,          // compiled + optimised
  Binary,      // codegen produced a VBin (Binary side only)
  Decompiled,  // RetDec-style lift succeeded (Binary side only)
  Graph,       // ProGraML graph built — the artifact is complete
};

struct ArtifactOptions {
  Side side = Side::SourceIR;
  opt::OptLevel opt_level = opt::OptLevel::Oz;  // paper default "0z"
  backend::CodegenStyle style = backend::CodegenStyle::VClang;
  bool keep_ir_text = false;  // also store the printed IR in Artifact::ir_text
  // Early exit for counter-only passes (corpus_stats): the artifact is done
  // (ok = true) as soon as this stage completes. On the source side only IR
  // and Graph can complete, so Binary/Decompiled caps behave like Graph.
  Stage stop_after = Stage::Graph;
};

/// One processed file: its program graph plus provenance.
struct Artifact {
  int task_index = -1;
  frontend::Lang lang = frontend::Lang::C;
  bool ok = false;          // false → front-end (or toolchain) rejected it
  Stage stage = Stage::None;
  std::string error;
  graph::ProgramGraph graph;
  std::string ir_text;        // printed IR, only with keep_ir_text
  long ir_instructions = 0;
  long binary_code_size = 0;  // VBin instruction count (Binary side only)
};

/// Compiles one source file into an artifact. Never throws for compile
/// errors; `ok` reports success.
Artifact build_artifact(const data::SourceFile& file, const ArtifactOptions& options);

/// Batch version: fans file→artifact production across `threads` workers
/// (as in parallel.h, <= 0 means all hardware threads). The result is
/// deterministic and in input order — element i is exactly what
/// build_artifact(files[i], options) returns on this machine, including
/// per-file errors for non-compilable inputs.
std::vector<Artifact> build_artifacts(const std::vector<data::SourceFile>& files,
                                      const ArtifactOptions& options,
                                      int threads = 0);

/// Table I counters plus memory accounting for the interned graph layer.
struct CorpusStats {
  long sources = 0;
  long ir_ok = 0;
  long binaries = 0;
  long decompiled = 0;
  long graphs = 0;
  /// Aggregated graph::GraphMemory over every completed graph: interned
  /// bytes (nodes + edges + CSR + pool) vs the legacy owned-string estimate,
  /// and the feature dedup ratio the interning exploits.
  graph::GraphMemory memory;
  /// One printable line, e.g. for the Table-I bench.
  std::string memory_summary() const;
};
CorpusStats corpus_stats(const std::vector<data::SourceFile>& files,
                         const ArtifactOptions& binary_options, int threads = 0);

/// The trained matcher: tokenizer + GraphBinMatch model + featurisation
/// choice. Handles encoding, training, scoring and (de)serialisation.
class MatchingSystem {
 public:
  struct Config {
    gnn::ModelConfig model;
    bool use_full_text = true;  // paper: full_text beats text (Table VIII)
    int bag_len = 0;            // 0 = corpus rule (avg → next power of two)
    std::uint64_t seed = 7;
  };

  explicit MatchingSystem(Config config) : config_(std::move(config)) {}

  /// Trains the tokenizer on the node features of the given graphs and
  /// fixes the bag length. Must precede encode().
  void fit_tokenizer(const std::vector<const graph::ProgramGraph*>& graphs);

  gnn::EncodedGraph encode(const graph::ProgramGraph& g) const;

  /// Trains the model on labelled encoded pairs.
  double train(const std::vector<gnn::PairSample>& pairs,
               const gnn::TrainConfig& train_config);

  /// Matching score in [0,1] for two encoded graphs.
  float score(const gnn::EncodedGraph& a, const gnn::EncodedGraph& b) const;
  /// Batch scoring through the two-stage engine: each distinct graph is
  /// embedded once (cache-aware, parallel over `threads` workers as in
  /// parallel.h), then the similarity head runs per pair. Matches pairwise
  /// score() on every pair.
  std::vector<float> score_pairs(const std::vector<gnn::PairSample>& pairs,
                                 int threads = 0) const;

  /// Embeds every graph (batch-parallel, cache-aware) and rebuilds the
  /// internal retrieval index from them in input order — graph i becomes
  /// index id i. Returns the embeddings. The indexed graphs play the
  /// graph-B role of the asymmetric head; queries play graph A.
  std::vector<Embedding> embed_all(
      const std::vector<const gnn::EncodedGraph*>& graphs, int threads = 0);

  /// Top-k most similar indexed graphs for a query: cosine prefilter over
  /// the index, then exact score-head reranking with the query on `side` of
  /// the asymmetric head. Requires embed_all first.
  std::vector<EmbeddingIndex::Hit> topk(const gnn::EncodedGraph& query, int k,
                                        int prefilter = 0,
                                        QuerySide side = QuerySide::A) const;

  /// Writes a self-contained snapshot ("GBMS" format): configuration,
  /// tokenizer vocabulary, fitted bag length, model parameters, and — when
  /// embed_all has built one — the retrieval index embeddings. A snapshot is
  /// everything another process needs to serve score/score_pairs/topk with
  /// zero recompilation or retraining.
  void save(const std::string& path) const;
  /// Loads a snapshot written by save() and adopts its config, tokenizer,
  /// parameters, and index. Throws std::runtime_error with a descriptive
  /// message when
  ///   * the file is truncated, corrupted, a different format, an
  ///     unsupported snapshot version, or a legacy params-only "GBMT" file;
  ///   * this system already has a fitted tokenizer whose vocabulary
  ///     differs from the snapshot's (scores would be garbage — load into a
  ///     fresh MatchingSystem instead);
  ///   * this system already has a model whose architecture differs from
  ///     the snapshot's.
  void load(const std::string& path);

  const tok::Tokenizer& tokenizer() const { return *tokenizer_; }
  int bag_len() const { return bag_len_; }
  const gnn::GraphBinMatchModel& model() const { return *model_; }
  /// The two-stage inference engine (model must be trained or loaded).
  const EmbeddingEngine& engine() const;
  /// The retrieval index built by embed_all (or restored by load), or
  /// nullptr when none exists. Serving layers read the stored embeddings
  /// through this to re-partition them (serve::ShardedIndex).
  const EmbeddingIndex* index() const { return index_.get(); }
  /// Releases the internal index (topk throws again until embed_all or
  /// load). Serving layers that re-partitioned the embeddings call this so
  /// the corpus is not held resident twice.
  void drop_index() { index_.reset(); }
  const Config& config() const { return config_; }

 private:
  void ensure_model();

  Config config_;
  std::optional<tok::Tokenizer> tokenizer_;
  std::unique_ptr<gnn::GraphBinMatchModel> model_;
  std::unique_ptr<EmbeddingEngine> engine_;
  std::unique_ptr<EmbeddingIndex> index_;
  int bag_len_ = 0;
};

}  // namespace gbm::core
