#include "core/embedding_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/parallel.h"
#include "tensor/kernels/kernels.h"

namespace gbm::core {

// ---- content hashing ------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  // Hash every byte of v so that small integers still diffuse.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= kFnvPrime;
  }
}

void mix_ints(std::uint64_t& h, const std::vector<int>& xs) {
  mix(h, xs.size());
  for (int x : xs) mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
}

}  // namespace

std::uint64_t encoded_graph_key(const gnn::EncodedGraph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.num_nodes));
  mix(h, static_cast<std::uint64_t>(g.bag_len));
  mix_ints(h, g.tokens);
  for (const auto& list : g.edges) {
    mix_ints(h, list.src);
    mix_ints(h, list.dst);
    mix_ints(h, list.pos);
  }
  return h;
}

float cosine_similarity(const Embedding& a, const Embedding& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("cosine_similarity: dimension mismatch");
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0 || nb <= 0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

void CenteredRowsCache::invalidate() {
  std::lock_guard<std::mutex> lock(mu);
  valid = false;
}

void CenteredRowsCache::ensure(const std::vector<Embedding>& embeddings,
                               const Embedding& sum, float inv_n) {
  std::lock_guard<std::mutex> lock(mu);
  if (valid) return;
  const std::size_t n = embeddings.size();
  const std::size_t d = sum.size();
  rows.assign(n * d, 0.0f);
  norms.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Embedding& e = embeddings[i];
    float* r = rows.data() + i * d;
    // Same float op sequence as the per-query re-centering this replaces.
    for (std::size_t c = 0; c < d; ++c) r[c] = e[c] - sum[c] * inv_n;
    double nb = 0.0;
    for (std::size_t c = 0; c < d; ++c) nb += static_cast<double>(r[c]) * r[c];
    norms[i] = std::sqrt(nb);
  }
  valid = true;
}

// ---- cache ----------------------------------------------------------------

std::optional<Embedding> EmbeddingCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->second;
}

void EmbeddingCache::put(std::uint64_t key, Embedding value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  map_[key] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void EmbeddingCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

EmbeddingCache::Stats EmbeddingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---- engine ---------------------------------------------------------------

EmbeddingEngine::EmbeddingEngine(const gnn::GraphBinMatchModel& model,
                                 EmbeddingEngineConfig config)
    : model_(&model), config_(config), cache_(config.cache_capacity) {}

Embedding EmbeddingEngine::embed(const gnn::EncodedGraph& g) const {
  const std::uint64_t key = encoded_graph_key(g);
  if (auto cached = cache_.get(key)) return std::move(*cached);
  tensor::RNG dummy(1);  // inference mode: dropout is a pass-through
  const tensor::Tensor emb = model_->embed_graph(g, /*training=*/false, dummy);
  Embedding out = emb.data();
  cache_.put(key, out);
  return out;
}

std::vector<Embedding> EmbeddingEngine::embed_batch(
    const std::vector<const gnn::EncodedGraph*>& graphs, int threads) const {
  std::vector<Embedding> out(graphs.size());
  // Cache pass + content dedup of the misses: repeated inputs (identical
  // content under distinct pointers) are embedded exactly once.
  std::vector<const gnn::EncodedGraph*> miss;
  std::vector<std::uint64_t> miss_key;
  std::unordered_map<std::uint64_t, std::size_t> miss_slot;
  std::vector<std::pair<std::size_t, std::size_t>> fills;  // (out idx, miss slot)
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const std::uint64_t key = encoded_graph_key(*graphs[i]);
    if (auto cached = cache_.get(key)) {
      out[i] = std::move(*cached);
      continue;
    }
    const auto [it, inserted] = miss_slot.emplace(key, miss.size());
    if (inserted) {
      miss.push_back(graphs[i]);
      miss_key.push_back(key);
    }
    fills.emplace_back(i, it->second);
  }
  if (miss.empty()) return out;

  // Chunks of misses, grouped by bag length (a GraphBatch needs a single
  // one) in first-appearance order, then split at batch_chunk. Each chunk
  // is one batched GNN pass.
  const std::size_t chunk_size = std::max<std::size_t>(1, config_.batch_chunk);
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<int, std::size_t> group_of;
  for (std::size_t s = 0; s < miss.size(); ++s) {
    const auto [it, inserted] = group_of.emplace(miss[s]->bag_len, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(s);
  }
  std::vector<std::vector<std::size_t>> chunks;
  for (const auto& group : groups)
    for (std::size_t b = 0; b < group.size(); b += chunk_size)
      chunks.emplace_back(group.begin() + static_cast<long>(b),
                          group.begin() +
                              static_cast<long>(std::min(group.size(), b + chunk_size)));

  std::vector<Embedding> computed(miss.size());
  const int workers = resolve_threads(threads);
  // Workers beyond the chunk count instead row-parallelise the matmuls
  // inside each chunk's forward (bit-identical to the serial split).
  const int inner = static_cast<int>(
      std::max<std::size_t>(1, static_cast<std::size_t>(workers) / chunks.size()));
  const auto run_chunk = [&](std::size_t ci) {
    const std::vector<std::size_t>& members = chunks[ci];
    tensor::MatmulParallelGuard guard(inner);
    std::vector<const gnn::EncodedGraph*> part;
    part.reserve(members.size());
    for (std::size_t s : members) part.push_back(miss[s]);
    std::vector<Embedding> rows = model_->embed_graphs(part);
    for (std::size_t j = 0; j < members.size(); ++j)
      computed[members[j]] = std::move(rows[j]);
    for (std::size_t s : members) cache_.put(miss_key[s], computed[s]);
  };
  // Cap the outer fan-out at the chunk count — the spare workers are already
  // routed into each chunk's matmuls via `inner` — so a mostly-warm cache
  // doesn't spin up a near-idle pool.
  parallel_for(chunks.size(), run_chunk,
               static_cast<int>(std::min<std::size_t>(
                   static_cast<std::size_t>(workers), chunks.size())));
  for (const auto& [i, s] : fills) out[i] = computed[s];
  return out;
}

float EmbeddingEngine::score(const Embedding& a, const Embedding& b) const {
  const long d = dim();
  if (static_cast<long>(a.size()) != d || static_cast<long>(b.size()) != d)
    throw std::invalid_argument("EmbeddingEngine::score: embedding dim mismatch");
  const tensor::Tensor ta = tensor::Tensor::from(a, 1, d);
  const tensor::Tensor tb = tensor::Tensor::from(b, 1, d);
  return model_->predict_from_embeddings(ta, tb);
}

std::vector<float> EmbeddingEngine::score_pairs(
    const std::vector<gnn::PairSample>& pairs, int threads) const {
  // Stage 1: one GNN pass per distinct graph (by pointer here; the cache
  // additionally dedups by content across calls).
  std::unordered_map<const gnn::EncodedGraph*, std::size_t> slot;
  std::vector<const gnn::EncodedGraph*> uniq;
  for (const auto& pair : pairs) {
    for (const gnn::EncodedGraph* g : {pair.a, pair.b}) {
      if (slot.emplace(g, uniq.size()).second) uniq.push_back(g);
    }
  }
  const std::vector<Embedding> embeddings = embed_batch(uniq, threads);
  // Stage 2: cheap similarity heads, embarrassingly parallel.
  std::vector<float> out(pairs.size());
  parallel_for(
      pairs.size(),
      [&](std::size_t i) {
        out[i] = score(embeddings[slot.at(pairs[i].a)], embeddings[slot.at(pairs[i].b)]);
      },
      threads);
  return out;
}

// ---- index ----------------------------------------------------------------

int EmbeddingIndex::add(Embedding embedding) {
  if (static_cast<long>(embedding.size()) != engine_->dim())
    throw std::invalid_argument("EmbeddingIndex::add: embedding dim mismatch");
  if (sum_.empty()) sum_.assign(embedding.size(), 0.0f);
  for (std::size_t c = 0; c < embedding.size(); ++c) sum_[c] += embedding[c];
  embeddings_.push_back(std::move(embedding));
  centered_->invalidate();  // the centering mean moved — every row changes
  return static_cast<int>(embeddings_.size()) - 1;
}

void EmbeddingIndex::clear() {
  embeddings_.clear();
  sum_.clear();
  centered_->invalidate();
}

std::vector<EmbeddingIndex::Hit> EmbeddingIndex::topk(const Embedding& query,
                                                      int k, int prefilter,
                                                      QuerySide side) const {
  if (k <= 0 || embeddings_.empty()) return {};
  if (prefilter <= 0) prefilter = std::max(4 * k, 32);
  const std::size_t shortlist =
      std::min<std::size_t>(embeddings_.size(),
                            static_cast<std::size_t>(std::max(prefilter, k)));

  // Centered-cosine prefilter: one fused kernel call over cached
  // mean-centered rows (built on first query, invalidated by add()).
  const float inv_n = 1.0f / static_cast<float>(embeddings_.size());
  Embedding centered_query(query.size());
  if (query.size() != sum_.size())
    throw std::invalid_argument("EmbeddingIndex::topk: query dim mismatch");
  for (std::size_t c = 0; c < query.size(); ++c)
    centered_query[c] = query[c] - sum_[c] * inv_n;
  double q_norm = 0.0;
  for (const float v : centered_query) q_norm += static_cast<double>(v) * v;
  q_norm = std::sqrt(q_norm);
  centered_->ensure(embeddings_, sum_, inv_n);
  std::vector<float> cos(embeddings_.size());
  tensor::kernels::active().centered_dot_batch(
      centered_->rows.data(), centered_->norms.data(), centered_query.data(),
      q_norm, static_cast<long>(embeddings_.size()),
      static_cast<long>(query.size()), cos.data());
  std::vector<Hit> hits(embeddings_.size());
  for (std::size_t i = 0; i < embeddings_.size(); ++i) {
    hits[i].id = static_cast<int>(i);
    hits[i].cosine = cos[i];
  }
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(shortlist),
                    hits.end(), [](const Hit& a, const Hit& b) {
                      if (a.cosine != b.cosine) return a.cosine > b.cosine;
                      return a.id < b.id;
                    });
  hits.resize(shortlist);

  // Exact rerank through the asymmetric head.
  for (Hit& h : hits) {
    const Embedding& cand = embeddings_[static_cast<std::size_t>(h.id)];
    h.score = side == QuerySide::A ? engine_->score(query, cand)
                                   : engine_->score(cand, query);
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > static_cast<std::size_t>(k))
    hits.resize(static_cast<std::size_t>(k));
  return hits;
}

}  // namespace gbm::core
