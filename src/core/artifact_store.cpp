#include "core/artifact_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <tuple>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "core/parallel.h"

namespace gbm::core {

namespace {

constexpr char kGraphMagic[5] = "GBMG";
constexpr std::uint32_t kGraphVersion = 1;
constexpr char kEncodedMagic[5] = "GBME";
constexpr std::uint32_t kEncodedVersion = 1;
constexpr char kArtifactMagic[5] = "GBMA";
constexpr std::uint32_t kArtifactVersion = 1;

void fnv_str(std::uint64_t& h, const std::string& s) {
  const std::uint64_t len = s.size();
  tensor::io::fnv1a(h, &len, sizeof len);  // length-prefix
  tensor::io::fnv1a(h, s.data(), s.size());
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { tensor::io::fnv1a(h, &v, sizeof v); }

void write_edge_array(tensor::io::Writer& w, const graph::EdgeArray& list) {
  w.ints(list.src);
  w.ints(list.dst);
  w.ints(list.pos);
}

graph::EdgeArray read_edge_array(tensor::io::Reader& r, long num_nodes) {
  graph::EdgeArray list;
  list.src = r.ints();
  list.dst = r.ints();
  list.pos = r.ints();
  if (list.dst.size() != list.src.size() || list.pos.size() != list.src.size())
    r.fail("edge array with mismatched src/dst/pos lengths");
  for (long e = 0; e < list.size(); ++e) {
    if (list.src[e] < 0 || list.src[e] >= num_nodes || list.dst[e] < 0 ||
        list.dst[e] >= num_nodes)
      r.fail("edge endpoint out of node range");
  }
  return list;
}

}  // namespace

// ---- byte formats ---------------------------------------------------------

void write_graph(tensor::io::Writer& w, const graph::ProgramGraph& g) {
  w.magic(kGraphMagic);
  w.u32(kGraphVersion);
  const auto& strings = g.pool.strings();
  w.u64(strings.size());
  for (const auto& s : strings) w.str(s);
  w.u64(g.nodes.size());
  for (const auto& node : g.nodes) {
    w.u8(static_cast<std::uint8_t>(node.kind));
    w.u32(node.text);
    w.u32(node.full_text);
    w.i32(node.function);
  }
  for (const auto& list : g.edges) write_edge_array(w, list);
}

graph::ProgramGraph read_graph(tensor::io::Reader& r) {
  r.expect_magic(kGraphMagic);
  r.expect_version(kGraphVersion, "program-graph");
  const std::uint64_t num_strings = r.u64();
  // Plausibility before reserve: every string costs >= 4 bytes (its length
  // prefix), so a count beyond remaining()/4 is corruption, not data.
  if (num_strings > r.remaining() / 4)
    r.fail("truncated file (pool of " + std::to_string(num_strings) + " strings)");
  std::vector<std::string> strings;
  strings.reserve(num_strings);
  for (std::uint64_t i = 0; i < num_strings; ++i) strings.push_back(r.str());
  graph::ProgramGraph g;
  try {
    g.pool = graph::StringPool::from_strings(std::move(strings));
  } catch (const std::invalid_argument& e) {
    r.fail(e.what());
  }
  const std::uint64_t num_nodes = r.u64();
  if (num_nodes > r.remaining() / 13)  // 13 bytes per serialised node
    r.fail("truncated file (" + std::to_string(num_nodes) + " nodes)");
  g.nodes.reserve(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    graph::Node node;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(graph::NodeKind::Constant))
      r.fail("unknown node kind " + std::to_string(kind));
    node.kind = static_cast<graph::NodeKind>(kind);
    node.text = r.u32();
    node.full_text = r.u32();
    node.function = r.i32();
    if (node.text >= g.pool.size() || node.full_text >= g.pool.size())
      r.fail("node feature id out of pool range");
    g.nodes.push_back(node);
  }
  for (auto& list : g.edges) list = read_edge_array(r, g.num_nodes());
  g.finalize();
  return g;
}

void write_encoded_graph(tensor::io::Writer& w, const gnn::EncodedGraph& g) {
  w.magic(kEncodedMagic);
  w.u32(kEncodedVersion);
  w.i64(g.num_nodes);
  w.i32(g.bag_len);
  w.ints(g.tokens);
  for (const auto& list : g.edges) {
    w.ints(list.src);
    w.ints(list.dst);
    w.ints(list.pos);
  }
}

gnn::EncodedGraph read_encoded_graph(tensor::io::Reader& r) {
  r.expect_magic(kEncodedMagic);
  r.expect_version(kEncodedVersion, "encoded-graph");
  gnn::EncodedGraph g;
  g.num_nodes = r.i64();
  g.bag_len = r.i32();
  if (g.num_nodes < 0 || g.bag_len < 0) r.fail("negative encoded-graph shape");
  g.tokens = r.ints();
  // Unsigned compare: num_nodes * bag_len on crafted input could overflow
  // the signed multiplication.
  if (g.tokens.size() != static_cast<std::uint64_t>(g.num_nodes) *
                             static_cast<std::uint64_t>(g.bag_len))
    r.fail("token array does not match num_nodes * bag_len");
  for (int t : g.tokens)
    if (t < 0) r.fail("negative token id");
  for (auto& list : g.edges) {
    list.src = r.ints();
    list.dst = r.ints();
    list.pos = r.ints();
    if (list.dst.size() != list.src.size() || list.pos.size() != list.src.size())
      r.fail("edge list with mismatched src/dst/pos lengths");
    for (long e = 0; e < list.size(); ++e) {
      if (list.src[e] < 0 || list.src[e] >= g.num_nodes || list.dst[e] < 0 ||
          list.dst[e] >= g.num_nodes)
        r.fail("edge endpoint out of node range");
    }
  }
  return g;
}

void write_embeddings(tensor::io::Writer& w, const std::vector<Embedding>& embeddings) {
  w.u64(embeddings.size());
  w.u64(embeddings.empty() ? 0 : embeddings.front().size());
  for (const auto& e : embeddings) w.raw(e.data(), e.size() * sizeof(float));
}

std::vector<Embedding> read_embeddings(tensor::io::Reader& r) {
  const std::uint64_t count = r.u64();
  const std::uint64_t dim = r.u64();
  if (dim == 0 && count > 0) r.fail("embedding matrix with zero dimension");
  // One row must fit in the stream before dim * sizeof(float) is computed
  // (a huge dim could wrap the multiplication — and the divisor — to zero).
  if (dim > r.remaining() / sizeof(float))
    r.fail("truncated file (embedding dimension " + std::to_string(dim) + ")");
  if (dim != 0 && count > r.remaining() / (dim * sizeof(float)))
    r.fail("truncated file (embedding matrix " + std::to_string(count) + "x" +
           std::to_string(dim) + ")");
  std::vector<Embedding> embeddings(count, Embedding(dim));
  for (auto& e : embeddings) r.raw(e.data(), dim * sizeof(float));
  return embeddings;
}

void write_artifact(tensor::io::Writer& w, const Artifact& artifact) {
  w.magic(kArtifactMagic);
  w.u32(kArtifactVersion);
  w.i32(artifact.task_index);
  w.u8(static_cast<std::uint8_t>(artifact.lang));
  w.u8(artifact.ok ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(artifact.stage));
  w.str(artifact.error);
  w.str(artifact.ir_text);
  w.i64(artifact.ir_instructions);
  w.i64(artifact.binary_code_size);
  const bool has_graph = artifact.graph.num_nodes() > 0;
  w.u8(has_graph ? 1 : 0);
  if (has_graph) write_graph(w, artifact.graph);
}

Artifact read_artifact(tensor::io::Reader& r) {
  r.expect_magic(kArtifactMagic);
  r.expect_version(kArtifactVersion, "artifact");
  Artifact artifact;
  artifact.task_index = r.i32();
  artifact.lang = static_cast<frontend::Lang>(r.u8());
  artifact.ok = r.u8() != 0;
  const std::uint8_t stage = r.u8();
  if (stage > static_cast<std::uint8_t>(Stage::Graph))
    r.fail("unknown artifact stage " + std::to_string(stage));
  artifact.stage = static_cast<Stage>(stage);
  artifact.error = r.str();
  artifact.ir_text = r.str();
  artifact.ir_instructions = r.i64();
  artifact.binary_code_size = r.i64();
  if (r.u8() != 0) artifact.graph = read_graph(r);
  return artifact;
}

std::vector<std::uint8_t> serialize_graph(const graph::ProgramGraph& g) {
  tensor::io::Writer w;
  write_graph(w, g);
  return w.buffer();
}

graph::ProgramGraph deserialize_graph(const std::vector<std::uint8_t>& bytes) {
  tensor::io::Reader r(bytes, "deserialize_graph");
  return read_graph(r);
}

std::vector<std::uint8_t> serialize_encoded_graph(const gnn::EncodedGraph& g) {
  tensor::io::Writer w;
  write_encoded_graph(w, g);
  return w.buffer();
}

gnn::EncodedGraph deserialize_encoded_graph(const std::vector<std::uint8_t>& bytes) {
  tensor::io::Reader r(bytes, "deserialize_encoded_graph");
  return read_encoded_graph(r);
}

// ---- the store ------------------------------------------------------------

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw std::runtime_error("ArtifactStore: empty directory path");
  // Create the leaf directory (parents must exist — callers hand us a temp
  // or data root). EEXIST is fine: opening an existing store is the point.
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
    throw std::runtime_error("ArtifactStore: cannot create directory " + dir_ + ": " +
                             std::strerror(errno));
}

std::uint64_t ArtifactStore::key(const data::SourceFile& file,
                                 const ArtifactOptions& options) {
  std::uint64_t h = tensor::io::kFnvOffset;
  fnv_str(h, file.source);
  fnv_str(h, file.unit_name);
  fnv_u64(h, static_cast<std::uint64_t>(file.lang));
  fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(file.task_index)));
  fnv_u64(h, static_cast<std::uint64_t>(options.side));
  fnv_u64(h, static_cast<std::uint64_t>(options.opt_level));
  fnv_u64(h, static_cast<std::uint64_t>(options.style));
  fnv_u64(h, options.keep_ir_text ? 1 : 0);
  fnv_u64(h, static_cast<std::uint64_t>(options.stop_after));
  return h;
}

namespace {

void unlink_dir_entries(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return;
  while (dirent* ent = ::readdir(d)) {
    const std::string entry = ent->d_name;
    if (entry != "." && entry != "..") ::unlink((dir + "/" + entry).c_str());
  }
  ::closedir(d);
}

}  // namespace

void ArtifactStore::destroy(const std::string& dir) {
  unlink_dir_entries(dir + "/quarantine");
  ::rmdir((dir + "/quarantine").c_str());
  unlink_dir_entries(dir);
  ::rmdir(dir.c_str());
}

std::string ArtifactStore::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.gbma",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

bool ArtifactStore::contains(std::uint64_t key) const {
  struct ::stat st;
  return ::stat(path_for(key).c_str(), &st) == 0;
}

std::optional<Artifact> ArtifactStore::load(std::uint64_t key) const {
  const std::string path = path_for(key);
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  try {
    const auto bytes = tensor::io::read_file(path, "ArtifactStore::load");
    tensor::io::Reader r(bytes, "ArtifactStore::load(" + path + ")");
    Artifact artifact = read_artifact(r);
    // Refresh the access time explicitly (atime only; mtime untouched) so
    // evict()'s LRU order tracks real hits even on relatime/noatime mounts.
    struct timespec times[2];
    times[0].tv_sec = 0;
    times[0].tv_nsec = UTIME_NOW;
    times[1].tv_sec = 0;
    times[1].tv_nsec = UTIME_OMIT;
    ::utimensat(AT_FDCWD, path.c_str(), times, 0);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return artifact;
  } catch (const std::exception&) {
    // Corrupt/truncated/wrong-version entry: move the bytes aside for
    // post-mortem and report a miss so the caller recompiles.
    const std::string qdir = quarantine_dir();
    ::mkdir(qdir.c_str(), 0777);  // EEXIST is fine
    const std::size_t slash = path.find_last_of('/');
    const std::string target = qdir + "/" + path.substr(slash + 1);
    if (::rename(path.c_str(), target.c_str()) != 0)
      ::unlink(path.c_str());  // lost the race or cross-device: just drop it
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void ArtifactStore::put(std::uint64_t key, const Artifact& artifact) const {
  tensor::io::Writer w;
  write_artifact(w, artifact);
  w.to_file(path_for(key));
  writes_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ArtifactStore::evict(std::uint64_t max_bytes) const {
  struct Entry {
    long atime_sec;
    long atime_nsec;
    std::string name;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  DIR* d = ::opendir(dir_.c_str());
  if (!d) return 0;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    // Only the flat *.gbma entries participate; quarantine/ and any stray
    // temp files are outside the budget and never deleted here.
    if (name.size() < 5 || name.compare(name.size() - 5, 5, ".gbma") != 0)
      continue;
    struct ::stat st;
    if (::stat((dir_ + "/" + name).c_str(), &st) != 0 || !S_ISREG(st.st_mode))
      continue;
    entries.push_back({static_cast<long>(st.st_atim.tv_sec),
                       static_cast<long>(st.st_atim.tv_nsec), name,
                       static_cast<std::uint64_t>(st.st_size)});
    total += static_cast<std::uint64_t>(st.st_size);
  }
  ::closedir(d);
  if (total <= max_bytes) return 0;
  // Oldest access first; the name is a total-order tie-break so concurrent
  // same-second writes still evict deterministically.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.atime_sec, a.atime_nsec, a.name) <
           std::tie(b.atime_sec, b.atime_nsec, b.name);
  });
  std::size_t removed = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes) break;
    if (::unlink((dir_ + "/" + e.name).c_str()) != 0) continue;
    total -= e.size;
    ++removed;
  }
  evicted_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

std::vector<Artifact> build_artifacts(const std::vector<data::SourceFile>& files,
                                      const ArtifactOptions& options,
                                      const ArtifactStore& store, int threads) {
  std::vector<Artifact> out(files.size());
  parallel_for(
      files.size(),
      [&](std::size_t i) {
        const std::uint64_t key = ArtifactStore::key(files[i], options);
        if (auto cached = store.load(key)) {
          out[i] = std::move(*cached);
          return;
        }
        out[i] = build_artifact(files[i], options);
        if (out[i].ok) store.put(key, out[i]);
      },
      threads);
  return out;
}

}  // namespace gbm::core
