#include "core/parallel.h"

#include <atomic>
#include <exception>
#include <utility>

namespace gbm::core {

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads) {
  if (n == 0) return;
  const int workers = resolve_threads(threads);
  if (workers == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    // The calling thread is one of the workers, so `threads` bounds the
    // total concurrency rather than adding to it.
    ThreadPool pool(workers - 1);
    for (int w = 0; w < workers - 1; ++w) pool.submit(drain);
    drain();
    pool.wait();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gbm::core
