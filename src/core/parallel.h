// Minimal thread-pool and parallel_for used by the batch pipeline.
//
// The pool is deliberately small: a fixed set of workers draining one FIFO
// queue. parallel_for hands out indices one at a time through an atomic
// cursor, so uneven per-item cost (e.g. binary-side artifacts that go
// through codegen + lift vs source files that fail the front-end in the
// lexer) balances automatically.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gbm::core {

/// Worker count implied by `requested`: values >= 1 are taken verbatim,
/// anything else means std::thread::hardware_concurrency() (minimum 1).
int resolve_threads(int requested);

class ThreadPool {
 public:
  /// `threads` as in resolve_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
};

/// Runs fn(i) for every i in [0, n) across resolve_threads(threads)
/// workers and returns when all calls have finished. With one worker (or
/// n <= 1) the loop runs inline on the calling thread. The first exception
/// thrown by fn is rethrown on the calling thread after all workers stop;
/// remaining indices are still visited by the other workers.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads = 0);

}  // namespace gbm::core
