// Two-stage inference engine for the siamese matcher (paper §III-D).
//
// GraphBinMatch embeds each graph independently before the FC similarity
// head, so scoring M pairs drawn from N graphs only needs N expensive GNN
// passes (`GraphBinMatchModel::embed_graph`) plus M cheap head evaluations
// (`score_head`) — not M full forward passes. This module is the serving
// primitive built on that split:
//
//   * `EmbeddingCache` — a content-keyed LRU cache of graph embeddings.
//     Keys are a 64-bit hash of the encoded graph (tokens + edge lists),
//     so re-encoded or copied graphs with identical content share one
//     entry and retraining-free re-runs never recompute an embedding;
//   * `EmbeddingEngine` — batch-parallel embedding over `core::parallel`
//     plus embed-once-then-head pair scoring. All methods are safe to call
//     concurrently: model forward passes are read-only and the cache locks
//     internally;
//   * `EmbeddingIndex` — an `add` / `topk` retrieval index: brute-force
//     cosine prefilter over the stored embeddings, then exact score-head
//     reranking of the shortlisted candidates. This is the
//     vulnerability-search / reverse-engineering shape (§I): embed the
//     corpus once offline, answer each query with one GNN pass and k head
//     evaluations.
//
// The similarity head is *not* symmetric (the concatenation order of the
// two embeddings matters), so `topk` takes the side the query plays:
// QuerySide::A reranks with `score_head(query, candidate)` (index the
// graphs your model saw as graph B during training), QuerySide::B with
// `score_head(candidate, query)`.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gnn/model.h"
#include "gnn/trainer.h"

namespace gbm::core {

/// A detached graph embedding: graph_embedding_dim(model.config()) floats.
using Embedding = std::vector<float>;

/// Content key of an encoded graph: FNV-1a over shape, token bags and the
/// three edge lists. Equal-content graphs (even distinct objects) collide
/// on purpose; distinct graphs collide with probability ~2^-64.
std::uint64_t encoded_graph_key(const gnn::EncodedGraph& g);

/// Cosine similarity of two equal-length vectors; 0 if either has zero norm.
float cosine_similarity(const Embedding& a, const Embedding& b);

/// Precomputed side of the fused centered-cosine prefilter
/// (tensor::kernels::Kernels::centered_dot_batch): mean-centered copies of a
/// row set plus each row's (double-accumulated) L2 norm. Built lazily on the
/// first query and invalidated whenever the centering mean changes — i.e. on
/// every add() — so queries against a stable index never re-center or
/// re-norm a stored row. The float centering and double norm accumulation
/// reproduce cosine_similarity bit for bit on the scalar kernel tier.
struct CenteredRowsCache {
  std::mutex mu;
  bool valid = false;
  std::vector<float> rows;    // n*d, row i mean-centered in float
  std::vector<double> norms;  // per-row centered L2 norm (sqrt of double sum)

  void invalidate();
  /// Rebuilds from `embeddings` centered by `sum[c] * inv_n` when invalid.
  /// Thread-safe: concurrent callers serialize on `mu` and later readers see
  /// a fully built cache.
  void ensure(const std::vector<Embedding>& embeddings, const Embedding& sum,
              float inv_n);
};

/// Thread-safe LRU cache of embeddings keyed by graph content hash.
/// `capacity` 0 disables caching (every get misses, puts are dropped).
class EmbeddingCache {
 public:
  explicit EmbeddingCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached embedding and refreshes its recency, or nullopt.
  std::optional<Embedding> get(std::uint64_t key);
  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when over capacity.
  void put(std::uint64_t key, Embedding value);
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::uint64_t, Embedding>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  Stats stats_;
};

struct EmbeddingEngineConfig {
  /// Cache entries to retain; 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Graphs per GraphBatch pass in embed_batch/score_pairs: cache misses
  /// are deduplicated by content, grouped into chunks of this size, and
  /// each chunk is embedded by ONE batched GNN pass
  /// (gnn::GraphBinMatchModel::embed_batch over the disjoint union) instead
  /// of one pass per graph. Chunks fan out across the worker budget; when
  /// there are fewer chunks than workers, the spare workers row-parallelise
  /// the chunk's matmuls (tensor::MatmulParallelGuard). 1 restores the
  /// per-graph path.
  std::size_t batch_chunk = 8;
};

/// Batch-parallel, cache-aware embedding + pair scoring on a trained model.
/// The engine borrows the model; the model must outlive the engine and must
/// not be trained while the cache holds entries (call clear_cache after any
/// parameter update).
class EmbeddingEngine {
 public:
  explicit EmbeddingEngine(const gnn::GraphBinMatchModel& model,
                           EmbeddingEngineConfig config = {});

  /// Embeds one graph (inference mode), through the cache.
  Embedding embed(const gnn::EncodedGraph& g) const;

  /// Embeds a batch across resolve_threads(threads) workers (parallel.h
  /// semantics: <= 0 means all hardware threads). Cache misses are
  /// content-deduplicated and embedded in chunked GraphBatch passes (see
  /// EmbeddingEngineConfig::batch_chunk). Output is in input order; element
  /// i equals embed(*graphs[i]) within float round-off.
  std::vector<Embedding> embed_batch(
      const std::vector<const gnn::EncodedGraph*>& graphs, int threads = 0) const;

  /// Similarity head on two precomputed embeddings → score in [0, 1].
  /// Identical to model.predict(a, b) when the embeddings came from a, b.
  float score(const Embedding& a, const Embedding& b) const;

  /// Embed-once-then-head pair scoring: each distinct graph (by pointer or
  /// by content, through the cache) is embedded exactly once, then the M
  /// head evaluations fan out over the same worker count. Output matches
  /// pairwise model.predict on every pair.
  std::vector<float> score_pairs(const std::vector<gnn::PairSample>& pairs,
                                 int threads = 0) const;

  EmbeddingCache::Stats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

  const gnn::GraphBinMatchModel& model() const { return *model_; }
  long dim() const { return gnn::graph_embedding_dim(model_->config()); }

 private:
  const gnn::GraphBinMatchModel* model_;
  EmbeddingEngineConfig config_;
  mutable EmbeddingCache cache_;
};

/// Which side of the asymmetric similarity head an index query plays.
/// Re-exported by serve::ShardedIndex, whose fan-out topk applies the same
/// side to every shard's rerank.
enum class QuerySide {
  /// Rerank with score_head(query, candidate) — index the graphs your
  /// model saw as graph B during training.
  A,
  /// Rerank with score_head(candidate, query) — index the graph-A role.
  B,
};

/// Brute-force retrieval index over stored embeddings with score-head
/// reranking. Deterministic: ties (equal cosine or equal head score) break
/// toward the lower id.
class EmbeddingIndex {
 public:
  explicit EmbeddingIndex(const EmbeddingEngine& engine)
      : engine_(&engine), centered_(std::make_unique<CenteredRowsCache>()) {}

  /// Stores an embedding; returns its id (insertion order, 0-based).
  int add(Embedding embedding);
  void clear();

  std::size_t size() const { return embeddings_.size(); }
  const Embedding& embedding(int id) const { return embeddings_.at(id); }

  struct Hit {
    int id = -1;
    /// Prefilter similarity to the query (centered cosine).
    float cosine = 0.0f;
    /// Exact score-head output — the ranking key.
    float score = 0.0f;
  };

  /// Top-k by exact head score among the `prefilter` highest-cosine
  /// candidates (prefilter <= 0 → max(4k, 32); prefilter >= size() → exact
  /// search). The prefilter cosine is computed on mean-centered embeddings
  /// — graph embeddings share a large common component (most programs have
  /// a similar average instruction mix), and centering on the index mean
  /// removes it so the prefilter discriminates.
  std::vector<Hit> topk(const Embedding& query, int k, int prefilter = 0,
                        QuerySide side = QuerySide::A) const;

 private:
  const EmbeddingEngine* engine_;
  std::vector<Embedding> embeddings_;
  Embedding sum_;  // running column sum for the centering mean
  // unique_ptr because the mutex inside pins CenteredRowsCache in place while
  // the index itself stays movable (ShardedIndex::load and bench fixtures
  // return indexes by value).
  mutable std::unique_ptr<CenteredRowsCache> centered_;
};

}  // namespace gbm::core
