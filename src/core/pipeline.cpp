#include "core/pipeline.h"

#include <stdexcept>

#include "core/parallel.h"
#include "decompiler/lift.h"
#include "frontend/frontend.h"
#include "ir/printer.h"
#include "tensor/serialize.h"

namespace gbm::core {

Artifact build_artifact(const data::SourceFile& file, const ArtifactOptions& options) {
  Artifact artifact;
  artifact.task_index = file.task_index;
  artifact.lang = file.lang;
  const auto reached_cap = [&artifact, &options] {
    if (artifact.stage < options.stop_after) return false;
    artifact.ok = true;
    return true;
  };
  try {
    auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
    opt::optimize(*module, options.opt_level);
    artifact.stage = Stage::IR;
    if (reached_cap()) return artifact;
    if (options.side == Side::SourceIR) {
      artifact.ir_instructions = module->instruction_count();
      if (options.keep_ir_text) artifact.ir_text = ir::print_module(*module);
      artifact.graph = graph::build_graph(*module);
    } else {
      const backend::VBinary binary = backend::compile_module(*module, options.style);
      artifact.binary_code_size = binary.code_size();
      artifact.stage = Stage::Binary;
      if (reached_cap()) return artifact;
      auto lifted = decompiler::lift(binary);
      artifact.stage = Stage::Decompiled;
      if (reached_cap()) return artifact;
      artifact.ir_instructions = lifted->instruction_count();
      if (options.keep_ir_text) artifact.ir_text = ir::print_module(*lifted);
      artifact.graph = graph::build_graph(*lifted);
    }
    artifact.stage = Stage::Graph;
    artifact.ok = true;
  } catch (const std::exception& e) {
    artifact.ok = false;
    artifact.error = e.what();
  }
  return artifact;
}

std::vector<Artifact> build_artifacts(const std::vector<data::SourceFile>& files,
                                      const ArtifactOptions& options, int threads) {
  std::vector<Artifact> out(files.size());
  parallel_for(
      files.size(),
      [&](std::size_t i) { out[i] = build_artifact(files[i], options); }, threads);
  return out;
}

CorpusStats corpus_stats(const std::vector<data::SourceFile>& files,
                         const ArtifactOptions& binary_options, int threads) {
  ArtifactOptions options = binary_options;
  options.side = Side::Binary;
  options.keep_ir_text = false;
  options.stop_after = Stage::Decompiled;  // counters don't need the graph
  CorpusStats stats;
  stats.sources = static_cast<long>(files.size());
  for (const Artifact& a : build_artifacts(files, options, threads)) {
    stats.ir_ok += a.stage >= Stage::IR;
    stats.binaries += a.stage >= Stage::Binary;
    stats.decompiled += a.stage >= Stage::Decompiled;
  }
  return stats;
}

void MatchingSystem::fit_tokenizer(
    const std::vector<const graph::ProgramGraph*>& graphs) {
  std::vector<std::string> corpus;
  for (const graph::ProgramGraph* g : graphs) {
    for (const auto& node : g->nodes)
      corpus.push_back(node.feature(config_.use_full_text));
  }
  tokenizer_ = tok::Tokenizer::train(corpus, config_.model.vocab);
  bag_len_ = config_.bag_len > 0 ? config_.bag_len
                                 : tok::Tokenizer::choose_bag_len(corpus);
}

gnn::EncodedGraph MatchingSystem::encode(const graph::ProgramGraph& g) const {
  if (!tokenizer_) throw std::logic_error("MatchingSystem: tokenizer not fitted");
  return gnn::encode_graph(g, *tokenizer_, bag_len_, config_.use_full_text);
}

void MatchingSystem::ensure_model() {
  if (!model_) {
    tensor::RNG rng(config_.seed);
    model_ = std::make_unique<gnn::GraphBinMatchModel>(config_.model, rng);
    engine_ = std::make_unique<EmbeddingEngine>(*model_);
  }
}

double MatchingSystem::train(const std::vector<gnn::PairSample>& pairs,
                             const gnn::TrainConfig& train_config) {
  ensure_model();
  const double loss = gnn::train_model(*model_, pairs, train_config);
  // Parameters changed: embeddings computed before this call are stale.
  engine_->clear_cache();
  index_.reset();
  return loss;
}

float MatchingSystem::score(const gnn::EncodedGraph& a,
                            const gnn::EncodedGraph& b) const {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  return model_->predict(a, b);
}

std::vector<float> MatchingSystem::score_pairs(
    const std::vector<gnn::PairSample>& pairs, int threads) const {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  return engine_->score_pairs(pairs, threads);
}

std::vector<Embedding> MatchingSystem::embed_all(
    const std::vector<const gnn::EncodedGraph*>& graphs, int threads) {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  std::vector<Embedding> embeddings = engine_->embed_batch(graphs, threads);
  index_ = std::make_unique<EmbeddingIndex>(*engine_);
  for (const Embedding& e : embeddings) index_->add(e);
  return embeddings;
}

std::vector<EmbeddingIndex::Hit> MatchingSystem::topk(const gnn::EncodedGraph& query,
                                                      int k, int prefilter,
                                                      QuerySide side) const {
  if (!index_) throw std::logic_error("MatchingSystem: no index (call embed_all)");
  return index_->topk(engine_->embed(query), k, prefilter, side);
}

const EmbeddingEngine& MatchingSystem::engine() const {
  if (!engine_) throw std::logic_error("MatchingSystem: model not trained");
  return *engine_;
}

void MatchingSystem::save(const std::string& path) const {
  if (!model_) throw std::logic_error("MatchingSystem: nothing to save");
  auto params = model_->params();
  tensor::save_params(params, path);
}

void MatchingSystem::load(const std::string& path) {
  ensure_model();
  auto params = model_->params();
  tensor::load_params(params, path);
  // Same staleness rule as train(): loaded weights invalidate cached
  // embeddings and any index built from them.
  engine_->clear_cache();
  index_.reset();
}

}  // namespace gbm::core
