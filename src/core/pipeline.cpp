#include "core/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/artifact_store.h"
#include "core/parallel.h"
#include "decompiler/lift.h"
#include "frontend/frontend.h"
#include "ir/printer.h"
#include "tensor/serialize.h"

namespace gbm::core {

Artifact build_artifact(const data::SourceFile& file, const ArtifactOptions& options) {
  Artifact artifact;
  artifact.task_index = file.task_index;
  artifact.lang = file.lang;
  const auto reached_cap = [&artifact, &options] {
    if (artifact.stage < options.stop_after) return false;
    artifact.ok = true;
    return true;
  };
  try {
    auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
    opt::optimize(*module, options.opt_level);
    artifact.stage = Stage::IR;
    if (reached_cap()) return artifact;
    if (options.side == Side::SourceIR) {
      artifact.ir_instructions = module->instruction_count();
      if (options.keep_ir_text) artifact.ir_text = ir::print_module(*module);
      artifact.graph = graph::build_graph(*module);
    } else {
      const backend::VBinary binary = backend::compile_module(*module, options.style);
      artifact.binary_code_size = binary.code_size();
      artifact.stage = Stage::Binary;
      if (reached_cap()) return artifact;
      auto lifted = decompiler::lift(binary);
      artifact.stage = Stage::Decompiled;
      if (reached_cap()) return artifact;
      artifact.ir_instructions = lifted->instruction_count();
      if (options.keep_ir_text) artifact.ir_text = ir::print_module(*lifted);
      artifact.graph = graph::build_graph(*lifted);
    }
    artifact.stage = Stage::Graph;
    artifact.ok = true;
  } catch (const std::exception& e) {
    artifact.ok = false;
    artifact.error = e.what();
  }
  return artifact;
}

std::vector<Artifact> build_artifacts(const std::vector<data::SourceFile>& files,
                                      const ArtifactOptions& options, int threads) {
  std::vector<Artifact> out(files.size());
  parallel_for(
      files.size(),
      [&](std::size_t i) { out[i] = build_artifact(files[i], options); }, threads);
  return out;
}

std::string CorpusStats::memory_summary() const {
  char line[192];
  const double kib = 1024.0;
  std::snprintf(line, sizeof line,
                "graph_mem=%.1fKiB (pool=%.1fKiB) legacy=%.1fKiB (%.2fx) "
                "features=%ld distinct=%ld dedup=%.1fx",
                static_cast<double>(memory.interned_bytes()) / kib,
                static_cast<double>(memory.pool_bytes) / kib,
                static_cast<double>(memory.legacy_bytes) / kib,
                memory.interned_bytes() > 0
                    ? static_cast<double>(memory.legacy_bytes) /
                          static_cast<double>(memory.interned_bytes())
                    : 0.0,
                memory.feature_refs, memory.distinct_features,
                memory.dedup_ratio());
  return line;
}

CorpusStats corpus_stats(const std::vector<data::SourceFile>& files,
                         const ArtifactOptions& binary_options, int threads) {
  ArtifactOptions options = binary_options;
  options.side = Side::Binary;
  options.keep_ir_text = false;
  options.stop_after = Stage::Graph;  // memory accounting needs the graphs
  CorpusStats stats;
  stats.sources = static_cast<long>(files.size());
  // Chunked accumulation: only one chunk of graphs is live at a time (the
  // counters don't need the whole corpus in memory), while each chunk still
  // fans across the worker pool.
  constexpr std::size_t kChunk = 64;
  for (std::size_t begin = 0; begin < files.size(); begin += kChunk) {
    const std::vector<data::SourceFile> chunk(
        files.begin() + static_cast<long>(begin),
        files.begin() + static_cast<long>(std::min(files.size(), begin + kChunk)));
    for (const Artifact& a : build_artifacts(chunk, options, threads)) {
      stats.ir_ok += a.stage >= Stage::IR;
      stats.binaries += a.stage >= Stage::Binary;
      stats.decompiled += a.stage >= Stage::Decompiled;
      stats.graphs += a.stage >= Stage::Graph;
      if (a.stage >= Stage::Graph) stats.memory += a.graph.memory();
    }
  }
  return stats;
}

void MatchingSystem::fit_tokenizer(
    const std::vector<const graph::ProgramGraph*>& graphs) {
  // Interned corpus: per graph, count nodes per distinct feature id, then
  // merge by string across graphs. Weighted training sees exactly the
  // occurrence histogram of the old per-node corpus, in O(distinct strings).
  std::unordered_map<std::string, long> merged;
  for (const graph::ProgramGraph* g : graphs) {
    std::vector<long> count(g->pool.size(), 0);
    for (const auto& node : g->nodes) ++count[node.feature_id(config_.use_full_text)];
    for (std::uint32_t id = 0; id < g->pool.size(); ++id)
      if (count[id] > 0) merged[g->pool.str(id)] += count[id];
  }
  std::vector<std::pair<std::string, long>> corpus(merged.begin(), merged.end());
  tokenizer_ = tok::Tokenizer::train_weighted(corpus, config_.model.vocab);
  bag_len_ = config_.bag_len > 0 ? config_.bag_len
                                 : tok::Tokenizer::choose_bag_len_weighted(corpus);
}

gnn::EncodedGraph MatchingSystem::encode(const graph::ProgramGraph& g) const {
  if (!tokenizer_) throw std::logic_error("MatchingSystem: tokenizer not fitted");
  return gnn::encode_graph(g, *tokenizer_, bag_len_, config_.use_full_text);
}

void MatchingSystem::ensure_model() {
  if (!model_) {
    tensor::RNG rng(config_.seed);
    model_ = std::make_unique<gnn::GraphBinMatchModel>(config_.model, rng);
    engine_ = std::make_unique<EmbeddingEngine>(*model_);
  }
}

double MatchingSystem::train(const std::vector<gnn::PairSample>& pairs,
                             const gnn::TrainConfig& train_config) {
  ensure_model();
  const double loss = gnn::train_model(*model_, pairs, train_config);
  // Parameters changed: embeddings computed before this call are stale.
  engine_->clear_cache();
  index_.reset();
  return loss;
}

float MatchingSystem::score(const gnn::EncodedGraph& a,
                            const gnn::EncodedGraph& b) const {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  return model_->predict(a, b);
}

std::vector<float> MatchingSystem::score_pairs(
    const std::vector<gnn::PairSample>& pairs, int threads) const {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  return engine_->score_pairs(pairs, threads);
}

std::vector<Embedding> MatchingSystem::embed_all(
    const std::vector<const gnn::EncodedGraph*>& graphs, int threads) {
  if (!model_) throw std::logic_error("MatchingSystem: model not trained");
  std::vector<Embedding> embeddings = engine_->embed_batch(graphs, threads);
  index_ = std::make_unique<EmbeddingIndex>(*engine_);
  for (const Embedding& e : embeddings) index_->add(e);
  return embeddings;
}

std::vector<EmbeddingIndex::Hit> MatchingSystem::topk(const gnn::EncodedGraph& query,
                                                      int k, int prefilter,
                                                      QuerySide side) const {
  if (!index_) throw std::logic_error("MatchingSystem: no index (call embed_all)");
  return index_->topk(engine_->embed(query), k, prefilter, side);
}

const EmbeddingEngine& MatchingSystem::engine() const {
  if (!engine_) throw std::logic_error("MatchingSystem: model not trained");
  return *engine_;
}

namespace {

constexpr char kSnapshotMagic[5] = "GBMS";
constexpr char kLegacyParamsMagic[5] = "GBMT";
constexpr std::uint32_t kSnapshotVersion = 1;

void write_model_config(tensor::io::Writer& w, const gnn::ModelConfig& mc) {
  w.i32(mc.vocab);
  w.i64(mc.embed_dim);
  w.i64(mc.hidden);
  w.i32(mc.layers);
  w.f32(mc.dropout);
  w.u8(mc.interaction ? 1 : 0);
  w.i64(mc.max_position);
}

gnn::ModelConfig read_model_config(tensor::io::Reader& r) {
  gnn::ModelConfig mc;
  mc.vocab = r.i32();
  mc.embed_dim = r.i64();
  mc.hidden = r.i64();
  mc.layers = r.i32();
  mc.dropout = r.f32();
  mc.interaction = r.u8() != 0;
  mc.max_position = r.i64();
  return mc;
}

/// Empty when equal; otherwise names the first differing field.
std::string model_config_mismatch(const gnn::ModelConfig& have,
                                  const gnn::ModelConfig& snap) {
  const auto diff = [](const char* field, auto a, auto b) {
    return std::string(field) + " (this system: " + std::to_string(a) +
           ", snapshot: " + std::to_string(b) + ")";
  };
  if (have.vocab != snap.vocab) return diff("vocab", have.vocab, snap.vocab);
  if (have.embed_dim != snap.embed_dim)
    return diff("embed_dim", have.embed_dim, snap.embed_dim);
  if (have.hidden != snap.hidden) return diff("hidden", have.hidden, snap.hidden);
  if (have.layers != snap.layers) return diff("layers", have.layers, snap.layers);
  if (have.interaction != snap.interaction)
    return diff("interaction", have.interaction, snap.interaction);
  if (have.max_position != snap.max_position)
    return diff("max_position", have.max_position, snap.max_position);
  return "";
}

}  // namespace

void MatchingSystem::save(const std::string& path) const {
  if (!model_)
    throw std::logic_error("MatchingSystem::save: nothing to save (train or load first)");
  tensor::io::Writer w;
  w.magic(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  write_model_config(w, config_.model);
  w.u8(config_.use_full_text ? 1 : 0);
  w.i32(config_.bag_len);
  w.u64(config_.seed);
  w.i32(bag_len_);
  w.u8(tokenizer_ ? 1 : 0);
  if (tokenizer_) tokenizer_->write(w);
  tensor::write_params(w, model_->params());
  w.u8(index_ ? 1 : 0);
  if (index_) {
    std::vector<Embedding> embeddings;
    embeddings.reserve(index_->size());
    for (std::size_t id = 0; id < index_->size(); ++id)
      embeddings.push_back(index_->embedding(static_cast<int>(id)));
    write_embeddings(w, embeddings);
  }
  w.to_file(path);
}

void MatchingSystem::load(const std::string& path) {
  const auto bytes = tensor::io::read_file(path, "MatchingSystem::load");
  tensor::io::Reader r(bytes, "MatchingSystem::load(" + path + ")");
  if (r.peek_magic(kLegacyParamsMagic))
    r.fail(
        "this is a legacy params-only model file (GBMT), not a snapshot; it "
        "carries no tokenizer/config and cannot be loaded safely — re-save it "
        "with MatchingSystem::save(), which now writes self-contained "
        "snapshots");
  r.expect_magic(kSnapshotMagic);
  r.expect_version(kSnapshotVersion, "MatchingSystem snapshot");

  Config snap_cfg;
  snap_cfg.model = read_model_config(r);
  snap_cfg.use_full_text = r.u8() != 0;
  snap_cfg.bag_len = r.i32();
  snap_cfg.seed = r.u64();
  const int snap_fitted_bag_len = r.i32();
  std::optional<tok::Tokenizer> snap_tokenizer;
  if (r.u8() != 0) snap_tokenizer = tok::Tokenizer::read(r);

  // Mismatch checks BEFORE any state mutation, so a failed load leaves the
  // system exactly as it was.
  if (tokenizer_ && snap_tokenizer &&
      tokenizer_->fingerprint() != snap_tokenizer->fingerprint())
    r.fail("tokenizer/vocabulary mismatch: this system's fitted vocabulary (" +
           std::to_string(tokenizer_->vocab_size()) +
           " tokens) differs from the snapshot's (" +
           std::to_string(snap_tokenizer->vocab_size()) +
           " tokens); scores would be garbage. Load into a fresh "
           "MatchingSystem, which adopts the snapshot's tokenizer.");
  if (model_) {
    const std::string mismatch = model_config_mismatch(config_.model, snap_cfg.model);
    if (!mismatch.empty())
      r.fail("model architecture mismatch on " + mismatch +
             "; load into a fresh MatchingSystem");
  }
  if (snap_tokenizer && snap_tokenizer->vocab_size() > snap_cfg.model.vocab)
    r.fail("snapshot is internally inconsistent: tokenizer has " +
           std::to_string(snap_tokenizer->vocab_size()) +
           " tokens but the model embeds only " +
           std::to_string(snap_cfg.model.vocab));

  // Parse the remainder of the stream into locals BEFORE touching any
  // member, so a truncated/corrupt tail cannot leave the system half-
  // mutated (or the still-referenced old model destroyed).
  tensor::RNG rng(snap_cfg.seed);
  auto new_model = std::make_unique<gnn::GraphBinMatchModel>(snap_cfg.model, rng);
  auto params = new_model->params();
  const std::size_t restored = tensor::read_params(r, params);
  if (restored != params.size())
    r.fail("snapshot parameter set is incomplete: restored " +
           std::to_string(restored) + " of " + std::to_string(params.size()) +
           " model tensors");
  std::vector<Embedding> index_embeddings;
  const bool has_index = r.u8() != 0;
  if (has_index) index_embeddings = read_embeddings(r);
  const auto expected_dim =
      static_cast<std::size_t>(gnn::graph_embedding_dim(snap_cfg.model));
  for (const Embedding& e : index_embeddings)
    if (e.size() != expected_dim)
      r.fail("index embedding dimension " + std::to_string(e.size()) +
             " does not match the model's " + std::to_string(expected_dim));
  if (r.remaining() != 0)
    r.fail(std::to_string(r.remaining()) + " trailing bytes after the snapshot");

  // Commit: adopt the snapshot wholesale — a freshly constructed system
  // becomes a clone of the saved one.
  config_ = snap_cfg;
  bag_len_ = snap_fitted_bag_len;
  if (snap_tokenizer) tokenizer_ = std::move(snap_tokenizer);
  model_ = std::move(new_model);
  engine_ = std::make_unique<EmbeddingEngine>(*model_);
  index_.reset();
  if (has_index) {
    index_ = std::make_unique<EmbeddingIndex>(*engine_);
    for (Embedding& e : index_embeddings) index_->add(std::move(e));
  }
}

}  // namespace gbm::core
