// Content-addressed on-disk artifact store: compile once, serve many.
//
// The graph layer is the heaviest part of the pipeline (front-end →
// optimiser → backend → decompiler → ProGraML graph per file). An
// ArtifactStore keys each finished Artifact by a 64-bit FNV-1a hash of the
// source file identity plus the ArtifactOptions that produced it, and keeps
// one "GBMA" file per key in a flat directory. build_artifacts over a store
// becomes compile-on-miss / load-on-hit: a warm store replaces the whole
// toolchain run with one file read + graph deserialisation.
//
// Byte formats (all built on tensor/serialize's io primitives — 4-byte
// magic + u32 version + length-prefixed chunks; readers throw descriptive
// std::runtime_error on truncation, corruption, or unknown versions):
//   * "GBMG" — a finalized ProgramGraph: string pool, node array, per-kind
//     edge arrays (the CSR index is rebuilt on load);
//   * "GBME" — a gnn::EncodedGraph: shape, token bags, per-kind edge lists;
//   * "GBMA" — an Artifact: provenance fields + an embedded GBMG chunk;
//   * an embedding-matrix chunk (count + dim + row-major f32) used by
//     MatchingSystem snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace gbm::core {

// ---- byte formats ---------------------------------------------------------

/// Embeddable chunks (magic + version included, so each is self-describing).
void write_graph(tensor::io::Writer& w, const graph::ProgramGraph& g);
graph::ProgramGraph read_graph(tensor::io::Reader& r);
void write_encoded_graph(tensor::io::Writer& w, const gnn::EncodedGraph& g);
gnn::EncodedGraph read_encoded_graph(tensor::io::Reader& r);
void write_embeddings(tensor::io::Writer& w, const std::vector<Embedding>& embeddings);
std::vector<Embedding> read_embeddings(tensor::io::Reader& r);
void write_artifact(tensor::io::Writer& w, const Artifact& artifact);
Artifact read_artifact(tensor::io::Reader& r);

/// Whole-value helpers (serialize → bytes, deserialize ← bytes).
std::vector<std::uint8_t> serialize_graph(const graph::ProgramGraph& g);
graph::ProgramGraph deserialize_graph(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_encoded_graph(const gnn::EncodedGraph& g);
gnn::EncodedGraph deserialize_encoded_graph(const std::vector<std::uint8_t>& bytes);

// ---- the store ------------------------------------------------------------

class ArtifactStore {
 public:
  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ArtifactStore(std::string dir);

  /// Content key: FNV-1a over the source identity (text, language, unit
  /// name, task index) and every ArtifactOptions field that affects the
  /// produced artifact. Same inputs → same key on every machine.
  static std::uint64_t key(const data::SourceFile& file, const ArtifactOptions& options);

  const std::string& dir() const { return dir_; }
  std::string path_for(std::uint64_t key) const;
  bool contains(std::uint64_t key) const;

  /// Loads the stored artifact, or nullopt if the key is absent. A present
  /// but corrupted/truncated/wrong-version entry is quarantined — moved
  /// aside into `<dir>/quarantine/` (preserving the bytes for post-mortem)
  /// and reported as a miss so callers fall through to recompute; the
  /// `quarantined` counter in Stats records every such event. A cache must
  /// never take the service down: a poisoned entry costs one recompile, not
  /// an exception in the middle of a batch.
  std::optional<Artifact> load(std::uint64_t key) const;

  /// The quarantine directory for this store (`<dir>/quarantine`).
  std::string quarantine_dir() const { return dir_ + "/quarantine"; }

  /// Persists an artifact under `key` (atomic: temp file + rename).
  void put(std::uint64_t key, const Artifact& artifact) const;

  /// Shrinks the store to at most `max_bytes` of entry payload by deleting
  /// least-recently-used entries first. Recency is the file access time —
  /// load() explicitly refreshes the atime of every hit, so the order is
  /// robust even on relatime/noatime mounts — with the entry name as a
  /// deterministic tie-break. Quarantined files are untouched (they are
  /// post-mortem evidence, not cache). Returns the number of entries
  /// removed; Stats::evicted accumulates across calls. `max_bytes` 0 empties
  /// the store.
  std::size_t evict(std::uint64_t max_bytes) const;

  /// Deletes every entry of a store directory (flat layout plus the
  /// quarantine subdirectory) and the directory itself. No-op if the
  /// directory does not exist. The single cleanup primitive for
  /// tests/benches/examples that build scratch stores.
  static void destroy(const std::string& dir);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    /// Corrupt/truncated entries moved aside to quarantine_dir() by load().
    std::uint64_t quarantined = 0;
    /// Entries deleted by evict() to get back under its byte budget.
    std::uint64_t evicted = 0;
  };
  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            writes_.load(std::memory_order_relaxed),
            quarantined_.load(std::memory_order_relaxed),
            evicted_.load(std::memory_order_relaxed)};
  }

 private:
  std::string dir_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> writes_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  mutable std::atomic<std::uint64_t> evicted_{0};
};

/// Store-aware batch artifact production: per file, load on store hit,
/// compile and persist on miss. Output is identical (element-for-element) to
/// the storeless build_artifacts; `threads` has parallel.h semantics. Only
/// completed artifacts (`ok == true`) are persisted — failures recompile, so
/// a transient error never poisons the store.
std::vector<Artifact> build_artifacts(const std::vector<data::SourceFile>& files,
                                      const ArtifactOptions& options,
                                      const ArtifactStore& store, int threads = 0);

}  // namespace gbm::core
