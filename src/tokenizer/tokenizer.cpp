#include "tokenizer/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace gbm::tok {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

}  // namespace

std::vector<std::string> Tokenizer::split(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t') { ++i; continue; }
    if (c == '%') {
      // SSA value reference → [VAR] (paper: "convert all LLVM-IR variables
      // to a special token named [VAR]").
      ++i;
      while (i < n && word_char(text[i])) ++i;
      out.push_back("[VAR]");
      continue;
    }
    if (c == '@') {
      // Symbol reference: keep the name (library calls are informative).
      std::size_t start = i++;
      while (i < n && word_char(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
      continue;
    }
    if (word_char(c)) {
      std::size_t start = i;
      while (i < n && word_char(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
      continue;
    }
    // Punctuation: one token per character (=, commas, brackets, quotes).
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

Tokenizer Tokenizer::train(const std::vector<std::string>& corpus, int max_vocab) {
  std::unordered_map<std::string, long> freq;
  for (const auto& text : corpus) {
    for (auto& token : split(text)) ++freq[token];
  }
  std::vector<std::pair<std::string, long>> ranked(freq.begin(), freq.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  Tokenizer tk;
  tk.id_to_token_ = {"[PAD]", "[UNK]", "[VAR]"};
  for (const auto& [token, count] : ranked) {
    (void)count;
    if (static_cast<int>(tk.id_to_token_.size()) >= max_vocab) break;
    if (token == "[VAR]") continue;  // already a special
    tk.id_to_token_.push_back(token);
  }
  for (std::size_t id = 0; id < tk.id_to_token_.size(); ++id)
    tk.token_to_id_[tk.id_to_token_[id]] = static_cast<int>(id);
  return tk;
}

int Tokenizer::id_of(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

std::vector<int> Tokenizer::encode_all(const std::string& text) const {
  std::vector<int> out;
  for (auto& token : split(text)) out.push_back(id_of(token));
  return out;
}

std::vector<int> Tokenizer::encode(const std::string& text, int max_len) const {
  std::vector<int> ids = encode_all(text);
  ids.resize(static_cast<std::size_t>(max_len), kPad);
  return ids;
}

int Tokenizer::choose_bag_len(const std::vector<std::string>& corpus) {
  if (corpus.empty()) return 4;
  long total = 0;
  for (const auto& text : corpus) total += static_cast<long>(split(text).size());
  const double mean = static_cast<double>(total) / static_cast<double>(corpus.size());
  int len = 4;
  while (len < mean && len < 4096) len *= 2;
  return len;
}

}  // namespace gbm::tok
