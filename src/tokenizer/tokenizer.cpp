#include "tokenizer/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace gbm::tok {

namespace {

constexpr char kVocabMagic[5] = "GBMV";
constexpr std::uint32_t kVocabVersion = 1;

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

}  // namespace

std::vector<std::string> Tokenizer::split(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t') { ++i; continue; }
    if (c == '%') {
      // SSA value reference → [VAR] (paper: "convert all LLVM-IR variables
      // to a special token named [VAR]").
      ++i;
      while (i < n && word_char(text[i])) ++i;
      out.push_back("[VAR]");
      continue;
    }
    if (c == '@') {
      // Symbol reference: keep the name (library calls are informative).
      std::size_t start = i++;
      while (i < n && word_char(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
      continue;
    }
    if (word_char(c)) {
      std::size_t start = i;
      while (i < n && word_char(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
      continue;
    }
    // Punctuation: one token per character (=, commas, brackets, quotes).
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

Tokenizer Tokenizer::train_weighted(
    const std::vector<std::pair<std::string, long>>& corpus, int max_vocab) {
  std::unordered_map<std::string, long> freq;
  for (const auto& [text, count] : corpus) {
    for (auto& token : split(text)) freq[token] += count;
  }
  std::vector<std::pair<std::string, long>> ranked(freq.begin(), freq.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  Tokenizer tk;
  tk.id_to_token_ = {"[PAD]", "[UNK]", "[VAR]"};
  for (const auto& [token, count] : ranked) {
    (void)count;
    if (static_cast<int>(tk.id_to_token_.size()) >= max_vocab) break;
    if (token == "[VAR]") continue;  // already a special
    tk.id_to_token_.push_back(token);
  }
  for (std::size_t id = 0; id < tk.id_to_token_.size(); ++id)
    tk.token_to_id_[tk.id_to_token_[id]] = static_cast<int>(id);
  return tk;
}

Tokenizer Tokenizer::train(const std::vector<std::string>& corpus, int max_vocab) {
  std::vector<std::pair<std::string, long>> weighted;
  weighted.reserve(corpus.size());
  for (const auto& text : corpus) weighted.emplace_back(text, 1);
  return train_weighted(weighted, max_vocab);
}

int Tokenizer::id_of(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

std::vector<int> Tokenizer::encode_all(const std::string& text) const {
  std::vector<int> out;
  for (auto& token : split(text)) out.push_back(id_of(token));
  return out;
}

std::vector<int> Tokenizer::encode(const std::string& text, int max_len) const {
  std::vector<int> ids = encode_all(text);
  ids.resize(static_cast<std::size_t>(max_len), kPad);
  return ids;
}

int Tokenizer::choose_bag_len_weighted(
    const std::vector<std::pair<std::string, long>>& corpus) {
  long total = 0, occurrences = 0;
  for (const auto& [text, count] : corpus) {
    total += count * static_cast<long>(split(text).size());
    occurrences += count;
  }
  if (occurrences == 0) return 4;
  const double mean = static_cast<double>(total) / static_cast<double>(occurrences);
  int len = 4;
  while (len < mean && len < 4096) len *= 2;
  return len;
}

int Tokenizer::choose_bag_len(const std::vector<std::string>& corpus) {
  std::vector<std::pair<std::string, long>> weighted;
  weighted.reserve(corpus.size());
  for (const auto& text : corpus) weighted.emplace_back(text, 1);
  return choose_bag_len_weighted(weighted);
}

std::uint64_t Tokenizer::fingerprint() const {
  std::uint64_t h = tensor::io::kFnvOffset;
  const char delim = '\0';  // delimiter: {"ab","c"} != {"a","bc"}
  for (const auto& token : id_to_token_) {
    tensor::io::fnv1a(h, token.data(), token.size());
    tensor::io::fnv1a(h, &delim, 1);
  }
  return h;
}

void Tokenizer::write(tensor::io::Writer& w) const {
  w.magic(kVocabMagic);
  w.u32(kVocabVersion);
  w.u64(id_to_token_.size());
  for (const auto& token : id_to_token_) w.str(token);
}

Tokenizer Tokenizer::read(tensor::io::Reader& r) {
  r.expect_magic(kVocabMagic);
  r.expect_version(kVocabVersion, "tokenizer vocabulary");
  const std::uint64_t count = r.u64();
  if (count < 3) r.fail("tokenizer vocabulary missing the special tokens");
  // Plausibility before reserve: each token costs >= 4 bytes (length prefix).
  if (count > r.remaining() / 4)
    r.fail("truncated file (vocabulary of " + std::to_string(count) + " tokens)");
  Tokenizer tk;
  tk.id_to_token_.clear();
  tk.id_to_token_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) tk.id_to_token_.push_back(r.str());
  if (tk.id_to_token_[kPad] != "[PAD]" || tk.id_to_token_[kUnk] != "[UNK]" ||
      tk.id_to_token_[kVar] != "[VAR]")
    r.fail("tokenizer vocabulary has wrong special tokens");
  for (std::size_t id = 0; id < tk.id_to_token_.size(); ++id) {
    if (!tk.token_to_id_.emplace(tk.id_to_token_[id], static_cast<int>(id)).second)
      r.fail("tokenizer vocabulary has duplicate token '" + tk.id_to_token_[id] + "'");
  }
  return tk;
}

void Tokenizer::save(const std::string& path) const {
  tensor::io::Writer w;
  write(w);
  w.to_file(path);
}

Tokenizer Tokenizer::load(const std::string& path) {
  const auto bytes = tensor::io::read_file(path, "Tokenizer::load");
  tensor::io::Reader r(bytes, "Tokenizer::load(" + path + ")");
  return read(r);
}

}  // namespace gbm::tok
