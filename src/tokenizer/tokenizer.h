// Tokenizer for IR instruction text (node features), substituting for the
// HuggingFace GPT tokenizer of the paper (§III-C).
//
// Policy (paper-faithful):
//   * SSA value references (%v12, %arg0) are rewritten to the special
//     [VAR] token before vocabulary building;
//   * the vocabulary is trained on a corpus and capped (the paper uses
//     2048 entries; the cap is a parameter here);
//   * node feature vectors are the token-id sequences, truncated/padded to
//     the corpus-average token count rounded up to the next power of two
//     ([PAD] fill) — the paper's exact length rule;
//   * unknown tokens map to [UNK].
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace gbm::tok {

class Tokenizer {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kVar = 2;

  /// Trains a vocabulary over the corpus (most frequent tokens first),
  /// capped to `max_vocab` entries including the three specials.
  static Tokenizer train(const std::vector<std::string>& corpus, int max_vocab);

  /// Splits a feature string into raw word tokens with [VAR] rewriting.
  /// Exposed for testing and vocabulary inspection.
  static std::vector<std::string> split(const std::string& text);

  /// Encodes to exactly `max_len` ids (truncate / [PAD]-fill).
  std::vector<int> encode(const std::string& text, int max_len) const;
  /// Encodes without padding or truncation.
  std::vector<int> encode_all(const std::string& text) const;

  int vocab_size() const { return static_cast<int>(id_to_token_.size()); }
  int id_of(const std::string& token) const;
  const std::string& token_of(int id) const { return id_to_token_[id]; }

  /// The paper's feature-length rule: mean token count over the corpus,
  /// rounded up to the next power of two (at least 4).
  static int choose_bag_len(const std::vector<std::string>& corpus);

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace gbm::tok
