// Tokenizer for IR instruction text (node features), substituting for the
// HuggingFace GPT tokenizer of the paper (§III-C).
//
// Policy (paper-faithful):
//   * SSA value references (%v12, %arg0) are rewritten to the special
//     [VAR] token before vocabulary building;
//   * the vocabulary is trained on a corpus and capped (the paper uses
//     2048 entries; the cap is a parameter here);
//   * node feature vectors are the token-id sequences, truncated/padded to
//     the corpus-average token count rounded up to the next power of two
//     ([PAD] fill) — the paper's exact length rule;
//   * unknown tokens map to [UNK].
//
// Training has a weighted entry point (train_weighted / the weighted bag-
// length rule) so an interned corpus — each distinct feature string with its
// occurrence count — trains in O(distinct strings) yet produces exactly the
// vocabulary the per-occurrence corpus would. The vocabulary itself persists
// via save/load ("GBMV" format) or embeds into larger snapshots via
// write/read; fingerprint() is a content hash for fast mismatch detection.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/serialize.h"

namespace gbm::tok {

class Tokenizer {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kVar = 2;

  /// Trains a vocabulary over the corpus (most frequent tokens first),
  /// capped to `max_vocab` entries including the three specials.
  static Tokenizer train(const std::vector<std::string>& corpus, int max_vocab);
  /// Weighted form: each (string, count) pair stands for `count`
  /// occurrences. train(corpus, v) == train_weighted(histogram(corpus), v).
  static Tokenizer train_weighted(
      const std::vector<std::pair<std::string, long>>& corpus, int max_vocab);

  /// Splits a feature string into raw word tokens with [VAR] rewriting.
  /// Exposed for testing and vocabulary inspection.
  static std::vector<std::string> split(const std::string& text);

  /// Encodes to exactly `max_len` ids (truncate / [PAD]-fill).
  std::vector<int> encode(const std::string& text, int max_len) const;
  /// Encodes without padding or truncation.
  std::vector<int> encode_all(const std::string& text) const;

  int vocab_size() const { return static_cast<int>(id_to_token_.size()); }
  int id_of(const std::string& token) const;
  const std::string& token_of(int id) const { return id_to_token_[id]; }

  /// The paper's feature-length rule: mean token count over the corpus,
  /// rounded up to the next power of two (at least 4).
  static int choose_bag_len(const std::vector<std::string>& corpus);
  /// Weighted form of the same rule (mean over count-weighted occurrences).
  static int choose_bag_len_weighted(
      const std::vector<std::pair<std::string, long>>& corpus);

  /// FNV-1a content hash of the vocabulary (token strings in id order).
  /// Equal vocabularies — and only those, up to hash collision — agree.
  std::uint64_t fingerprint() const;

  /// Vocabulary persistence: "GBMV" magic + u32 version + token list.
  /// save/load are whole-file; write/read embed the same chunk into a
  /// larger stream (MatchingSystem snapshots). Throws std::runtime_error on
  /// I/O or format errors.
  void save(const std::string& path) const;
  static Tokenizer load(const std::string& path);
  void write(tensor::io::Writer& w) const;
  static Tokenizer read(tensor::io::Reader& r);

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace gbm::tok
