// Sharded retrieval index: the fleet-scale form of core::EmbeddingIndex.
//
// A ShardedIndex partitions the stored embeddings across N shards — by
// round-robin on insertion order (the default) or by explicit shard key —
// and answers topk by fanning the query across the shards over
// core::parallel, then merging the per-shard candidate lists. Everything
// about the merge is deterministic:
//
//   * the prefilter cosine is centered on the GLOBAL index mean (maintained
//     in insertion order, exactly as EmbeddingIndex does), never a
//     per-shard mean;
//   * each shard returns its shortlist prefix under the (cosine desc,
//     global id asc) total order, and the merged shortlist is the global
//     top-`prefilter` under the same order — the identical candidate SET a
//     single EmbeddingIndex would rerank;
//   * reranked hits sort by (score desc, global id asc).
//
// Parity guarantee: for any shard count and any assignment of ids to
// shards, `topk` returns bit-identical hits (ids, cosines, scores, order)
// to a single `EmbeddingIndex` holding the same embeddings in the same
// insertion order. Tested for shard counts {1, 2, 7} and k beyond any
// single shard's population.
//
// Persistence: `save(prefix)` writes one self-contained "GBMX" file per
// shard (<prefix>.shard<i>.gbmx) carrying the shard's global ids and its
// slice of the GBMS embedding section; `load` reassembles the index with
// the identical insertion order, so a reloaded index serves bit-identical
// topk. Shard files are independently copyable — a worker that owns one
// shard only needs its own file plus the engine snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/embedding_engine.h"

namespace gbm::serve {

using core::Embedding;

/// Re-export of core::QuerySide — the side of the asymmetric similarity
/// head the query plays, applied uniformly to every shard's rerank:
/// QuerySide::A scores score_head(query, candidate) (the indexed corpus
/// plays the graph-B role the model saw in training), QuerySide::B scores
/// score_head(candidate, query). A sharded query means N partial reranks,
/// but the side — like the centering mean — is a global property of the
/// query, never per-shard.
using core::QuerySide;

class ShardedIndex {
 public:
  /// `num_shards` >= 1 (throws std::invalid_argument otherwise).
  ShardedIndex(const core::EmbeddingEngine& engine, int num_shards);

  /// Stores an embedding under the next global id (insertion order,
  /// 0-based) in shard `id % num_shards` (round-robin). Returns the id.
  int add(Embedding embedding);
  /// Same, but places the embedding in an explicit shard (throws
  /// std::invalid_argument when `shard` is out of range). Use when ids
  /// have an affinity worth preserving (e.g. one shard per task).
  int add(Embedding embedding, int shard);
  void clear();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const { return locator_.size(); }
  std::size_t shard_size(int shard) const;
  /// Stored embedding by global id.
  const Embedding& embedding(int id) const;
  /// Shard holding global id `id`.
  int shard_of(int id) const;

  using Hit = core::EmbeddingIndex::Hit;

  /// Fan-out top-k: per-shard centered-cosine prefilter (parallel across
  /// shards, `threads` as in parallel.h), deterministic merge of the
  /// per-shard shortlists, exact score-head rerank of the merged shortlist,
  /// final (score desc, id asc) order. Parameters and defaults match
  /// EmbeddingIndex::topk, and so do the results — bit-identical for any
  /// shard count and any `threads`.
  std::vector<Hit> topk(const Embedding& query, int k, int prefilter = 0,
                        QuerySide side = QuerySide::A, int threads = 0) const;

  /// Writes one "GBMX" file per shard: shard_path(prefix, i) for every
  /// shard i in [0, num_shards). Atomic per file (temp + rename).
  void save(const std::string& prefix) const;
  /// Reads the per-shard files written by save() and rebuilds the index in
  /// the original insertion order (bit-identical topk). Throws
  /// std::runtime_error on a missing/truncated/corrupted shard file, on
  /// inconsistent shard headers, or when the shards do not cover exactly
  /// the ids 0..total-1.
  static ShardedIndex load(const core::EmbeddingEngine& engine,
                           const std::string& prefix);
  static std::string shard_path(const std::string& prefix, int shard);

 private:
  struct Shard {
    std::vector<int> ids;                 // global ids, insertion order
    std::vector<Embedding> embeddings;    // parallel to ids
    // Per-shard prefilter cache, centered on the GLOBAL index mean; every
    // shard's cache is invalidated by any add() (the mean moves). unique_ptr
    // keeps the mutex inside pinned while Shard stays movable.
    std::unique_ptr<core::CenteredRowsCache> centered;
  };

  const core::EmbeddingEngine* engine_;
  std::vector<Shard> shards_;
  std::vector<std::pair<int, int>> locator_;  // global id -> (shard, slot)
  Embedding sum_;  // global column sum, accumulated in insertion order
};

}  // namespace gbm::serve
