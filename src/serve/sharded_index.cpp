#include "serve/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "core/artifact_store.h"
#include "core/parallel.h"
#include "tensor/kernels/kernels.h"
#include "tensor/serialize.h"

namespace gbm::serve {

namespace {

constexpr char kShardMagic[5] = "GBMX";
constexpr std::uint32_t kShardVersion = 1;

// The exact total orders of EmbeddingIndex::topk — ties carry a unique id,
// so both are strict total orders and every sort below has ONE result.
bool cosine_order(const ShardedIndex::Hit& a, const ShardedIndex::Hit& b) {
  if (a.cosine != b.cosine) return a.cosine > b.cosine;
  return a.id < b.id;
}

bool score_order(const ShardedIndex::Hit& a, const ShardedIndex::Hit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

ShardedIndex::ShardedIndex(const core::EmbeddingEngine& engine, int num_shards)
    : engine_(&engine) {
  if (num_shards < 1)
    throw std::invalid_argument("ShardedIndex: num_shards must be >= 1, got " +
                                std::to_string(num_shards));
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (Shard& s : shards_) s.centered = std::make_unique<core::CenteredRowsCache>();
}

int ShardedIndex::add(Embedding embedding) {
  return add(std::move(embedding),
             static_cast<int>(locator_.size()) % num_shards());
}

int ShardedIndex::add(Embedding embedding, int shard) {
  if (shard < 0 || shard >= num_shards())
    throw std::invalid_argument("ShardedIndex::add: shard " + std::to_string(shard) +
                                " out of range [0, " + std::to_string(num_shards()) +
                                ")");
  if (static_cast<long>(embedding.size()) != engine_->dim())
    throw std::invalid_argument("ShardedIndex::add: embedding dim mismatch");
  // The global column sum accumulates in insertion (= global id) order,
  // independent of shard placement — the same float op sequence as a single
  // EmbeddingIndex, so the centering mean is bit-identical.
  if (sum_.empty()) sum_.assign(embedding.size(), 0.0f);
  for (std::size_t c = 0; c < embedding.size(); ++c) sum_[c] += embedding[c];
  const int id = static_cast<int>(locator_.size());
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  locator_.emplace_back(shard, static_cast<int>(s.ids.size()));
  s.ids.push_back(id);
  s.embeddings.push_back(std::move(embedding));
  // The global mean moved, so every shard's centered rows are stale — not
  // just the shard that received the row.
  for (Shard& sh : shards_) sh.centered->invalidate();
  return id;
}

void ShardedIndex::clear() {
  for (Shard& s : shards_) {
    s.ids.clear();
    s.embeddings.clear();
    s.centered->invalidate();
  }
  locator_.clear();
  sum_.clear();
}

std::size_t ShardedIndex::shard_size(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard)).ids.size();
}

const Embedding& ShardedIndex::embedding(int id) const {
  const auto [shard, slot] = locator_.at(static_cast<std::size_t>(id));
  return shards_[static_cast<std::size_t>(shard)]
      .embeddings[static_cast<std::size_t>(slot)];
}

int ShardedIndex::shard_of(int id) const {
  return locator_.at(static_cast<std::size_t>(id)).first;
}

std::vector<ShardedIndex::Hit> ShardedIndex::topk(const Embedding& query, int k,
                                                  int prefilter, QuerySide side,
                                                  int threads) const {
  if (k <= 0 || locator_.empty()) return {};
  if (prefilter <= 0) prefilter = std::max(4 * k, 32);
  const std::size_t shortlist =
      std::min<std::size_t>(locator_.size(),
                            static_cast<std::size_t>(std::max(prefilter, k)));
  if (query.size() != sum_.size())
    throw std::invalid_argument("ShardedIndex::topk: query dim mismatch");

  const float inv_n = 1.0f / static_cast<float>(locator_.size());
  Embedding centered_query(query.size());
  for (std::size_t c = 0; c < query.size(); ++c)
    centered_query[c] = query[c] - sum_[c] * inv_n;
  double q_norm = 0.0;
  for (const float v : centered_query) q_norm += static_cast<double>(v) * v;
  q_norm = std::sqrt(q_norm);

  // Per-shard prefilter, fanned across the worker budget. Every member of
  // the global top-`shortlist` is inside its own shard's top-`shortlist`
  // prefix, so the union of the prefixes contains the exact candidate set
  // a single EmbeddingIndex would rerank. Each shard's cosines come from one
  // fused kernel call over that shard's cached centered rows (centered on
  // the global mean, rebuilt lazily after an add).
  std::vector<std::vector<Hit>> per_shard(shards_.size());
  core::parallel_for(
      shards_.size(),
      [&](std::size_t s) {
        const Shard& shard = shards_[s];
        shard.centered->ensure(shard.embeddings, sum_, inv_n);
        std::vector<float> cos(shard.ids.size());
        tensor::kernels::active().centered_dot_batch(
            shard.centered->rows.data(), shard.centered->norms.data(),
            centered_query.data(), q_norm,
            static_cast<long>(shard.ids.size()),
            static_cast<long>(query.size()), cos.data());
        std::vector<Hit> hits(shard.ids.size());
        for (std::size_t i = 0; i < shard.ids.size(); ++i) {
          hits[i].id = shard.ids[i];
          hits[i].cosine = cos[i];
        }
        const std::size_t keep = std::min(hits.size(), shortlist);
        std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                          hits.end(), cosine_order);
        hits.resize(keep);
        per_shard[s] = std::move(hits);
      },
      threads);

  // Deterministic merge: the global top-`shortlist` under the same
  // (cosine desc, id asc) total order.
  std::vector<Hit> merged;
  for (auto& hits : per_shard)
    merged.insert(merged.end(), hits.begin(), hits.end());
  std::sort(merged.begin(), merged.end(), cosine_order);
  if (merged.size() > shortlist) merged.resize(shortlist);

  // Exact rerank through the asymmetric head. score() is pure, so the
  // per-candidate fan-out is bit-identical to the serial loop.
  core::parallel_for(
      merged.size(),
      [&](std::size_t i) {
        const Embedding& cand = embedding(merged[i].id);
        merged[i].score = side == QuerySide::A ? engine_->score(query, cand)
                                               : engine_->score(cand, query);
      },
      threads);
  std::sort(merged.begin(), merged.end(), score_order);
  if (merged.size() > static_cast<std::size_t>(k))
    merged.resize(static_cast<std::size_t>(k));
  return merged;
}

std::string ShardedIndex::shard_path(const std::string& prefix, int shard) {
  return prefix + ".shard" + std::to_string(shard) + ".gbmx";
}

void ShardedIndex::save(const std::string& prefix) const {
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    tensor::io::Writer w;
    w.magic(kShardMagic);
    w.u32(kShardVersion);
    w.u32(static_cast<std::uint32_t>(s));
    w.u32(static_cast<std::uint32_t>(num_shards()));
    w.u64(locator_.size());  // total ids across every shard, for validation
    w.ints(shard.ids);
    core::write_embeddings(w, shard.embeddings);
    w.to_file(shard_path(prefix, s));
  }
}

ShardedIndex ShardedIndex::load(const core::EmbeddingEngine& engine,
                                const std::string& prefix) {
  struct Part {
    int shard = 0;
    std::vector<int> ids;
    std::vector<Embedding> embeddings;
  };
  std::vector<Part> parts;
  int num_shards = 0;
  std::uint64_t total = 0;
  for (int s = 0; s == 0 || s < num_shards; ++s) {
    const std::string path = shard_path(prefix, s);
    const auto bytes = tensor::io::read_file(path, "ShardedIndex::load");
    tensor::io::Reader r(bytes, "ShardedIndex::load(" + path + ")");
    r.expect_magic(kShardMagic);
    r.expect_version(kShardVersion, "sharded-index shard");
    const int shard_index = static_cast<int>(r.u32());
    const int shards_in_file = static_cast<int>(r.u32());
    const std::uint64_t total_in_file = r.u64();
    if (shard_index != s)
      r.fail("file claims shard " + std::to_string(shard_index) + ", expected " +
             std::to_string(s));
    if (s == 0) {
      if (shards_in_file < 1)
        r.fail("invalid shard count " + std::to_string(shards_in_file));
      num_shards = shards_in_file;
      total = total_in_file;
    } else if (shards_in_file != num_shards || total_in_file != total) {
      r.fail("inconsistent shard header (shards " + std::to_string(shards_in_file) +
             "/" + std::to_string(num_shards) + ", total " +
             std::to_string(total_in_file) + "/" + std::to_string(total) + ")");
    }
    Part part;
    part.shard = s;
    part.ids = r.ints();
    part.embeddings = core::read_embeddings(r);
    if (part.ids.size() != part.embeddings.size())
      r.fail("id/embedding count mismatch (" + std::to_string(part.ids.size()) +
             " ids, " + std::to_string(part.embeddings.size()) + " embeddings)");
    if (r.remaining() != 0)
      r.fail(std::to_string(r.remaining()) + " trailing bytes after the shard");
    parts.push_back(std::move(part));
  }

  // The header's total must equal the ids actually read (each cost 4 bytes
  // of validated stream), so a corrupted total cannot drive the allocation
  // below into bad_alloc territory — it fails descriptively instead.
  std::uint64_t counted = 0;
  for (const Part& part : parts) counted += part.ids.size();
  if (counted != total)
    throw std::runtime_error("ShardedIndex::load(" + prefix + "): shard files hold " +
                             std::to_string(counted) +
                             " ids but the header claims " + std::to_string(total));

  // Reassemble in global id order: add() then replays the exact insertion
  // sequence, so the centering sum — and therefore topk — is bit-identical
  // to the index that was saved.
  std::vector<std::pair<int, const Embedding*>> by_id(total, {-1, nullptr});
  for (const Part& part : parts) {
    for (std::size_t i = 0; i < part.ids.size(); ++i) {
      const int id = part.ids[i];
      if (id < 0 || static_cast<std::uint64_t>(id) >= total)
        throw std::runtime_error("ShardedIndex::load(" + prefix + "): global id " +
                                 std::to_string(id) + " out of range [0, " +
                                 std::to_string(total) + ")");
      if (by_id[static_cast<std::size_t>(id)].second != nullptr)
        throw std::runtime_error("ShardedIndex::load(" + prefix + "): global id " +
                                 std::to_string(id) + " appears in two shards");
      by_id[static_cast<std::size_t>(id)] = {part.shard, &part.embeddings[i]};
    }
  }
  ShardedIndex index(engine, num_shards);
  for (std::uint64_t id = 0; id < total; ++id) {
    const auto& [shard, emb] = by_id[id];
    if (emb == nullptr)
      throw std::runtime_error("ShardedIndex::load(" + prefix +
                               "): no shard holds global id " + std::to_string(id));
    index.add(*emb, shard);
  }
  return index;
}

}  // namespace gbm::serve
