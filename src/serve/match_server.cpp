#include "serve/match_server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace gbm::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

core::MatchingSystem loaded_system(const std::string& snapshot_path) {
  core::MatchingSystem system{core::MatchingSystem::Config{}};
  system.load(snapshot_path);
  return system;
}

/// Empty when `g` is a graph the batched embed pass accepts; otherwise the
/// reason it must be refused at admission. Everything the GNN forward
/// indexes with is covered (token ids into the embedding table, edge
/// endpoints into the node rows, positions into the position table), so a
/// malformed graph from the public submit_encoded API can never throw — or
/// index out of bounds — inside a batch shared with innocent requests.
std::string query_graph_error(const gnn::EncodedGraph& g, int vocab) {
  if (g.num_nodes <= 0) return "empty query graph";
  if (g.bag_len <= 0) return "non-positive bag length";
  if (g.tokens.size() != static_cast<std::size_t>(g.num_nodes) *
                             static_cast<std::size_t>(g.bag_len))
    return "token array does not match num_nodes * bag_len";
  for (int t : g.tokens)
    if (t < 0 || t >= vocab) return "token id out of vocabulary range";
  for (const auto& list : g.edges) {
    if (list.dst.size() != list.src.size() || list.pos.size() != list.src.size())
      return "edge list with mismatched src/dst/pos lengths";
    for (long e = 0; e < list.size(); ++e) {
      if (list.src[e] < 0 || list.src[e] >= g.num_nodes || list.dst[e] < 0 ||
          list.dst[e] >= g.num_nodes)
        return "edge endpoint out of node range";
      if (list.pos[e] < 0) return "negative edge position";
    }
  }
  return "";
}

}  // namespace

MatchServer::MatchServer(const std::string& snapshot_path, MatchServerConfig config)
    : MatchServer(loaded_system(snapshot_path), std::move(config)) {}

MatchServer::MatchServer(core::MatchingSystem system, MatchServerConfig config)
    : config_(std::move(config)), system_(std::move(system)) {
  if (config_.num_shards < 1)
    throw std::invalid_argument("MatchServer: num_shards must be >= 1, got " +
                                std::to_string(config_.num_shards));
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  const core::EmbeddingIndex* snapshot_index = system_.index();
  if (snapshot_index == nullptr)
    throw std::runtime_error(
        "MatchServer: the snapshot carries no retrieval index — embed_all the "
        "corpus before save()");
  // Re-partition the snapshot's embedding section round-robin across the
  // shards. Insertion order is global id order, so every shard count serves
  // bit-identical hits (ShardedIndex parity guarantee).
  index_ = std::make_unique<ShardedIndex>(system_.engine(), config_.num_shards);
  for (std::size_t id = 0; id < snapshot_index->size(); ++id)
    index_->add(snapshot_index->embedding(static_cast<int>(id)));
  // The sharded index now owns the only copy the server queries; drop the
  // snapshot's flat index so the corpus embeddings are not resident twice.
  system_.drop_index();
  if (!config_.store_dir.empty()) store_.emplace(config_.store_dir);
  stats_.batch_size_hist.assign(config_.max_batch, 0);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MatchServer::~MatchServer() { shutdown(); }

void MatchServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    draining_ = true;
  }
  work_ready_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

MatchResult MatchServer::submit(const Query& query) {
  return submit_async(query).get();
}

std::future<MatchResult> MatchServer::submit_async(const Query& query) {
  const auto t0 = Clock::now();
  data::SourceFile file;
  file.source = query.source;
  file.lang = query.lang;
  file.unit_name = "Query";
  file.task_index = -1;
  core::ArtifactOptions options = config_.artifact_options;
  options.side = query.side;
  options.keep_ir_text = false;
  options.stop_after = core::Stage::Graph;

  core::Artifact artifact;
  if (store_) {
    const std::uint64_t key = core::ArtifactStore::key(file, options);
    if (auto cached = store_->load(key)) {
      artifact = std::move(*cached);
    } else {
      artifact = core::build_artifact(file, options);
      if (artifact.ok) store_->put(key, artifact);
    }
  } else {
    artifact = core::build_artifact(file, options);
  }

  if (!artifact.ok) {
    std::promise<MatchResult> promise;
    MatchResult result;
    result.error = "compile failed: " + artifact.error;
    promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed;
      stats_.compile_us += us_between(t0, Clock::now());
    }
    return promise.get_future();
  }

  gnn::EncodedGraph encoded = system_.encode(artifact.graph);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.compile_us += us_between(t0, Clock::now());
  }
  return submit_encoded(std::move(encoded), query.query_side, query.k);
}

std::future<MatchResult> MatchServer::submit_encoded(gnn::EncodedGraph encoded,
                                                     QuerySide side, int k) {
  Pending pending;
  pending.encoded = std::move(encoded);
  pending.side = side;
  pending.k = k;
  std::future<MatchResult> future = pending.promise.get_future();
  // Validate at admission: the dispatcher must never meet a graph the
  // batched embed pass would reject (queries answer with error results,
  // never exceptions — and never poison the requests sharing their batch).
  const std::string graph_error =
      query_graph_error(pending.encoded, system_.config().model.vocab);
  if (!graph_error.empty()) {
    MatchResult result;
    result.error = graph_error;
    pending.promise.set_value(std::move(result));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.failed;
    return future;
  }
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (accepting_) {
      queue_.push_back(std::move(pending));
      admitted = true;
      // Count the admission while still holding mu_: the dispatcher cannot
      // pop (and complete) this request before `submitted` includes it, so
      // stats() never observes completed > submitted.
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.submitted;
      stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
    }
  }
  if (admitted) {
    work_ready_.notify_one();
  } else {
    MatchResult result;
    result.error = "server is shut down";
    pending.promise.set_value(std::move(result));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
  }
  return future;
}

void MatchServer::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (draining_) return;  // drained: every admitted request is answered
      continue;
    }
    // Micro-batching window: after the first request of a batch arrives,
    // wait up to max_wait_us for the batch to fill. Draining skips the
    // window — shutdown latency over coalescing.
    if (config_.max_wait_us > 0 && queue_.size() < config_.max_batch && !draining_) {
      const auto deadline =
          Clock::now() + std::chrono::microseconds(config_.max_wait_us);
      work_ready_.wait_until(lock, deadline, [this] {
        return draining_ || queue_.size() >= config_.max_batch;
      });
    }
    std::vector<Pending> batch;
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    answer_batch(std::move(batch));
    lock.lock();
  }
}

void MatchServer::answer_batch(std::vector<Pending> batch) try {
  const auto t0 = Clock::now();
  // One content-deduped GraphBatch embed pass for the whole batch: the
  // engine dedups identical queries by content hash and chunks the misses
  // into batched GNN passes.
  std::vector<const gnn::EncodedGraph*> graphs;
  graphs.reserve(batch.size());
  for (const Pending& p : batch) graphs.push_back(&p.encoded);
  const std::vector<Embedding> embeddings =
      system_.engine().embed_batch(graphs, config_.threads);
  const auto t1 = Clock::now();
  std::vector<MatchResult> results(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].ok = true;
    results[i].hits = index_->topk(embeddings[i], batch[i].k, config_.prefilter,
                                   batch[i].side, config_.threads);
  }
  const auto t2 = Clock::now();
  {
    // Counters first, promises second: once a client's submit() returns,
    // its completion is already visible in stats().
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    ++stats_.batch_size_hist[batch.size() - 1];
    stats_.completed += batch.size();
    stats_.embed_us += us_between(t0, t1);
    stats_.topk_us += us_between(t1, t2);
  }
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].promise.set_value(std::move(results[i]));
} catch (const std::exception& e) {
  // A throw on the dispatcher thread must never escape (it would
  // std::terminate the process and abandon every in-flight promise): the
  // whole batch answers with an error result instead.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed += batch.size();
  }
  for (Pending& p : batch) {
    MatchResult result;
    result.error = std::string("internal error: ") + e.what();
    p.promise.set_value(std::move(result));
  }
}

ServerStats MatchServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.queue_depth = queue_.size();
  }
  if (store_) out.store = store_->stats();
  out.cache = system_.engine().cache_stats();
  return out;
}

}  // namespace gbm::serve
