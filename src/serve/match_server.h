// Long-lived matching service over one MatchingSystem snapshot.
//
// A MatchServer turns the batch library into the serve shape of the
// paper's headline use cases (§I — vulnerability search, reverse
// engineering): load a snapshot once, then answer a concurrent stream of
// (source|binary) queries with top-k matches against the snapshot's
// retrieval index. Three moving parts:
//
//   * admission — `submit`/`submit_async` run the per-query toolchain
//     (compile → graph → encode) on the CALLER's thread, optionally
//     through a content-addressed ArtifactStore so repeated query sources
//     skip the toolchain entirely, then enqueue the encoded graph;
//   * micro-batching dispatcher — one background thread coalesces waiting
//     requests into batches (up to `max_batch` requests, waiting at most
//     `max_wait_us` after the first arrival) and embeds each batch with
//     ONE content-deduped GraphBatch pass through the engine, so N
//     concurrent clients cost one GNN dispatch, not N;
//   * sharded fan-out — every embedded query asks the ShardedIndex, which
//     fans the prefilter across shards and merges deterministically.
//
// Determinism: batched embedding is bit-identical to embedding a graph
// alone (the GraphBatch union never mixes accumulations across member
// graphs), and ShardedIndex::topk is bit-identical to a single index — so
// a query's result does not depend on which requests it happened to share
// a batch with, on the shard count, or on timing. Concurrent execution
// returns exactly what serial one-query-at-a-time execution returns.
//
// Shutdown: `shutdown()` (and the destructor) stops admission — later
// submits are rejected with an error result, never an exception — then
// drains every already-admitted request before joining the dispatcher, so
// no accepted query is ever dropped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_store.h"
#include "core/pipeline.h"
#include "serve/sharded_index.h"

namespace gbm::serve {

struct MatchServerConfig {
  /// Shards the snapshot's index embeddings are re-partitioned into
  /// (round-robin by id). Must be >= 1.
  int num_shards = 4;
  /// Dispatcher coalescing cap: at most this many requests per batched
  /// embed pass. 1 degenerates to one-at-a-time handling. Values < 1
  /// clamp to 1.
  std::size_t max_batch = 16;
  /// How long the dispatcher waits for more requests after the first one
  /// of a batch arrives (microseconds). 0 dispatches immediately.
  long max_wait_us = 2000;
  /// Worker budget for the batched embed pass and the per-shard topk
  /// fan-out (parallel.h semantics: <= 0 means all hardware threads).
  int threads = 0;
  /// Per-query prefilter passed to ShardedIndex::topk (0 → index default).
  int prefilter = 0;
  /// Non-empty → open an ArtifactStore there and use it as the compile
  /// cache for query sources (compile-on-miss / load-on-hit, corrupt
  /// entries quarantined). Empty disables the store.
  std::string store_dir;
  /// Toolchain options for query compilation. `side` and `stop_after` are
  /// overridden per query / by the server.
  core::ArtifactOptions artifact_options;
};

/// One answered query. `ok == false` carries the toolchain or admission
/// error; hits are the sharded top-k otherwise.
struct MatchResult {
  bool ok = false;
  std::string error;
  std::vector<ShardedIndex::Hit> hits;
};

/// Monotonic service counters. All latencies are accumulated wall time in
/// microseconds; divide by the matching counter for a mean.
struct ServerStats {
  std::uint64_t submitted = 0;   // admitted into the queue
  std::uint64_t completed = 0;   // answered with ok == true
  std::uint64_t failed = 0;      // answered with ok == false (compile errors)
  std::uint64_t rejected = 0;    // refused: server was shut down
  std::uint64_t batches = 0;     // dispatched embed passes
  /// batch_size_hist[b-1] = number of batches holding exactly b requests
  /// (size max_batch).
  std::vector<std::uint64_t> batch_size_hist;
  std::size_t queue_depth = 0;       // requests waiting right now
  std::size_t peak_queue_depth = 0;  // high-water mark
  /// Compile cache (zeros when no store_dir was configured). `hits` are
  /// queries that skipped the toolchain entirely.
  core::ArtifactStore::Stats store;
  /// Engine embedding cache: hits are queries (or batch duplicates) that
  /// skipped the GNN pass.
  core::EmbeddingCache::Stats cache;
  std::uint64_t compile_us = 0;  // admission: toolchain + encode, per query
  std::uint64_t embed_us = 0;    // dispatcher: batched GNN passes
  std::uint64_t topk_us = 0;     // dispatcher: sharded fan-out + merge
};

class MatchServer {
 public:
  struct Query {
    std::string source;
    frontend::Lang lang = frontend::Lang::C;
    /// Which artifact of the source enters the matcher (SourceIR compiles
    /// to IR; Binary compiles, then lifts the binary back).
    core::Side side = core::Side::SourceIR;
    /// Side of the asymmetric head the query plays (see QuerySide docs in
    /// serve/sharded_index.h).
    QuerySide query_side = QuerySide::A;
    int k = 5;
  };

  /// Loads the snapshot (which must carry a retrieval index — train,
  /// embed_all, save) and starts the dispatcher. Throws std::runtime_error
  /// on a bad snapshot or one without an index.
  MatchServer(const std::string& snapshot_path, MatchServerConfig config = {});
  /// Same, over an already-loaded system (takes ownership). For callers
  /// that just built the system in-process (tests, benches).
  MatchServer(core::MatchingSystem system, MatchServerConfig config = {});
  ~MatchServer();  // shutdown(): drains, then joins

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Compiles + encodes on the calling thread, enqueues, and blocks for
  /// the result. Safe to call from any number of threads.
  MatchResult submit(const Query& query);
  /// Non-blocking variant: the future resolves when the dispatcher has
  /// answered (or immediately, on compile failure / rejection).
  std::future<MatchResult> submit_async(const Query& query);
  /// Pre-encoded admission: skips the toolchain, enqueues the graph
  /// directly. The entry point for callers that already hold encoded
  /// graphs (benches isolating the embed+topk path).
  std::future<MatchResult> submit_encoded(gnn::EncodedGraph encoded,
                                          QuerySide side, int k);

  /// Stops admission, drains every already-admitted request, joins the
  /// dispatcher. Idempotent; called by the destructor.
  void shutdown();

  ServerStats stats() const;
  const core::MatchingSystem& system() const { return system_; }
  const ShardedIndex& index() const { return *index_; }

 private:
  struct Pending {
    gnn::EncodedGraph encoded;
    QuerySide side = QuerySide::A;
    int k = 0;
    std::promise<MatchResult> promise;
  };

  void dispatcher_loop();
  void answer_batch(std::vector<Pending> batch);

  MatchServerConfig config_;
  core::MatchingSystem system_;
  std::optional<core::ArtifactStore> store_;
  std::unique_ptr<ShardedIndex> index_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<Pending> queue_;
  bool accepting_ = true;
  bool draining_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::thread dispatcher_;  // initialised last, after every field it reads
};

}  // namespace gbm::serve
