#include "gnn/trainer.h"

#include <cstdio>
#include <numeric>

#include "core/embedding_engine.h"

namespace gbm::gnn {

using tensor::Adam;
using tensor::AdamConfig;
using tensor::RNG;
using tensor::Tensor;

double train_model(GraphBinMatchModel& model, const std::vector<PairSample>& train,
                   const TrainConfig& config) {
  RNG rng(config.seed);
  AdamConfig adam_cfg;
  adam_cfg.lr = config.lr;
  Adam adam(model.params(), adam_cfg);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    long batch_count = 0;
    std::size_t i = 0;
    while (i < order.size()) {
      adam.zero_grad();
      double batch_loss = 0.0;
      int in_batch = 0;
      for (; in_batch < config.batch_size && i < order.size(); ++in_batch, ++i) {
        const PairSample& sample = train[order[i]];
        const Tensor logit =
            model.forward_logit(*sample.a, *sample.b, /*training=*/true, rng);
        const Tensor loss = tensor::bce_with_logits(logit, {sample.label});
        // Scale so gradient accumulation averages over the batch.
        const Tensor scaled = tensor::scale(loss, 1.0f / config.batch_size);
        scaled.backward();
        batch_loss += loss.item();
      }
      if (config.grad_clip > 0) tensor::clip_grad_norm(model.params(), config.grad_clip);
      adam.step();
      epoch_loss += batch_loss / std::max(in_batch, 1);
      ++batch_count;
    }
    last_epoch_loss = epoch_loss / std::max<long>(batch_count, 1);
    if (config.on_epoch) config.on_epoch(epoch, last_epoch_loss);
    if (config.verbose)
      std::fprintf(stderr, "[train] epoch %d/%d loss=%.4f\n", epoch + 1,
                   config.epochs, last_epoch_loss);
  }
  return last_epoch_loss;
}

std::vector<float> predict_scores(const GraphBinMatchModel& model,
                                  const std::vector<PairSample>& pairs,
                                  int threads) {
  core::EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 0;  // one-shot batch: nothing to reuse across calls
  return core::EmbeddingEngine(model, cfg).score_pairs(pairs, threads);
}

}  // namespace gbm::gnn
