#include "gnn/trainer.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "core/embedding_engine.h"
#include "core/parallel.h"

namespace gbm::gnn {

using tensor::Adam;
using tensor::AdamConfig;
using tensor::NamedParam;
using tensor::RNG;
using tensor::Tensor;

// ---- GradStore ------------------------------------------------------------

void GradStore::capture(const std::vector<NamedParam>& params) {
  grads.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto impl = params[i].tensor.impl();
    impl->ensure_grad();
    grads[i] = impl->grad;
  }
}

void GradStore::add_to(const std::vector<NamedParam>& params) const {
  if (grads.size() != params.size())
    throw std::invalid_argument("GradStore::add_to: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto impl = params[i].tensor.impl();
    impl->ensure_grad();
    if (grads[i].size() != impl->grad.size())
      throw std::invalid_argument("GradStore::add_to: parameter shape mismatch");
    for (std::size_t j = 0; j < grads[i].size(); ++j) impl->grad[j] += grads[i][j];
  }
}

// ---- data-parallel training ------------------------------------------------

namespace {

// A worker slot: forward/backward builds autograd state on the slot's own
// parameter tensors, so concurrent shards never share mutable gradients.
// Slot 0 aliases the trained model; extra slots own deep replicas whose
// values are refreshed from the master after every optimiser step.
struct Slot {
  GraphBinMatchModel* model = nullptr;
  std::unique_ptr<GraphBinMatchModel> owned;
  std::vector<NamedParam> params;
};

std::unique_ptr<GraphBinMatchModel> clone_model(const GraphBinMatchModel& src) {
  RNG init(1);  // throwaway init — values are overwritten below
  auto copy = std::make_unique<GraphBinMatchModel>(src.config(), init);
  const auto src_params = src.params();
  auto dst_params = copy->params();
  for (std::size_t i = 0; i < src_params.size(); ++i)
    dst_params[i].tensor.mutable_data() = src_params[i].tensor.data();
  return copy;
}

// One shard's forward/backward: one GraphBatch pass over the shard's unique
// graphs, the similarity head over all shard pairs at once, then backward of
// the shard loss scaled by `loss_scale` (= shard size / actual batch size,
// so that summing shard gradients yields the gradient of the batch mean).
// The slot's gradients are zeroed on entry — slot 0 is the master model,
// whose buffers still hold the previous batch's clipped sum after
// adam.step() — and the shard's own gradients end up detached in `store`.
// Returns the unscaled mean loss over the shard.
double run_shard(const GraphBinMatchModel& model,
                 const std::vector<NamedParam>& params,
                 const std::vector<const PairSample*>& samples, float loss_scale,
                 RNG& rng, GradStore& store) {
  for (const auto& p : params) {
    tensor::Tensor t = p.tensor;  // shared handle; zeroes the same buffer
    t.zero_grad();
  }
  std::unordered_map<const EncodedGraph*, int> row_of;
  std::vector<const EncodedGraph*> uniq;
  std::vector<int> a_rows, b_rows;
  std::vector<float> labels;
  a_rows.reserve(samples.size());
  b_rows.reserve(samples.size());
  labels.reserve(samples.size());
  for (const PairSample* s : samples) {
    for (const EncodedGraph* g : {s->a, s->b}) {
      if (row_of.emplace(g, static_cast<int>(uniq.size())).second) uniq.push_back(g);
    }
    a_rows.push_back(row_of.at(s->a));
    b_rows.push_back(row_of.at(s->b));
    labels.push_back(s->label);
  }
  // A GraphBatch needs one bag length, but a shard's pairs may mix encodings
  // (e.g. graphs from two tokenizer pipelines): batch per bag length in
  // first-appearance order and stack the per-group embedding rows. With a
  // single bag length this is one batch and the concat is a no-op.
  std::vector<std::vector<int>> groups;  // indices into uniq
  std::unordered_map<int, std::size_t> group_of;
  for (std::size_t u = 0; u < uniq.size(); ++u) {
    const auto [it, inserted] = group_of.emplace(uniq[u]->bag_len, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<int>(u));
  }
  std::vector<int> stacked_row(uniq.size());
  std::vector<Tensor> group_rows;
  group_rows.reserve(groups.size());
  int next_row = 0;
  for (const auto& group : groups) {
    std::vector<const EncodedGraph*> members;
    members.reserve(group.size());
    for (int u : group) {
      members.push_back(uniq[static_cast<std::size_t>(u)]);
      stacked_row[static_cast<std::size_t>(u)] = next_row++;
    }
    group_rows.push_back(
        model.embed_batch(make_graph_batch(members), /*training=*/true, rng));
  }
  const Tensor embeddings = group_rows.size() == 1
                                ? group_rows.front()
                                : tensor::concat_rows(group_rows);
  for (int& r : a_rows) r = stacked_row[static_cast<std::size_t>(r)];
  for (int& r : b_rows) r = stacked_row[static_cast<std::size_t>(r)];
  const Tensor ga = tensor::index_rows(embeddings, a_rows);
  const Tensor gb = tensor::index_rows(embeddings, b_rows);
  const Tensor logits = model.score_head(ga, gb, /*training=*/true, rng);
  const Tensor loss = tensor::bce_with_logits(logits, labels);
  tensor::scale(loss, loss_scale).backward();
  store.capture(params);
  return loss.item();
}

}  // namespace

double train_model(GraphBinMatchModel& model, const std::vector<PairSample>& train,
                   const TrainConfig& config) {
  RNG rng(config.seed);
  AdamConfig adam_cfg;
  adam_cfg.lr = config.lr;
  const std::vector<NamedParam> master_params = model.params();
  Adam adam(master_params, adam_cfg);

  const int micro = std::max(1, config.micro_batch);
  const int batch_size = std::max(1, config.batch_size);
  const std::size_t largest_batch =
      std::min<std::size_t>(train.size(), static_cast<std::size_t>(batch_size));
  const int max_shards =
      static_cast<int>((largest_batch + static_cast<std::size_t>(micro) - 1) /
                       static_cast<std::size_t>(micro));
  const int workers =
      std::max(1, std::min(core::resolve_threads(config.threads), max_shards));

  std::vector<Slot> slots(static_cast<std::size_t>(workers));
  slots[0].model = &model;
  slots[0].params = master_params;
  for (int w = 1; w < workers; ++w) {
    auto& slot = slots[static_cast<std::size_t>(w)];
    slot.owned = clone_model(model);
    slot.model = slot.owned.get();
    slot.params = slot.owned->params();
  }
  std::vector<int> free_slots;
  std::mutex slot_mu;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  struct Shard {
    std::vector<const PairSample*> samples;
    RNG rng{0};
    GradStore store;
    double loss = 0.0;  // unscaled mean over the shard
  };

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    long batch_count = 0;
    std::size_t batch_begin = 0;
    while (batch_begin < order.size()) {
      // Batch extent up front: loss and gradients scale by the ACTUAL batch
      // size, so a short final batch is not under-weighted.
      const std::size_t batch_end = std::min(
          order.size(), batch_begin + static_cast<std::size_t>(batch_size));
      const std::size_t batch_n = batch_end - batch_begin;
      // Shard boundaries and per-shard RNG streams are functions of the
      // batch alone — never of the worker count — so any `threads` value
      // replays the identical computation.
      std::vector<Shard> shards;
      for (std::size_t begin = batch_begin; begin < batch_end;
           begin += static_cast<std::size_t>(micro)) {
        Shard shard;
        const std::size_t end =
            std::min(batch_end, begin + static_cast<std::size_t>(micro));
        for (std::size_t i = begin; i < end; ++i)
          shard.samples.push_back(&train[order[i]]);
        shard.rng = rng.fork();
        shards.push_back(std::move(shard));
      }
      {
        std::lock_guard<std::mutex> lock(slot_mu);
        free_slots.clear();
        for (int w = workers; w-- > 0;) free_slots.push_back(w);
      }
      core::parallel_for(
          shards.size(),
          [&](std::size_t s) {
            int slot;
            {
              std::lock_guard<std::mutex> lock(slot_mu);
              slot = free_slots.back();
              free_slots.pop_back();
            }
            // Return the slot even when run_shard throws (e.g. an empty
            // graph in a training pair): a leaked slot would let another
            // worker pop from an empty freelist while parallel_for drains
            // the remaining shards before rethrowing.
            struct SlotReturn {
              std::vector<int>* free_slots;
              std::mutex* mu;
              int slot;
              ~SlotReturn() {
                std::lock_guard<std::mutex> lock(*mu);
                free_slots->push_back(slot);
              }
            } slot_return{&free_slots, &slot_mu, slot};
            Shard& shard = shards[s];
            const auto& sl = slots[static_cast<std::size_t>(slot)];
            const float loss_scale = static_cast<float>(shard.samples.size()) /
                                     static_cast<float>(batch_n);
            shard.loss = run_shard(*sl.model, sl.params, shard.samples, loss_scale,
                                   shard.rng, shard.store);
          },
          workers);
      // Fixed-order reduction: the master gradient is the shard-store sum in
      // shard order, independent of which worker computed which shard.
      adam.zero_grad();
      double batch_loss = 0.0;
      for (const Shard& shard : shards) {
        shard.store.add_to(master_params);
        batch_loss += shard.loss * static_cast<double>(shard.samples.size());
      }
      if (config.grad_clip > 0)
        tensor::clip_grad_norm(master_params, config.grad_clip);
      adam.step();
      // Push the stepped values to every replica before the next batch.
      for (int w = 1; w < workers; ++w) {
        auto& slot = slots[static_cast<std::size_t>(w)];
        for (std::size_t p = 0; p < master_params.size(); ++p)
          slot.params[p].tensor.mutable_data() = master_params[p].tensor.data();
      }
      epoch_loss += batch_loss / static_cast<double>(batch_n);
      ++batch_count;
      batch_begin = batch_end;
    }
    last_epoch_loss = epoch_loss / std::max<long>(batch_count, 1);
    if (config.on_epoch) config.on_epoch(epoch, last_epoch_loss);
    if (config.verbose)
      std::fprintf(stderr, "[train] epoch %d/%d loss=%.4f\n", epoch + 1,
                   config.epochs, last_epoch_loss);
  }
  return last_epoch_loss;
}

std::vector<float> predict_scores(const GraphBinMatchModel& model,
                                  const std::vector<PairSample>& pairs,
                                  int threads) {
  core::EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 0;  // one-shot batch: nothing to reuse across calls
  return core::EmbeddingEngine(model, cfg).score_pairs(pairs, threads);
}

}  // namespace gbm::gnn
