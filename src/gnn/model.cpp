#include "gnn/model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace gbm::gnn {

using tensor::NamedParam;
using tensor::RNG;
using tensor::Tensor;

// ---- encoding -----------------------------------------------------------

EncodedGraph encode_graph(const graph::ProgramGraph& g, const tok::Tokenizer& tk,
                          int bag_len, bool use_full_text) {
  EncodedGraph out;
  out.num_nodes = g.num_nodes();
  out.bag_len = bag_len;
  out.tokens.reserve(static_cast<std::size_t>(out.num_nodes * bag_len));
  for (const auto& node : g.nodes) {
    const std::vector<int> ids = tk.encode(node.feature(use_full_text), bag_len);
    out.tokens.insert(out.tokens.end(), ids.begin(), ids.end());
  }
  for (const auto& e : g.edges) {
    EdgeList& list = out.edges[static_cast<std::size_t>(e.kind)];
    list.src.push_back(e.src);
    list.dst.push_back(e.dst);
    list.pos.push_back(e.position);
  }
  // Self-loops on every edge type (PyG GATv2Conv add_self_loops=True).
  for (auto& list : out.edges) {
    for (long i = 0; i < out.num_nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  return out;
}

// ---- GATv2 ----------------------------------------------------------------

GATv2Conv::GATv2Conv(const GATv2Config& config, RNG& rng, std::string name)
    : config_(config),
      w_l_(config.in_dim, config.out_dim, rng, /*bias=*/true, name + ".wl"),
      w_r_(config.in_dim, config.out_dim, rng, /*bias=*/false, name + ".wr"),
      att_(Tensor::randn(config.out_dim, 1, rng,
                         1.0f / static_cast<float>(std::sqrt(config.out_dim)), true)),
      pos_table_(Tensor::randn(config.max_position, config.out_dim, rng, 0.05f, true)) {
  att_name_ = name + ".att";
  pos_name_ = name + ".pos";
}

Tensor GATv2Conv::forward(const Tensor& x, const EdgeList& edges,
                          long num_nodes) const {
  const Tensor hl = w_l_.forward(x);  // (N, out) target side
  const Tensor hr = w_r_.forward(x);  // (N, out) source side
  std::vector<int> pos_clamped(edges.pos.size());
  for (std::size_t i = 0; i < edges.pos.size(); ++i)
    pos_clamped[i] = std::min<long>(edges.pos[i], config_.max_position - 1);
  const Tensor gs = tensor::index_rows(hr, edges.src);          // (E, out)
  const Tensor gd = tensor::index_rows(hl, edges.dst);          // (E, out)
  const Tensor pe = tensor::index_rows(pos_table_, pos_clamped);  // (E, out)
  const Tensor act =
      tensor::leaky_relu(tensor::add(tensor::add(gs, gd), pe), config_.negative_slope);
  const Tensor scores = tensor::matmul(act, att_);  // (E, 1)
  const Tensor alpha = tensor::segment_softmax(scores, edges.dst, num_nodes);
  const Tensor messages = tensor::scale_rows(gs, alpha);
  return tensor::scatter_add_rows(messages, edges.dst, num_nodes);
}

std::vector<NamedParam> GATv2Conv::params() const {
  std::vector<NamedParam> out;
  for (auto& p : w_l_.params()) out.push_back(p);
  for (auto& p : w_r_.params()) out.push_back(p);
  out.push_back({att_name_, att_});
  out.push_back({pos_name_, pos_table_});
  return out;
}

// ---- hetero layer -----------------------------------------------------------

HeteroLayer::HeteroLayer(long in_dim, long out_dim, RNG& rng, std::string name) {
  const char* kinds[3] = {"control", "data", "call"};
  for (int k = 0; k < 3; ++k) {
    GATv2Config cfg;
    cfg.in_dim = in_dim;
    cfg.out_dim = out_dim;
    convs_[k] = GATv2Conv(cfg, rng, name + "." + kinds[k]);
    norms_[k] = tensor::LayerNorm(out_dim, name + "." + kinds[k] + ".norm");
  }
}

Tensor HeteroLayer::forward(const Tensor& x, const std::array<EdgeList, 3>& edges,
                            long num_nodes) const {
  Tensor fused;
  for (int k = 0; k < 3; ++k) {
    Tensor h = convs_[k].forward(x, edges[static_cast<std::size_t>(k)], num_nodes);
    h = norms_[k].forward(h);
    fused = k == 0 ? h : tensor::maximum(fused, h);
  }
  return fused;
}

std::vector<NamedParam> HeteroLayer::params() const {
  std::vector<NamedParam> out;
  for (int k = 0; k < 3; ++k) {
    for (auto& p : convs_[k].params()) out.push_back(p);
    for (auto& p : norms_[k].params()) out.push_back(p);
  }
  return out;
}

// ---- model ----------------------------------------------------------------

GraphBinMatchModel::GraphBinMatchModel(const ModelConfig& config, RNG& rng)
    : config_(config),
      token_emb_(config.vocab, config.embed_dim, rng, "token_emb"),
      input_proj_(config.embed_dim, config.hidden, rng, true, "input_proj"),
      att_transform_(config.hidden, config.hidden, rng, false, "att_transform"),
      fc1_((config.interaction ? 4 : 2) * graph_embedding_dim(config),
           config.hidden, rng, true, "fc1"),
      fc_norm_(config.hidden, "fc_norm"),
      fc2_(config.hidden, 1, rng, true, "fc2"),
      dropout_(config.dropout) {
  layers_.reserve(static_cast<std::size_t>(config.layers));
  for (int l = 0; l < config.layers; ++l)
    layers_.push_back(
        HeteroLayer(config.hidden, config.hidden, rng, "layer" + std::to_string(l)));
}

Tensor GraphBinMatchModel::embed_graph(const EncodedGraph& g, bool training,
                                       RNG& rng) const {
  if (g.num_nodes == 0)
    throw std::invalid_argument("embed_graph: empty graph (failed artifact?)");
  // Node features: embedding bag + max over the token sequence (§III-D:
  // "utilize the max operation to reduce the two-dimensional feature
  // vector to a single dimension").
  Tensor h = token_emb_.forward_bag_max(g.tokens, g.num_nodes, g.bag_len,
                                        tok::Tokenizer::kPad);
  h = tensor::leaky_relu(input_proj_.forward(h));
  for (const auto& layer : layers_) {
    // Residual connection: without it, stacked LayerNorm + attention
    // smoothing collapses all node embeddings toward the graph mean at
    // initialisation (verified by the representation-collapse test), which
    // stalls CPU-scale training. Documented deviation (DESIGN.md §5).
    Tensor update = layer.forward(h, g.edges, g.num_nodes);
    h = tensor::add(h, tensor::leaky_relu(update));
    h = dropout_.forward(h, training, rng);
  }
  // SimGNN global attention pooling: c = tanh(mean(H) W); a = σ(H cᵀ);
  // g = aᵀ H.
  const Tensor c = tensor::tanh_t(att_transform_.forward(tensor::mean_rows(h)));
  const Tensor scores = tensor::matmul(h, tensor::transpose(c));  // (N,1)
  const Tensor attention = tensor::sigmoid(scores);
  // Attention-weighted sum, scale-stabilised by the node count so graphs of
  // very different sizes land on one embedding scale.
  Tensor pooled = tensor::matmul(tensor::transpose(attention), h);  // (1, hidden)
  pooled = tensor::scale(pooled, 1.0f / static_cast<float>(g.num_nodes));
  // Max channel: the attention mean alone collapses across graphs (most
  // programs share the same average instruction mix); the column-wise max
  // preserves each graph's distinctive nodes — rare opcodes, constants,
  // string literals. Documented deviation from the bare SimGNN pooling
  // (DESIGN.md §5).
  const Tensor peak = tensor::max_rows(h);
  return tensor::concat_cols({pooled, peak});  // (1, 2*hidden)
}

Tensor GraphBinMatchModel::score_head(const Tensor& ga, const Tensor& gb,
                                      bool training, RNG& rng) const {
  std::vector<Tensor> parts{ga, gb};
  if (config_.interaction) {
    parts.push_back(tensor::abs_t(tensor::sub(ga, gb)));
    parts.push_back(tensor::mul(ga, gb));
  }
  Tensor h = tensor::concat_cols(parts);
  h = fc1_.forward(h);
  h = fc_norm_.forward(h);
  h = tensor::leaky_relu(h);
  h = dropout_.forward(h, training, rng);
  return fc2_.forward(h);  // (1,1) logit; σ applied by caller / loss
}

Tensor GraphBinMatchModel::forward_logit(const EncodedGraph& a, const EncodedGraph& b,
                                         bool training, RNG& rng) const {
  const Tensor ga = embed_graph(a, training, rng);
  const Tensor gb = embed_graph(b, training, rng);
  return score_head(ga, gb, training, rng);
}

long graph_embedding_dim(const ModelConfig& config) { return 2 * config.hidden; }

float GraphBinMatchModel::predict(const EncodedGraph& a, const EncodedGraph& b) const {
  RNG dummy(1);
  const Tensor logit = forward_logit(a, b, /*training=*/false, dummy);
  return 1.0f / (1.0f + std::exp(-logit.item()));
}

float GraphBinMatchModel::predict_from_embeddings(const Tensor& ga,
                                                  const Tensor& gb) const {
  RNG dummy(1);
  const Tensor logit = score_head(ga, gb, /*training=*/false, dummy);
  return 1.0f / (1.0f + std::exp(-logit.item()));
}

std::vector<NamedParam> GraphBinMatchModel::params() const {
  std::vector<NamedParam> out;
  for (auto& p : token_emb_.params()) out.push_back(p);
  for (auto& p : input_proj_.params()) out.push_back(p);
  for (const auto& layer : layers_) {
    for (auto& p : layer.params()) out.push_back(p);
  }
  for (auto& p : att_transform_.params()) out.push_back(p);
  for (auto& p : fc1_.params()) out.push_back(p);
  for (auto& p : fc_norm_.params()) out.push_back(p);
  for (auto& p : fc2_.params()) out.push_back(p);
  return out;
}

}  // namespace gbm::gnn
