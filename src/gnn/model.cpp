#include "gnn/model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace gbm::gnn {

using tensor::NamedParam;
using tensor::RNG;
using tensor::Tensor;

// ---- encoding -----------------------------------------------------------

EncodedGraph encode_graph(const graph::ProgramGraph& g, const tok::Tokenizer& tk,
                          int bag_len, bool use_full_text) {
  EncodedGraph out;
  out.num_nodes = g.num_nodes();
  out.bag_len = bag_len;
  out.tokens.reserve(static_cast<std::size_t>(out.num_nodes * bag_len));
  // Tokenisation is memoised per interned feature id: each distinct feature
  // string of the graph is split/encoded exactly once, however many nodes
  // share it (types and opcodes repeat heavily). The memo records where a
  // feature's bag first landed in out.tokens, so repeats are a bag_len copy
  // and the miss path costs exactly one tokenizer pass — no side buffer.
  std::vector<long> memo_at(g.pool.size(), -1);  // feature id → first bag offset
  for (const auto& node : g.nodes) {
    const std::uint32_t fid = node.feature_id(use_full_text);
    const long at = memo_at[fid];
    if (at < 0) {
      memo_at[fid] = static_cast<long>(out.tokens.size());
      const std::vector<int> ids = tk.encode(g.pool.str(fid), bag_len);
      out.tokens.insert(out.tokens.end(), ids.begin(), ids.end());
    } else {
      // Within reserved capacity: resize never reallocates, and the copied
      // range lies strictly before the write position.
      const std::size_t cur = out.tokens.size();
      out.tokens.resize(cur + static_cast<std::size_t>(bag_len));
      std::copy_n(out.tokens.begin() + at, bag_len,
                  out.tokens.begin() + static_cast<long>(cur));
    }
  }
  // Edge lists come straight from the graph's per-kind arrays (same layout,
  // append order preserved), then self-loops on every edge type (PyG
  // GATv2Conv add_self_loops=True).
  for (std::size_t k = 0; k < graph::kNumEdgeKinds; ++k) {
    EdgeList& list = out.edges[k];
    list.src = g.edges[k].src;
    list.dst = g.edges[k].dst;
    list.pos = g.edges[k].pos;
  }
  for (auto& list : out.edges) {
    for (long i = 0; i < out.num_nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  return out;
}

GraphBatch make_graph_batch(const std::vector<const EncodedGraph*>& graphs) {
  if (graphs.empty())
    throw std::invalid_argument("make_graph_batch: empty graph list");
  GraphBatch batch;
  batch.num_graphs = static_cast<long>(graphs.size());
  batch.bag_len = graphs.front()->bag_len;
  batch.node_offset.reserve(graphs.size() + 1);
  batch.node_offset.push_back(0);
  for (const EncodedGraph* g : graphs) {
    if (g->num_nodes == 0)
      throw std::invalid_argument("make_graph_batch: empty graph (failed artifact?)");
    if (g->bag_len != batch.bag_len)
      throw std::invalid_argument("make_graph_batch: mixed bag lengths");
    batch.node_offset.push_back(batch.node_offset.back() + g->num_nodes);
  }
  batch.total_nodes = batch.node_offset.back();
  batch.tokens.reserve(static_cast<std::size_t>(batch.total_nodes * batch.bag_len));
  batch.node_graph.reserve(static_cast<std::size_t>(batch.total_nodes));
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const EncodedGraph& g = *graphs[gi];
    const int base = static_cast<int>(batch.node_offset[gi]);
    batch.tokens.insert(batch.tokens.end(), g.tokens.begin(), g.tokens.end());
    batch.node_graph.insert(batch.node_graph.end(),
                            static_cast<std::size_t>(g.num_nodes),
                            static_cast<int>(gi));
    for (int k = 0; k < 3; ++k) {
      const EdgeList& src_list = g.edges[static_cast<std::size_t>(k)];
      EdgeList& dst_list = batch.edges[static_cast<std::size_t>(k)];
      for (long e = 0; e < src_list.size(); ++e) {
        dst_list.src.push_back(src_list.src[e] + base);
        dst_list.dst.push_back(src_list.dst[e] + base);
        dst_list.pos.push_back(src_list.pos[e]);
      }
    }
  }
  return batch;
}

// ---- GATv2 ----------------------------------------------------------------

GATv2Conv::GATv2Conv(const GATv2Config& config, RNG& rng, std::string name)
    : config_(config),
      w_l_(config.in_dim, config.out_dim, rng, /*bias=*/true, name + ".wl"),
      w_r_(config.in_dim, config.out_dim, rng, /*bias=*/false, name + ".wr"),
      att_(Tensor::randn(config.out_dim, 1, rng,
                         1.0f / static_cast<float>(std::sqrt(config.out_dim)), true)),
      pos_table_(Tensor::randn(config.max_position, config.out_dim, rng, 0.05f, true)) {
  att_name_ = name + ".att";
  pos_name_ = name + ".pos";
}

Tensor GATv2Conv::forward(const Tensor& x, const EdgeList& edges,
                          long num_nodes) const {
  const Tensor hl = w_l_.forward(x);  // (N, out) target side
  const Tensor hr = w_r_.forward(x);  // (N, out) source side
  std::vector<int> pos_clamped(edges.pos.size());
  for (std::size_t i = 0; i < edges.pos.size(); ++i)
    pos_clamped[i] = std::min<long>(edges.pos[i], config_.max_position - 1);
  const Tensor gs = tensor::index_rows(hr, edges.src);          // (E, out)
  const Tensor gd = tensor::index_rows(hl, edges.dst);          // (E, out)
  const Tensor pe = tensor::index_rows(pos_table_, pos_clamped);  // (E, out)
  const Tensor act =
      tensor::leaky_relu(tensor::add(tensor::add(gs, gd), pe), config_.negative_slope);
  const Tensor scores = tensor::matmul(act, att_);  // (E, 1)
  const Tensor alpha = tensor::segment_softmax(scores, edges.dst, num_nodes);
  const Tensor messages = tensor::scale_rows(gs, alpha);
  return tensor::scatter_add_rows(messages, edges.dst, num_nodes);
}

std::vector<NamedParam> GATv2Conv::params() const {
  std::vector<NamedParam> out;
  for (auto& p : w_l_.params()) out.push_back(p);
  for (auto& p : w_r_.params()) out.push_back(p);
  out.push_back({att_name_, att_});
  out.push_back({pos_name_, pos_table_});
  return out;
}

// ---- hetero layer -----------------------------------------------------------

HeteroLayer::HeteroLayer(long in_dim, long out_dim, RNG& rng, std::string name) {
  const char* kinds[3] = {"control", "data", "call"};
  for (int k = 0; k < 3; ++k) {
    GATv2Config cfg;
    cfg.in_dim = in_dim;
    cfg.out_dim = out_dim;
    convs_[k] = GATv2Conv(cfg, rng, name + "." + kinds[k]);
    norms_[k] = tensor::LayerNorm(out_dim, name + "." + kinds[k] + ".norm");
  }
}

Tensor HeteroLayer::forward(const Tensor& x, const std::array<EdgeList, 3>& edges,
                            long num_nodes) const {
  Tensor fused;
  for (int k = 0; k < 3; ++k) {
    Tensor h = convs_[k].forward(x, edges[static_cast<std::size_t>(k)], num_nodes);
    h = norms_[k].forward(h);
    fused = k == 0 ? h : tensor::maximum(fused, h);
  }
  return fused;
}

std::vector<NamedParam> HeteroLayer::params() const {
  std::vector<NamedParam> out;
  for (int k = 0; k < 3; ++k) {
    for (auto& p : convs_[k].params()) out.push_back(p);
    for (auto& p : norms_[k].params()) out.push_back(p);
  }
  return out;
}

// ---- model ----------------------------------------------------------------

GraphBinMatchModel::GraphBinMatchModel(const ModelConfig& config, RNG& rng)
    : config_(config),
      token_emb_(config.vocab, config.embed_dim, rng, "token_emb"),
      input_proj_(config.embed_dim, config.hidden, rng, true, "input_proj"),
      att_transform_(config.hidden, config.hidden, rng, false, "att_transform"),
      fc1_((config.interaction ? 4 : 2) * graph_embedding_dim(config),
           config.hidden, rng, true, "fc1"),
      fc_norm_(config.hidden, "fc_norm"),
      fc2_(config.hidden, 1, rng, true, "fc2"),
      dropout_(config.dropout) {
  layers_.reserve(static_cast<std::size_t>(config.layers));
  for (int l = 0; l < config.layers; ++l)
    layers_.push_back(
        HeteroLayer(config.hidden, config.hidden, rng, "layer" + std::to_string(l)));
}

Tensor GraphBinMatchModel::embed_graph(const EncodedGraph& g, bool training,
                                       RNG& rng) const {
  if (g.num_nodes == 0)
    throw std::invalid_argument("embed_graph: empty graph (failed artifact?)");
  return embed_batch(make_graph_batch({&g}), training, rng);
}

std::vector<std::vector<float>> GraphBinMatchModel::embed_graphs(
    const std::vector<const EncodedGraph*>& graphs) const {
  if (graphs.empty()) return {};
  RNG dummy(1);  // inference mode: dropout is a pass-through
  const Tensor rows = embed_batch(make_graph_batch(graphs), /*training=*/false, dummy);
  const long d = rows.cols();
  std::vector<std::vector<float>> out(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i)
    out[i].assign(rows.data().begin() + static_cast<long>(i) * d,
                  rows.data().begin() + static_cast<long>(i + 1) * d);
  return out;
}

Tensor GraphBinMatchModel::embed_batch(const GraphBatch& batch, bool training,
                                       RNG& rng) const {
  const long n = batch.total_nodes;
  const long num_graphs = batch.num_graphs;
  if (n == 0) throw std::invalid_argument("embed_batch: empty batch");
  // Node features: embedding bag + max over the token sequence (§III-D:
  // "utilize the max operation to reduce the two-dimensional feature
  // vector to a single dimension").
  Tensor h = token_emb_.forward_bag_max(batch.tokens, n, batch.bag_len,
                                        tok::Tokenizer::kPad);
  h = tensor::leaky_relu(input_proj_.forward(h));
  for (const auto& layer : layers_) {
    // Residual connection: without it, stacked LayerNorm + attention
    // smoothing collapses all node embeddings toward the graph mean at
    // initialisation (verified by the representation-collapse test), which
    // stalls CPU-scale training. Documented deviation (DESIGN.md §5).
    // Edges of the disjoint union never cross graphs, so one message-passing
    // pass over the merged lists is exact for every member graph.
    Tensor update = layer.forward(h, batch.edges, n);
    h = tensor::add(h, tensor::leaky_relu(update));
    h = dropout_.forward(h, training, rng);
  }
  // SimGNN global attention pooling, per graph via segment ids:
  // c_g = tanh(mean(H_g) W); a_i = σ(h_i · c_{graph(i)}); g = a_gᵀ H_g.
  // Attention-weighted sums are scale-stabilised by each graph's node count
  // so graphs of very different sizes land on one embedding scale.
  std::vector<float> inv_nodes(static_cast<std::size_t>(num_graphs));
  for (long g = 0; g < num_graphs; ++g)
    inv_nodes[g] = 1.0f /
                   static_cast<float>(batch.node_offset[g + 1] - batch.node_offset[g]);
  const Tensor inv = Tensor::from(inv_nodes, num_graphs, 1);
  const Tensor mean =
      tensor::scale_rows(tensor::scatter_add_rows(h, batch.node_graph, num_graphs), inv);
  const Tensor c = tensor::tanh_t(att_transform_.forward(mean));  // (G, hidden)
  // Fused segment forms of matmul(h, cᵀ) and matmul(attentionᵀ, h): no
  // (N, hidden) gather/product intermediates, so a large disjoint union
  // streams the same bytes per node as the per-graph pass.
  const Tensor scores = tensor::segment_rowwise_dot(h, c, batch.node_graph);
  const Tensor attention = tensor::sigmoid(scores);  // (N, 1)
  Tensor pooled =
      tensor::segment_weighted_sum(h, attention, batch.node_graph, num_graphs);
  pooled = tensor::scale_rows(pooled, inv);  // (G, hidden)
  // Max channel: the attention mean alone collapses across graphs (most
  // programs share the same average instruction mix); the column-wise max
  // preserves each graph's distinctive nodes — rare opcodes, constants,
  // string literals. Documented deviation from the bare SimGNN pooling
  // (DESIGN.md §5).
  const Tensor peak = tensor::segment_max(h, batch.node_graph, num_graphs);
  return tensor::concat_cols({pooled, peak});  // (G, 2*hidden)
}

Tensor GraphBinMatchModel::score_head(const Tensor& ga, const Tensor& gb,
                                      bool training, RNG& rng) const {
  std::vector<Tensor> parts{ga, gb};
  if (config_.interaction) {
    parts.push_back(tensor::abs_t(tensor::sub(ga, gb)));
    parts.push_back(tensor::mul(ga, gb));
  }
  Tensor h = tensor::concat_cols(parts);
  h = fc1_.forward(h);
  h = fc_norm_.forward(h);
  h = tensor::leaky_relu(h);
  h = dropout_.forward(h, training, rng);
  return fc2_.forward(h);  // (1,1) logit; σ applied by caller / loss
}

Tensor GraphBinMatchModel::forward_logit(const EncodedGraph& a, const EncodedGraph& b,
                                         bool training, RNG& rng) const {
  const Tensor ga = embed_graph(a, training, rng);
  const Tensor gb = embed_graph(b, training, rng);
  return score_head(ga, gb, training, rng);
}

long graph_embedding_dim(const ModelConfig& config) { return 2 * config.hidden; }

float GraphBinMatchModel::predict(const EncodedGraph& a, const EncodedGraph& b) const {
  RNG dummy(1);
  const Tensor logit = forward_logit(a, b, /*training=*/false, dummy);
  return 1.0f / (1.0f + std::exp(-logit.item()));
}

float GraphBinMatchModel::predict_from_embeddings(const Tensor& ga,
                                                  const Tensor& gb) const {
  RNG dummy(1);
  const Tensor logit = score_head(ga, gb, /*training=*/false, dummy);
  return 1.0f / (1.0f + std::exp(-logit.item()));
}

std::vector<NamedParam> GraphBinMatchModel::params() const {
  std::vector<NamedParam> out;
  for (auto& p : token_emb_.params()) out.push_back(p);
  for (auto& p : input_proj_.params()) out.push_back(p);
  for (const auto& layer : layers_) {
    for (auto& p : layer.params()) out.push_back(p);
  }
  for (auto& p : att_transform_.params()) out.push_back(p);
  for (auto& p : fc1_.params()) out.push_back(p);
  for (auto& p : fc_norm_.params()) out.push_back(p);
  for (auto& p : fc2_.params()) out.push_back(p);
  return out;
}

}  // namespace gbm::gnn
