// The Graph Binary Matching Similarity Neural Network (paper §III-D).
//
// Architecture, mirroring Figure 2:
//   token-id bags → Embedding → max over tokens → node features
//   → L × [per-edge-type GATv2Conv + LayerNorm, fused by stack-&-max]
//   → SimGNN-style global attention pooling → graph embedding
//   → concat(gA, gB) → FC → LayerNorm → LeakyReLU → Dropout → FC → σ.
//
// The forward path is batched PyTorch-Geometric-style: a `GraphBatch` is
// the disjoint union of several encoded graphs (concatenated token bags,
// offset-shifted edge lists, a node→graph segment-id vector), and
// `embed_batch` runs the whole stack — message passing over the merged
// edge lists, then segment-wise attention pooling — in ONE pass whose
// row i equals `embed_graph` on member graph i. `score_head` likewise
// accepts (B, dim) embedding matrices and returns B logits, so a training
// mini-batch is two tensor programs instead of 2·B graph passes.
//
// `ModelConfig.interaction` optionally appends |gA−gB| and gA⊙gB to the
// concatenation — a documented CPU-scale training aid (DESIGN.md §5),
// disabled for the paper-faithful architecture.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "graph/program_graph.h"
#include "tensor/nn.h"
#include "tokenizer/tokenizer.h"

namespace gbm::gnn {

/// One edge type as flat index arrays (plus self-loops, PyG-style).
struct EdgeList {
  std::vector<int> src;
  std::vector<int> dst;
  std::vector<int> pos;
  long size() const { return static_cast<long>(src.size()); }
};

/// A program graph encoded for the model: token bags + 3 edge lists
/// (control / data / call).
struct EncodedGraph {
  long num_nodes = 0;
  int bag_len = 0;
  std::vector<int> tokens;  // num_nodes * bag_len token ids
  std::array<EdgeList, 3> edges;
};

/// Encodes a ProgramGraph with the given featurisation. Self-loops are
/// appended to every edge type (as PyTorch-Geometric's GATv2Conv does).
EncodedGraph encode_graph(const graph::ProgramGraph& g, const tok::Tokenizer& tk,
                          int bag_len, bool use_full_text);

/// Disjoint union of EncodedGraphs (PyG-style mini-batching): token bags
/// are concatenated, every edge list is shifted into one global node-id
/// space, and `node_graph` records which member graph owns each node. The
/// block-diagonal union makes message passing over N graphs a single pass:
/// edges never cross graph boundaries, so per-node ops (GATv2 attention,
/// LayerNorm) are unchanged and only the graph-level pooling needs the
/// segment ids.
struct GraphBatch {
  long num_graphs = 0;
  long total_nodes = 0;
  int bag_len = 0;
  std::vector<int> tokens;        // total_nodes * bag_len token ids
  std::array<EdgeList, 3> edges;  // node ids offset by the owner's base
  std::vector<int> node_graph;    // total_nodes: owning graph per node
  std::vector<long> node_offset;  // num_graphs + 1: graph g owns rows
                                  // [node_offset[g], node_offset[g+1])
};

/// Builds the disjoint union of `graphs`. All members must be non-empty and
/// share one bag length (throws std::invalid_argument otherwise).
GraphBatch make_graph_batch(const std::vector<const EncodedGraph*>& graphs);

struct GATv2Config {
  long in_dim = 32;
  long out_dim = 32;
  long max_position = 8;  // edge positions clamp here
  float negative_slope = 0.2f;
};

/// Single-head GATv2 convolution (Brody et al. 2022):
///   e_ij = aᵀ LeakyReLU(W_l x_i + W_r x_j + P[pos_ij])
///   α_ij = softmax_j over incoming edges of node i
///   out_i = Σ_j α_ij (W_r x_j)
class GATv2Conv : public tensor::Module {
 public:
  GATv2Conv() = default;
  GATv2Conv(const GATv2Config& config, tensor::RNG& rng, std::string name);
  tensor::Tensor forward(const tensor::Tensor& x, const EdgeList& edges,
                         long num_nodes) const;
  std::vector<tensor::NamedParam> params() const override;

 private:
  GATv2Config config_;
  tensor::Linear w_l_;       // target transform
  tensor::Linear w_r_;       // source transform
  tensor::Tensor att_;       // (out_dim, 1)
  tensor::Tensor pos_table_; // (max_position, out_dim)
  std::string att_name_;
  std::string pos_name_;
};

/// Heterogeneous layer: one GATv2 + LayerNorm per edge type, outputs fused
/// with elementwise max ("Stack & Max" in Figure 2).
class HeteroLayer : public tensor::Module {
 public:
  HeteroLayer() = default;
  HeteroLayer(long in_dim, long out_dim, tensor::RNG& rng, std::string name);
  tensor::Tensor forward(const tensor::Tensor& x,
                         const std::array<EdgeList, 3>& edges, long num_nodes) const;
  std::vector<tensor::NamedParam> params() const override;

 private:
  std::array<GATv2Conv, 3> convs_;
  std::array<tensor::LayerNorm, 3> norms_;
};

struct ModelConfig {
  int vocab = 512;
  long embed_dim = 64;    // paper: 128
  long hidden = 32;       // paper: 256
  int layers = 3;         // paper: 5
  float dropout = 0.2f;
  bool interaction = false;
  long max_position = 8;
};

/// Dimension of embed_graph's output (attention channel + max channel).
long graph_embedding_dim(const ModelConfig& config);

class GraphBinMatchModel : public tensor::Module {
 public:
  GraphBinMatchModel() = default;
  GraphBinMatchModel(const ModelConfig& config, tensor::RNG& rng);

  /// Graph-level embedding, shape (1, graph_embedding_dim(config)).
  /// Runs as a GraphBatch of one.
  tensor::Tensor embed_graph(const EncodedGraph& g, bool training,
                             tensor::RNG& rng) const;
  /// Graph-level embeddings for a whole batch in one forward pass, shape
  /// (batch.num_graphs, graph_embedding_dim(config)). Row i matches
  /// embed_graph on member graph i: the disjoint union keeps every
  /// per-node accumulation in the same order, so inference rows agree to
  /// float round-off (parity-tested at 1e-5). In training mode the dropout
  /// masks are drawn batch-wide from `rng`.
  tensor::Tensor embed_batch(const GraphBatch& batch, bool training,
                             tensor::RNG& rng) const;
  /// Inference-mode embeddings for several graphs as detached row vectors:
  /// one batched pass over the disjoint union (all members must share one
  /// bag length), element i bit-identical to embed_graph on graphs[i]. The
  /// batch-embed entry point for serving callers (EmbeddingEngine, the
  /// MatchServer dispatcher) that hold plain graph lists rather than
  /// GraphBatch unions.
  std::vector<std::vector<float>> embed_graphs(
      const std::vector<const EncodedGraph*>& graphs) const;
  /// FC similarity head on precomputed graph embeddings (the right half of
  /// Figure 2): concat → FC → LayerNorm → LeakyReLU → Dropout → FC. Takes
  /// (B, dim) matrices and returns the (B, 1) logits; forward_logit(a, b)
  /// == score_head(embed_graph(a), embed_graph(b)) by construction.
  tensor::Tensor score_head(const tensor::Tensor& ga, const tensor::Tensor& gb,
                            bool training, tensor::RNG& rng) const;
  /// Match logit for a pair, shape (1, 1). Embeds both graphs, then applies
  /// score_head.
  tensor::Tensor forward_logit(const EncodedGraph& a, const EncodedGraph& b,
                               bool training, tensor::RNG& rng) const;
  /// Matching score in [0, 1] (inference mode).
  float predict(const EncodedGraph& a, const EncodedGraph& b) const;
  /// Matching score in [0, 1] from precomputed embeddings (inference mode).
  /// With the same embeddings, identical to predict() on the source graphs.
  float predict_from_embeddings(const tensor::Tensor& ga,
                                const tensor::Tensor& gb) const;

  std::vector<tensor::NamedParam> params() const override;
  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  tensor::Embedding token_emb_;
  tensor::Linear input_proj_;
  std::vector<HeteroLayer> layers_;
  tensor::Linear att_transform_;  // SimGNN global-context transform
  tensor::Linear fc1_;
  tensor::LayerNorm fc_norm_;
  tensor::Linear fc2_;
  tensor::Dropout dropout_{0.2f};
};

}  // namespace gbm::gnn
