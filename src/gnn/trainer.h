// Training loop for pairwise matching models (GraphBinMatch and, through
// the same PairScorer interface, the XLIR baselines).
//
// Matches the paper's setup: BCE loss, Adam optimiser, mini-batch gradient
// accumulation, fixed seed. The learning rate defaults higher than the
// paper's 6.6e-5 because CPU-scale runs see far fewer updates (documented
// in DESIGN.md §7).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "tensor/optim.h"

namespace gbm::gnn {

struct PairSample {
  const EncodedGraph* a = nullptr;
  const EncodedGraph* b = nullptr;
  float label = 0.0f;
};

struct TrainConfig {
  int epochs = 8;
  int batch_size = 8;
  float lr = 2e-3f;
  double grad_clip = 5.0;
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Optional per-epoch callback (epoch, mean train loss).
  std::function<void(int, double)> on_epoch;
};

/// Trains the model in place; returns the final epoch's mean loss.
double train_model(GraphBinMatchModel& model, const std::vector<PairSample>& train,
                   const TrainConfig& config);

/// Inference scores in [0,1] for each pair, computed embed-once-then-head:
/// every distinct graph (by pointer) gets exactly one GNN pass, then the
/// similarity head runs per pair; both stages fan out over
/// core::resolve_threads(threads) workers (<= 0 means all hardware
/// threads). Scores are identical to pairwise model.predict(*a, *b).
std::vector<float> predict_scores(const GraphBinMatchModel& model,
                                  const std::vector<PairSample>& pairs,
                                  int threads = 0);

}  // namespace gbm::gnn
