// Training loop for pairwise matching models (GraphBinMatch and, through
// the same PairScorer interface, the XLIR baselines).
//
// Matches the paper's setup: BCE loss, Adam optimiser, mini-batch training,
// fixed seed. The learning rate defaults higher than the paper's 6.6e-5
// because CPU-scale runs see far fewer updates (documented in DESIGN.md §7).
//
// train_model is deterministic data-parallel: every mini-batch is split
// into fixed-size shards (micro_batch samples each), each shard runs one
// batched forward/backward (GraphBatch over its unique graphs, then the
// similarity head over all shard pairs at once) on a worker-local model
// replica, and the detached per-shard gradients (GradStore) are reduced in
// shard order before each Adam step. Shard boundaries, per-shard RNG
// streams and the reduction order depend only on the batch — never on the
// worker count — so the loss trajectory is bit-identical for any `threads`.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "tensor/optim.h"

namespace gbm::gnn {

struct PairSample {
  const EncodedGraph* a = nullptr;
  const EncodedGraph* b = nullptr;
  float label = 0.0f;
};

struct TrainConfig {
  int epochs = 8;
  int batch_size = 8;
  float lr = 2e-3f;
  double grad_clip = 5.0;
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Data-parallel workers for the per-shard forward/backward phase
  /// (parallel.h semantics: <= 0 means all hardware threads). Any value
  /// produces bit-identical losses and parameters for a given seed.
  int threads = 0;
  /// Samples per shard — the unit of parallel work and of gradient
  /// buffering. Smaller shards parallelise finer; larger shards amortise
  /// more per-op overhead in the batched forward. Values < 1 clamp to 1.
  int micro_batch = 2;
  /// Optional per-epoch callback (epoch, mean train loss).
  std::function<void(int, double)> on_epoch;
};

/// Shard-local gradient buffer: a detached copy of every parameter's
/// gradient, in params() order. Workers only ever write the store of the
/// shard they are running, and stores are summed onto the optimiser's
/// parameters in fixed shard order — float accumulation order is therefore
/// independent of worker count and scheduling.
struct GradStore {
  std::vector<std::vector<float>> grads;

  /// Copies the current gradients of `params` into this store.
  void capture(const std::vector<tensor::NamedParam>& params);
  /// Accumulates this store into the gradients of `params` (same layout).
  void add_to(const std::vector<tensor::NamedParam>& params) const;
};

/// Trains the model in place; returns the final epoch's mean loss. Mean
/// here is the true mean: a final batch shorter than batch_size contributes
/// gradients and loss weighted by its actual size.
double train_model(GraphBinMatchModel& model, const std::vector<PairSample>& train,
                   const TrainConfig& config);

/// Inference scores in [0,1] for each pair, computed embed-once-then-head:
/// every distinct graph (by pointer) gets exactly one GNN pass, then the
/// similarity head runs per pair; both stages fan out over
/// core::resolve_threads(threads) workers (<= 0 means all hardware
/// threads). Scores are identical to pairwise model.predict(*a, *b).
std::vector<float> predict_scores(const GraphBinMatchModel& model,
                                  const std::vector<PairSample>& pairs,
                                  int threads = 0);

}  // namespace gbm::gnn
