// Flat byte-addressed memory shared by the IR interpreter and the VBin
// virtual machine. Address 0 is a guard page (never allocated), globals are
// materialised at the bottom, and the rest is a zero-initialised bump heap
// (no free — program runs are short and bounded).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace gbm::interp {

class TrapError : public std::runtime_error {
 public:
  explicit TrapError(const std::string& msg) : std::runtime_error(msg) {}
};

class RuntimeMemory {
 public:
  explicit RuntimeMemory(std::size_t capacity = 1 << 22)
      : bytes_(capacity, 0), brk_(16) {}

  /// Bump-allocates `n` zeroed bytes, 8-byte aligned. Returns the address.
  std::uint64_t alloc(std::uint64_t n) {
    brk_ = (brk_ + 7) & ~std::uint64_t{7};
    if (brk_ + n > bytes_.size()) throw TrapError("out of memory");
    const std::uint64_t addr = brk_;
    brk_ += n;
    return addr;
  }

  void check(std::uint64_t addr, std::uint64_t n) const {
    if (addr == 0) throw TrapError("null pointer access");
    if (addr + n > bytes_.size() || addr + n < addr)
      throw TrapError("out-of-bounds memory access");
  }

  std::int64_t load_int(std::uint64_t addr, int size_bytes) const {
    const std::uint8_t* p = at(addr, static_cast<std::uint64_t>(size_bytes));
    switch (size_bytes) {
      case 1: {
        std::int8_t v;
        std::memcpy(&v, p, 1);
        return v;
      }
      case 4: {
        std::int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case 8: {
        std::int64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default:
        throw TrapError("bad load size");
    }
  }

  void store_int(std::uint64_t addr, std::int64_t value, int size_bytes) {
    std::uint8_t* p = at(addr, static_cast<std::uint64_t>(size_bytes));
    switch (size_bytes) {
      case 1: {
        const std::int8_t v = static_cast<std::int8_t>(value);
        std::memcpy(p, &v, 1);
        return;
      }
      case 4: {
        const std::int32_t v = static_cast<std::int32_t>(value);
        std::memcpy(p, &v, 4);
        return;
      }
      case 8:
        std::memcpy(p, &value, 8);
        return;
      default:
        throw TrapError("bad store size");
    }
  }

  double load_f64(std::uint64_t addr) const {
    double v;
    std::memcpy(&v, at(addr, 8), 8);
    return v;
  }

  void store_f64(std::uint64_t addr, double value) {
    std::memcpy(at(addr, 8), &value, 8);
  }

  void store_bytes(std::uint64_t addr, const std::uint8_t* src, std::size_t n) {
    std::memcpy(at(addr, n), src, n);
  }

  std::string load_cstring(std::uint64_t addr) const {
    std::string out;
    while (true) {
      const char c = static_cast<char>(*at(addr++, 1));
      if (!c) break;
      out += c;
      if (out.size() > 1 << 16) throw TrapError("unterminated string");
    }
    return out;
  }

  std::size_t capacity() const { return bytes_.size(); }

 private:
  /// Bounds-checked access: check() throws on any violation, so past it the
  /// range [addr, addr+n) is in bounds — the hint lets the optimiser drop
  /// the failure path instead of warning about it.
  const std::uint8_t* at(std::uint64_t addr, std::uint64_t n) const {
    check(addr, n);
#if defined(__GNUC__)
    if (addr == 0 || addr + n > bytes_.size() || addr + n < addr)
      __builtin_unreachable();
#endif
    return bytes_.data() + addr;
  }
  std::uint8_t* at(std::uint64_t addr, std::uint64_t n) {
    return const_cast<std::uint8_t*>(
        static_cast<const RuntimeMemory*>(this)->at(addr, n));
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t brk_;
};

}  // namespace gbm::interp
