// Reference interpreter for GBM IR.
//
// Serves two purposes: (1) the semantic oracle for testing — front-end
// lowering, every optimisation pass, the backend and the decompiler are all
// validated by comparing observable output against this interpreter; and
// (2) the "run the program" backend of examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/runtime.h"
#include "ir/module.h"

namespace gbm::interp {

struct ExecResult {
  std::string output;        // everything printed
  std::int64_t exit_code = 0;  // main's return value
  bool trapped = false;      // runtime trap (bounds, div-by-zero, fuel, ...)
  std::string trap_message;
  long steps = 0;  // instructions executed
};

struct ExecOptions {
  std::vector<std::int64_t> input;  // stream for gbm_read_i64
  long fuel = 20'000'000;           // instruction budget before trapping
  std::size_t memory_bytes = 1 << 22;
};

/// Runs `entry` (default "main", no arguments) and returns the observable
/// behaviour. Never throws for program-level traps; throws std::logic_error
/// only for malformed modules (missing entry).
ExecResult execute(const ir::Module& module, const ExecOptions& options = {},
                   const std::string& entry = "main");

}  // namespace gbm::interp
