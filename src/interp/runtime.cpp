#include "interp/runtime.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace gbm::interp {

namespace {

double bits_to_f64(std::int64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

const std::vector<RuntimeSignature>& Runtime::table() {
  static const std::vector<RuntimeSignature> kTable = {
      // Core I/O and allocation.
      {"gbm_print_i64", 1, false},
      {"gbm_print_f64", 1, false},
      {"gbm_print_str", 1, false},
      {"gbm_read_i64", 0, true},
      {"gbm_alloc", 1, true},
      // MiniJava runtime.
      {"jrt_newarray_i32", 1, true},
      {"jrt_arraylen", 1, true},
      {"jrt_boundscheck", 2, false},
      {"jrt_box_i32", 1, true},
      {"jrt_unbox_i32", 1, true},
      {"jrt_list_new", 0, true},
      {"jrt_list_add", 2, false},
      {"jrt_list_get", 2, true},
      {"jrt_list_set", 3, false},
      {"jrt_list_size", 1, true},
      {"jrt_println_i32", 1, false},
      {"jrt_println_str", 1, false},
      {"jrt_string_charat", 2, true},
      {"jrt_string_len", 1, true},
      // MiniC / MiniC++ runtime ("standard library" calls).
      {"crt_sort_i64", 2, false},
      {"crt_abs_i64", 1, true},
      {"crt_min_i64", 2, true},
      {"crt_max_i64", 2, true},
      {"crt_vec_new", 0, true},
      {"crt_vec_push", 2, false},
      {"crt_vec_get", 2, true},
      {"crt_vec_set", 3, false},
      {"crt_vec_size", 1, true},
      {"crt_vec_sort", 1, false},
      {"crt_strlen", 1, true},
      {"crt_pow_i64", 2, true},
  };
  return kTable;
}

bool Runtime::is_runtime_fn(const std::string& name) { return syscall_id(name) >= 0; }

int Runtime::syscall_id(const std::string& name) {
  static const std::unordered_map<std::string, int> kIds = [] {
    std::unordered_map<std::string, int> ids;
    const auto& t = table();
    for (std::size_t i = 0; i < t.size(); ++i) ids[t[i].name] = static_cast<int>(i);
    return ids;
  }();
  auto it = kIds.find(name);
  return it == kIds.end() ? -1 : it->second;
}

std::int64_t Runtime::invoke(const std::string& name,
                             const std::vector<std::int64_t>& args) {
  const int id = syscall_id(name);
  if (id < 0) throw TrapError("unknown runtime function: " + name);
  return invoke(id, args);
}

std::int64_t Runtime::invoke(int syscall, const std::vector<std::int64_t>& args) {
  const auto& sig = table().at(static_cast<std::size_t>(syscall));
  if (static_cast<int>(args.size()) != sig.num_args)
    throw TrapError("runtime arity mismatch for " + sig.name);
  const std::string& name = sig.name;
  char buf[64];

  if (name == "gbm_print_i64") {
    std::snprintf(buf, sizeof buf, "%lld\n", static_cast<long long>(args[0]));
    io_.output += buf;
    return 0;
  }
  if (name == "gbm_print_f64") {
    std::snprintf(buf, sizeof buf, "%.6g\n", bits_to_f64(args[0]));
    io_.output += buf;
    return 0;
  }
  if (name == "gbm_print_str") {
    io_.output += mem_.load_cstring(static_cast<std::uint64_t>(args[0]));
    return 0;
  }
  if (name == "gbm_read_i64")
    return io_.input_pos < io_.input.size() ? io_.input[io_.input_pos++] : 0;
  if (name == "gbm_alloc")
    return static_cast<std::int64_t>(mem_.alloc(static_cast<std::uint64_t>(args[0])));

  // ---- MiniJava ------------------------------------------------------------
  if (name == "jrt_newarray_i32") {
    const std::int64_t n = args[0];
    if (n < 0) throw TrapError("negative array size");
    const std::uint64_t p = mem_.alloc(8 + 4 * static_cast<std::uint64_t>(n));
    mem_.store_int(p, n, 8);
    return static_cast<std::int64_t>(p);
  }
  if (name == "jrt_arraylen")
    return mem_.load_int(static_cast<std::uint64_t>(args[0]), 8);
  if (name == "jrt_boundscheck") {
    const std::int64_t len = mem_.load_int(static_cast<std::uint64_t>(args[0]), 8);
    if (args[1] < 0 || args[1] >= len)
      throw TrapError("ArrayIndexOutOfBounds: " + std::to_string(args[1]) + " of " +
                      std::to_string(len));
    return 0;
  }
  if (name == "jrt_box_i32") {
    const std::uint64_t p = mem_.alloc(4);
    mem_.store_int(p, args[0], 4);
    return static_cast<std::int64_t>(p);
  }
  if (name == "jrt_unbox_i32")
    return mem_.load_int(static_cast<std::uint64_t>(args[0]), 4);
  if (name == "jrt_list_new") return static_cast<std::int64_t>(list_new());
  if (name == "jrt_list_add") {
    list_push(static_cast<std::uint64_t>(args[0]), args[1]);
    return 0;
  }
  if (name == "jrt_list_get")
    return list_get(static_cast<std::uint64_t>(args[0]), args[1]);
  if (name == "jrt_list_set") {
    list_set(static_cast<std::uint64_t>(args[0]), args[1], args[2]);
    return 0;
  }
  if (name == "jrt_list_size")
    return list_size(static_cast<std::uint64_t>(args[0]));
  if (name == "jrt_println_i32") {
    std::snprintf(buf, sizeof buf, "%d\n", static_cast<int>(args[0]));
    io_.output += buf;
    return 0;
  }
  if (name == "jrt_println_str") {
    io_.output += mem_.load_cstring(static_cast<std::uint64_t>(args[0]));
    io_.output += '\n';
    return 0;
  }
  if (name == "jrt_string_charat") {
    const std::string s = mem_.load_cstring(static_cast<std::uint64_t>(args[0]));
    if (args[1] < 0 || args[1] >= static_cast<std::int64_t>(s.size()))
      throw TrapError("StringIndexOutOfBounds");
    return static_cast<unsigned char>(s[static_cast<std::size_t>(args[1])]);
  }
  if (name == "jrt_string_len")
    return static_cast<std::int64_t>(
        mem_.load_cstring(static_cast<std::uint64_t>(args[0])).size());

  // ---- MiniC / MiniC++ -----------------------------------------------------
  if (name == "crt_sort_i64") {
    const std::uint64_t base = static_cast<std::uint64_t>(args[0]);
    const std::int64_t n = args[1];
    std::vector<std::int64_t> tmp(static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
    for (std::int64_t i = 0; i < n; ++i) tmp[i] = mem_.load_int(base + 8 * i, 8);
    std::sort(tmp.begin(), tmp.end());
    for (std::int64_t i = 0; i < n; ++i) mem_.store_int(base + 8 * i, tmp[i], 8);
    return 0;
  }
  if (name == "crt_abs_i64") return args[0] < 0 ? -args[0] : args[0];
  if (name == "crt_min_i64") return std::min(args[0], args[1]);
  if (name == "crt_max_i64") return std::max(args[0], args[1]);
  if (name == "crt_vec_new") return static_cast<std::int64_t>(list_new());
  if (name == "crt_vec_push") {
    list_push(static_cast<std::uint64_t>(args[0]), args[1]);
    return 0;
  }
  if (name == "crt_vec_get")
    return list_get(static_cast<std::uint64_t>(args[0]), args[1]);
  if (name == "crt_vec_set") {
    list_set(static_cast<std::uint64_t>(args[0]), args[1], args[2]);
    return 0;
  }
  if (name == "crt_vec_size")
    return list_size(static_cast<std::uint64_t>(args[0]));
  if (name == "crt_vec_sort") {
    const std::uint64_t list = static_cast<std::uint64_t>(args[0]);
    const std::int64_t n = list_size(list);
    std::vector<std::int64_t> tmp(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) tmp[i] = list_get(list, i);
    std::sort(tmp.begin(), tmp.end());
    for (std::int64_t i = 0; i < n; ++i) list_set(list, i, tmp[i]);
    return 0;
  }
  if (name == "crt_strlen")
    return static_cast<std::int64_t>(
        mem_.load_cstring(static_cast<std::uint64_t>(args[0])).size());
  if (name == "crt_pow_i64") {
    std::int64_t base = args[0], exp = args[1], acc = 1;
    while (exp > 0) {
      if (exp & 1) acc *= base;
      base *= base;
      exp >>= 1;
    }
    return acc;
  }
  throw TrapError("unimplemented runtime function: " + name);
}

// ---- growable list ---------------------------------------------------------

std::uint64_t Runtime::list_new() {
  const std::uint64_t hdr = mem_.alloc(24);
  const std::uint64_t data = mem_.alloc(8 * 8);
  mem_.store_int(hdr, 0, 8);       // size
  mem_.store_int(hdr + 8, 8, 8);   // capacity
  mem_.store_int(hdr + 16, static_cast<std::int64_t>(data), 8);
  return hdr;
}

void Runtime::list_push(std::uint64_t list, std::int64_t value) {
  std::int64_t size = mem_.load_int(list, 8);
  std::int64_t cap = mem_.load_int(list + 8, 8);
  std::uint64_t data = static_cast<std::uint64_t>(mem_.load_int(list + 16, 8));
  if (size == cap) {
    const std::int64_t new_cap = cap * 2;
    const std::uint64_t new_data = mem_.alloc(8 * static_cast<std::uint64_t>(new_cap));
    for (std::int64_t i = 0; i < size; ++i)
      mem_.store_int(new_data + 8 * i, mem_.load_int(data + 8 * i, 8), 8);
    mem_.store_int(list + 8, new_cap, 8);
    mem_.store_int(list + 16, static_cast<std::int64_t>(new_data), 8);
    data = new_data;
  }
  mem_.store_int(data + 8 * size, value, 8);
  mem_.store_int(list, size + 1, 8);
}

std::int64_t Runtime::list_get(std::uint64_t list, std::int64_t index) {
  const std::int64_t size = mem_.load_int(list, 8);
  if (index < 0 || index >= size) throw TrapError("list index out of range");
  const std::uint64_t data = static_cast<std::uint64_t>(mem_.load_int(list + 16, 8));
  return mem_.load_int(data + 8 * index, 8);
}

void Runtime::list_set(std::uint64_t list, std::int64_t index, std::int64_t value) {
  const std::int64_t size = mem_.load_int(list, 8);
  if (index < 0 || index >= size) throw TrapError("list index out of range");
  const std::uint64_t data = static_cast<std::uint64_t>(mem_.load_int(list + 16, 8));
  mem_.store_int(data + 8 * index, value, 8);
}

std::int64_t Runtime::list_size(std::uint64_t list) { return mem_.load_int(list, 8); }

}  // namespace gbm::interp
