#include "interp/interp.h"

#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace gbm::interp {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::TypeKind;
using ir::Value;
using ir::ValueKind;

/// Runtime value: integer/pointer or double, selected by the static IR type.
struct RV {
  std::int64_t i = 0;
  double d = 0.0;
};

class Interpreter {
 public:
  Interpreter(const ir::Module& module, const ExecOptions& options)
      : module_(module),
        options_(options),
        mem_(options.memory_bytes),
        runtime_(mem_, io_) {
    io_.input = options.input;
    materialise_globals();
  }

  ExecResult run(const std::string& entry) {
    ExecResult result;
    const Function* fn = module_.function(entry);
    if (!fn || fn->is_declaration())
      throw std::logic_error("interp: no definition of entry @" + entry);
    try {
      const RV rv = call_function(fn, {});
      result.exit_code = rv.i;
    } catch (const TrapError& trap) {
      result.trapped = true;
      result.trap_message = trap.what();
    }
    result.output = io_.output;
    result.steps = steps_;
    return result;
  }

 private:
  void materialise_globals() {
    for (const auto& g : module_.globals()) {
      const std::uint64_t addr =
          mem_.alloc(static_cast<std::uint64_t>(g->pointee()->size_bytes()));
      if (!g->data().empty())
        mem_.store_bytes(addr, g->data().data(), g->data().size());
      global_addr_[g.get()] = addr;
    }
  }

  static int int_size(const Type* t) { return static_cast<int>(t->size_bytes()); }

  RV constant_value(const Value* v) const {
    RV rv;
    switch (v->kind()) {
      case ValueKind::ConstantInt:
        rv.i = static_cast<const ir::ConstantInt*>(v)->value();
        return rv;
      case ValueKind::ConstantFloat:
        rv.d = static_cast<const ir::ConstantFloat*>(v)->value();
        return rv;
      case ValueKind::Global:
        rv.i = static_cast<std::int64_t>(
            global_addr_.at(static_cast<const ir::GlobalVar*>(v)));
        return rv;
      default:
        throw std::logic_error("interp: not a constant");
    }
  }

  RV call_function(const Function* fn, const std::vector<RV>& args) {
    if (++depth_ > 400) throw TrapError("call stack overflow");
    std::unordered_map<const Value*, RV> frame;
    for (std::size_t i = 0; i < fn->num_args(); ++i) frame[fn->arg(i)] = args[i];

    auto value_of = [&](const Value* v) -> RV {
      if (v->kind() == ValueKind::Instruction || v->kind() == ValueKind::Argument) {
        auto it = frame.find(v);
        if (it == frame.end()) throw TrapError("use of undefined value %" + v->name());
        return it->second;
      }
      return constant_value(v);
    };

    const BasicBlock* block = fn->entry();
    const BasicBlock* prev_block = nullptr;
    while (true) {
      // Phi nodes read their inputs simultaneously at block entry.
      std::vector<std::pair<const Instruction*, RV>> phi_updates;
      std::size_t idx = 0;
      const auto& insts = block->instructions();
      for (; idx < insts.size() && insts[idx]->opcode() == Opcode::Phi; ++idx) {
        const Instruction* phi = insts[idx].get();
        bool found = false;
        for (std::size_t k = 0; k < phi->num_operands(); ++k) {
          if (phi->incoming_blocks()[k] == prev_block) {
            phi_updates.emplace_back(phi, value_of(phi->operand(k)));
            found = true;
            break;
          }
        }
        if (!found) throw TrapError("phi has no incoming for predecessor");
      }
      for (auto& [phi, rv] : phi_updates) frame[phi] = rv;

      for (; idx < insts.size(); ++idx) {
        const Instruction* inst = insts[idx].get();
        if (++steps_ > options_.fuel) throw TrapError("fuel exhausted");
        switch (inst->opcode()) {
          case Opcode::Phi:
            throw TrapError("phi after non-phi instruction");
          case Opcode::Alloca: {
            std::int64_t count = 1;
            if (inst->num_operands() == 1) count = value_of(inst->operand(0)).i;
            if (count < 0) throw TrapError("negative alloca count");
            RV rv;
            rv.i = static_cast<std::int64_t>(mem_.alloc(
                static_cast<std::uint64_t>(inst->pointee()->size_bytes() * count)));
            frame[inst] = rv;
            break;
          }
          case Opcode::Load: {
            const std::uint64_t addr =
                static_cast<std::uint64_t>(value_of(inst->operand(0)).i);
            RV rv;
            if (inst->type()->is_float())
              rv.d = mem_.load_f64(addr);
            else
              rv.i = mem_.load_int(addr, int_size(inst->type()));
            frame[inst] = rv;
            break;
          }
          case Opcode::Store: {
            const RV v = value_of(inst->operand(0));
            const std::uint64_t addr =
                static_cast<std::uint64_t>(value_of(inst->operand(1)).i);
            const Type* ty = inst->operand(0)->type();
            if (ty->is_float())
              mem_.store_f64(addr, v.d);
            else
              mem_.store_int(addr, v.i, int_size(ty));
            break;
          }
          case Opcode::Gep: {
            const RV base = value_of(inst->operand(0));
            const RV index = value_of(inst->operand(1));
            RV rv;
            rv.i = base.i + index.i * inst->pointee()->size_bytes();
            frame[inst] = rv;
            break;
          }
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
          case Opcode::SRem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
          case Opcode::Shl: case Opcode::AShr: {
            const std::int64_t a = value_of(inst->operand(0)).i;
            const std::int64_t b = value_of(inst->operand(1)).i;
            RV rv;
            rv.i = eval_int_binop(inst->opcode(), a, b);
            rv.i = truncate_to(rv.i, inst->type());
            frame[inst] = rv;
            break;
          }
          case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv: {
            const double a = value_of(inst->operand(0)).d;
            const double b = value_of(inst->operand(1)).d;
            RV rv;
            switch (inst->opcode()) {
              case Opcode::FAdd: rv.d = a + b; break;
              case Opcode::FSub: rv.d = a - b; break;
              case Opcode::FMul: rv.d = a * b; break;
              default: rv.d = a / b; break;
            }
            frame[inst] = rv;
            break;
          }
          case Opcode::ICmp: {
            const std::int64_t a = value_of(inst->operand(0)).i;
            const std::int64_t b = value_of(inst->operand(1)).i;
            RV rv;
            rv.i = eval_cmp(inst->pred(), a, b);
            frame[inst] = rv;
            break;
          }
          case Opcode::FCmp: {
            const double a = value_of(inst->operand(0)).d;
            const double b = value_of(inst->operand(1)).d;
            RV rv;
            switch (inst->pred()) {
              case ir::CmpPred::EQ: rv.i = a == b; break;
              case ir::CmpPred::NE: rv.i = a != b; break;
              case ir::CmpPred::SLT: rv.i = a < b; break;
              case ir::CmpPred::SLE: rv.i = a <= b; break;
              case ir::CmpPred::SGT: rv.i = a > b; break;
              case ir::CmpPred::SGE: rv.i = a >= b; break;
            }
            frame[inst] = rv;
            break;
          }
          case Opcode::SExt: case Opcode::ZExt: case Opcode::Trunc:
          case Opcode::PtrToInt: case Opcode::IntToPtr: {
            RV rv = value_of(inst->operand(0));
            if (inst->opcode() == Opcode::ZExt)
              rv.i = zero_extend(rv.i, inst->operand(0)->type());
            rv.i = truncate_to(rv.i, inst->type());
            frame[inst] = rv;
            break;
          }
          case Opcode::SIToFP: {
            RV rv;
            rv.d = static_cast<double>(value_of(inst->operand(0)).i);
            frame[inst] = rv;
            break;
          }
          case Opcode::FPToSI: {
            RV rv;
            rv.i = static_cast<std::int64_t>(value_of(inst->operand(0)).d);
            rv.i = truncate_to(rv.i, inst->type());
            frame[inst] = rv;
            break;
          }
          case Opcode::Select: {
            frame[inst] = value_of(inst->operand(0)).i
                              ? value_of(inst->operand(1))
                              : value_of(inst->operand(2));
            break;
          }
          case Opcode::Call: {
            const Function* callee = inst->callee();
            std::vector<RV> call_args;
            call_args.reserve(inst->num_operands());
            for (std::size_t a = 0; a < inst->num_operands(); ++a)
              call_args.push_back(value_of(inst->operand(a)));
            RV rv;
            if (callee->is_declaration()) {
              std::vector<std::int64_t> raw;
              raw.reserve(call_args.size());
              for (std::size_t a = 0; a < call_args.size(); ++a) {
                if (callee->arg(a)->type()->is_float()) {
                  std::int64_t bits;
                  std::memcpy(&bits, &call_args[a].d, 8);
                  raw.push_back(bits);
                } else {
                  raw.push_back(call_args[a].i);
                }
              }
              rv.i = runtime_.invoke(callee->name(), raw);
            } else {
              rv = call_function(callee, call_args);
            }
            if (!inst->type()->is_void()) frame[inst] = rv;
            break;
          }
          case Opcode::Br:
            prev_block = block;
            block = inst->targets()[0];
            goto next_block;
          case Opcode::CondBr:
            prev_block = block;
            block = value_of(inst->operand(0)).i ? inst->targets()[0]
                                                 : inst->targets()[1];
            goto next_block;
          case Opcode::Switch: {
            const std::int64_t v = value_of(inst->operand(0)).i;
            prev_block = block;
            block = inst->targets()[0];  // default
            for (std::size_t c = 0; c < inst->case_values().size(); ++c) {
              if (inst->case_values()[c] == v) {
                block = inst->targets()[c + 1];
                break;
              }
            }
            goto next_block;
          }
          case Opcode::Ret: {
            --depth_;
            return inst->num_operands() ? value_of(inst->operand(0)) : RV{};
          }
          case Opcode::Unreachable:
            throw TrapError("executed unreachable");
        }
      }
      throw TrapError("block fell through without terminator");
    next_block:;
    }
  }

  static std::int64_t eval_int_binop(Opcode op, std::int64_t a, std::int64_t b) {
    switch (op) {
      case Opcode::Add: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
      case Opcode::Sub: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
      case Opcode::Mul: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
      case Opcode::SDiv:
        if (b == 0) throw TrapError("division by zero");
        if (a == INT64_MIN && b == -1) return a;
        return a / b;
      case Opcode::SRem:
        if (b == 0) throw TrapError("remainder by zero");
        if (a == INT64_MIN && b == -1) return 0;
        return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63));
      case Opcode::AShr: return a >> (static_cast<std::uint64_t>(b) & 63);
      default: throw std::logic_error("not an int binop");
    }
  }

  static std::int64_t eval_cmp(ir::CmpPred pred, std::int64_t a, std::int64_t b) {
    switch (pred) {
      case ir::CmpPred::EQ: return a == b;
      case ir::CmpPred::NE: return a != b;
      case ir::CmpPred::SLT: return a < b;
      case ir::CmpPred::SLE: return a <= b;
      case ir::CmpPred::SGT: return a > b;
      case ir::CmpPred::SGE: return a >= b;
    }
    return 0;
  }

  static std::int64_t truncate_to(std::int64_t v, const Type* ty) {
    switch (ty->kind()) {
      case TypeKind::I1: return v & 1;
      case TypeKind::I8: return static_cast<std::int8_t>(v);
      case TypeKind::I32: return static_cast<std::int32_t>(v);
      default: return v;
    }
  }

  static std::int64_t zero_extend(std::int64_t v, const Type* from) {
    switch (from->kind()) {
      case TypeKind::I1: return v & 1;
      case TypeKind::I8: return static_cast<std::uint8_t>(v);
      case TypeKind::I32: return static_cast<std::uint32_t>(v);
      default: return v;
    }
  }

  const ir::Module& module_;
  const ExecOptions& options_;
  RuntimeMemory mem_;
  ProgramIO io_;
  Runtime runtime_;
  std::unordered_map<const ir::GlobalVar*, std::uint64_t> global_addr_;
  long steps_ = 0;
  int depth_ = 0;
};

}  // namespace

ExecResult execute(const ir::Module& module, const ExecOptions& options,
                   const std::string& entry) {
  Interpreter interp(module, options);
  return interp.run(entry);
}

}  // namespace gbm::interp
