// Library runtime shared by the IR interpreter and the VBin VM.
//
// The MiniC/MiniC++ front-end lowers standard-library constructs to crt_*
// calls; MiniJava lowers its implicit runtime (array bounds checks, boxing,
// ArrayList, println) to jrt_* calls. Both execution engines dispatch these
// by name through this class, so a program observes identical library
// behaviour whether it runs as interpreted IR, as a VBin binary, or as
// re-interpreted decompiled IR.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "interp/memory.h"

namespace gbm::interp {

/// Observable I/O of one program execution.
struct ProgramIO {
  std::vector<std::int64_t> input;  // consumed by gbm_read_i64
  std::size_t input_pos = 0;
  std::string output;  // appended to by the print family
};

struct RuntimeSignature {
  std::string name;
  int num_args;
  bool returns_value;  // integers/pointers only; runtime has no f64 returns
                       // except gbm_read / print which are int-based
};

class Runtime {
 public:
  Runtime(RuntimeMemory& mem, ProgramIO& io) : mem_(mem), io_(io) {}

  /// True if `name` is a known runtime function.
  static bool is_runtime_fn(const std::string& name);
  /// All runtime entry points (used by the VM syscall table and the
  /// decompiler's library-call recognition). Index order is the syscall id.
  static const std::vector<RuntimeSignature>& table();
  /// Syscall id for a name, or -1.
  static int syscall_id(const std::string& name);

  /// Invokes a runtime function with integer/pointer arguments (doubles are
  /// passed bit-cast). Returns the result (or 0 for void).
  std::int64_t invoke(const std::string& name, const std::vector<std::int64_t>& args);
  std::int64_t invoke(int syscall, const std::vector<std::int64_t>& args);

 private:
  // List layout: [size:i64][capacity:i64][data ptr:i64].
  std::uint64_t list_new();
  void list_push(std::uint64_t list, std::int64_t value);
  std::int64_t list_get(std::uint64_t list, std::int64_t index);
  void list_set(std::uint64_t list, std::int64_t index, std::int64_t value);
  std::int64_t list_size(std::uint64_t list);

  RuntimeMemory& mem_;
  ProgramIO& io_;
};

}  // namespace gbm::interp
