// Type system of the GBM intermediate representation.
//
// A deliberately small analogue of LLVM's type system: scalar integer and
// floating types, an opaque pointer, and sized arrays. Types are interned
// in a TypeContext, so `const Type*` identity comparison is type equality.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gbm::ir {

enum class TypeKind : std::uint8_t {
  Void,
  I1,   // boolean
  I8,   // byte / char
  I32,  // MiniJava int, MiniC int
  I64,  // MiniC long, pointers-as-integers in lifted code
  F64,  // MiniC double
  Ptr,  // opaque pointer (pointee tracked per-instruction, as in modern LLVM)
  Array,
};

class Type {
 public:
  TypeKind kind() const { return kind_; }
  bool is_void() const { return kind_ == TypeKind::Void; }
  bool is_integer() const {
    return kind_ == TypeKind::I1 || kind_ == TypeKind::I8 || kind_ == TypeKind::I32 ||
           kind_ == TypeKind::I64;
  }
  bool is_float() const { return kind_ == TypeKind::F64; }
  bool is_pointer() const { return kind_ == TypeKind::Ptr; }
  bool is_array() const { return kind_ == TypeKind::Array; }

  /// Element type of an array; nullptr otherwise.
  const Type* element() const { return element_; }
  /// Number of elements of an array; 0 otherwise.
  long length() const { return length_; }

  /// Integer bit width (0 for non-integers).
  int bits() const {
    switch (kind_) {
      case TypeKind::I1: return 1;
      case TypeKind::I8: return 8;
      case TypeKind::I32: return 32;
      case TypeKind::I64: return 64;
      default: return 0;
    }
  }

  /// Storage size in bytes as laid out by the backend and interpreter.
  long size_bytes() const {
    switch (kind_) {
      case TypeKind::Void: return 0;
      case TypeKind::I1:
      case TypeKind::I8: return 1;
      case TypeKind::I32: return 4;
      case TypeKind::I64:
      case TypeKind::F64:
      case TypeKind::Ptr: return 8;
      case TypeKind::Array: return element_->size_bytes() * length_;
    }
    return 0;
  }

  std::string str() const {
    switch (kind_) {
      case TypeKind::Void: return "void";
      case TypeKind::I1: return "i1";
      case TypeKind::I8: return "i8";
      case TypeKind::I32: return "i32";
      case TypeKind::I64: return "i64";
      case TypeKind::F64: return "double";
      case TypeKind::Ptr: return "ptr";
      case TypeKind::Array:
        return "[" + std::to_string(length_) + " x " + element_->str() + "]";
    }
    return "?";
  }

 private:
  friend class TypeContext;
  Type(TypeKind kind, const Type* element, long length)
      : kind_(kind), element_(element), length_(length) {}
  TypeKind kind_;
  const Type* element_;
  long length_;
};

/// Owns and interns all types. One per Module (or shared across modules).
class TypeContext {
 public:
  TypeContext() {
    for (TypeKind k : {TypeKind::Void, TypeKind::I1, TypeKind::I8, TypeKind::I32,
                       TypeKind::I64, TypeKind::F64, TypeKind::Ptr}) {
      scalars_[static_cast<int>(k)] =
          std::unique_ptr<Type>(new Type(k, nullptr, 0));
    }
  }
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  const Type* void_ty() const { return get(TypeKind::Void); }
  const Type* i1() const { return get(TypeKind::I1); }
  const Type* i8() const { return get(TypeKind::I8); }
  const Type* i32() const { return get(TypeKind::I32); }
  const Type* i64() const { return get(TypeKind::I64); }
  const Type* f64() const { return get(TypeKind::F64); }
  const Type* ptr() const { return get(TypeKind::Ptr); }

  const Type* array(const Type* element, long length) {
    auto key = std::make_pair(element, length);
    auto it = arrays_.find(key);
    if (it != arrays_.end()) return it->second.get();
    auto ty = std::unique_ptr<Type>(new Type(TypeKind::Array, element, length));
    const Type* raw = ty.get();
    arrays_.emplace(key, std::move(ty));
    return raw;
  }

  /// Parses a scalar type name ("i32", "double", "ptr", ...); nullptr if unknown.
  const Type* by_name(const std::string& name) const {
    if (name == "void") return void_ty();
    if (name == "i1") return i1();
    if (name == "i8") return i8();
    if (name == "i32") return i32();
    if (name == "i64") return i64();
    if (name == "double") return f64();
    if (name == "ptr") return ptr();
    return nullptr;
  }

 private:
  const Type* get(TypeKind k) const { return scalars_[static_cast<int>(k)].get(); }
  std::unique_ptr<Type> scalars_[7];
  std::map<std::pair<const Type*, long>, std::unique_ptr<Type>> arrays_;
};

}  // namespace gbm::ir
