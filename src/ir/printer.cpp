#include "ir/printer.h"

#include <cstdio>

namespace gbm::ir {

namespace {

std::string typed_ref(const Value* v) { return v->type()->str() + " " + v->ref(); }

}  // namespace

std::string print_instruction(const Instruction& inst) {
  std::string s;
  const bool produces = !inst.type()->is_void();
  if (produces) s += inst.ref() + " = ";
  switch (inst.opcode()) {
    case Opcode::Alloca:
      s += "alloca " + inst.pointee()->str();
      if (inst.num_operands() == 1) s += ", " + typed_ref(inst.operand(0));
      break;
    case Opcode::Load:
      s += "load " + inst.pointee()->str() + ", ptr " + inst.operand(0)->ref();
      break;
    case Opcode::Store:
      s += "store " + typed_ref(inst.operand(0)) + ", ptr " + inst.operand(1)->ref();
      break;
    case Opcode::Gep:
      s += "getelementptr " + inst.pointee()->str() + ", ptr " +
           inst.operand(0)->ref() + ", " + typed_ref(inst.operand(1));
      break;
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
    case Opcode::SRem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::Shl: case Opcode::AShr:
    case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
      s += std::string(opcode_name(inst.opcode())) + " " + inst.type()->str() + " " +
           inst.operand(0)->ref() + ", " + inst.operand(1)->ref();
      break;
    case Opcode::ICmp:
    case Opcode::FCmp:
      s += std::string(opcode_name(inst.opcode())) + " " + pred_name(inst.pred()) +
           " " + inst.operand(0)->type()->str() + " " + inst.operand(0)->ref() +
           ", " + inst.operand(1)->ref();
      break;
    case Opcode::SExt: case Opcode::ZExt: case Opcode::Trunc: case Opcode::SIToFP:
    case Opcode::FPToSI: case Opcode::PtrToInt: case Opcode::IntToPtr:
      s += std::string(opcode_name(inst.opcode())) + " " + typed_ref(inst.operand(0)) +
           " to " + inst.type()->str();
      break;
    case Opcode::Br:
      s += "br label %" + inst.targets()[0]->name();
      break;
    case Opcode::CondBr:
      s += "br i1 " + inst.operand(0)->ref() + ", label %" + inst.targets()[0]->name() +
           ", label %" + inst.targets()[1]->name();
      break;
    case Opcode::Switch: {
      s += "switch " + typed_ref(inst.operand(0)) + ", label %" +
           inst.targets()[0]->name() + " [";
      for (std::size_t i = 0; i < inst.case_values().size(); ++i) {
        s += (i ? ", " : " ");
        s += inst.operand(0)->type()->str() + " " +
             std::to_string(inst.case_values()[i]) + ", label %" +
             inst.targets()[i + 1]->name();
      }
      s += " ]";
      break;
    }
    case Opcode::Ret:
      s += inst.num_operands() ? "ret " + typed_ref(inst.operand(0)) : "ret void";
      break;
    case Opcode::Unreachable:
      s += "unreachable";
      break;
    case Opcode::Call: {
      s += "call " + inst.callee()->return_type()->str() + " @" +
           inst.callee()->name() + "(";
      for (std::size_t i = 0; i < inst.num_operands(); ++i) {
        if (i) s += ", ";
        s += typed_ref(inst.operand(i));
      }
      s += ")";
      break;
    }
    case Opcode::Phi: {
      s += "phi " + inst.type()->str() + " ";
      for (std::size_t i = 0; i < inst.num_operands(); ++i) {
        if (i) s += ", ";
        s += "[ " + inst.operand(i)->ref() + ", %" +
             inst.incoming_blocks()[i]->name() + " ]";
      }
      break;
    }
    case Opcode::Select:
      s += "select i1 " + inst.operand(0)->ref() + ", " + typed_ref(inst.operand(1)) +
           ", " + typed_ref(inst.operand(2));
      break;
  }
  return s;
}

std::string print_block(const BasicBlock& bb) {
  std::string s = bb.name() + ":\n";
  for (const auto& inst : bb.instructions()) s += "  " + print_instruction(*inst) + "\n";
  return s;
}

std::string print_function(const Function& fn) {
  std::string s = fn.is_declaration() ? "declare " : "define ";
  s += fn.return_type()->str() + " @" + fn.name() + "(";
  for (std::size_t i = 0; i < fn.num_args(); ++i) {
    if (i) s += ", ";
    s += fn.arg(i)->type()->str() + " %" + fn.arg(i)->name();
  }
  s += ")";
  if (fn.is_declaration()) return s + "\n";
  s += " {\n";
  for (const auto& bb : fn.blocks()) s += print_block(*bb);
  return s + "}\n";
}

std::string print_module(const Module& m) {
  std::string s = "; module " + m.name() + "\n";
  for (const auto& g : m.globals()) {
    s += "@" + g->name() + " = " + (g->is_const() ? "constant " : "global ") +
         g->pointee()->str();
    if (g->is_string()) {
      s += " c\"";
      for (std::size_t i = 0; i + 1 < g->data().size(); ++i) {
        const char c = static_cast<char>(g->data()[i]);
        if (c == '\n') s += "\\n";
        else if (c == '\t') s += "\\t";
        else if (c == '"') s += "\\22";
        else if (c == '\\') s += "\\5C";
        else s += c;
      }
      s += "\\00\"";
    } else {
      s += " zeroinitializer";
    }
    s += "\n";
  }
  if (!m.globals().empty()) s += "\n";
  for (const auto& f : m.functions()) {
    if (f->is_declaration()) s += print_function(*f);
  }
  for (const auto& f : m.functions()) {
    if (!f->is_declaration()) {
      s += "\n";
      s += print_function(*f);
    }
  }
  return s;
}

}  // namespace gbm::ir
