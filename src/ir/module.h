// Module / Function / BasicBlock containers of the GBM IR.
//
// Ownership: Module owns globals, constants and functions; Function owns
// arguments and blocks; BasicBlock owns instructions. All cross-references
// (operands, targets, callees) are non-owning raw pointers whose lifetime
// is bounded by the Module.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instruction.h"

namespace gbm::ir {

class Function;
class Module;

class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  Function* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return insts_;
  }
  bool empty() const { return insts_.empty(); }
  Instruction* terminator() const {
    return insts_.empty() || !insts_.back()->is_term() ? nullptr : insts_.back().get();
  }

  Instruction* append(std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
  }
  Instruction* insert(std::size_t pos, std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    insts_.insert(insts_.begin() + static_cast<long>(pos), std::move(inst));
    return insts_[pos].get();
  }
  /// Removes (and destroys) the instruction at `pos`.
  void erase(std::size_t pos) { insts_.erase(insts_.begin() + static_cast<long>(pos)); }
  /// Removes the given instruction; returns true if found.
  bool erase(Instruction* inst);
  /// Detaches the instruction without destroying it (for moves).
  std::unique_ptr<Instruction> detach(Instruction* inst);

  /// Successor blocks (from the terminator), empty if no terminator.
  std::vector<BasicBlock*> successors() const;
  /// Predecessor blocks (computed by scanning the parent function).
  std::vector<BasicBlock*> predecessors() const;

 private:
  std::string name_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> insts_;
};

class Function {
 public:
  Function(std::string name, const Type* return_type,
           std::vector<const Type*> param_types, Module* parent);

  const std::string& name() const { return name_; }
  const Type* return_type() const { return return_type_; }
  Module* parent() const { return parent_; }
  bool is_declaration() const { return blocks_.empty(); }

  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }
  Argument* arg(std::size_t i) const { return args_[i].get(); }
  std::size_t num_args() const { return args_.size(); }

  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const { return blocks_; }
  BasicBlock* entry() const { return blocks_.empty() ? nullptr : blocks_[0].get(); }
  BasicBlock* create_block(const std::string& hint = "bb");
  /// Removes (and destroys) a block; all instructions in it are dropped first.
  void erase_block(BasicBlock* bb);
  BasicBlock* block_by_name(const std::string& name) const;

  /// Fresh SSA value name ("v1", "v2", ...). Deterministic per function.
  std::string next_value_name() { return "v" + std::to_string(++value_counter_); }
  /// Fresh block name.
  std::string next_block_name(const std::string& hint) {
    return hint + std::to_string(block_counter_++);
  }

  long instruction_count() const;

 private:
  std::string name_;
  const Type* return_type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  long value_counter_ = 0;
  long block_counter_ = 0;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Member teardown destroys constants_/globals_ before funcs_, so an
  /// instruction destructor would otherwise call remove_user() on operand
  /// Values that are already freed. Sever every use list up front (LLVM's
  /// dropAllReferences) so the destructors find nothing to unlink.
  ~Module() {
    for (auto& fn : funcs_)
      for (auto& block : fn->blocks())
        for (auto& inst : block->instructions()) inst->drop_operands();
  }

  const std::string& name() const { return name_; }
  TypeContext& types() { return types_; }
  const TypeContext& types() const { return types_; }

  // ---- functions ----------------------------------------------------------
  Function* create_function(const std::string& name, const Type* return_type,
                            std::vector<const Type*> param_types);
  Function* function(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const { return funcs_; }

  // ---- globals -------------------------------------------------------------
  GlobalVar* create_global(const std::string& name, const Type* pointee,
                           std::vector<std::uint8_t> data, bool is_const);
  /// Interns a NUL-terminated string literal global; reuses duplicates.
  GlobalVar* string_literal(const std::string& text);
  GlobalVar* global(const std::string& name) const;
  const std::vector<std::unique_ptr<GlobalVar>>& globals() const { return globals_; }

  // ---- constants (interned, owned by the module) -----------------------------
  ConstantInt* const_int(const Type* type, std::int64_t value);
  ConstantFloat* const_float(double value);
  ConstantInt* const_i1(bool v) { return const_int(types_.i1(), v ? 1 : 0); }
  ConstantInt* const_i32(std::int32_t v) { return const_int(types_.i32(), v); }
  ConstantInt* const_i64(std::int64_t v) { return const_int(types_.i64(), v); }

  long instruction_count() const;

 private:
  std::string name_;
  TypeContext types_;
  std::vector<std::unique_ptr<Function>> funcs_;
  std::vector<std::unique_ptr<GlobalVar>> globals_;
  std::vector<std::unique_ptr<Value>> constants_;
  std::unordered_map<std::string, ConstantInt*> int_pool_;
  std::unordered_map<std::string, GlobalVar*> string_pool_;
  int string_counter_ = 0;
};

}  // namespace gbm::ir
