// Convenience construction of IR instructions with automatic value naming,
// mirroring llvm::IRBuilder. All front-ends and the decompiler lift through
// this interface.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "ir/module.h"

namespace gbm::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() { return module_; }
  void set_insertion(BasicBlock* bb) {
    bb_ = bb;
    func_ = bb ? bb->parent() : nullptr;
  }
  BasicBlock* block() const { return bb_; }
  Function* function() const { return func_; }

  // ---- memory ------------------------------------------------------------
  Instruction* alloca_(const Type* ty, Value* count = nullptr) {
    auto* inst = make(Opcode::Alloca, module_.types().ptr());
    inst->set_pointee(ty);
    if (count) inst->add_operand(count);
    return append(inst);
  }
  Instruction* load(const Type* ty, Value* ptr) {
    auto* inst = make(Opcode::Load, ty);
    inst->set_pointee(ty);
    inst->add_operand(ptr);
    return append(inst);
  }
  Instruction* store(Value* value, Value* ptr) {
    auto* inst = make(Opcode::Store, module_.types().void_ty());
    inst->add_operand(value);
    inst->add_operand(ptr);
    return append(inst);
  }
  Instruction* gep(const Type* elem, Value* base, Value* index) {
    auto* inst = make(Opcode::Gep, module_.types().ptr());
    inst->set_pointee(elem);
    inst->add_operand(base);
    inst->add_operand(index);
    return append(inst);
  }

  // ---- arithmetic -----------------------------------------------------------
  Instruction* binop(Opcode op, Value* a, Value* b) {
    if (!is_binary_int(op) && !is_binary_float(op))
      throw std::logic_error("IRBuilder::binop: not a binary opcode");
    auto* inst = make(op, a->type());
    inst->add_operand(a);
    inst->add_operand(b);
    return append(inst);
  }
  Instruction* icmp(CmpPred pred, Value* a, Value* b) {
    auto* inst = make(Opcode::ICmp, module_.types().i1());
    inst->set_pred(pred);
    inst->add_operand(a);
    inst->add_operand(b);
    return append(inst);
  }
  Instruction* fcmp(CmpPred pred, Value* a, Value* b) {
    auto* inst = make(Opcode::FCmp, module_.types().i1());
    inst->set_pred(pred);
    inst->add_operand(a);
    inst->add_operand(b);
    return append(inst);
  }
  Instruction* cast(Opcode op, Value* v, const Type* to) {
    if (!is_cast(op)) throw std::logic_error("IRBuilder::cast: not a cast opcode");
    auto* inst = make(op, to);
    inst->add_operand(v);
    return append(inst);
  }
  Instruction* select(Value* cond, Value* a, Value* b) {
    auto* inst = make(Opcode::Select, a->type());
    inst->add_operand(cond);
    inst->add_operand(a);
    inst->add_operand(b);
    return append(inst);
  }

  // ---- control flow -----------------------------------------------------
  Instruction* br(BasicBlock* dest) {
    auto* inst = make(Opcode::Br, module_.types().void_ty());
    inst->add_target(dest);
    return append(inst);
  }
  Instruction* cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
    auto* inst = make(Opcode::CondBr, module_.types().void_ty());
    inst->add_operand(cond);
    inst->add_target(if_true);
    inst->add_target(if_false);
    return append(inst);
  }
  /// Cases are added afterwards with Instruction::add_case.
  Instruction* switch_(Value* value, BasicBlock* default_dest) {
    auto* inst = make(Opcode::Switch, module_.types().void_ty());
    inst->add_operand(value);
    inst->add_target(default_dest);
    return append(inst);
  }
  Instruction* ret(Value* value = nullptr) {
    auto* inst = make(Opcode::Ret, module_.types().void_ty());
    if (value) inst->add_operand(value);
    return append(inst);
  }
  Instruction* unreachable_() {
    return append(make(Opcode::Unreachable, module_.types().void_ty()));
  }

  // ---- other --------------------------------------------------------------
  Instruction* call(Function* callee, const std::vector<Value*>& args) {
    auto* inst = make(Opcode::Call, callee->return_type());
    inst->set_callee(callee);
    for (Value* a : args) inst->add_operand(a);
    return append(inst);
  }
  /// Incoming values are added afterwards with Instruction::add_incoming.
  Instruction* phi(const Type* ty) { return append(make(Opcode::Phi, ty)); }

 private:
  Instruction* make(Opcode op, const Type* result_type) {
    const bool produces = !result_type->is_void();
    std::string name = produces && func_ ? func_->next_value_name() : "";
    return new Instruction(op, result_type, std::move(name));
  }
  Instruction* append(Instruction* raw) {
    if (!bb_) throw std::logic_error("IRBuilder: no insertion point");
    if (raw->name().empty() && !raw->type()->is_void())
      raw->set_name(func_->next_value_name());
    return bb_->append(std::unique_ptr<Instruction>(raw));
  }

  Module& module_;
  Function* func_ = nullptr;
  BasicBlock* bb_ = nullptr;
};

}  // namespace gbm::ir
