#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace gbm::ir {

namespace {

/// Cursor over one line of IR text.
class LineLexer {
 public:
  LineLexer(const std::string& line, std::size_t line_no)
      : s_(line), line_(line_no) {}

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!try_consume(c)) fail(std::string("expected '") + c + "'");
  }
  bool try_word(const std::string& w) {
    skip_ws();
    if (s_.compare(pos_, w.size(), w) == 0) {
      const std::size_t end = pos_ + w.size();
      if (end == s_.size() || !is_ident_char(s_[end])) {
        pos_ = end;
        return true;
      }
    }
    return false;
  }
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() && is_ident_char(s_[pos_])) ++pos_;
    if (start == pos_) fail("expected identifier");
    return s_.substr(start, pos_ - start);
  }
  /// Signed integer or float literal; sets is_float accordingly.
  std::string number(bool& is_float) {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    is_float = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' ||
            ((s_[pos_] == '-' || s_[pos_] == '+') &&
             (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
      if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E') is_float = true;
      ++pos_;
    }
    if (start == pos_) fail("expected number");
    return s_.substr(start, pos_ - start);
  }
  std::string rest() {
    skip_ws();
    return s_.substr(pos_);
  }
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(line_, msg + " in: " + s_);
  }
  std::size_t line_no() const { return line_; }

  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

struct PendingFix {
  Instruction* inst;
  std::size_t op_index;
  std::string name;  // value name without '%'
  std::size_t line;
};

class ModuleParser {
 public:
  explicit ModuleParser(const std::string& text, const std::string& name)
      : module_(std::make_unique<Module>(name)) {
    split_lines(text);
  }

  std::unique_ptr<Module> run() {
    scan_signatures();
    parse_bodies();
    return std::move(module_);
  }

 private:
  void split_lines(const std::string& text) {
    std::string cur;
    for (char c : text) {
      if (c == '\n') {
        lines_.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lines_.push_back(cur);
  }

  static bool blank_or_comment(const std::string& l) {
    for (char c : l) {
      if (c == ';') return true;
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  }

  const Type* parse_type(LineLexer& lex) {
    if (lex.try_consume('[')) {
      bool is_float = false;
      const long n = std::atol(lex.number(is_float).c_str());
      if (!lex.try_word("x")) lex.fail("expected 'x' in array type");
      const Type* elem = parse_type(lex);
      lex.expect(']');
      return module_->types().array(elem, n);
    }
    const std::string name = lex.ident();
    const Type* t = module_->types().by_name(name);
    if (!t) lex.fail("unknown type " + name);
    return t;
  }

  // Pass 1: create all globals and function signatures.
  void scan_signatures() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string& line = lines_[i];
      if (blank_or_comment(line)) continue;
      LineLexer lex(line, i + 1);
      if (lex.peek() == '@') {
        parse_global(lex);
      } else if (lex.try_word("declare") || lex.try_word("define")) {
        parse_signature(lex);
      }
    }
  }

  void parse_global(LineLexer& lex) {
    lex.expect('@');
    const std::string name = lex.ident();
    lex.expect('=');
    bool is_const = false;
    if (lex.try_word("constant")) is_const = true;
    else if (!lex.try_word("global")) lex.fail("expected 'global' or 'constant'");
    const Type* pointee = parse_type(lex);
    std::vector<std::uint8_t> data;
    if (lex.try_word("zeroinitializer")) {
      // zero-filled
    } else if (lex.try_consume('c')) {
      lex.expect('"');
      const std::string rest = lex.rest();
      for (std::size_t p = 0; p < rest.size(); ++p) {
        const char c = rest[p];
        if (c == '"') break;
        if (c == '\\') {
          if (p + 1 < rest.size() && rest[p + 1] == 'n') { data.push_back('\n'); ++p; }
          else if (p + 1 < rest.size() && rest[p + 1] == 't') { data.push_back('\t'); ++p; }
          else if (p + 2 < rest.size()) {
            const char hex[3] = {rest[p + 1], rest[p + 2], 0};
            data.push_back(static_cast<std::uint8_t>(std::strtol(hex, nullptr, 16)));
            p += 2;
          }
        } else {
          data.push_back(static_cast<std::uint8_t>(c));
        }
      }
    } else {
      lex.fail("expected initializer");
    }
    module_->create_global(name, pointee, std::move(data), is_const);
  }

  void parse_signature(LineLexer& lex) {
    const Type* ret = parse_type(lex);
    lex.expect('@');
    const std::string name = lex.ident();
    lex.expect('(');
    std::vector<const Type*> params;
    if (!lex.try_consume(')')) {
      do {
        params.push_back(parse_type(lex));
        lex.expect('%');
        lex.ident();  // argument name (positional binding)
      } while (lex.try_consume(','));
      lex.expect(')');
    }
    module_->create_function(name, ret, std::move(params));
  }

  // Pass 2: parse function bodies.
  void parse_bodies() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      if (blank_or_comment(lines_[i])) continue;
      LineLexer lex(lines_[i], i + 1);
      if (!lex.try_word("define")) continue;
      i = parse_body(lex, i);
    }
  }

  std::size_t parse_body(LineLexer& header, std::size_t header_idx) {
    parse_type(header);
    header.expect('@');
    Function* fn = module_->function(header.ident());

    values_.clear();
    pending_.clear();
    for (const auto& arg : fn->args()) values_["%" + arg->name()] = arg.get();

    // Pre-create blocks so branch targets resolve forward.
    std::size_t end = header_idx + 1;
    std::vector<std::pair<std::size_t, std::string>> block_lines;
    for (; end < lines_.size(); ++end) {
      const std::string& l = lines_[end];
      if (!l.empty() && l[0] == '}') break;
      if (blank_or_comment(l)) continue;
      const std::size_t colon = l.find(':');
      const bool is_label = colon != std::string::npos &&
                            l.find('=') == std::string::npos &&
                            l.find("br ") == std::string::npos &&
                            l.find("switch") == std::string::npos &&
                            l.find("phi") == std::string::npos &&
                            l.substr(0, 2) != "  ";
      if (is_label) block_lines.emplace_back(end, l.substr(0, colon));
    }
    if (end >= lines_.size())
      throw ParseError(header_idx + 1, "unterminated function body");
    for (const auto& [line_no, name] : block_lines) {
      (void)line_no;
      blocks_by_name_[name] = fn->create_block("tmp");
      blocks_by_name_[name]->set_name(name);
    }

    BasicBlock* current = nullptr;
    for (std::size_t i = header_idx + 1; i < end; ++i) {
      const std::string& l = lines_[i];
      if (blank_or_comment(l)) continue;
      if (l.substr(0, 2) != "  ") {  // label line
        const std::size_t colon = l.find(':');
        current = blocks_by_name_.at(l.substr(0, colon));
        continue;
      }
      if (!current) throw ParseError(i + 1, "instruction before first label");
      LineLexer lex(l, i + 1);
      parse_instruction(lex, fn, current);
    }

    // Resolve forward value references (phis).
    for (const auto& fix : pending_) {
      auto it = values_.find("%" + fix.name);
      if (it == values_.end())
        throw ParseError(fix.line, "undefined value %" + fix.name);
      fix.inst->set_operand(fix.op_index, it->second);
    }
    pending_.clear();
    blocks_by_name_.clear();
    return end;
  }

  Value* parse_value(LineLexer& lex, const Type* type, Instruction* inst_for_fixup,
                     std::size_t op_index) {
    if (lex.try_consume('%')) {
      const std::string name = lex.ident();
      auto it = values_.find("%" + name);
      if (it != values_.end()) return it->second;
      // Forward reference: use placeholder, patch later.
      pending_.push_back({inst_for_fixup, op_index, name, lex.line_no()});
      return module_->const_i64(0);
    }
    if (lex.try_consume('@')) {
      const std::string name = lex.ident();
      GlobalVar* g = module_->global(name);
      if (!g) lex.fail("undefined global @" + name);
      return g;
    }
    bool is_float = false;
    const std::string num = lex.number(is_float);
    if (is_float || type->is_float())
      return module_->const_float(std::strtod(num.c_str(), nullptr));
    return module_->const_int(type, std::strtoll(num.c_str(), nullptr, 10));
  }

  BasicBlock* parse_label(LineLexer& lex) {
    if (!lex.try_word("label")) lex.fail("expected 'label'");
    lex.expect('%');
    const std::string name = lex.ident();
    auto it = blocks_by_name_.find(name);
    if (it == blocks_by_name_.end()) lex.fail("unknown block %" + name);
    return it->second;
  }

  CmpPred parse_pred(LineLexer& lex) {
    const std::string p = lex.ident();
    if (p == "eq") return CmpPred::EQ;
    if (p == "ne") return CmpPred::NE;
    if (p == "slt") return CmpPred::SLT;
    if (p == "sle") return CmpPred::SLE;
    if (p == "sgt") return CmpPred::SGT;
    if (p == "sge") return CmpPred::SGE;
    lex.fail("unknown predicate " + p);
  }

  void register_value(Function* fn, Instruction* inst, const std::string& name) {
    inst->set_name(name);
    values_["%" + name] = inst;
    // Keep the function's name counter ahead of parsed names.
    if (name.size() > 1 && name[0] == 'v') {
      bool digits = true;
      for (std::size_t i = 1; i < name.size(); ++i)
        digits = digits && std::isdigit(static_cast<unsigned char>(name[i]));
      if (digits) {
        const long id = std::atol(name.c_str() + 1);
        while (true) {
          const std::string next = fn->next_value_name();
          if (std::atol(next.c_str() + 1) >= id) break;
        }
      }
    }
  }

  void parse_instruction(LineLexer& lex, Function* fn, BasicBlock* bb) {
    std::string result_name;
    if (lex.peek() == '%') {
      lex.expect('%');
      result_name = lex.ident();
      lex.expect('=');
    }
    auto append = [&](Instruction* inst) {
      bb->append(std::unique_ptr<Instruction>(inst));
      if (!result_name.empty()) register_value(fn, inst, result_name);
      return inst;
    };
    auto& types = module_->types();

    if (lex.try_word("alloca")) {
      auto* inst = new Instruction(Opcode::Alloca, types.ptr(), "");
      inst->set_pointee(parse_type(lex));
      if (lex.try_consume(',')) {
        const Type* cnt_ty = parse_type(lex);
        inst->add_operand(parse_value(lex, cnt_ty, inst, 0));
      }
      append(inst);
    } else if (lex.try_word("load")) {
      const Type* ty = parse_type(lex);
      auto* inst = new Instruction(Opcode::Load, ty, "");
      inst->set_pointee(ty);
      lex.expect(',');
      parse_type(lex);  // ptr
      inst->add_operand(parse_value(lex, types.ptr(), inst, 0));
      append(inst);
    } else if (lex.try_word("store")) {
      const Type* ty = parse_type(lex);
      auto* inst = new Instruction(Opcode::Store, types.void_ty(), "");
      inst->add_operand(parse_value(lex, ty, inst, 0));
      lex.expect(',');
      parse_type(lex);  // ptr
      inst->add_operand(parse_value(lex, types.ptr(), inst, 1));
      append(inst);
    } else if (lex.try_word("getelementptr")) {
      auto* inst = new Instruction(Opcode::Gep, types.ptr(), "");
      inst->set_pointee(parse_type(lex));
      lex.expect(',');
      parse_type(lex);  // ptr
      inst->add_operand(parse_value(lex, types.ptr(), inst, 0));
      lex.expect(',');
      const Type* idx_ty = parse_type(lex);
      inst->add_operand(parse_value(lex, idx_ty, inst, 1));
      append(inst);
    } else if (lex.try_word("icmp") || lex.try_word("fcmp")) {
      // Both spell the same; the opcode is re-derived from the operand type.
      const CmpPred pred = parse_pred(lex);
      const Type* ty = parse_type(lex);
      auto* inst = new Instruction(ty->is_float() ? Opcode::FCmp : Opcode::ICmp,
                                   types.i1(), "");
      inst->set_pred(pred);
      inst->add_operand(parse_value(lex, ty, inst, 0));
      lex.expect(',');
      inst->add_operand(parse_value(lex, ty, inst, 1));
      append(inst);
    } else if (lex.try_word("br")) {
      if (lex.try_word("label")) {
        auto* inst = new Instruction(Opcode::Br, types.void_ty(), "");
        lex.expect('%');
        inst->add_target(blocks_by_name_.at(lex.ident()));
        append(inst);
      } else {
        parse_type(lex);  // i1
        auto* inst = new Instruction(Opcode::CondBr, types.void_ty(), "");
        inst->add_operand(parse_value(lex, types.i1(), inst, 0));
        lex.expect(',');
        inst->add_target(parse_label(lex));
        lex.expect(',');
        inst->add_target(parse_label(lex));
        append(inst);
      }
    } else if (lex.try_word("switch")) {
      const Type* ty = parse_type(lex);
      auto* inst = new Instruction(Opcode::Switch, types.void_ty(), "");
      inst->add_operand(parse_value(lex, ty, inst, 0));
      lex.expect(',');
      inst->add_target(parse_label(lex));
      lex.expect('[');
      while (!lex.try_consume(']')) {
        lex.try_consume(',');
        if (lex.try_consume(']')) break;
        parse_type(lex);
        bool is_float = false;
        const std::int64_t cv = std::strtoll(lex.number(is_float).c_str(), nullptr, 10);
        lex.expect(',');
        inst->add_case(cv, parse_label(lex));
      }
      append(inst);
    } else if (lex.try_word("ret")) {
      auto* inst = new Instruction(Opcode::Ret, types.void_ty(), "");
      if (!lex.try_word("void")) {
        const Type* ty = parse_type(lex);
        inst->add_operand(parse_value(lex, ty, inst, 0));
      }
      append(inst);
    } else if (lex.try_word("unreachable")) {
      append(new Instruction(Opcode::Unreachable, types.void_ty(), ""));
    } else if (lex.try_word("call")) {
      parse_type(lex);  // return type (taken from callee)
      lex.expect('@');
      Function* callee = module_->function(lex.ident());
      if (!callee) lex.fail("call to unknown function");
      auto* inst = new Instruction(Opcode::Call, callee->return_type(), "");
      inst->set_callee(callee);
      lex.expect('(');
      std::size_t op = 0;
      if (!lex.try_consume(')')) {
        do {
          const Type* ty = parse_type(lex);
          inst->add_operand(parse_value(lex, ty, inst, op++));
        } while (lex.try_consume(','));
        lex.expect(')');
      }
      append(inst);
    } else if (lex.try_word("phi")) {
      const Type* ty = parse_type(lex);
      auto* inst = new Instruction(Opcode::Phi, ty, "");
      std::size_t op = 0;
      do {
        lex.expect('[');
        Value* v = parse_value(lex, ty, inst, op++);
        lex.expect(',');
        lex.expect('%');
        BasicBlock* in = blocks_by_name_.at(lex.ident());
        lex.expect(']');
        inst->add_incoming(v, in);
      } while (lex.try_consume(','));
      append(inst);
    } else if (lex.try_word("select")) {
      parse_type(lex);  // i1
      auto* inst = new Instruction(Opcode::Select, types.void_ty(), "");
      inst->add_operand(parse_value(lex, types.i1(), inst, 0));
      lex.expect(',');
      const Type* ty = parse_type(lex);
      // Rebuild with the right result type (cannot mutate type in place).
      auto* typed = new Instruction(Opcode::Select, ty, "");
      typed->add_operand(inst->operand(0));
      for (auto& fix : pending_)
        if (fix.inst == inst) fix.inst = typed;
      delete inst;
      typed->add_operand(parse_value(lex, ty, typed, 1));
      lex.expect(',');
      parse_type(lex);
      typed->add_operand(parse_value(lex, ty, typed, 2));
      append(typed);
    } else {
      // Casts and binary ops share the "<op> <ty> <a>[, <b>]" shape.
      static const std::unordered_map<std::string, Opcode> kBinops = {
          {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
          {"sdiv", Opcode::SDiv}, {"srem", Opcode::SRem}, {"and", Opcode::And},
          {"or", Opcode::Or},     {"xor", Opcode::Xor},   {"shl", Opcode::Shl},
          {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
          {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv}};
      static const std::unordered_map<std::string, Opcode> kCasts = {
          {"sext", Opcode::SExt},       {"zext", Opcode::ZExt},
          {"trunc", Opcode::Trunc},     {"sitofp", Opcode::SIToFP},
          {"fptosi", Opcode::FPToSI},   {"ptrtoint", Opcode::PtrToInt},
          {"inttoptr", Opcode::IntToPtr}};
      const std::string word = lex.ident();
      auto bit = kBinops.find(word);
      if (bit != kBinops.end()) {
        const Type* ty = parse_type(lex);
        auto* inst = new Instruction(bit->second, ty, "");
        inst->add_operand(parse_value(lex, ty, inst, 0));
        lex.expect(',');
        inst->add_operand(parse_value(lex, ty, inst, 1));
        append(inst);
        return;
      }
      auto cit = kCasts.find(word);
      if (cit != kCasts.end()) {
        const Type* from = parse_type(lex);
        // Result type after 'to'; operand first.
        auto* tmp = new Instruction(cit->second, types.void_ty(), "");
        Value* v = parse_value(lex, from, tmp, 0);
        if (!lex.try_word("to")) lex.fail("expected 'to' in cast");
        const Type* to = parse_type(lex);
        auto* inst = new Instruction(cit->second, to, "");
        // Transfer any pending fixup from tmp to inst.
        for (auto& fix : pending_)
          if (fix.inst == tmp) fix.inst = inst;
        delete tmp;
        inst->add_operand(v);
        append(inst);
        return;
      }
      lex.fail("unknown instruction '" + word + "'");
    }
  }

  std::unique_ptr<Module> module_;
  std::vector<std::string> lines_;
  std::unordered_map<std::string, Value*> values_;
  std::unordered_map<std::string, BasicBlock*> blocks_by_name_;
  std::vector<PendingFix> pending_;
};

}  // namespace

std::unique_ptr<Module> parse_module(const std::string& text, const std::string& name) {
  return ModuleParser(text, name).run();
}

}  // namespace gbm::ir
