// Textual serialisation of GBM IR, in an LLVM-flavoured syntax.
//
// `print_instruction` produces the exact string used as the ProGraML
// `full_text` node attribute, so the printer is part of the model's input
// contract, not only a debugging aid.
#pragma once

#include <string>

#include "ir/module.h"

namespace gbm::ir {

std::string print_instruction(const Instruction& inst);
std::string print_block(const BasicBlock& bb);
std::string print_function(const Function& fn);
std::string print_module(const Module& m);

}  // namespace gbm::ir
