#include "ir/verifier.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "ir/printer.h"

namespace gbm::ir {

namespace {

class FunctionVerifier {
 public:
  explicit FunctionVerifier(const Function& fn) : fn_(fn) {}

  void run(VerifyResult& out) {
    if (fn_.is_declaration()) return;
    collect_blocks();
    check_names();
    for (const auto& bb : fn_.blocks()) check_block(*bb);
    out.errors.insert(out.errors.end(), errors_.begin(), errors_.end());
  }

 private:
  void error(const Instruction* inst, const std::string& msg) {
    std::string where = "@" + fn_.name();
    if (inst) where += ": '" + print_instruction(*inst) + "'";
    errors_.push_back(where + ": " + msg);
  }

  void collect_blocks() {
    for (const auto& bb : fn_.blocks()) blocks_.insert(bb.get());
  }

  void check_names() {
    std::unordered_set<std::string> seen;
    for (const auto& bb : fn_.blocks()) {
      if (!seen.insert(bb->name()).second)
        errors_.push_back("@" + fn_.name() + ": duplicate block name " + bb->name());
      for (const auto& inst : bb->instructions()) {
        if (inst->type()->is_void()) continue;
        if (!seen.insert(inst->name()).second)
          error(inst.get(), "duplicate value name %" + inst->name());
      }
    }
  }

  void check_block(const BasicBlock& bb) {
    if (bb.empty()) {
      errors_.push_back("@" + fn_.name() + ": empty block " + bb.name());
      return;
    }
    const auto& insts = bb.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const Instruction* inst = insts[i].get();
      const bool last = (i + 1 == insts.size());
      if (inst->is_term() != last)
        error(inst, last ? "block does not end with a terminator"
                         : "terminator in the middle of a block");
      check_instruction(*inst, bb);
    }
  }

  void check_instruction(const Instruction& inst, const BasicBlock& bb) {
    for (BasicBlock* target : inst.targets()) {
      if (!blocks_.count(target))
        error(&inst, "branch target not in function");
    }
    switch (inst.opcode()) {
      case Opcode::Alloca:
        if (!inst.pointee()) error(&inst, "alloca without allocated type");
        if (inst.num_operands() == 1 && !inst.operand(0)->type()->is_integer())
          error(&inst, "alloca count must be integer");
        break;
      case Opcode::Load:
        if (inst.num_operands() != 1 || !inst.operand(0)->type()->is_pointer())
          error(&inst, "load operand must be a pointer");
        break;
      case Opcode::Store:
        if (inst.num_operands() != 2 || !inst.operand(1)->type()->is_pointer())
          error(&inst, "store needs (value, ptr)");
        break;
      case Opcode::Gep:
        if (inst.num_operands() != 2 || !inst.operand(0)->type()->is_pointer() ||
            !inst.operand(1)->type()->is_integer())
          error(&inst, "gep needs (ptr, integer index)");
        if (!inst.pointee()) error(&inst, "gep without element type");
        break;
      default:
        break;
    }
    if (is_binary_int(inst.opcode())) {
      if (inst.num_operands() != 2 ||
          inst.operand(0)->type() != inst.operand(1)->type() ||
          !inst.operand(0)->type()->is_integer())
        error(&inst, "integer binop operand types must match and be integer");
      else if (inst.type() != inst.operand(0)->type())
        error(&inst, "binop result type mismatch");
    }
    if (is_binary_float(inst.opcode())) {
      if (inst.num_operands() != 2 || !inst.operand(0)->type()->is_float() ||
          !inst.operand(1)->type()->is_float())
        error(&inst, "float binop operands must be double");
    }
    if (inst.opcode() == Opcode::ICmp) {
      if (inst.num_operands() != 2 ||
          inst.operand(0)->type() != inst.operand(1)->type())
        error(&inst, "icmp operand types must match");
      if (inst.type()->kind() != TypeKind::I1) error(&inst, "icmp must produce i1");
    }
    if (inst.opcode() == Opcode::CondBr) {
      if (inst.num_operands() != 1 || inst.operand(0)->type()->kind() != TypeKind::I1)
        error(&inst, "conditional branch needs an i1 condition");
      if (inst.targets().size() != 2) error(&inst, "condbr needs two targets");
    }
    if (inst.opcode() == Opcode::Br && inst.targets().size() != 1)
      error(&inst, "br needs one target");
    if (inst.opcode() == Opcode::Switch) {
      if (inst.targets().size() != inst.case_values().size() + 1)
        error(&inst, "switch case/target count mismatch");
    }
    if (inst.opcode() == Opcode::Ret) {
      const Type* want = fn_.return_type();
      if (want->is_void()) {
        if (inst.num_operands() != 0) error(&inst, "ret value in void function");
      } else if (inst.num_operands() != 1 || inst.operand(0)->type() != want) {
        error(&inst, "ret type does not match function return type");
      }
    }
    if (inst.opcode() == Opcode::Call) {
      const Function* callee = inst.callee();
      if (!callee) {
        error(&inst, "call without callee");
      } else if (callee->num_args() != inst.num_operands()) {
        error(&inst, "call argument count mismatch for @" + callee->name());
      } else {
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          if (inst.operand(i)->type() != callee->arg(i)->type())
            error(&inst, "call argument " + std::to_string(i) + " type mismatch");
        }
      }
    }
    if (inst.opcode() == Opcode::Phi) {
      if (inst.num_operands() != inst.incoming_blocks().size()) {
        error(&inst, "phi operand/block count mismatch");
      } else {
        auto preds = bb.predecessors();
        std::set<BasicBlock*> pred_set(preds.begin(), preds.end());
        std::set<BasicBlock*> seen;
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          BasicBlock* in = inst.incoming_blocks()[i];
          if (!pred_set.count(in))
            error(&inst, "phi incoming block " + in->name() + " is not a predecessor");
          if (!seen.insert(in).second)
            error(&inst, "phi has duplicate incoming block " + in->name());
          if (inst.operand(i)->type() != inst.type())
            error(&inst, "phi incoming value type mismatch");
        }
        if (seen.size() != pred_set.size())
          error(&inst, "phi does not cover all predecessors");
      }
    }
    if (inst.opcode() == Opcode::Select) {
      if (inst.num_operands() != 3 ||
          inst.operand(0)->type()->kind() != TypeKind::I1 ||
          inst.operand(1)->type() != inst.operand(2)->type())
        error(&inst, "select needs (i1, T, T)");
    }
  }

  const Function& fn_;
  std::unordered_set<const BasicBlock*> blocks_;
  std::vector<std::string> errors_;
};

}  // namespace

VerifyResult verify_function(const Function& fn) {
  VerifyResult out;
  FunctionVerifier(fn).run(out);
  return out;
}

VerifyResult verify_module(const Module& m) {
  VerifyResult out;
  for (const auto& fn : m.functions()) FunctionVerifier(*fn).run(out);
  return out;
}

}  // namespace gbm::ir
