// Structural and type validity checks for GBM IR. Run by tests after every
// front-end lowering, optimisation pass and decompiler lift.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace gbm::ir {

struct VerifyResult {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::string str() const {
    std::string s;
    for (const auto& e : errors) s += e + "\n";
    return s;
  }
};

/// Checks: every block has exactly one terminator (at the end); operand
/// types match opcode contracts; branch targets belong to the function;
/// phi incoming blocks are predecessors; calls match callee signatures;
/// ret types match the function; names are unique per function.
VerifyResult verify_module(const Module& m);
VerifyResult verify_function(const Function& fn);

}  // namespace gbm::ir
