// Parser for the textual IR produced by printer.h — round-trips
// print_module output back into an in-memory Module. Used by tests and as
// the on-disk exchange format for IR corpora.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "ir/module.h"

namespace gbm::ir {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& msg)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Throws ParseError on malformed input.
std::unique_ptr<Module> parse_module(const std::string& text,
                                     const std::string& name = "parsed");

}  // namespace gbm::ir
