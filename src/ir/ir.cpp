#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "ir/module.h"

namespace gbm::ir {

// ---- Value ----------------------------------------------------------------

void Value::replace_all_uses_with(Value* replacement) {
  // Copy: set_operand mutates users_.
  std::vector<Instruction*> users_copy = users_;
  for (Instruction* user : users_copy) {
    for (std::size_t i = 0; i < user->num_operands(); ++i) {
      if (user->operand(i) == this) user->set_operand(i, replacement);
    }
  }
}

std::string Value::ref() const {
  switch (kind()) {
    case ValueKind::ConstantInt:
      return std::to_string(static_cast<const ConstantInt*>(this)->value());
    case ValueKind::ConstantFloat: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%g",
                    static_cast<const ConstantFloat*>(this)->value());
      std::string s = buf;
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
        s += ".0";
      return s;
    }
    case ValueKind::Global:
      return "@" + name();
    default:
      return "%" + name();
  }
}

bool GlobalVar::is_string() const {
  if (data_.empty() || data_.back() != 0) return false;
  for (std::size_t i = 0; i + 1 < data_.size(); ++i) {
    if (data_[i] == 0) return false;
    if (!std::isprint(data_[i]) && data_[i] != '\n' && data_[i] != '\t') return false;
  }
  return true;
}

// ---- Instruction -----------------------------------------------------------

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "getelementptr";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::SRem: return "srem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::AShr: return "ashr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::SExt: return "sext";
    case Opcode::ZExt: return "zext";
    case Opcode::Trunc: return "trunc";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::PtrToInt: return "ptrtoint";
    case Opcode::IntToPtr: return "inttoptr";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "br";
    case Opcode::Switch: return "switch";
    case Opcode::Ret: return "ret";
    case Opcode::Unreachable: return "unreachable";
    case Opcode::Call: return "call";
    case Opcode::Phi: return "phi";
    case Opcode::Select: return "select";
  }
  return "?";
}

const char* pred_name(CmpPred p) {
  switch (p) {
    case CmpPred::EQ: return "eq";
    case CmpPred::NE: return "ne";
    case CmpPred::SLT: return "slt";
    case CmpPred::SLE: return "sle";
    case CmpPred::SGT: return "sgt";
    case CmpPred::SGE: return "sge";
  }
  return "?";
}

bool is_terminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Switch ||
         op == Opcode::Ret || op == Opcode::Unreachable;
}

bool is_binary_int(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
    case Opcode::SRem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::Shl: case Opcode::AShr:
      return true;
    default:
      return false;
  }
}

bool is_binary_float(Opcode op) {
  return op == Opcode::FAdd || op == Opcode::FSub || op == Opcode::FMul ||
         op == Opcode::FDiv;
}

bool is_cast(Opcode op) {
  switch (op) {
    case Opcode::SExt: case Opcode::ZExt: case Opcode::Trunc: case Opcode::SIToFP:
    case Opcode::FPToSI: case Opcode::PtrToInt: case Opcode::IntToPtr:
      return true;
    default:
      return false;
  }
}

Instruction::Instruction(Opcode op, const Type* result_type, std::string name)
    : Value(ValueKind::Instruction, result_type, std::move(name)), op_(op) {}

Instruction::~Instruction() { drop_operands(); }

void Instruction::add_operand(Value* v) {
  operands_.push_back(v);
  v->add_user(this);
}

void Instruction::set_operand(std::size_t i, Value* v) {
  operands_[i]->remove_user(this);
  operands_[i] = v;
  v->add_user(this);
}

void Instruction::drop_operands() {
  for (Value* v : operands_) v->remove_user(this);
  operands_.clear();
  incoming_.clear();
}

bool Instruction::has_side_effects() const {
  switch (op_) {
    case Opcode::Store:
    case Opcode::Call:  // conservatively: all calls
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Switch:
    case Opcode::Unreachable:
      return true;
    default:
      return false;
  }
}

// ---- BasicBlock ------------------------------------------------------------

bool BasicBlock::erase(Instruction* inst) {
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (insts_[i].get() == inst) {
      insts_.erase(insts_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction* inst) {
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (insts_[i].get() == inst) {
      std::unique_ptr<Instruction> out = std::move(insts_[i]);
      insts_.erase(insts_.begin() + static_cast<long>(i));
      out->set_parent(nullptr);
      return out;
    }
  }
  return nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  Instruction* term = terminator();
  if (!term) return {};
  return term->targets();
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> preds;
  for (const auto& bb : parent_->blocks()) {
    for (BasicBlock* succ : bb->successors()) {
      if (succ == this) {
        preds.push_back(bb.get());
        break;
      }
    }
  }
  return preds;
}

// ---- Function ---------------------------------------------------------------

Function::Function(std::string name, const Type* return_type,
                   std::vector<const Type*> param_types, Module* parent)
    : name_(std::move(name)), return_type_(return_type), parent_(parent) {
  for (std::size_t i = 0; i < param_types.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(
        param_types[i], "arg" + std::to_string(i), this, static_cast<int>(i)));
  }
}

BasicBlock* Function::create_block(const std::string& hint) {
  blocks_.push_back(std::make_unique<BasicBlock>(next_block_name(hint), this));
  return blocks_.back().get();
}

void Function::erase_block(BasicBlock* bb) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == bb) {
      blocks_.erase(blocks_.begin() + static_cast<long>(i));
      return;
    }
  }
  throw std::logic_error("erase_block: block not in function");
}

BasicBlock* Function::block_by_name(const std::string& name) const {
  for (const auto& bb : blocks_)
    if (bb->name() == name) return bb.get();
  return nullptr;
}

long Function::instruction_count() const {
  long n = 0;
  for (const auto& bb : blocks_) n += static_cast<long>(bb->instructions().size());
  return n;
}

// ---- Module ---------------------------------------------------------------

Function* Module::create_function(const std::string& name, const Type* return_type,
                                  std::vector<const Type*> param_types) {
  funcs_.push_back(
      std::make_unique<Function>(name, return_type, std::move(param_types), this));
  return funcs_.back().get();
}

Function* Module::function(const std::string& name) const {
  for (const auto& f : funcs_)
    if (f->name() == name) return f.get();
  return nullptr;
}

GlobalVar* Module::create_global(const std::string& name, const Type* pointee,
                                 std::vector<std::uint8_t> data, bool is_const) {
  globals_.push_back(std::make_unique<GlobalVar>(types_.ptr(), pointee, name,
                                                 std::move(data), is_const));
  return globals_.back().get();
}

GlobalVar* Module::string_literal(const std::string& text) {
  auto it = string_pool_.find(text);
  if (it != string_pool_.end()) return it->second;
  std::vector<std::uint8_t> data(text.begin(), text.end());
  data.push_back(0);
  // Read the length before std::move(data) can be materialised (argument
  // evaluation order is unspecified).
  const long length = static_cast<long>(data.size());
  GlobalVar* g = create_global("str" + std::to_string(string_counter_++),
                               types_.array(types_.i8(), length), std::move(data),
                               /*is_const=*/true);
  string_pool_.emplace(text, g);
  return g;
}

GlobalVar* Module::global(const std::string& name) const {
  for (const auto& g : globals_)
    if (g->name() == name) return g.get();
  return nullptr;
}

ConstantInt* Module::const_int(const Type* type, std::int64_t value) {
  const std::string key = type->str() + ":" + std::to_string(value);
  auto it = int_pool_.find(key);
  if (it != int_pool_.end()) return it->second;
  auto c = std::make_unique<ConstantInt>(type, value);
  ConstantInt* raw = c.get();
  constants_.push_back(std::move(c));
  int_pool_.emplace(key, raw);
  return raw;
}

ConstantFloat* Module::const_float(double value) {
  // Floats are not pooled (few of them; pooling by bit pattern adds noise).
  auto c = std::make_unique<ConstantFloat>(types_.f64(), value);
  ConstantFloat* raw = c.get();
  constants_.push_back(std::move(c));
  return raw;
}

long Module::instruction_count() const {
  long n = 0;
  for (const auto& f : funcs_) n += f->instruction_count();
  return n;
}

}  // namespace gbm::ir
