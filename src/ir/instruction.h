// Instruction set of the GBM IR — the subset of LLVM needed to lower the
// MiniC / MiniJava front-ends, run optimisation passes, generate VBin
// machine code and lift decompiled binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"

namespace gbm::ir {

class BasicBlock;
class Function;

enum class Opcode : std::uint8_t {
  // Memory
  Alloca,  // result ptr; attribute: allocated type (+ optional count operand)
  Load,    // result T; operand: ptr; attribute: loaded type
  Store,   // void; operands: value, ptr
  Gep,     // result ptr; operands: base ptr, index; attribute: element type
  // Integer arithmetic / bitwise
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr,
  // Floating arithmetic
  FAdd, FSub, FMul, FDiv,
  // Comparisons (predicate attribute)
  ICmp, FCmp,
  // Casts
  SExt, ZExt, Trunc, SIToFP, FPToSI, PtrToInt, IntToPtr,
  // Control flow
  Br,       // no operands; one target block
  CondBr,   // operand: i1 cond; two target blocks (true, false)
  Switch,   // operand: int value; default block + (case constant, block) pairs
  Ret,      // zero or one operand
  Unreachable,
  // Other
  Call,     // operands: args; callee attribute
  Phi,      // operands: incoming values; parallel incoming blocks
  Select,   // operands: cond, true value, false value
};

enum class CmpPred : std::uint8_t { EQ, NE, SLT, SLE, SGT, SGE };

const char* opcode_name(Opcode op);
const char* pred_name(CmpPred p);
bool is_terminator(Opcode op);
bool is_binary_int(Opcode op);
bool is_binary_float(Opcode op);
bool is_cast(Opcode op);

/// A single IR instruction. Owned by its BasicBlock.
class Instruction : public Value {
 public:
  Instruction(Opcode op, const Type* result_type, std::string name);
  ~Instruction() override;

  Opcode opcode() const { return op_; }
  BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* bb) { parent_ = bb; }

  // ---- operands ---------------------------------------------------------
  const std::vector<Value*>& operands() const { return operands_; }
  Value* operand(std::size_t i) const { return operands_[i]; }
  std::size_t num_operands() const { return operands_.size(); }
  void add_operand(Value* v);
  void set_operand(std::size_t i, Value* v);
  void drop_operands();  // removes this from all operand user lists

  // ---- control-flow targets --------------------------------------------
  const std::vector<BasicBlock*>& targets() const { return targets_; }
  void add_target(BasicBlock* bb) { targets_.push_back(bb); }
  void set_target(std::size_t i, BasicBlock* bb) { targets_[i] = bb; }

  // ---- attributes ---------------------------------------------------------
  CmpPred pred() const { return pred_; }
  void set_pred(CmpPred p) { pred_ = p; }
  /// Pointee/element type for Alloca (allocated), Load (loaded), Gep (element).
  const Type* pointee() const { return pointee_; }
  void set_pointee(const Type* t) { pointee_ = t; }
  Function* callee() const { return callee_; }
  void set_callee(Function* f) { callee_ = f; }

  // Phi bookkeeping: incoming_blocks() is parallel to operands().
  const std::vector<BasicBlock*>& incoming_blocks() const { return incoming_; }
  void add_incoming(Value* v, BasicBlock* bb) {
    add_operand(v);
    incoming_.push_back(bb);
  }
  void set_incoming_block(std::size_t i, BasicBlock* bb) { incoming_[i] = bb; }
  std::vector<BasicBlock*>& incoming_blocks_mut() { return incoming_; }
  std::vector<std::int64_t>& case_values_mut() { return cases_; }

  // Switch bookkeeping: case_values() is parallel to targets()[1..].
  const std::vector<std::int64_t>& case_values() const { return cases_; }
  void add_case(std::int64_t value, BasicBlock* bb) {
    cases_.push_back(value);
    add_target(bb);
  }

  bool is_term() const { return is_terminator(op_); }
  /// True if removing the instruction cannot change observable behaviour
  /// (no side effects and result unused checks are done by DCE itself).
  bool has_side_effects() const;

 private:
  Opcode op_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
  std::vector<BasicBlock*> targets_;
  std::vector<BasicBlock*> incoming_;
  std::vector<std::int64_t> cases_;
  CmpPred pred_ = CmpPred::EQ;
  const Type* pointee_ = nullptr;
  Function* callee_ = nullptr;
};

}  // namespace gbm::ir
