// Value hierarchy of the GBM IR: constants, globals, arguments and
// instructions all produce (or are) typed values referenced by operands.
//
// Use-def bookkeeping: every Value tracks the instructions that use it, so
// passes can run replace_all_uses_with and dead-code elimination without
// whole-function scans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace gbm::ir {

class Instruction;
class Function;

enum class ValueKind : std::uint8_t {
  ConstantInt,
  ConstantFloat,
  Global,
  Argument,
  Instruction,
  BlockRef,  // only used transiently by the parser
};

class Value {
 public:
  Value(ValueKind kind, const Type* type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const { return kind_; }
  const Type* type() const { return type_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  bool is_constant() const {
    return kind_ == ValueKind::ConstantInt || kind_ == ValueKind::ConstantFloat;
  }

  const std::vector<Instruction*>& users() const { return users_; }
  void add_user(Instruction* inst) { users_.push_back(inst); }
  void remove_user(Instruction* inst) {
    for (std::size_t i = 0; i < users_.size(); ++i) {
      if (users_[i] == inst) {
        users_[i] = users_.back();
        users_.pop_back();
        return;
      }
    }
  }

  /// Rewrites every use of this value to `replacement`.
  void replace_all_uses_with(Value* replacement);

  /// Reference spelling in printed IR ("%v1", "@g", "42", "3.5").
  std::string ref() const;

 private:
  ValueKind kind_;
  const Type* type_;
  std::string name_;
  std::vector<Instruction*> users_;
};

/// Integer constant (covers i1/i8/i32/i64; value stored sign-extended).
class ConstantInt : public Value {
 public:
  ConstantInt(const Type* type, std::int64_t value)
      : Value(ValueKind::ConstantInt, type, ""), value_(value) {}
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_;
};

/// Floating-point constant (f64).
class ConstantFloat : public Value {
 public:
  ConstantFloat(const Type* type, double value)
      : Value(ValueKind::ConstantFloat, type, ""), value_(value) {}
  double value() const { return value_; }

 private:
  double value_;
};

/// Module-level global. Its value is a pointer to storage of `pointee`
/// type; `data` is the byte initialiser (zero-filled if shorter).
class GlobalVar : public Value {
 public:
  GlobalVar(const Type* ptr_type, const Type* pointee, std::string name,
            std::vector<std::uint8_t> data, bool is_const)
      : Value(ValueKind::Global, ptr_type, std::move(name)),
        pointee_(pointee),
        data_(std::move(data)),
        is_const_(is_const) {}
  const Type* pointee() const { return pointee_; }
  const std::vector<std::uint8_t>& data() const { return data_; }
  bool is_const() const { return is_const_; }
  /// True if the initialiser is printable text (string literal globals).
  bool is_string() const;

 private:
  const Type* pointee_;
  std::vector<std::uint8_t> data_;
  bool is_const_;
};

/// Formal parameter of a function.
class Argument : public Value {
 public:
  Argument(const Type* type, std::string name, Function* parent, int index)
      : Value(ValueKind::Argument, type, std::move(name)),
        parent_(parent),
        index_(index) {}
  Function* parent() const { return parent_; }
  int index() const { return index_; }

 private:
  Function* parent_;
  int index_;
};

}  // namespace gbm::ir
