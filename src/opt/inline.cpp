// Function inlining. Callee blocks are cloned into the caller with a value
// map; returns become branches to a continuation block (joined by a phi for
// non-void callees). Cloned entry allocas are hoisted into the caller's
// entry block so a later mem2reg can still promote them.
#include <stdexcept>
#include <unordered_map>

#include "opt/passes.h"

namespace gbm::opt {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

bool is_directly_recursive(const Function* fn) {
  for (const auto& bb : fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == Opcode::Call && inst->callee() == fn) return true;
    }
  }
  return false;
}

struct Cloner {
  Function* caller;
  const Function* callee;
  std::unordered_map<const Value*, Value*> vmap;
  std::unordered_map<const BasicBlock*, BasicBlock*> bmap;
  struct Patch {
    Instruction* inst;
    std::size_t index;
    const Value* old_value;
  };
  std::vector<Patch> patches;

  Value* map_value(const Value* v) {
    if (v->kind() == ir::ValueKind::ConstantInt ||
        v->kind() == ir::ValueKind::ConstantFloat ||
        v->kind() == ir::ValueKind::Global)
      return const_cast<Value*>(v);
    auto it = vmap.find(v);
    return it == vmap.end() ? nullptr : it->second;
  }

  void clone_blocks() {
    for (const auto& bb : callee->blocks())
      bmap[bb.get()] = caller->create_block("inl");
    for (const auto& bb : callee->blocks()) {
      BasicBlock* nb = bmap[bb.get()];
      for (const auto& inst : bb->instructions()) {
        auto* ni = new Instruction(
            inst->opcode(), inst->type(),
            inst->type()->is_void() ? "" : caller->next_value_name());
        ni->set_pred(inst->pred());
        ni->set_pointee(inst->pointee());
        ni->set_callee(inst->callee());
        for (std::size_t i = 0; i < inst->num_operands(); ++i) {
          Value* mapped = map_value(inst->operand(i));
          if (mapped) {
            ni->add_operand(mapped);
          } else {
            // Forward reference (phi input): placeholder, patched later.
            ni->add_operand(callee->parent()->const_i64(0));
            patches.push_back({ni, i, inst->operand(i)});
          }
        }
        for (BasicBlock* t : inst->targets()) ni->add_target(bmap.at(t));
        for (BasicBlock* in : inst->incoming_blocks())
          ni->incoming_blocks_mut().push_back(bmap.at(in));
        for (std::int64_t cv : inst->case_values()) ni->case_values_mut().push_back(cv);
        vmap[inst.get()] = ni;
        // Hoist scalar allocas into the caller's entry block.
        if (ni->opcode() == Opcode::Alloca && ni->num_operands() == 0)
          caller->entry()->insert(0, std::unique_ptr<Instruction>(ni));
        else
          nb->append(std::unique_ptr<Instruction>(ni));
      }
    }
    for (const auto& p : patches) {
      Value* mapped = map_value(p.old_value);
      if (!mapped) throw std::logic_error("inline: unresolved value");
      p.inst->set_operand(p.index, mapped);
    }
  }
};

bool inline_one_site(Function& caller, Instruction* call) {
  const Function* callee = call->callee();
  BasicBlock* site = call->parent();

  // Split: move everything after the call into a continuation block.
  BasicBlock* cont = caller.create_block("inl.cont");
  std::size_t call_idx = 0;
  for (std::size_t i = 0; i < site->instructions().size(); ++i) {
    if (site->instructions()[i].get() == call) {
      call_idx = i;
      break;
    }
  }
  while (site->instructions().size() > call_idx + 1) {
    Instruction* moved = site->instructions()[call_idx + 1].get();
    cont->append(site->detach(moved));
  }
  // The site's terminator moved into cont; successor phis must retarget.
  for (BasicBlock* succ : cont->successors()) {
    for (const auto& inst : succ->instructions()) {
      if (inst->opcode() != Opcode::Phi) break;
      for (std::size_t i = 0; i < inst->incoming_blocks().size(); ++i) {
        if (inst->incoming_blocks()[i] == site) inst->set_incoming_block(i, cont);
      }
    }
  }

  // Clone the callee.
  Cloner cloner{&caller, callee, {}, {}, {}};
  for (std::size_t i = 0; i < callee->num_args(); ++i)
    cloner.vmap[callee->arg(i)] = call->operand(i);
  cloner.clone_blocks();

  // Rewrite cloned rets as branches to cont, collecting return values.
  std::vector<std::pair<Value*, BasicBlock*>> returns;
  for (const auto& bb : callee->blocks()) {
    BasicBlock* nb = cloner.bmap.at(bb.get());
    Instruction* term = nb->terminator();
    if (!term || term->opcode() != Opcode::Ret) continue;
    Value* rv = term->num_operands() ? term->operand(0) : nullptr;
    term->drop_operands();
    nb->erase(term);
    auto* br = new Instruction(Opcode::Br, caller.parent()->types().void_ty(), "");
    br->add_target(cont);
    nb->append(std::unique_ptr<Instruction>(br));
    returns.emplace_back(rv, nb);
  }

  // Join return values.
  if (!call->type()->is_void()) {
    if (returns.size() == 1) {
      call->replace_all_uses_with(returns[0].first);
    } else {
      auto* phi = new Instruction(Opcode::Phi, call->type(), caller.next_value_name());
      for (auto& [rv, nb] : returns) phi->add_incoming(rv, nb);
      cont->insert(0, std::unique_ptr<Instruction>(phi));
      call->replace_all_uses_with(phi);
    }
  }

  // Branch from the site into the cloned entry, then drop the call.
  BasicBlock* cloned_entry = cloner.bmap.at(callee->entry());
  call->drop_operands();
  site->erase(call);
  auto* enter = new Instruction(Opcode::Br, caller.parent()->types().void_ty(), "");
  enter->add_target(cloned_entry);
  site->append(std::unique_ptr<Instruction>(enter));
  return true;
}

}  // namespace

bool inline_functions(ir::Module& m, int threshold) {
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fn : m.functions()) {
      if (fn->is_declaration()) continue;
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          if (inst->opcode() != Opcode::Call) continue;
          const Function* callee = inst->callee();
          if (!callee || callee->is_declaration()) continue;
          if (callee == fn.get()) continue;
          if (callee->instruction_count() > threshold) continue;
          if (is_directly_recursive(callee)) continue;
          inline_one_site(*fn, inst.get());
          changed = true;
          any = true;
          break;
        }
        if (changed) break;
      }
      if (changed) break;
    }
  }
  return any;
}

}  // namespace gbm::opt
