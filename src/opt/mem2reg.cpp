// SSA construction: promotes scalar allocas to registers.
//
// Uses the "maximal phis" strategy: a phi is placed in every block for every
// promoted variable, then phi simplification (here) and DCE (separate pass)
// prune the redundant ones. On the small functions this compiler handles,
// simplicity beats the iterated-dominance-frontier construction.
#include <unordered_map>
#include <unordered_set>

#include "opt/passes.h"

namespace gbm::opt {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

bool is_promotable(const Instruction* alloca_inst) {
  if (alloca_inst->opcode() != Opcode::Alloca) return false;
  if (alloca_inst->num_operands() != 0) return false;  // dynamic count
  const ir::Type* ty = alloca_inst->pointee();
  if (ty->is_array()) return false;
  for (const Instruction* user : alloca_inst->users()) {
    if (user->opcode() == Opcode::Load) continue;
    // Address must be the store *target*, not the stored value.
    if (user->opcode() == Opcode::Store && user->operand(1) == alloca_inst &&
        user->operand(0) != alloca_inst)
      continue;
    return false;
  }
  return true;
}

Value* zero_of(ir::Module& m, const ir::Type* ty) {
  if (ty->is_float()) return m.const_float(0.0);
  // ConstantInt carries the pointer type directly for null pointers.
  return m.const_int(ty, 0);
}

/// Replaces phis whose inputs are all identical (ignoring self-references)
/// until fixpoint.
bool simplify_phis(Function& fn) {
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst_ptr : bb->instructions()) {
        Instruction* inst = inst_ptr.get();
        if (inst->opcode() != Opcode::Phi) continue;
        Value* unique = nullptr;
        bool trivial = true;
        for (std::size_t i = 0; i < inst->num_operands(); ++i) {
          Value* v = inst->operand(i);
          if (v == inst) continue;
          if (!unique) unique = v;
          else if (unique != v) { trivial = false; break; }
        }
        if (trivial && unique) {
          inst->replace_all_uses_with(unique);
          inst->drop_operands();
          bb->erase(inst);
          changed = true;
          any = true;
          break;  // iterator invalidated; rescan block
        }
      }
    }
  }
  return any;
}

}  // namespace

bool mem2reg(ir::Function& fn) {
  if (fn.is_declaration()) return false;
  ir::Module& m = *fn.parent();

  std::vector<Instruction*> promotable;
  for (const auto& inst : fn.entry()->instructions()) {
    if (is_promotable(inst.get())) promotable.push_back(inst.get());
  }
  if (promotable.empty()) return false;

  // One phi per (variable, non-entry block).
  std::unordered_map<const BasicBlock*, std::unordered_map<Instruction*, Instruction*>>
      phis;
  for (const auto& bb : fn.blocks()) {
    if (bb.get() == fn.entry()) continue;
    for (Instruction* var : promotable) {
      auto* phi = new Instruction(Opcode::Phi, var->pointee(), fn.next_value_name());
      bb->insert(0, std::unique_ptr<Instruction>(phi));
      phis[bb.get()][var] = phi;
    }
  }

  // Rewrite loads/stores, tracking the reaching definition per block.
  std::unordered_map<const BasicBlock*, std::unordered_map<Instruction*, Value*>>
      end_def;
  std::unordered_set<Instruction*> promoted_set(promotable.begin(), promotable.end());
  for (const auto& bb : fn.blocks()) {
    std::unordered_map<Instruction*, Value*> cur;
    for (Instruction* var : promotable) {
      cur[var] = bb.get() == fn.entry() ? zero_of(m, var->pointee())
                                        : phis[bb.get()][var];
    }
    std::vector<Instruction*> dead;
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      if (inst->opcode() == Opcode::Load && inst->num_operands() == 1) {
        auto* src = dynamic_cast<Instruction*>(inst->operand(0));
        if (src && promoted_set.count(src)) {
          inst->replace_all_uses_with(cur[src]);
          dead.push_back(inst);
        }
      } else if (inst->opcode() == Opcode::Store && inst->num_operands() == 2) {
        auto* dst = dynamic_cast<Instruction*>(inst->operand(1));
        if (dst && promoted_set.count(dst)) {
          cur[dst] = inst->operand(0);
          dead.push_back(inst);
        }
      }
    }
    for (Instruction* inst : dead) {
      inst->drop_operands();
      bb->erase(inst);
    }
    end_def[bb.get()] = std::move(cur);
  }

  // Wire phi inputs from predecessor end-of-block definitions.
  for (const auto& bb : fn.blocks()) {
    if (bb.get() == fn.entry()) continue;
    for (BasicBlock* pred : bb->predecessors()) {
      for (Instruction* var : promotable) {
        phis[bb.get()][var]->add_incoming(end_def[pred][var], pred);
      }
    }
  }

  // Remove the allocas themselves.
  for (Instruction* var : promotable) {
    var->drop_operands();
    fn.entry()->erase(var);
  }

  simplify_phis(fn);
  return true;
}

}  // namespace gbm::opt
