// Control-flow graph simplification: unreachable block elimination,
// straight-line block merging, and single-predecessor phi folding.
#include <unordered_set>

#include "opt/passes.h"

namespace gbm::opt {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

void remove_phi_edge(BasicBlock* to, BasicBlock* from_pred) {
  for (const auto& inst : to->instructions()) {
    if (inst->opcode() != Opcode::Phi) break;
    for (std::size_t i = 0; i < inst->incoming_blocks().size(); ++i) {
      if (inst->incoming_blocks()[i] == from_pred) {
        std::vector<Value*> ops(inst->operands().begin(), inst->operands().end());
        std::vector<BasicBlock*> blocks = inst->incoming_blocks();
        inst->drop_operands();
        for (std::size_t k = 0; k < ops.size(); ++k) {
          if (k == i) continue;
          inst->add_incoming(ops[k], blocks[k]);
        }
        break;
      }
    }
  }
}

/// Single-input phis become plain copies.
bool fold_single_input_phis(ir::Function& fn) {
  bool changed = false;
  for (const auto& bb : fn.blocks()) {
    bool again = true;
    while (again) {
      again = false;
      for (const auto& inst_ptr : bb->instructions()) {
        Instruction* inst = inst_ptr.get();
        if (inst->opcode() != Opcode::Phi) break;
        if (inst->num_operands() == 1) {
          Value* v = inst->operand(0);
          inst->replace_all_uses_with(v);
          inst->drop_operands();
          bb->erase(inst);
          changed = true;
          again = true;
          break;
        }
      }
    }
  }
  return changed;
}

bool remove_unreachable(ir::Function& fn) {
  std::unordered_set<BasicBlock*> reachable;
  std::vector<BasicBlock*> work{fn.entry()};
  reachable.insert(fn.entry());
  while (!work.empty()) {
    BasicBlock* bb = work.back();
    work.pop_back();
    for (BasicBlock* succ : bb->successors()) {
      if (reachable.insert(succ).second) work.push_back(succ);
    }
  }
  std::vector<BasicBlock*> dead;
  for (const auto& bb : fn.blocks()) {
    if (!reachable.count(bb.get())) dead.push_back(bb.get());
  }
  if (dead.empty()) return false;
  // Phis in reachable blocks must forget edges from dead predecessors.
  for (BasicBlock* d : dead) {
    for (BasicBlock* succ : d->successors()) {
      if (reachable.count(succ)) remove_phi_edge(succ, d);
    }
  }
  // Drop instructions first (clears operand uses), then the blocks.
  for (BasicBlock* d : dead) {
    for (const auto& inst : d->instructions()) {
      inst->replace_all_uses_with(
          fn.parent()->const_int(fn.parent()->types().i64(), 0));
      inst->drop_operands();
    }
  }
  for (BasicBlock* d : dead) fn.erase_block(d);
  return true;
}

/// Merges `b` into its unique predecessor when the edge is unconditional.
bool merge_chains(ir::Function& fn) {
  bool changed = false;
  bool again = true;
  while (again) {
    again = false;
    for (const auto& bb_ptr : fn.blocks()) {
      BasicBlock* b = bb_ptr.get();
      if (b == fn.entry()) continue;
      auto preds = b->predecessors();
      if (preds.size() != 1) continue;
      BasicBlock* pred = preds[0];
      Instruction* term = pred->terminator();
      if (!term || term->opcode() != Opcode::Br) continue;
      if (term->targets()[0] != b) continue;
      // Fold phis (single predecessor → single input).
      while (!b->instructions().empty() &&
             b->instructions()[0]->opcode() == Opcode::Phi) {
        Instruction* phi = b->instructions()[0].get();
        Value* v = phi->num_operands() ? phi->operand(0) : nullptr;
        if (!v) break;
        phi->replace_all_uses_with(v);
        phi->drop_operands();
        b->erase(phi);
      }
      // Retarget successor phis from b to pred (the edge origin changes).
      for (BasicBlock* succ : b->successors()) {
        for (const auto& inst : succ->instructions()) {
          if (inst->opcode() != Opcode::Phi) break;
          for (std::size_t i = 0; i < inst->incoming_blocks().size(); ++i) {
            if (inst->incoming_blocks()[i] == b) inst->set_incoming_block(i, pred);
          }
        }
      }
      // Splice b's instructions after removing pred's terminator.
      term->drop_operands();
      pred->erase(term);
      while (!b->instructions().empty()) {
        Instruction* inst = b->instructions()[0].get();
        auto owned = b->detach(inst);
        pred->append(std::move(owned));
      }
      fn.erase_block(b);
      changed = true;
      again = true;
      break;  // block list mutated; restart scan
    }
  }
  return changed;
}

}  // namespace

bool simplify_cfg(ir::Function& fn) {
  if (fn.is_declaration()) return false;
  bool changed = false;
  changed |= remove_unreachable(fn);
  changed |= fold_single_input_phis(fn);
  changed |= merge_chains(fn);
  return changed;
}

}  // namespace gbm::opt
