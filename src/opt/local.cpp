// Local passes: constant folding, algebraic simplification, dead code
// elimination, strength reduction.
#include <cstdint>
#include <optional>

#include "opt/passes.h"

namespace gbm::opt {

namespace {

using ir::BasicBlock;
using ir::CmpPred;
using ir::ConstantInt;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

std::optional<std::int64_t> const_of(const Value* v) {
  if (v->kind() == ir::ValueKind::ConstantInt)
    return static_cast<const ConstantInt*>(v)->value();
  return std::nullopt;
}

std::optional<std::int64_t> fold_int(Opcode op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case Opcode::Add: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
    case Opcode::Sub: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
    case Opcode::Mul: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
    case Opcode::SDiv:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a / b;
    case Opcode::SRem:
      if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
      return a % b;
    case Opcode::And: return a & b;
    case Opcode::Or: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63));
    case Opcode::AShr: return a >> (static_cast<std::uint64_t>(b) & 63);
    default: return std::nullopt;
  }
}

std::int64_t truncate_to(std::int64_t v, const ir::Type* ty) {
  switch (ty->kind()) {
    case ir::TypeKind::I1: return v & 1;
    case ir::TypeKind::I8: return static_cast<std::int8_t>(v);
    case ir::TypeKind::I32: return static_cast<std::int32_t>(v);
    default: return v;
  }
}

bool eval_pred(CmpPred pred, std::int64_t a, std::int64_t b) {
  switch (pred) {
    case CmpPred::EQ: return a == b;
    case CmpPred::NE: return a != b;
    case CmpPred::SLT: return a < b;
    case CmpPred::SLE: return a <= b;
    case CmpPred::SGT: return a > b;
    case CmpPred::SGE: return a >= b;
  }
  return false;
}

/// Drops the phi-incoming entries of `to` coming from `from_pred`.
void remove_phi_edge(BasicBlock* to, BasicBlock* from_pred) {
  for (const auto& inst : to->instructions()) {
    if (inst->opcode() != Opcode::Phi) break;
    for (std::size_t i = 0; i < inst->incoming_blocks().size(); ++i) {
      if (inst->incoming_blocks()[i] == from_pred) {
        // Erase operand i and its block entry.
        std::vector<Value*> ops(inst->operands().begin(), inst->operands().end());
        std::vector<BasicBlock*> blocks = inst->incoming_blocks();
        inst->drop_operands();
        for (std::size_t k = 0; k < ops.size(); ++k) {
          if (k == i) continue;
          inst->add_incoming(ops[k], blocks[k]);
        }
        break;
      }
    }
  }
}

/// Replaces `inst` with `v` and removes it from its block.
void replace_and_erase(Instruction* inst, Value* v) {
  BasicBlock* bb = inst->parent();
  inst->replace_all_uses_with(v);
  inst->drop_operands();
  bb->erase(inst);
}

}  // namespace

bool constant_fold(ir::Function& fn) {
  if (fn.is_declaration()) return false;
  ir::Module& m = *fn.parent();
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst_ptr : bb->instructions()) {
        Instruction* inst = inst_ptr.get();
        const Opcode op = inst->opcode();
        // ---- integer binops -------------------------------------------------
        if (ir::is_binary_int(op)) {
          auto a = const_of(inst->operand(0));
          auto b = const_of(inst->operand(1));
          if (a && b) {
            if (auto r = fold_int(op, *a, *b)) {
              replace_and_erase(inst, m.const_int(inst->type(), truncate_to(*r, inst->type())));
              changed = true;
              break;
            }
          }
          // Algebraic identities: x+0, x-0, x*1, x*0, x&x, x|x.
          Value* x = inst->operand(0);
          if (b) {
            if ((op == Opcode::Add || op == Opcode::Sub) && *b == 0) {
              replace_and_erase(inst, x);
              changed = true;
              break;
            }
            if (op == Opcode::Mul && *b == 1) {
              replace_and_erase(inst, x);
              changed = true;
              break;
            }
            if (op == Opcode::Mul && *b == 0) {
              replace_and_erase(inst, m.const_int(inst->type(), 0));
              changed = true;
              break;
            }
            if (op == Opcode::SDiv && *b == 1) {
              replace_and_erase(inst, x);
              changed = true;
              break;
            }
          }
          if (a && (op == Opcode::Add || op == Opcode::Mul)) {
            if ((op == Opcode::Add && *a == 0) || (op == Opcode::Mul && *a == 1)) {
              replace_and_erase(inst, inst->operand(1));
              changed = true;
              break;
            }
          }
          if ((op == Opcode::And || op == Opcode::Or) &&
              inst->operand(0) == inst->operand(1)) {
            replace_and_erase(inst, x);
            changed = true;
            break;
          }
          continue;
        }
        // ---- icmp --------------------------------------------------------
        if (op == Opcode::ICmp) {
          auto a = const_of(inst->operand(0));
          auto b = const_of(inst->operand(1));
          if (a && b) {
            replace_and_erase(inst, m.const_i1(eval_pred(inst->pred(), *a, *b)));
            changed = true;
            break;
          }
          continue;
        }
        // ---- casts ---------------------------------------------------------
        if (ir::is_cast(op) && op != Opcode::SIToFP && op != Opcode::FPToSI) {
          if (auto a = const_of(inst->operand(0))) {
            std::int64_t v = *a;
            if (op == Opcode::ZExt) {
              switch (inst->operand(0)->type()->kind()) {
                case ir::TypeKind::I1: v &= 1; break;
                case ir::TypeKind::I8: v = static_cast<std::uint8_t>(v); break;
                case ir::TypeKind::I32: v = static_cast<std::uint32_t>(v); break;
                default: break;
              }
            }
            replace_and_erase(inst, m.const_int(inst->type(), truncate_to(v, inst->type())));
            changed = true;
            break;
          }
          continue;
        }
        // ---- select ---------------------------------------------------------
        if (op == Opcode::Select) {
          if (auto c = const_of(inst->operand(0))) {
            replace_and_erase(inst, inst->operand(*c ? 1 : 2));
            changed = true;
            break;
          }
          continue;
        }
        // ---- constant conditional branch -----------------------------------
        if (op == Opcode::CondBr) {
          if (auto c = const_of(inst->operand(0))) {
            BasicBlock* taken = inst->targets()[*c ? 0 : 1];
            BasicBlock* dropped = inst->targets()[*c ? 1 : 0];
            if (taken != dropped) remove_phi_edge(dropped, bb.get());
            auto* br = new Instruction(Opcode::Br, m.types().void_ty(), "");
            br->add_target(taken);
            inst->drop_operands();
            bb->erase(inst);
            bb->append(std::unique_ptr<Instruction>(br));
            changed = true;
            break;
          }
          // Same target both ways → unconditional.
          if (inst->targets()[0] == inst->targets()[1]) {
            BasicBlock* t = inst->targets()[0];
            auto* br = new Instruction(Opcode::Br, m.types().void_ty(), "");
            br->add_target(t);
            inst->drop_operands();
            bb->erase(inst);
            bb->append(std::unique_ptr<Instruction>(br));
            changed = true;
            break;
          }
          continue;
        }
        // ---- constant switch -------------------------------------------------
        if (op == Opcode::Switch) {
          if (auto c = const_of(inst->operand(0))) {
            BasicBlock* taken = inst->targets()[0];
            for (std::size_t k = 0; k < inst->case_values().size(); ++k) {
              if (inst->case_values()[k] == *c) taken = inst->targets()[k + 1];
            }
            for (BasicBlock* t : inst->targets()) {
              if (t != taken) remove_phi_edge(t, bb.get());
            }
            auto* br = new Instruction(Opcode::Br, m.types().void_ty(), "");
            br->add_target(taken);
            inst->drop_operands();
            bb->erase(inst);
            bb->append(std::unique_ptr<Instruction>(br));
            changed = true;
            break;
          }
          continue;
        }
      }
      if (changed) break;
    }
    any = any || changed;
  }
  return any;
}

bool dead_code_elim(ir::Function& fn) {
  if (fn.is_declaration()) return false;
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : fn.blocks()) {
      const auto& insts = bb->instructions();
      for (std::size_t i = insts.size(); i-- > 0;) {
        Instruction* inst = insts[i].get();
        if (inst->is_term() || inst->has_side_effects()) continue;
        if (!inst->users().empty()) continue;
        inst->drop_operands();
        bb->erase(i);
        changed = true;
        any = true;
      }
    }
  }
  return any;
}

bool strength_reduce(ir::Function& fn) {
  if (fn.is_declaration()) return false;
  ir::Module& m = *fn.parent();
  bool any = false;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      if (inst->opcode() == Opcode::Mul) {
        auto b = const_of(inst->operand(1));
        if (b && *b > 1 && (*b & (*b - 1)) == 0) {
          int shift = 0;
          for (std::int64_t v = *b; v > 1; v >>= 1) ++shift;
          auto* shl = new Instruction(Opcode::Shl, inst->type(), fn.next_value_name());
          shl->add_operand(inst->operand(0));
          shl->add_operand(m.const_int(inst->type(), shift));
          // Insert before inst, rewrite uses, drop inst.
          BasicBlock* blk = inst->parent();
          for (std::size_t i = 0; i < blk->instructions().size(); ++i) {
            if (blk->instructions()[i].get() == inst) {
              blk->insert(i, std::unique_ptr<Instruction>(shl));
              break;
            }
          }
          inst->replace_all_uses_with(shl);
          inst->drop_operands();
          blk->erase(inst);
          any = true;
          break;  // restart this block (iterator invalidated)
        }
      }
      if (inst->opcode() == Opcode::Add && inst->operand(0) == inst->operand(1)) {
        auto* shl = new Instruction(Opcode::Shl, inst->type(), fn.next_value_name());
        shl->add_operand(inst->operand(0));
        shl->add_operand(m.const_int(inst->type(), 1));
        BasicBlock* blk = inst->parent();
        for (std::size_t i = 0; i < blk->instructions().size(); ++i) {
          if (blk->instructions()[i].get() == inst) {
            blk->insert(i, std::unique_ptr<Instruction>(shl));
            break;
          }
        }
        inst->replace_all_uses_with(shl);
        inst->drop_operands();
        blk->erase(inst);
        any = true;
        break;
      }
    }
  }
  return any;
}

}  // namespace gbm::opt
