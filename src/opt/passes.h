// Optimisation passes and -O pipelines (the paper's compiler optimisation
// levels, RQ2). Each pass returns true if it changed the function/module.
//
// Pipelines (mirroring the spirit of clang's levels at our IR's scale):
//   O0 — nothing.
//   O1 — mem2reg, constant folding, DCE, CFG simplification (to fixpoint).
//   O2 — O1 + function inlining (+ a second cleanup round).
//   O3 — O2 + strength reduction + higher inline threshold.
//   Oz — O1 + conservative inlining of single-block callees (size-biased).
#pragma once

#include <string>

#include "ir/module.h"

namespace gbm::opt {

/// Promotes scalar entry-block allocas whose only uses are loads and stores
/// to SSA values, inserting (maximal) phis that later simplification prunes.
bool mem2reg(ir::Function& fn);

/// Folds constant expressions, branch conditions and algebraic identities.
bool constant_fold(ir::Function& fn);

/// Deletes side-effect-free instructions with no users (iterates to fixpoint).
bool dead_code_elim(ir::Function& fn);

/// Removes unreachable blocks, merges straight-line chains, simplifies
/// degenerate conditional branches and single-input phis.
bool simplify_cfg(ir::Function& fn);

/// Inlines calls to defined, non-recursive callees whose instruction count
/// is at most `threshold`.
bool inline_functions(ir::Module& m, int threshold);

/// Local strength reduction (mul/div by powers of two, additive identities).
bool strength_reduce(ir::Function& fn);

enum class OptLevel { O0, O1, O2, O3, Oz };

const char* opt_level_name(OptLevel level);
OptLevel opt_level_from_name(const std::string& name);

/// Runs the pipeline for `level` over every function in the module.
void optimize(ir::Module& m, OptLevel level);

}  // namespace gbm::opt
