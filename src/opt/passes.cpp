#include "opt/passes.h"

#include <stdexcept>

namespace gbm::opt {

const char* opt_level_name(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::Oz: return "Oz";
  }
  return "?";
}

OptLevel opt_level_from_name(const std::string& name) {
  if (name == "O0") return OptLevel::O0;
  if (name == "O1") return OptLevel::O1;
  if (name == "O2") return OptLevel::O2;
  if (name == "O3") return OptLevel::O3;
  if (name == "Oz") return OptLevel::Oz;
  throw std::invalid_argument("unknown optimisation level " + name);
}

namespace {

void cleanup_round(ir::Module& m) {
  for (const auto& fn : m.functions()) {
    if (fn->is_declaration()) continue;
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 8) {
      changed = false;
      changed |= constant_fold(*fn);
      changed |= dead_code_elim(*fn);
      changed |= simplify_cfg(*fn);
    }
  }
}

}  // namespace

void optimize(ir::Module& m, OptLevel level) {
  if (level == OptLevel::O0) return;

  if (level == OptLevel::O2 || level == OptLevel::O3) {
    inline_functions(m, level == OptLevel::O3 ? 120 : 40);
  }
  if (level == OptLevel::Oz) {
    // Size-biased: only inline tiny callees (call overhead > body size).
    inline_functions(m, 8);
  }
  for (const auto& fn : m.functions()) {
    if (!fn->is_declaration()) mem2reg(*fn);
  }
  cleanup_round(m);
  if (level == OptLevel::O3) {
    for (const auto& fn : m.functions()) {
      if (!fn->is_declaration()) strength_reduce(*fn);
    }
    cleanup_round(m);
  }
}

}  // namespace gbm::opt
