#include "backend/isa.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gbm::backend {

const char* vop_name(VOp op) {
  switch (op) {
    case VOp::LDI: return "ldi";
    case VOp::MOV: return "mov";
    case VOp::ADD: return "add";
    case VOp::SUB: return "sub";
    case VOp::MUL: return "mul";
    case VOp::DIV: return "div";
    case VOp::REM: return "rem";
    case VOp::AND: return "and";
    case VOp::OR: return "or";
    case VOp::XOR: return "xor";
    case VOp::SHL: return "shl";
    case VOp::SAR: return "sar";
    case VOp::SX32: return "sx32";
    case VOp::SX8: return "sx8";
    case VOp::AND1: return "and1";
    case VOp::FADD: return "fadd";
    case VOp::FSUB: return "fsub";
    case VOp::FMUL: return "fmul";
    case VOp::FDIV: return "fdiv";
    case VOp::CMPEQ: return "cmpeq";
    case VOp::CMPNE: return "cmpne";
    case VOp::CMPLT: return "cmplt";
    case VOp::CMPLE: return "cmple";
    case VOp::CMPGT: return "cmpgt";
    case VOp::CMPGE: return "cmpge";
    case VOp::FCMPEQ: return "fcmpeq";
    case VOp::FCMPNE: return "fcmpne";
    case VOp::FCMPLT: return "fcmplt";
    case VOp::FCMPLE: return "fcmple";
    case VOp::FCMPGT: return "fcmpgt";
    case VOp::FCMPGE: return "fcmpge";
    case VOp::LD1: return "ld1";
    case VOp::LD4: return "ld4";
    case VOp::LD8: return "ld8";
    case VOp::ST1: return "st1";
    case VOp::ST4: return "st4";
    case VOp::ST8: return "st8";
    case VOp::FLD: return "fld";
    case VOp::FST: return "fst";
    case VOp::ITOF: return "itof";
    case VOp::FTOI: return "ftoi";
    case VOp::FMOV: return "fmov";
    case VOp::LEA: return "lea";
    case VOp::GADDR: return "gaddr";
    case VOp::JMP: return "jmp";
    case VOp::JZ: return "jz";
    case VOp::JNZ: return "jnz";
    case VOp::CALL: return "call";
    case VOp::SYSCALL: return "syscall";
    case VOp::ENTER: return "enter";
    case VOp::LEAVE: return "leave";
    case VOp::RET: return "ret";
    case VOp::HALT: return "halt";
    case VOp::NOP: return "nop";
  }
  return "?";
}

bool vop_has_imm(VOp op) {
  switch (op) {
    case VOp::LDI: case VOp::LD1: case VOp::LD4: case VOp::LD8:
    case VOp::ST1: case VOp::ST4: case VOp::ST8: case VOp::FLD: case VOp::FST:
    case VOp::LEA: case VOp::GADDR: case VOp::JMP: case VOp::JZ: case VOp::JNZ:
    case VOp::CALL: case VOp::SYSCALL: case VOp::ENTER:
      return true;
    default:
      return false;
  }
}

std::string VInst::str() const {
  char buf[96];
  if (vop_has_imm(op))
    std::snprintf(buf, sizeof buf, "%-8s a=%u b=%u c=%u imm=%lld", vop_name(op), a, b,
                  c, static_cast<long long>(imm));
  else
    std::snprintf(buf, sizeof buf, "%-8s a=%u b=%u c=%u", vop_name(op), a, b, c);
  return buf;
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;
  std::uint8_t u8() {
    if (pos >= bytes.size()) throw std::runtime_error("vbin: truncated");
    return bytes[pos++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::int64_t i64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return static_cast<std::int64_t>(v);
  }
};

}  // namespace

std::vector<std::uint8_t> encode(const VBinary& bin) {
  std::vector<std::uint8_t> out;
  out.push_back('V'); out.push_back('B'); out.push_back('I'); out.push_back('N');
  put_u32(out, 1);  // version
  put_u32(out, static_cast<std::uint32_t>(bin.data.size()));
  out.insert(out.end(), bin.data.begin(), bin.data.end());
  put_u32(out, static_cast<std::uint32_t>(bin.global_offsets.size()));
  for (std::int64_t off : bin.global_offsets) put_i64(out, off);
  put_u32(out, static_cast<std::uint32_t>(bin.functions.size()));
  put_u32(out, static_cast<std::uint32_t>(bin.entry));
  for (const auto& fn : bin.functions) {
    put_u32(out, static_cast<std::uint32_t>(fn.name.size()));
    out.insert(out.end(), fn.name.begin(), fn.name.end());
    put_u32(out, static_cast<std::uint32_t>(fn.arity));
    out.push_back(fn.returns_float ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(fn.code.size()));
    for (const auto& inst : fn.code) {
      out.push_back(static_cast<std::uint8_t>(inst.op));
      out.push_back(inst.a);
      out.push_back(inst.b);
      out.push_back(inst.c);
      if (vop_has_imm(inst.op)) put_i64(out, inst.imm);
    }
  }
  return out;
}

VBinary decode(const std::vector<std::uint8_t>& bytes) {
  Reader r{bytes};
  if (r.u8() != 'V' || r.u8() != 'B' || r.u8() != 'I' || r.u8() != 'N')
    throw std::runtime_error("vbin: bad magic");
  if (r.u32() != 1) throw std::runtime_error("vbin: bad version");
  VBinary bin;
  const std::uint32_t data_size = r.u32();
  bin.data.resize(data_size);
  for (std::uint32_t i = 0; i < data_size; ++i) bin.data[i] = r.u8();
  const std::uint32_t num_globals = r.u32();
  for (std::uint32_t i = 0; i < num_globals; ++i) bin.global_offsets.push_back(r.i64());
  const std::uint32_t num_fns = r.u32();
  bin.entry = static_cast<int>(r.u32());
  for (std::uint32_t i = 0; i < num_fns; ++i) {
    VFunction fn;
    const std::uint32_t name_len = r.u32();
    fn.name.resize(name_len);
    for (std::uint32_t k = 0; k < name_len; ++k) fn.name[k] = static_cast<char>(r.u8());
    fn.arity = static_cast<int>(r.u32());
    fn.returns_float = r.u8() != 0;
    const std::uint32_t n = r.u32();
    fn.code.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) {
      VInst inst;
      inst.op = static_cast<VOp>(r.u8());
      inst.a = r.u8();
      inst.b = r.u8();
      inst.c = r.u8();
      if (vop_has_imm(inst.op)) inst.imm = r.i64();
      fn.code.push_back(inst);
    }
    bin.functions.push_back(std::move(fn));
  }
  return bin;
}

std::string disassemble(const VBinary& bin) {
  std::string out = "; vbin: " + std::to_string(bin.functions.size()) + " functions, " +
                    std::to_string(bin.data.size()) + " data bytes\n";
  for (std::size_t i = 0; i < bin.functions.size(); ++i) {
    const auto& fn = bin.functions[i];
    out += "fn " + std::to_string(i) + " <" + fn.name + "> arity=" +
           std::to_string(fn.arity) + ":\n";
    for (std::size_t k = 0; k < fn.code.size(); ++k) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%4zu: ", k);
      out += buf + fn.code[k].str() + "\n";
    }
  }
  return out;
}

}  // namespace gbm::backend
