#include "backend/vm.h"

#include <cstring>

namespace gbm::backend {

namespace {

using interp::ProgramIO;
using interp::Runtime;
using interp::RuntimeMemory;
using interp::TrapError;

struct Frame {
  int fn = 0;
  std::size_t pc = 0;
};

class VM {
 public:
  VM(const VBinary& bin, const interp::ExecOptions& options)
      : bin_(bin), options_(options), mem_(options.memory_bytes), runtime_(mem_, io_) {
    io_.input = options.input;
  }

  interp::ExecResult run() {
    interp::ExecResult result;
    try {
      result.exit_code = exec();
    } catch (const TrapError& trap) {
      result.trapped = true;
      result.trap_message = trap.what();
    }
    result.output = io_.output;
    result.steps = steps_;
    return result;
  }

 private:
  std::int64_t exec() {
    // Materialise the data section and a downward-growing stack.
    data_base_ = mem_.alloc(std::max<std::uint64_t>(bin_.data.size(), 8));
    if (!bin_.data.empty()) mem_.store_bytes(data_base_, bin_.data.data(), bin_.data.size());
    const std::uint64_t stack_bytes = 1 << 20;
    const std::uint64_t stack_base = mem_.alloc(stack_bytes);
    r_[kRegSP] = static_cast<std::int64_t>(stack_base + stack_bytes);
    r_[kRegFP] = 0;

    int fn = bin_.entry;
    std::size_t pc = 0;
    std::vector<Frame> call_stack;

    while (true) {
      const auto& code = bin_.functions[static_cast<std::size_t>(fn)].code;
      if (pc >= code.size()) throw TrapError("pc out of range");
      const VInst& inst = code[pc];
      if (++steps_ > options_.fuel) throw TrapError("fuel exhausted");
      std::size_t next = pc + 1;
      switch (inst.op) {
        case VOp::LDI: r_[inst.a] = inst.imm; break;
        case VOp::MOV: r_[inst.a] = r_[inst.b]; break;
        case VOp::ADD: r_[inst.a] = u64_op(r_[inst.b], r_[inst.c], '+'); break;
        case VOp::SUB: r_[inst.a] = u64_op(r_[inst.b], r_[inst.c], '-'); break;
        case VOp::MUL: r_[inst.a] = u64_op(r_[inst.b], r_[inst.c], '*'); break;
        case VOp::DIV:
          if (r_[inst.c] == 0) throw TrapError("division by zero");
          if (r_[inst.b] == INT64_MIN && r_[inst.c] == -1) r_[inst.a] = r_[inst.b];
          else r_[inst.a] = r_[inst.b] / r_[inst.c];
          break;
        case VOp::REM:
          if (r_[inst.c] == 0) throw TrapError("remainder by zero");
          if (r_[inst.b] == INT64_MIN && r_[inst.c] == -1) r_[inst.a] = 0;
          else r_[inst.a] = r_[inst.b] % r_[inst.c];
          break;
        case VOp::AND: r_[inst.a] = r_[inst.b] & r_[inst.c]; break;
        case VOp::OR: r_[inst.a] = r_[inst.b] | r_[inst.c]; break;
        case VOp::XOR: r_[inst.a] = r_[inst.b] ^ r_[inst.c]; break;
        case VOp::SHL:
          r_[inst.a] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(r_[inst.b])
              << (static_cast<std::uint64_t>(r_[inst.c]) & 63));
          break;
        case VOp::SAR:
          r_[inst.a] = r_[inst.b] >> (static_cast<std::uint64_t>(r_[inst.c]) & 63);
          break;
        case VOp::SX32: r_[inst.a] = static_cast<std::int32_t>(r_[inst.b]); break;
        case VOp::SX8: r_[inst.a] = static_cast<std::int8_t>(r_[inst.b]); break;
        case VOp::AND1: r_[inst.a] = r_[inst.b] & 1; break;
        case VOp::FADD: f_[inst.a] = f_[inst.b] + f_[inst.c]; break;
        case VOp::FSUB: f_[inst.a] = f_[inst.b] - f_[inst.c]; break;
        case VOp::FMUL: f_[inst.a] = f_[inst.b] * f_[inst.c]; break;
        case VOp::FDIV: f_[inst.a] = f_[inst.b] / f_[inst.c]; break;
        case VOp::CMPEQ: r_[inst.a] = r_[inst.b] == r_[inst.c]; break;
        case VOp::CMPNE: r_[inst.a] = r_[inst.b] != r_[inst.c]; break;
        case VOp::CMPLT: r_[inst.a] = r_[inst.b] < r_[inst.c]; break;
        case VOp::CMPLE: r_[inst.a] = r_[inst.b] <= r_[inst.c]; break;
        case VOp::CMPGT: r_[inst.a] = r_[inst.b] > r_[inst.c]; break;
        case VOp::CMPGE: r_[inst.a] = r_[inst.b] >= r_[inst.c]; break;
        case VOp::FCMPEQ: r_[inst.a] = f_[inst.b] == f_[inst.c]; break;
        case VOp::FCMPNE: r_[inst.a] = f_[inst.b] != f_[inst.c]; break;
        case VOp::FCMPLT: r_[inst.a] = f_[inst.b] < f_[inst.c]; break;
        case VOp::FCMPLE: r_[inst.a] = f_[inst.b] <= f_[inst.c]; break;
        case VOp::FCMPGT: r_[inst.a] = f_[inst.b] > f_[inst.c]; break;
        case VOp::FCMPGE: r_[inst.a] = f_[inst.b] >= f_[inst.c]; break;
        case VOp::LD1:
          r_[inst.a] = mem_.load_int(addr(inst.b, inst.imm), 1);
          break;
        case VOp::LD4:
          r_[inst.a] = mem_.load_int(addr(inst.b, inst.imm), 4);
          break;
        case VOp::LD8:
          r_[inst.a] = mem_.load_int(addr(inst.b, inst.imm), 8);
          break;
        case VOp::ST1:
          mem_.store_int(addr(inst.a, inst.imm), r_[inst.b], 1);
          break;
        case VOp::ST4:
          mem_.store_int(addr(inst.a, inst.imm), r_[inst.b], 4);
          break;
        case VOp::ST8:
          mem_.store_int(addr(inst.a, inst.imm), r_[inst.b], 8);
          break;
        case VOp::FLD:
          f_[inst.a] = mem_.load_f64(addr(inst.b, inst.imm));
          break;
        case VOp::FST:
          mem_.store_f64(addr(inst.a, inst.imm), f_[inst.b]);
          break;
        case VOp::ITOF: f_[inst.a] = static_cast<double>(r_[inst.b]); break;
        case VOp::FTOI: r_[inst.a] = static_cast<std::int64_t>(f_[inst.b]); break;
        case VOp::FMOV: f_[inst.a] = f_[inst.b]; break;
        case VOp::LEA: r_[inst.a] = r_[kRegFP] + inst.imm; break;
        case VOp::GADDR:
          r_[inst.a] = static_cast<std::int64_t>(data_base_) + inst.imm;
          break;
        case VOp::JMP: next = static_cast<std::size_t>(inst.imm); break;
        case VOp::JZ:
          if (r_[inst.a] == 0) next = static_cast<std::size_t>(inst.imm);
          break;
        case VOp::JNZ:
          if (r_[inst.a] != 0) next = static_cast<std::size_t>(inst.imm);
          break;
        case VOp::CALL: {
          if (call_stack.size() > 600) throw TrapError("call stack overflow");
          call_stack.push_back({fn, next});
          fn = static_cast<int>(inst.imm);
          if (fn < 0 || fn >= static_cast<int>(bin_.functions.size()))
            throw TrapError("call to invalid function index");
          next = 0;
          break;
        }
        case VOp::SYSCALL: {
          const auto& sig =
              Runtime::table().at(static_cast<std::size_t>(inst.imm));
          std::vector<std::int64_t> args;
          int int_reg = 1, flt_reg = 1;
          for (int i = 0; i < sig.num_args; ++i) {
            // Only gbm_print_f64 takes a float argument (in f1).
            if (sig.name == "gbm_print_f64") {
              std::int64_t bits;
              std::memcpy(&bits, &f_[flt_reg++], 8);
              args.push_back(bits);
            } else {
              args.push_back(r_[int_reg++]);
            }
          }
          r_[0] = runtime_.invoke(static_cast<int>(inst.imm), args);
          break;
        }
        case VOp::ENTER: {
          r_[kRegSP] -= 8;
          mem_.store_int(static_cast<std::uint64_t>(r_[kRegSP]), r_[kRegFP], 8);
          r_[kRegFP] = r_[kRegSP];
          r_[kRegSP] -= inst.imm;
          if (r_[kRegSP] < 0) throw TrapError("stack overflow");
          break;
        }
        case VOp::LEAVE: {
          r_[kRegSP] = r_[kRegFP];
          r_[kRegFP] = mem_.load_int(static_cast<std::uint64_t>(r_[kRegSP]), 8);
          r_[kRegSP] += 8;
          break;
        }
        case VOp::RET: {
          if (call_stack.empty()) return r_[0];
          fn = call_stack.back().fn;
          next = call_stack.back().pc;
          call_stack.pop_back();
          break;
        }
        case VOp::HALT:
          return r_[0];
        case VOp::NOP:
          break;
      }
      pc = next;
    }
  }

  /// Wrapping two's-complement arithmetic (overflow is defined, as on x86).
  static std::int64_t u64_op(std::int64_t a, std::int64_t b, char op) {
    const std::uint64_t x = static_cast<std::uint64_t>(a);
    const std::uint64_t y = static_cast<std::uint64_t>(b);
    switch (op) {
      case '+': return static_cast<std::int64_t>(x + y);
      case '-': return static_cast<std::int64_t>(x - y);
      default: return static_cast<std::int64_t>(x * y);
    }
  }

  std::uint64_t addr(int reg, std::int64_t off) const {
    return static_cast<std::uint64_t>(r_[reg] + off);
  }

  const VBinary& bin_;
  const interp::ExecOptions& options_;
  RuntimeMemory mem_;
  ProgramIO io_;
  Runtime runtime_;
  std::uint64_t data_base_ = 0;
  std::int64_t r_[16] = {0};
  double f_[8] = {0};
  long steps_ = 0;
};

}  // namespace

interp::ExecResult run_binary(const VBinary& bin, const interp::ExecOptions& options) {
  VM vm(bin, options);
  return vm.run();
}

}  // namespace gbm::backend
