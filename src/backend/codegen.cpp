#include "backend/codegen.h"

#include <stdexcept>
#include <unordered_map>

#include "interp/runtime.h"

namespace gbm::backend {

namespace {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::TypeKind;
using ir::Value;

constexpr int kScratchA = 7;   // r7 / f7
constexpr int kScratchB = 8;
constexpr int kScratchC = 9;
constexpr int kGccTunnel = 12;  // VGcc funnels slot traffic through r12
// Float register file is f0..f7; f7/f6 serve as the two float scratches.
constexpr int kFScratchA = 7;
constexpr int kFScratchB = 6;

class FunctionCodegen {
 public:
  FunctionCodegen(const ir::Module& m, const Function& fn, CodegenStyle style,
                  const std::unordered_map<const Function*, int>& fn_index,
                  const std::unordered_map<const ir::GlobalVar*, std::int64_t>& gaddr)
      : m_(m), fn_(fn), style_(style), fn_index_(fn_index), gaddr_(gaddr) {}

  VFunction run() {
    VFunction out;
    out.name = fn_.name();
    out.arity = static_cast<int>(fn_.num_args());
    out.returns_float = fn_.return_type()->is_float();
    if (fn_.num_args() > 6)
      throw std::logic_error("codegen: more than 6 arguments: " + fn_.name());

    assign_slots();
    if (style_ == CodegenStyle::VGcc) {
      // VGcc mirrors every slot write into a shadow region of the frame
      // (redundant spill traffic a weaker allocator emits). Shadow stores
      // are memory side effects, so they survive any decompiler cleanup —
      // this is what makes gcc-style binaries lift to substantially larger
      // IR (the paper's ~70% observation, RQ3).
      shadow_delta_ = frame_bytes_ + 128;
    }
    code_ = &out.code;

    // Prologue.
    emit(VOp::ENTER, 0, 0, 0, 0);  // frame size patched at the end
    const std::size_t enter_idx = out.code.size() - 1;
    if (style_ == CodegenStyle::VGcc) {
      // Frame-setup boilerplate a heavier toolchain emits.
      emit(VOp::NOP);
      emit(VOp::LEA, kGccTunnel, 0, 0, 0);
      emit(VOp::NOP);
    }
    for (std::size_t i = 0; i < fn_.num_args(); ++i) {
      const ir::Argument* arg = fn_.arg(i);
      if (arg->type()->is_float())
        throw std::logic_error("codegen: double parameters unsupported");
      store_slot_from_reg(static_cast<int>(1 + i), arg);
    }

    for (const auto& bb : fn_.blocks()) {
      block_start_[bb.get()] = static_cast<std::int64_t>(out.code.size());
      for (const auto& inst : bb->instructions()) emit_instruction(*inst);
    }
    // Patch branch targets and frame size.
    for (const auto& [idx, target] : fixups_)
      out.code[idx].imm = block_start_.at(target);
    out.code[enter_idx].imm =
        style_ == CodegenStyle::VGcc ? shadow_delta_ + frame_bytes_ : frame_bytes_;
    return out;
  }

 private:
  // ---- frame layout ---------------------------------------------------------
  void assign_slots() {
    for (const auto& bb : fn_.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() == Opcode::Alloca) {
          if (inst->num_operands() != 0)
            throw std::logic_error("codegen: dynamic alloca unsupported");
          const long bytes = (inst->pointee()->size_bytes() + 7) & ~7L;
          frame_bytes_ += bytes;
          buffer_off_[inst.get()] = frame_bytes_;
        } else if (!inst->type()->is_void()) {
          frame_bytes_ += 8;
          slot_off_[inst.get()] = frame_bytes_;
          if (inst->opcode() == Opcode::Phi) {
            frame_bytes_ += 8;
            staging_off_[inst.get()] = frame_bytes_;
          }
        }
      }
    }
    for (const auto& arg : fn_.args()) {
      frame_bytes_ += 8;
      slot_off_[arg.get()] = frame_bytes_;
    }
  }

  std::int64_t slot_of(const Value* v) const {
    auto it = slot_off_.find(v);
    if (it == slot_off_.end()) throw std::logic_error("codegen: no slot for value");
    return -it->second;  // FP-relative
  }

  // ---- emission helpers ----------------------------------------------------
  void emit(VOp op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
    VInst inst;
    inst.op = op;
    inst.a = static_cast<std::uint8_t>(a);
    inst.b = static_cast<std::uint8_t>(b);
    inst.c = static_cast<std::uint8_t>(c);
    inst.imm = imm;
    code_->push_back(inst);
  }

  /// Loads an IR value (int/pointer kind) into integer register `rd`.
  void load_int(const Value* v, int rd) {
    switch (v->kind()) {
      case ir::ValueKind::ConstantInt:
        emit(VOp::LDI, rd, 0, 0, static_cast<const ir::ConstantInt*>(v)->value());
        return;
      case ir::ValueKind::Global:
        emit(VOp::GADDR, rd, 0, 0,
             gaddr_.at(static_cast<const ir::GlobalVar*>(v)));
        return;
      default:
        break;
    }
    // Allocas materialise their frame address; other values load their slot.
    auto buf = buffer_off_.find(v);
    if (buf != buffer_off_.end()) {
      emit(VOp::LEA, rd, 0, 0, -buf->second);
      return;
    }
    if (style_ == CodegenStyle::VGcc) {
      emit(VOp::LD8, kGccTunnel, kRegFP, 0, slot_of(v));
      emit(VOp::MOV, rd, kGccTunnel, 0, 0);
    } else {
      emit(VOp::LD8, rd, kRegFP, 0, slot_of(v));
    }
  }

  /// Loads a float IR value into float register `fd`.
  void load_float(const Value* v, int fd) {
    if (v->kind() == ir::ValueKind::ConstantFloat) {
      const double d = static_cast<const ir::ConstantFloat*>(v)->value();
      std::int64_t bits;
      __builtin_memcpy(&bits, &d, 8);
      emit(VOp::LDI, kScratchC, 0, 0, bits);
      emit(VOp::ST8, kRegFP, kScratchC, 0, -scratch_f64_slot());
      emit(VOp::FLD, fd, kRegFP, 0, -scratch_f64_slot());
      return;
    }
    emit(VOp::FLD, fd, kRegFP, 0, slot_of(v));
  }

  void store_slot_from_reg(int rs, const Value* v) {
    if (style_ == CodegenStyle::VGcc) {
      emit(VOp::MOV, kGccTunnel, rs, 0, 0);
      emit(VOp::ST8, kRegFP, kGccTunnel, 0, slot_of(v));
      emit(VOp::ST8, kRegFP, kGccTunnel, 0, slot_of(v) - shadow_delta_);
    } else {
      emit(VOp::ST8, kRegFP, rs, 0, slot_of(v));
    }
  }

  void store_slot_from_freg(int fs, const Value* v) {
    emit(VOp::FST, kRegFP, fs, 0, slot_of(v));
  }

  std::int64_t scratch_f64_slot() {
    if (scratch_f64_ == 0) {
      frame_bytes_ += 8;
      scratch_f64_ = frame_bytes_;
    }
    return scratch_f64_;
  }

  void jump_fixup(VOp op, int ra, const BasicBlock* target) {
    emit(op, ra, 0, 0, 0);
    fixups_.emplace_back(code_->size() - 1, target);
  }

  /// Truncation to sub-64-bit integer semantics after an arithmetic op.
  void wrap_result(int rd, const Type* ty) {
    switch (ty->kind()) {
      case TypeKind::I1: emit(VOp::AND1, rd, rd, 0, 0); break;
      case TypeKind::I8: emit(VOp::SX8, rd, rd, 0, 0); break;
      case TypeKind::I32: emit(VOp::SX32, rd, rd, 0, 0); break;
      default: break;
    }
  }

  // ---- phi copies -----------------------------------------------------------
  /// Before leaving `bb`, copy phi inputs of all successors through staging
  /// slots (two phases: reads first, then writes → parallel-copy safe).
  void emit_phi_copies(const BasicBlock& bb) {
    std::vector<const Instruction*> phis;
    const Instruction* term = bb.terminator();
    if (!term) return;
    for (const BasicBlock* succ : term->targets()) {
      for (const auto& inst : succ->instructions()) {
        if (inst->opcode() != Opcode::Phi) break;
        phis.push_back(inst.get());
      }
    }
    for (const Instruction* phi : phis) {
      for (std::size_t i = 0; i < phi->num_operands(); ++i) {
        if (phi->incoming_blocks()[i] != &bb) continue;
        const Value* in = phi->operand(i);
        if (phi->type()->is_float()) {
          load_float(in, kScratchA);
          emit(VOp::FST, kRegFP, kScratchA, 0, -staging_off_.at(phi));
        } else {
          load_int(in, kScratchA);
          emit(VOp::ST8, kRegFP, kScratchA, 0, -staging_off_.at(phi));
        }
      }
    }
    for (const Instruction* phi : phis) {
      bool ours = false;
      for (std::size_t i = 0; i < phi->num_operands(); ++i)
        ours = ours || phi->incoming_blocks()[i] == &bb;
      if (!ours) continue;
      if (phi->type()->is_float()) {
        emit(VOp::FLD, kScratchA, kRegFP, 0, -staging_off_.at(phi));
        emit(VOp::FST, kRegFP, kScratchA, 0, slot_of(phi));
      } else {
        emit(VOp::LD8, kScratchA, kRegFP, 0, -staging_off_.at(phi));
        emit(VOp::ST8, kRegFP, kScratchA, 0, slot_of(phi));
      }
    }
  }

  // ---- instruction dispatch -----------------------------------------------
  void emit_instruction(const Instruction& inst) {
    switch (inst.opcode()) {
      case Opcode::Alloca:
        break;  // frame space reserved in assign_slots
      case Opcode::Phi:
        break;  // materialised by predecessors' phi copies
      case Opcode::Load: {
        load_int(inst.operand(0), kScratchB);
        if (inst.type()->is_float()) {
          emit(VOp::FLD, kScratchA, kScratchB, 0, 0);
          store_slot_from_freg(kScratchA, &inst);
        } else {
          const long sz = inst.type()->size_bytes();
          emit(sz == 1 ? VOp::LD1 : sz == 4 ? VOp::LD4 : VOp::LD8, kScratchA,
               kScratchB, 0, 0);
          store_slot_from_reg(kScratchA, &inst);
        }
        break;
      }
      case Opcode::Store: {
        const Value* val = inst.operand(0);
        load_int(inst.operand(1), kScratchB);
        if (val->type()->is_float()) {
          load_float(val, kScratchA);
          emit(VOp::FST, kScratchB, kScratchA, 0, 0);
        } else {
          load_int(val, kScratchA);
          const long sz = val->type()->size_bytes();
          emit(sz == 1 ? VOp::ST1 : sz == 4 ? VOp::ST4 : VOp::ST8, kScratchB,
               kScratchA, 0, 0);
        }
        break;
      }
      case Opcode::Gep: {
        load_int(inst.operand(0), kScratchA);
        load_int(inst.operand(1), kScratchB);
        emit(VOp::LDI, kScratchC, 0, 0, inst.pointee()->size_bytes());
        emit(VOp::MUL, kScratchB, kScratchB, kScratchC);
        emit(VOp::ADD, kScratchA, kScratchA, kScratchB);
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
      case Opcode::SRem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
      case Opcode::Shl: case Opcode::AShr: {
        load_int(inst.operand(0), kScratchA);
        load_int(inst.operand(1), kScratchB);
        VOp op;
        switch (inst.opcode()) {
          case Opcode::Add: op = VOp::ADD; break;
          case Opcode::Sub: op = VOp::SUB; break;
          case Opcode::Mul: op = VOp::MUL; break;
          case Opcode::SDiv: op = VOp::DIV; break;
          case Opcode::SRem: op = VOp::REM; break;
          case Opcode::And: op = VOp::AND; break;
          case Opcode::Or: op = VOp::OR; break;
          case Opcode::Xor: op = VOp::XOR; break;
          case Opcode::Shl: op = VOp::SHL; break;
          default: op = VOp::SAR; break;
        }
        emit(op, kScratchA, kScratchA, kScratchB);
        if (style_ == CodegenStyle::VGcc) {
          // Heavier toolchains shuffle results through an extra register
          // and keep a redundant copy alive across the store.
          emit(VOp::MOV, 11, kScratchA, 0, 0);
          emit(VOp::MOV, kScratchA, 11, 0, 0);
        }
        wrap_result(kScratchA, inst.type());
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv: {
        load_float(inst.operand(0), kFScratchA);
        load_float(inst.operand(1), kFScratchB);
        VOp op;
        switch (inst.opcode()) {
          case Opcode::FAdd: op = VOp::FADD; break;
          case Opcode::FSub: op = VOp::FSUB; break;
          case Opcode::FMul: op = VOp::FMUL; break;
          default: op = VOp::FDIV; break;
        }
        emit(op, kFScratchA, kFScratchA, kFScratchB);
        store_slot_from_freg(kFScratchA, &inst);
        break;
      }
      case Opcode::ICmp: {
        load_int(inst.operand(0), kScratchA);
        load_int(inst.operand(1), kScratchB);
        emit(cmp_op(inst.pred(), /*is_float=*/false), kScratchA, kScratchA, kScratchB);
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::FCmp: {
        load_float(inst.operand(0), kFScratchA);
        load_float(inst.operand(1), kFScratchB);
        emit(cmp_op(inst.pred(), /*is_float=*/true), kScratchA, kFScratchA, kFScratchB);
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::SExt: {
        load_int(inst.operand(0), kScratchA);  // slots are sign-extended already
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::ZExt: {
        load_int(inst.operand(0), kScratchA);
        const Type* from = inst.operand(0)->type();
        if (from->kind() == TypeKind::I1) {
          emit(VOp::AND1, kScratchA, kScratchA, 0);
        } else if (from->kind() == TypeKind::I8) {
          emit(VOp::LDI, kScratchB, 0, 0, 0xFF);
          emit(VOp::AND, kScratchA, kScratchA, kScratchB);
        } else if (from->kind() == TypeKind::I32) {
          emit(VOp::LDI, kScratchB, 0, 0, 0xFFFFFFFFLL);
          emit(VOp::AND, kScratchA, kScratchA, kScratchB);
        }
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::Trunc: {
        load_int(inst.operand(0), kScratchA);
        wrap_result(kScratchA, inst.type());
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::PtrToInt: case Opcode::IntToPtr: {
        load_int(inst.operand(0), kScratchA);
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::SIToFP: {
        load_int(inst.operand(0), kScratchA);
        emit(VOp::ITOF, kScratchA, kScratchA, 0);
        store_slot_from_freg(kScratchA, &inst);
        break;
      }
      case Opcode::FPToSI: {
        load_float(inst.operand(0), kScratchA);
        emit(VOp::FTOI, kScratchA, kScratchA, 0);
        wrap_result(kScratchA, inst.type());
        store_slot_from_reg(kScratchA, &inst);
        break;
      }
      case Opcode::Select: {
        // rd = cond ? a : b via branchless arithmetic is not available;
        // lower as compare-and-jump over a move.
        load_int(inst.operand(0), kScratchC);
        if (inst.type()->is_float()) {
          load_float(inst.operand(2), kScratchA);
          const std::size_t skip = code_->size();
          emit(VOp::JZ, kScratchC, 0, 0, 0);
          load_float(inst.operand(1), kScratchA);
          (*code_)[skip].imm = static_cast<std::int64_t>(code_->size());
          store_slot_from_freg(kScratchA, &inst);
        } else {
          load_int(inst.operand(2), kScratchA);
          const std::size_t skip = code_->size();
          emit(VOp::JZ, kScratchC, 0, 0, 0);
          load_int(inst.operand(1), kScratchA);
          (*code_)[skip].imm = static_cast<std::int64_t>(code_->size());
          store_slot_from_reg(kScratchA, &inst);
        }
        break;
      }
      case Opcode::Call: {
        const Function* callee = inst.callee();
        if (inst.num_operands() > 6)
          throw std::logic_error("codegen: call with more than 6 arguments");
        int int_reg = 1, flt_reg = 1;
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          const Value* arg = inst.operand(i);
          if (arg->type()->is_float()) {
            load_float(arg, kScratchA);
            emit(VOp::FMOV, flt_reg++, kScratchA, 0);
          } else {
            load_int(arg, kScratchA);
            emit(VOp::MOV, int_reg++, kScratchA, 0);
          }
        }
        if (callee->is_declaration()) {
          const int id = interp::Runtime::syscall_id(callee->name());
          if (id < 0)
            throw std::logic_error("codegen: call to undefined " + callee->name());
          emit(VOp::SYSCALL, 0, 0, 0, id);
        } else {
          if (callee->return_type()->is_float())
            throw std::logic_error("codegen: double returns unsupported");
          emit(VOp::CALL, 0, 0, 0, fn_index_.at(callee));
        }
        if (!inst.type()->is_void()) {
          if (inst.type()->is_float())
            throw std::logic_error("codegen: double returns unsupported");
          store_slot_from_reg(0, &inst);
        }
        break;
      }
      case Opcode::Br:
        emit_phi_copies(*inst.parent());
        jump_fixup(VOp::JMP, 0, inst.targets()[0]);
        break;
      case Opcode::CondBr:
        // The condition may be a phi of this block — read it before the phi
        // copies overwrite the slot. r10 survives the copy code (r7/r12 only).
        load_int(inst.operand(0), 10);
        emit_phi_copies(*inst.parent());
        jump_fixup(VOp::JNZ, 10, inst.targets()[0]);
        jump_fixup(VOp::JMP, 0, inst.targets()[1]);
        break;
      case Opcode::Switch: {
        load_int(inst.operand(0), 10);
        emit_phi_copies(*inst.parent());
        emit(VOp::MOV, kScratchA, 10, 0);
        for (std::size_t i = 0; i < inst.case_values().size(); ++i) {
          emit(VOp::LDI, kScratchB, 0, 0, inst.case_values()[i]);
          emit(VOp::CMPEQ, kScratchC, kScratchA, kScratchB);
          jump_fixup(VOp::JNZ, kScratchC, inst.targets()[i + 1]);
        }
        jump_fixup(VOp::JMP, 0, inst.targets()[0]);
        break;
      }
      case Opcode::Ret:
        if (inst.num_operands()) {
          if (inst.operand(0)->type()->is_float())
            throw std::logic_error("codegen: double returns unsupported");
          load_int(inst.operand(0), 0);
        } else {
          emit(VOp::LDI, 0, 0, 0, 0);
        }
        emit(VOp::LEAVE);
        emit(VOp::RET);
        break;
      case Opcode::Unreachable:
        emit(VOp::HALT);
        break;
    }
  }

  static VOp cmp_op(CmpPred pred, bool is_float) {
    switch (pred) {
      case CmpPred::EQ: return is_float ? VOp::FCMPEQ : VOp::CMPEQ;
      case CmpPred::NE: return is_float ? VOp::FCMPNE : VOp::CMPNE;
      case CmpPred::SLT: return is_float ? VOp::FCMPLT : VOp::CMPLT;
      case CmpPred::SLE: return is_float ? VOp::FCMPLE : VOp::CMPLE;
      case CmpPred::SGT: return is_float ? VOp::FCMPGT : VOp::CMPGT;
      case CmpPred::SGE: return is_float ? VOp::FCMPGE : VOp::CMPGE;
    }
    return VOp::CMPEQ;
  }

  const ir::Module& m_;
  const Function& fn_;
  CodegenStyle style_;
  const std::unordered_map<const Function*, int>& fn_index_;
  const std::unordered_map<const ir::GlobalVar*, std::int64_t>& gaddr_;
  std::vector<VInst>* code_ = nullptr;
  std::unordered_map<const Value*, std::int64_t> slot_off_;
  std::unordered_map<const Value*, std::int64_t> buffer_off_;
  std::unordered_map<const Instruction*, std::int64_t> staging_off_;
  std::unordered_map<const BasicBlock*, std::int64_t> block_start_;
  std::vector<std::pair<std::size_t, const BasicBlock*>> fixups_;
  std::int64_t frame_bytes_ = 8;  // first 8 bytes: canary / padding
  std::int64_t scratch_f64_ = 0;
  std::int64_t shadow_delta_ = 0;  // VGcc shadow-spill region offset
};

}  // namespace

const char* style_name(CodegenStyle style) {
  return style == CodegenStyle::VClang ? "vclang" : "vgcc";
}

VBinary compile_module(const ir::Module& m, CodegenStyle style) {
  VBinary bin;
  // Data section: globals laid out in order, 8-byte aligned.
  std::unordered_map<const ir::GlobalVar*, std::int64_t> gaddr;
  for (const auto& g : m.globals()) {
    const std::int64_t off = static_cast<std::int64_t>((bin.data.size() + 7) & ~7UL);
    bin.data.resize(static_cast<std::size_t>(off + g->pointee()->size_bytes()), 0);
    std::copy(g->data().begin(), g->data().end(), bin.data.begin() + off);
    gaddr[g.get()] = off;
    bin.global_offsets.push_back(off);
  }
  // Function table: defined functions only (declarations become syscalls).
  std::unordered_map<const ir::Function*, int> fn_index;
  for (const auto& fn : m.functions()) {
    if (fn->is_declaration()) continue;
    fn_index[fn.get()] = static_cast<int>(fn_index.size());
  }
  for (const auto& fn : m.functions()) {
    if (fn->is_declaration()) continue;
    FunctionCodegen cg(m, *fn, style, fn_index, gaddr);
    bin.functions.push_back(cg.run());
    if (fn->name() == "main") bin.entry = static_cast<int>(bin.functions.size()) - 1;
  }
  if (bin.entry < 0) throw std::logic_error("codegen: module has no main");
  return bin;
}

}  // namespace gbm::backend
