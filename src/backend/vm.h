// VBin virtual machine — executes compiled binaries with the same runtime
// library and observable-I/O model as the IR interpreter, so
// "source interpreted" and "binary executed" outputs are directly comparable.
#pragma once

#include "backend/isa.h"
#include "interp/interp.h"

namespace gbm::backend {

/// Runs a binary from its entry function. Program-level failures (traps,
/// fuel) are reported in the result, not thrown.
interp::ExecResult run_binary(const VBinary& bin,
                              const interp::ExecOptions& options = {});

}  // namespace gbm::backend
