// VBin: the virtual binary ISA (the "x86" of this reproduction).
//
// A fixed-register machine with 16 integer registers (r0..r15) and 8
// floating registers (f0..f7). Conventions:
//   r0  — integer/pointer return value and scratch
//   r1..r6 — integer/pointer arguments
//   f0  — float return, f1..f6 float arguments
//   r13 — frame pointer (FP), r14 — stack pointer (SP) [VM-managed]
//   r7..r12 — codegen scratch
//
// Code is position-independent per function; branch targets are instruction
// indices within the function. A compiled program (VBinary) carries a data
// section (globals), a function table with recovered arity, and an entry
// index — the artifact the decompiler lifts back to IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gbm::backend {

enum class VOp : std::uint8_t {
  LDI,    // rd <- imm64
  MOV,    // rd <- ra
  ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SAR,  // rd <- ra op rb
  SX32, SX8, AND1,  // rd <- truncate/sign-extend ra (i32/i8/i1 wrap semantics)
  FADD, FSUB, FMUL, FDIV,  // fd <- fa op fb
  CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE,      // rd <- (ra ? rb)
  FCMPEQ, FCMPNE, FCMPLT, FCMPLE, FCMPGT, FCMPGE,  // rd <- (fa ? fb)
  LD1, LD4, LD8,  // rd <- mem[ra + imm] (sign-extending)
  ST1, ST4, ST8,  // mem[ra + imm] <- rb
  FLD, FST,       // fd <- mem[ra + imm] / mem[ra + imm] <- fb
  ITOF, FTOI,     // fd <- (double)ra / rd <- (int64)fa
  FMOV,           // fd <- fa
  LEA,            // rd <- FP + imm (frame address)
  GADDR,          // rd <- &data[imm]
  JMP,            // pc <- imm (instruction index)
  JZ, JNZ,        // if (ra ==/!= 0) pc <- imm
  CALL,           // call function #imm
  SYSCALL,        // runtime call #imm (args r1../f1.., result r0/f0)
  ENTER,          // push FP; FP <- SP; SP -= imm
  LEAVE,          // SP <- FP; FP <- pop
  RET,
  HALT,
  NOP,
};

const char* vop_name(VOp op);
bool vop_has_imm(VOp op);

struct VInst {
  VOp op = VOp::NOP;
  std::uint8_t a = 0;  // rd / fd
  std::uint8_t b = 0;  // ra / fa
  std::uint8_t c = 0;  // rb / fb
  std::int64_t imm = 0;

  std::string str() const;
};

struct VFunction {
  std::string name;   // symbol (kept for debugging; decompiler ignores it)
  int arity = 0;      // recovered argument count
  bool returns_float = false;
  std::vector<VInst> code;
};

/// A complete "binary executable".
struct VBinary {
  std::vector<std::uint8_t> data;          // data section (globals image)
  std::vector<std::int64_t> global_offsets;  // data offset per module global
  std::vector<VFunction> functions;
  int entry = -1;  // index of main

  long code_size() const {
    long n = 0;
    for (const auto& f : functions) n += static_cast<long>(f.code.size());
    return n;
  }
};

/// Serialises to the on-disk/encoded byte format ("the binary file").
std::vector<std::uint8_t> encode(const VBinary& bin);
/// Decodes an encoded binary. Throws std::runtime_error on malformed input.
VBinary decode(const std::vector<std::uint8_t>& bytes);

/// Disassembly listing (for debugging and the binary-inspection example).
std::string disassemble(const VBinary& bin);

constexpr int kRegFP = 13;
constexpr int kRegSP = 14;

}  // namespace gbm::backend
