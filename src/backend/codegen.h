// IR → VBin code generation ("the compiler backend").
//
// Allocation strategy is -O0 style: every IR value gets an 8-byte frame
// slot; instructions load operands into scratch registers, compute, and
// store back. Phis are lowered with a parallel-copy staging slot in each
// predecessor. Two code generation styles model two toolchains (RQ3):
//
//  * VClang — straight slot code.
//  * VGcc   — same semantics, but all slot traffic is funnelled through an
//    extra register move and functions carry frame-setup boilerplate,
//    yielding substantially larger code (and, after decompilation,
//    substantially larger lifted IR — the ~70 % effect the paper reports).
//
// Unsupported (by construction of the front-ends): >6 call arguments,
// double-typed function parameters/returns, dynamically sized allocas.
#pragma once

#include "backend/isa.h"
#include "ir/module.h"

namespace gbm::backend {

enum class CodegenStyle { VClang, VGcc };

const char* style_name(CodegenStyle style);

/// Compiles a whole module. Throws std::logic_error on unsupported IR.
VBinary compile_module(const ir::Module& m, CodegenStyle style = CodegenStyle::VClang);

}  // namespace gbm::backend
