// Retrieval metrics for the ranking use-cases of §I (find the matching
// source for a binary): precision@k, hit@k and mean reciprocal rank over a
// set of queries, each with a scored candidate list.
#pragma once

#include <vector>

namespace gbm::eval {

struct RankedQuery {
  std::vector<float> scores;   // one per candidate
  std::vector<bool> relevant;  // parallel ground truth
};

struct RetrievalScores {
  double precision_at_1 = 0.0;
  double precision_at_5 = 0.0;
  double hit_at_5 = 0.0;  // fraction of queries with ≥1 relevant in top 5
  double mrr = 0.0;       // mean reciprocal rank of the first relevant hit
  long queries = 0;
};

/// Aggregates ranking quality over all queries. Ties broken by candidate
/// index (deterministic).
RetrievalScores evaluate_retrieval(const std::vector<RankedQuery>& queries);

/// Builds a RankedQuery from an embedding-index top-k result: `hit_ids`
/// are candidate indices (best-first) into a candidate set of size
/// relevant.size(), `hit_scores` their scores. Candidates outside the hit
/// list rank below every hit — relevant ones at the very bottom, so
/// metrics with cutoffs <= k are exact and MRR is a true lower bound when
/// the first relevant candidate fell outside the top k.
RankedQuery query_from_topk(const std::vector<int>& hit_ids,
                            const std::vector<float>& hit_scores,
                            const std::vector<bool>& relevant);

}  // namespace gbm::eval
