// Retrieval metrics for the ranking use-cases of §I (find the matching
// source for a binary): precision@k, hit@k and mean reciprocal rank over a
// set of queries, each with a scored candidate list.
#pragma once

#include <vector>

namespace gbm::eval {

struct RankedQuery {
  std::vector<float> scores;   // one per candidate
  std::vector<bool> relevant;  // parallel ground truth
};

struct RetrievalScores {
  double precision_at_1 = 0.0;
  double precision_at_5 = 0.0;
  double hit_at_5 = 0.0;  // fraction of queries with ≥1 relevant in top 5
  double mrr = 0.0;       // mean reciprocal rank of the first relevant hit
  long queries = 0;
};

/// Aggregates ranking quality over all queries. Ties broken by candidate
/// index (deterministic).
RetrievalScores evaluate_retrieval(const std::vector<RankedQuery>& queries);

}  // namespace gbm::eval
