#include "eval/retrieval.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gbm::eval {

RetrievalScores evaluate_retrieval(const std::vector<RankedQuery>& queries) {
  RetrievalScores out;
  out.queries = static_cast<long>(queries.size());
  if (queries.empty()) return out;
  double p1 = 0, p5 = 0, hit5 = 0, mrr = 0;
  for (const auto& q : queries) {
    if (q.scores.size() != q.relevant.size())
      throw std::invalid_argument("evaluate_retrieval: size mismatch");
    std::vector<std::size_t> order(q.scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return q.scores[a] > q.scores[b];
    });
    long rel_top5 = 0;
    double rr = 0.0;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      if (!q.relevant[order[rank]]) continue;
      if (rank < 5) ++rel_top5;
      if (rr == 0.0) rr = 1.0 / static_cast<double>(rank + 1);
    }
    p1 += !order.empty() && q.relevant[order[0]] ? 1.0 : 0.0;
    p5 += static_cast<double>(rel_top5) /
          static_cast<double>(std::min<std::size_t>(5, order.size()));
    hit5 += rel_top5 > 0 ? 1.0 : 0.0;
    mrr += rr;
  }
  const double n = static_cast<double>(queries.size());
  out.precision_at_1 = p1 / n;
  out.precision_at_5 = p5 / n;
  out.hit_at_5 = hit5 / n;
  out.mrr = mrr / n;
  return out;
}

RankedQuery query_from_topk(const std::vector<int>& hit_ids,
                            const std::vector<float>& hit_scores,
                            const std::vector<bool>& relevant) {
  if (hit_ids.size() != hit_scores.size())
    throw std::invalid_argument("query_from_topk: ids/scores size mismatch");
  RankedQuery q;
  q.relevant = relevant;
  // Unlisted candidates sink below every hit, and unlisted *relevant*
  // candidates sink below the unlisted irrelevant ones: a relevant
  // candidate that missed the top k is assigned the worst rank consistent
  // with that miss, which makes the resulting MRR a true lower bound.
  float floor = 0.0f;
  for (float s : hit_scores) floor = std::min(floor, s);
  floor -= 1.0f;
  q.scores.resize(relevant.size());
  for (std::size_t i = 0; i < relevant.size(); ++i)
    q.scores[i] = relevant[i] ? floor - 1.0f : floor;
  for (std::size_t i = 0; i < hit_ids.size(); ++i) {
    const int id = hit_ids[i];
    if (id < 0 || static_cast<std::size_t>(id) >= relevant.size())
      throw std::invalid_argument("query_from_topk: hit id out of range");
    q.scores[static_cast<std::size_t>(id)] = hit_scores[i];
  }
  return q;
}

}  // namespace gbm::eval
