#include "eval/retrieval.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gbm::eval {

RetrievalScores evaluate_retrieval(const std::vector<RankedQuery>& queries) {
  RetrievalScores out;
  out.queries = static_cast<long>(queries.size());
  if (queries.empty()) return out;
  double p1 = 0, p5 = 0, hit5 = 0, mrr = 0;
  for (const auto& q : queries) {
    if (q.scores.size() != q.relevant.size())
      throw std::invalid_argument("evaluate_retrieval: size mismatch");
    std::vector<std::size_t> order(q.scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return q.scores[a] > q.scores[b];
    });
    long rel_top5 = 0;
    double rr = 0.0;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      if (!q.relevant[order[rank]]) continue;
      if (rank < 5) ++rel_top5;
      if (rr == 0.0) rr = 1.0 / static_cast<double>(rank + 1);
    }
    p1 += !order.empty() && q.relevant[order[0]] ? 1.0 : 0.0;
    p5 += static_cast<double>(rel_top5) /
          static_cast<double>(std::min<std::size_t>(5, order.size()));
    hit5 += rel_top5 > 0 ? 1.0 : 0.0;
    mrr += rr;
  }
  const double n = static_cast<double>(queries.size());
  out.precision_at_1 = p1 / n;
  out.precision_at_5 = p5 / n;
  out.hit_at_5 = hit5 / n;
  out.mrr = mrr / n;
  return out;
}

}  // namespace gbm::eval
