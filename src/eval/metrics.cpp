#include "eval/metrics.h"

#include <cstdio>
#include <stdexcept>

namespace gbm::eval {

Confusion confusion(const std::vector<float>& scores, const std::vector<float>& labels,
                    float threshold) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("confusion: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] >= 0.5f;
    if (predicted && actual) ++c.tp;
    else if (predicted && !actual) ++c.fp;
    else if (!predicted && !actual) ++c.tn;
    else ++c.fn;
  }
  return c;
}

std::vector<ThresholdPoint> threshold_sweep(const std::vector<float>& scores,
                                            const std::vector<float>& labels,
                                            const std::vector<float>& thresholds) {
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  for (float t : thresholds) {
    const Confusion c = confusion(scores, labels, t);
    out.push_back({t, c.precision(), c.recall(), c.f1(), c.accuracy()});
  }
  return out;
}

std::string fmt2(double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string fmt_prf(const Confusion& c) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%-6s %-6s %-6s", fmt2(c.precision()).c_str(),
                fmt2(c.recall()).c_str(), fmt2(c.f1()).c_str());
  return buf;
}

}  // namespace gbm::eval
