// Evaluation metrics (paper §IV-E): precision, recall, F1, accuracy from
// the TP/TN/FP/FN confusion (Table II), plus the threshold sweep of Fig. 3
// and small table-formatting helpers used by the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace gbm::eval {

struct Confusion {
  long tp = 0, fp = 0, tn = 0, fn = 0;

  double precision() const { return tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp); }
  double recall() const { return tp + fn == 0 ? 0.0 : double(tp) / double(tp + fn); }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double accuracy() const {
    const long total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : double(tp + tn) / double(total);
  }
};

/// Thresholded confusion over parallel score/label arrays.
Confusion confusion(const std::vector<float>& scores, const std::vector<float>& labels,
                    float threshold = 0.5f);

struct ThresholdPoint {
  float threshold;
  double precision, recall, f1, accuracy;
};

/// Metric curves over a threshold grid (Figure 3).
std::vector<ThresholdPoint> threshold_sweep(const std::vector<float>& scores,
                                            const std::vector<float>& labels,
                                            const std::vector<float>& thresholds);

/// "0.76" style fixed-2 formatting used by the paper's tables.
std::string fmt2(double v);
/// A metrics triple "P R F1" padded for table columns.
std::string fmt_prf(const Confusion& c);

}  // namespace gbm::eval
