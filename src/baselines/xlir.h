// XLIR baseline (Gui et al., SANER 2022) — the paper's main comparator.
//
// XLIR treats LLVM-IR as a *token sequence*: the printed IR is tokenized,
// embedded, and encoded by either an LSTM or a Transformer encoder; two
// encodings are compared by an MLP head. This reproduction keeps that
// shape:
//   * same tokenizer family as GraphBinMatch ([VAR] rewriting, capped
//     vocabulary) — the paper's MLM-pretrained BERT embedding is replaced
//     by an end-to-end trained embedding (substitution: no external IR
//     corpus exists offline; documented in DESIGN.md);
//   * sequences truncate at `max_seq` tokens (the 512-token limit XLIR
//     inherits from BERT is scaled down with everything else);
//   * trained with BCE like our model (XLIR's triplet loss needs a
//     retrieval-style sampler; BCE on the same pairs keeps the comparison
//     apples-to-apples).
// Losing the graph structure is exactly what the paper argues hurts XLIR —
// the sequence truncation and order-sensitivity carry that weakness here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/nn.h"
#include "tensor/optim.h"
#include "tokenizer/tokenizer.h"

namespace gbm::baselines {

enum class XlirBackbone { LSTM, Transformer };

struct XlirConfig {
  XlirBackbone backbone = XlirBackbone::Transformer;
  int vocab = 512;
  long embed_dim = 32;
  long hidden = 32;
  int max_seq = 128;
  float dropout = 0.1f;
  std::uint64_t seed = 13;
};

/// Token sequence of one IR module, truncated/padded to max_seq.
struct EncodedSeq {
  std::vector<int> ids;
  int real_len = 0;  // tokens before padding (pooling mask)
};

class XlirModel : public tensor::Module {
 public:
  XlirModel(const XlirConfig& config, tensor::RNG& rng);

  /// Sequence embedding (1, hidden).
  tensor::Tensor embed_seq(const EncodedSeq& seq, bool training,
                           tensor::RNG& rng) const;
  tensor::Tensor forward_logit(const EncodedSeq& a, const EncodedSeq& b,
                               bool training, tensor::RNG& rng) const;
  float predict(const EncodedSeq& a, const EncodedSeq& b) const;
  std::vector<tensor::NamedParam> params() const override;
  const XlirConfig& config() const { return config_; }

 private:
  XlirConfig config_;
  tensor::Embedding token_emb_;
  // LSTM backbone.
  tensor::LSTMCell lstm_;
  // Transformer backbone (single block, single head).
  tensor::Linear wq_, wk_, wv_, wo_;
  tensor::Linear x_proj_;  // input residual projection (embed → hidden)
  tensor::LayerNorm attn_norm_;
  tensor::Linear ffn1_, ffn2_;
  tensor::LayerNorm ffn_norm_;
  tensor::Tensor pos_table_;  // (max_seq, embed_dim) learned positions
  // Shared head.
  tensor::Linear head1_;
  tensor::LayerNorm head_norm_;
  tensor::Linear head2_;
  tensor::Dropout dropout_;
};

/// Full pipeline wrapper: tokenizer fitting, encoding, training, scoring.
class XlirSystem {
 public:
  explicit XlirSystem(XlirConfig config) : config_(std::move(config)) {}

  void fit_tokenizer(const std::vector<std::string>& ir_texts);
  EncodedSeq encode(const std::string& ir_text) const;

  struct Sample {
    const EncodedSeq* a;
    const EncodedSeq* b;
    float label;
  };
  struct TrainOptions {
    int epochs = 8;
    int batch_size = 8;
    float lr = 3e-3f;
    std::uint64_t seed = 13;
  };
  double train(const std::vector<Sample>& samples, const TrainOptions& options);
  std::vector<float> score(const std::vector<Sample>& samples) const;

 private:
  XlirConfig config_;
  std::unique_ptr<tok::Tokenizer> tokenizer_;
  std::unique_ptr<XlirModel> model_;
};

}  // namespace gbm::baselines
