#include "baselines/xlir.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gbm::baselines {

using tensor::RNG;
using tensor::Tensor;

XlirModel::XlirModel(const XlirConfig& config, RNG& rng)
    : config_(config),
      token_emb_(config.vocab, config.embed_dim, rng, "xlir.emb"),
      lstm_(config.embed_dim, config.hidden, rng, "xlir.lstm"),
      wq_(config.embed_dim, config.hidden, rng, false, "xlir.wq"),
      wk_(config.embed_dim, config.hidden, rng, false, "xlir.wk"),
      wv_(config.embed_dim, config.hidden, rng, false, "xlir.wv"),
      wo_(config.hidden, config.hidden, rng, true, "xlir.wo"),
      x_proj_(config.embed_dim, config.hidden, rng, false, "xlir.xproj"),
      attn_norm_(config.hidden, "xlir.attn_norm"),
      ffn1_(config.hidden, 2 * config.hidden, rng, true, "xlir.ffn1"),
      ffn2_(2 * config.hidden, config.hidden, rng, true, "xlir.ffn2"),
      ffn_norm_(config.hidden, "xlir.ffn_norm"),
      pos_table_(Tensor::randn(config.max_seq, config.embed_dim, rng, 0.05f, true)),
      head1_(2 * config.hidden, config.hidden, rng, true, "xlir.head1"),
      head_norm_(config.hidden, "xlir.head_norm"),
      head2_(config.hidden, 1, rng, true, "xlir.head2"),
      dropout_(config.dropout) {}

Tensor XlirModel::embed_seq(const EncodedSeq& seq, bool training, RNG& rng) const {
  // Trailing padding is dropped before encoding: pooling over pad rows
  // drowns the signal (BERT-style models mask padding for the same reason).
  const int real = std::max(1, std::min<int>(seq.real_len,
                                             static_cast<int>(seq.ids.size())));
  const std::vector<int> ids(seq.ids.begin(), seq.ids.begin() + real);
  Tensor x = token_emb_.forward_rows(ids);  // (T, embed)
  if (config_.backbone == XlirBackbone::LSTM) {
    const Tensor h = lstm_.forward_last(x);  // (1, hidden)
    return dropout_.forward(h, training, rng);
  }
  // Transformer block: positions, single-head self-attention, FFN,
  // mean+max pooling over time.
  std::vector<int> pos(ids.size());
  std::iota(pos.begin(), pos.end(), 0);
  x = tensor::add(x, tensor::index_rows(pos_table_, pos));
  const Tensor q = wq_.forward(x);
  const Tensor k = wk_.forward(x);
  const Tensor v = wv_.forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.hidden));
  const Tensor attn =
      tensor::softmax_rows(tensor::scale(tensor::matmul(q, tensor::transpose(k)), scale));
  // Pre-norm style residual: without `x +` every row collapses to the
  // sequence mean and the encoder cannot distinguish inputs.
  Tensor h = tensor::add(x_proj_.forward(x), wo_.forward(tensor::matmul(attn, v)));
  h = attn_norm_.forward(h);
  Tensor f = ffn2_.forward(tensor::leaky_relu(ffn1_.forward(h)));
  h = ffn_norm_.forward(tensor::add(h, f));
  h = dropout_.forward(h, training, rng);
  return tensor::mean_rows(h);  // (1, hidden)
}

Tensor XlirModel::forward_logit(const EncodedSeq& a, const EncodedSeq& b,
                                bool training, RNG& rng) const {
  const Tensor ga = embed_seq(a, training, rng);
  const Tensor gb = embed_seq(b, training, rng);
  Tensor h = tensor::concat_cols({ga, gb});
  h = head1_.forward(h);
  h = head_norm_.forward(h);
  h = tensor::leaky_relu(h);
  h = dropout_.forward(h, training, rng);
  return head2_.forward(h);
}

float XlirModel::predict(const EncodedSeq& a, const EncodedSeq& b) const {
  RNG dummy(1);
  const Tensor logit = forward_logit(a, b, false, dummy);
  return 1.0f / (1.0f + std::exp(-logit.item()));
}

std::vector<tensor::NamedParam> XlirModel::params() const {
  std::vector<tensor::NamedParam> out;
  auto push = [&out](const std::vector<tensor::NamedParam>& ps) {
    for (auto& p : ps) out.push_back(p);
  };
  push(token_emb_.params());
  if (config_.backbone == XlirBackbone::LSTM) {
    push(lstm_.params());
  } else {
    push(wq_.params());
    push(wk_.params());
    push(wv_.params());
    push(wo_.params());
    push(x_proj_.params());
    push(attn_norm_.params());
    push(ffn1_.params());
    push(ffn2_.params());
    push(ffn_norm_.params());
    out.push_back({"xlir.pos", pos_table_});
  }
  push(head1_.params());
  push(head_norm_.params());
  push(head2_.params());
  return out;
}

// ---- system ---------------------------------------------------------------

void XlirSystem::fit_tokenizer(const std::vector<std::string>& ir_texts) {
  tokenizer_ = std::make_unique<tok::Tokenizer>(
      tok::Tokenizer::train(ir_texts, config_.vocab));
}

EncodedSeq XlirSystem::encode(const std::string& ir_text) const {
  if (!tokenizer_) throw std::logic_error("XlirSystem: tokenizer not fitted");
  EncodedSeq seq;
  const std::vector<int> all = tokenizer_->encode_all(ir_text);
  seq.real_len = static_cast<int>(std::min<std::size_t>(
      all.size(), static_cast<std::size_t>(config_.max_seq)));
  seq.ids = tokenizer_->encode(ir_text, config_.max_seq);
  return seq;
}

double XlirSystem::train(const std::vector<Sample>& samples,
                         const TrainOptions& options) {
  RNG rng(options.seed);
  if (!model_) model_ = std::make_unique<XlirModel>(config_, rng);
  tensor::AdamConfig adam_cfg;
  adam_cfg.lr = options.lr;
  tensor::Adam adam(model_->params(), adam_cfg);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  double last = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    long batches = 0;
    std::size_t i = 0;
    while (i < order.size()) {
      adam.zero_grad();
      // Batch extent up front: gradients average over the ACTUAL batch
      // size, so a short final batch is not under-weighted.
      const std::size_t batch_end =
          std::min(order.size(), i + static_cast<std::size_t>(options.batch_size));
      const int in_batch = static_cast<int>(batch_end - i);
      double batch_loss = 0.0;
      for (; i < batch_end; ++i) {
        const Sample& s = samples[order[i]];
        const Tensor logit = model_->forward_logit(*s.a, *s.b, true, rng);
        const Tensor loss = tensor::bce_with_logits(logit, {s.label});
        tensor::scale(loss, 1.0f / static_cast<float>(in_batch)).backward();
        batch_loss += loss.item();
      }
      tensor::clip_grad_norm(model_->params(), 5.0);
      adam.step();
      epoch_loss += batch_loss / std::max(in_batch, 1);
      ++batches;
    }
    last = epoch_loss / std::max<long>(batches, 1);
  }
  return last;
}

std::vector<float> XlirSystem::score(const std::vector<Sample>& samples) const {
  if (!model_) throw std::logic_error("XlirSystem: not trained");
  std::vector<float> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(model_->predict(*s.a, *s.b));
  return out;
}

}  // namespace gbm::baselines
