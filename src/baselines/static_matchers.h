// Non-learned baselines: BinPro, B2SFinder (binary↔source), LICCA
// (source↔source).
//
//  * BinPro (Miyani et al. 2017) — per-function static code properties
//    matched with a bipartite assignment; the pair score aggregates the
//    best function correspondences.
//  * B2SFinder (Yuan et al. 2019) — seven "traceable features" (string
//    literals, integer constants, switch/case groups, if/else structure,
//    loop structure, callee imports, array sizes) matched with
//    specificity-based weighting (rare feature instances count more).
//  * LICCA (Vislavski et al. 2018) — source-level similarity over
//    normalised token streams (identifiers abstracted), combining token
//    multiset overlap and longest-common-subsequence structure.
//
// All three produce a similarity in [0,1]; a decision threshold is
// calibrated on the training split (best F1), as the tools' own tuning
// procedures do.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/module.h"

namespace gbm::baselines {

// ---- feature extraction shared by BinPro / B2SFinder ----------------------

struct FunctionFeatures {
  long instructions = 0;
  long blocks = 0;
  long loops = 0;        // back edges (block to earlier/self block)
  long branches = 0;     // conditional branches (if/else structure)
  long switches = 0;
  std::multiset<long> switch_case_counts;
  std::multiset<long> int_constants;   // literal operand values
  std::multiset<std::string> callees;  // called symbol names
  std::multiset<long> array_sizes;     // alloca'd array lengths
};

struct ModuleFeatures {
  std::vector<FunctionFeatures> functions;
  std::multiset<std::string> strings;  // module string literals
  long total_instructions = 0;
};

ModuleFeatures extract_features(const ir::Module& m);

// ---- BinPro ---------------------------------------------------------------

/// Similarity in [0,1] between a (decompiled) binary module and a source
/// module via greedy bipartite function matching on numeric features.
double binpro_similarity(const ModuleFeatures& binary, const ModuleFeatures& source);

// ---- B2SFinder ------------------------------------------------------------

/// Corpus-level feature weights (specificity = inverse frequency).
class B2SWeights {
 public:
  static B2SWeights fit(const std::vector<const ModuleFeatures*>& corpus);
  double weight_constant(long value) const;
  double weight_string(const std::string& s) const;

 private:
  std::map<long, long> const_freq_;
  std::map<std::string, long> string_freq_;
  long total_docs_ = 1;
};

double b2sfinder_similarity(const ModuleFeatures& binary, const ModuleFeatures& source,
                            const B2SWeights& weights);

// ---- LICCA -----------------------------------------------------------------

/// Source-text similarity with identifiers/literals normalised.
double licca_similarity(const std::string& source_a, const std::string& source_b);

// ---- threshold calibration ---------------------------------------------

/// Best-F1 threshold over a labelled score list (grid 0.02).
float calibrate_threshold(const std::vector<float>& scores,
                          const std::vector<float>& labels);

}  // namespace gbm::baselines
