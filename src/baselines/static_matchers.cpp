#include "baselines/static_matchers.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "eval/metrics.h"

namespace gbm::baselines {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

/// Multiset overlap similarity |A ∩ B| / max(|A|, |B|) (0/0 → 1: both empty).
template <class T>
double overlap(const std::multiset<T>& a, const std::multiset<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::multiset<T> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(inter, inter.begin()));
  return static_cast<double>(inter.size()) /
         static_cast<double>(std::max(a.size(), b.size()));
}

/// Ratio similarity of two counts: min/max in [0,1] (0/0 → 1).
double ratio(long a, long b) {
  if (a == 0 && b == 0) return 1.0;
  return static_cast<double>(std::min(a, b)) / static_cast<double>(std::max(a, b));
}

}  // namespace

ModuleFeatures extract_features(const ir::Module& m) {
  ModuleFeatures out;
  for (const auto& g : m.globals()) {
    if (g->is_string()) {
      std::string text(g->data().begin(), g->data().end() - 1);
      out.strings.insert(text);
    }
  }
  for (const auto& fn : m.functions()) {
    if (fn->is_declaration()) continue;
    FunctionFeatures ff;
    // Block order for back-edge (loop) detection.
    std::map<const BasicBlock*, long> order;
    long idx = 0;
    for (const auto& bb : fn->blocks()) order[bb.get()] = idx++;
    ff.blocks = idx;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        ++ff.instructions;
        for (std::size_t i = 0; i < inst->num_operands(); ++i) {
          if (inst->operand(i)->kind() == ir::ValueKind::ConstantInt) {
            const long v = static_cast<const ir::ConstantInt*>(inst->operand(i))->value();
            // BinPro/B2SFinder skip trivial constants (0, 1) as untraceable.
            if (v != 0 && v != 1) ff.int_constants.insert(v);
          }
        }
        switch (inst->opcode()) {
          case Opcode::CondBr:
            ++ff.branches;
            break;
          case Opcode::Switch:
            ++ff.switches;
            ff.switch_case_counts.insert(
                static_cast<long>(inst->case_values().size()));
            break;
          case Opcode::Call:
            if (inst->callee()) ff.callees.insert(inst->callee()->name());
            break;
          case Opcode::Alloca:
            if (inst->pointee() && inst->pointee()->is_array())
              ff.array_sizes.insert(inst->pointee()->length());
            break;
          default:
            break;
        }
        if (inst->is_term()) {
          for (BasicBlock* target : inst->targets()) {
            if (order[target] <= order[bb.get()]) ++ff.loops;
          }
        }
      }
    }
    out.total_instructions += ff.instructions;
    out.functions.push_back(std::move(ff));
  }
  return out;
}

// ---- BinPro ----------------------------------------------------------------

namespace {

double function_similarity(const FunctionFeatures& a, const FunctionFeatures& b) {
  // Numeric code properties compared by ratio, sets by overlap — the
  // "best code properties" BinPro's ML stage selects are approximated by
  // fixed weights favouring structure.
  double score = 0.0;
  score += 0.20 * ratio(a.instructions, b.instructions);
  score += 0.15 * ratio(a.blocks, b.blocks);
  score += 0.20 * ratio(a.loops, b.loops);
  score += 0.15 * ratio(a.branches, b.branches);
  score += 0.20 * overlap(a.int_constants, b.int_constants);
  score += 0.10 * overlap(a.callees, b.callees);
  return score;
}

}  // namespace

double binpro_similarity(const ModuleFeatures& binary, const ModuleFeatures& source) {
  if (binary.functions.empty() || source.functions.empty()) return 0.0;
  // Greedy bipartite assignment: repeatedly take the best remaining pair.
  std::vector<std::vector<double>> sim(binary.functions.size(),
                                       std::vector<double>(source.functions.size()));
  for (std::size_t i = 0; i < binary.functions.size(); ++i)
    for (std::size_t j = 0; j < source.functions.size(); ++j)
      sim[i][j] = function_similarity(binary.functions[i], source.functions[j]);
  std::vector<bool> used_a(binary.functions.size()), used_b(source.functions.size());
  const std::size_t matches =
      std::min(binary.functions.size(), source.functions.size());
  double total = 0.0;
  for (std::size_t k = 0; k < matches; ++k) {
    double best = -1.0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < sim.size(); ++i) {
      if (used_a[i]) continue;
      for (std::size_t j = 0; j < sim[i].size(); ++j) {
        if (used_b[j]) continue;
        if (sim[i][j] > best) {
          best = sim[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    used_a[bi] = used_b[bj] = true;
    total += best;
  }
  double score = total / static_cast<double>(matches);
  // String evidence refines the match (BinPro's data constants).
  score = 0.8 * score + 0.2 * overlap(binary.strings, source.strings);
  // Penalise function-count mismatch.
  score *= 0.5 + 0.5 * ratio(static_cast<long>(binary.functions.size()),
                             static_cast<long>(source.functions.size()));
  return score;
}

// ---- B2SFinder -------------------------------------------------------------

B2SWeights B2SWeights::fit(const std::vector<const ModuleFeatures*>& corpus) {
  B2SWeights w;
  w.total_docs_ = std::max<long>(1, static_cast<long>(corpus.size()));
  for (const ModuleFeatures* mf : corpus) {
    std::set<long> consts;
    for (const auto& fn : mf->functions)
      consts.insert(fn.int_constants.begin(), fn.int_constants.end());
    for (long c : consts) ++w.const_freq_[c];
    std::set<std::string> strs(mf->strings.begin(), mf->strings.end());
    for (const auto& s : strs) ++w.string_freq_[s];
  }
  return w;
}

double B2SWeights::weight_constant(long value) const {
  auto it = const_freq_.find(value);
  const long df = it == const_freq_.end() ? 1 : it->second;
  return std::log(1.0 + static_cast<double>(total_docs_) / static_cast<double>(df));
}

double B2SWeights::weight_string(const std::string& s) const {
  auto it = string_freq_.find(s);
  const long df = it == string_freq_.end() ? 1 : it->second;
  return std::log(1.0 + static_cast<double>(total_docs_) / static_cast<double>(df));
}

double b2sfinder_similarity(const ModuleFeatures& binary, const ModuleFeatures& source,
                            const B2SWeights& weights) {
  // Aggregate the seven traceable features module-wide.
  FunctionFeatures a, b;
  for (const auto& fn : binary.functions) {
    a.instructions += fn.instructions;
    a.loops += fn.loops;
    a.branches += fn.branches;
    a.switches += fn.switches;
    a.int_constants.insert(fn.int_constants.begin(), fn.int_constants.end());
    a.callees.insert(fn.callees.begin(), fn.callees.end());
    a.array_sizes.insert(fn.array_sizes.begin(), fn.array_sizes.end());
    a.switch_case_counts.insert(fn.switch_case_counts.begin(),
                                fn.switch_case_counts.end());
  }
  for (const auto& fn : source.functions) {
    b.instructions += fn.instructions;
    b.loops += fn.loops;
    b.branches += fn.branches;
    b.switches += fn.switches;
    b.int_constants.insert(fn.int_constants.begin(), fn.int_constants.end());
    b.callees.insert(fn.callees.begin(), fn.callees.end());
    b.array_sizes.insert(fn.array_sizes.begin(), fn.array_sizes.end());
    b.switch_case_counts.insert(fn.switch_case_counts.begin(),
                                fn.switch_case_counts.end());
  }
  // Weighted constant / string overlap (specificity-weighted instances).
  double const_num = 0.0, const_den = 1e-9;
  {
    std::multiset<long> inter;
    std::set_intersection(a.int_constants.begin(), a.int_constants.end(),
                          b.int_constants.begin(), b.int_constants.end(),
                          std::inserter(inter, inter.begin()));
    for (long c : inter) const_num += weights.weight_constant(c);
    const std::multiset<long>& bigger =
        a.int_constants.size() > b.int_constants.size() ? a.int_constants
                                                        : b.int_constants;
    for (long c : bigger) const_den += weights.weight_constant(c);
  }
  double str_num = 0.0, str_den = 1e-9;
  {
    std::multiset<std::string> inter;
    std::set_intersection(binary.strings.begin(), binary.strings.end(),
                          source.strings.begin(), source.strings.end(),
                          std::inserter(inter, inter.begin()));
    for (const auto& s : inter) str_num += weights.weight_string(s);
    const auto& bigger = binary.strings.size() > source.strings.size()
                             ? binary.strings
                             : source.strings;
    for (const auto& s : bigger) str_den += weights.weight_string(s);
  }
  const bool any_strings = !binary.strings.empty() || !source.strings.empty();
  double score = 0.0;
  score += 0.30 * (const_num / const_den);
  score += (any_strings ? 0.15 : 0.15 * 0.5) *
           (any_strings ? str_num / str_den : 1.0);
  score += 0.10 * ratio(a.switches, b.switches);
  score += 0.10 * overlap(a.switch_case_counts, b.switch_case_counts);
  score += 0.10 * ratio(a.branches, b.branches);
  score += 0.15 * ratio(a.loops, b.loops);
  score += 0.10 * overlap(a.array_sizes, b.array_sizes);
  return score;
}

// ---- LICCA -------------------------------------------------------------------

namespace {

/// Normalised token stream: identifiers → ID, numbers → N, strings → S.
std::vector<std::string> normalise_tokens(const std::string& source) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = source.size();
  static const std::set<std::string> kKeywords = {
      "if", "else", "while", "for", "do", "return", "break", "continue",
      "int", "long", "double", "void", "class", "static", "new", "boolean"};
  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_'))
        word += source[i++];
      out.push_back(kKeywords.count(word) ? word : "ID");
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.'))
        ++i;
      out.push_back("N");
      continue;
    }
    if (c == '"') {
      ++i;
      while (i < n && source[i] != '"') ++i;
      if (i < n) ++i;
      out.push_back("S");
      continue;
    }
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

double lcs_ratio(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  std::vector<long> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
}

}  // namespace

double licca_similarity(const std::string& source_a, const std::string& source_b) {
  const auto ta = normalise_tokens(source_a);
  const auto tb = normalise_tokens(source_b);
  // Multiset token overlap.
  std::multiset<std::string> ma(ta.begin(), ta.end()), mb(tb.begin(), tb.end());
  const double set_sim = overlap(ma, mb);
  const double seq_sim = lcs_ratio(ta, tb);
  return 0.5 * set_sim + 0.5 * seq_sim;
}

// ---- calibration -----------------------------------------------------------

float calibrate_threshold(const std::vector<float>& scores,
                          const std::vector<float>& labels) {
  float best_threshold = 0.5f;
  double best_f1 = -1.0;
  for (float t = 0.02f; t < 1.0f; t += 0.02f) {
    const auto c = eval::confusion(scores, labels, t);
    if (c.f1() > best_f1) {
      best_f1 = c.f1();
      best_threshold = t;
    }
  }
  return best_threshold;
}

}  // namespace gbm::baselines
