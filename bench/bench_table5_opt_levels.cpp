// Table V — single-language matching across optimisation levels
// (O0/O1/O2/O3/Oz) and compilers (clang-like vs gcc-like code generation).
// The paper's observation: scores stay consistent, degrading slightly at
// higher levels; gcc-compiled binaries lift to much larger IR.
#include "common.h"

using namespace gbm;

int main() {
  std::printf("Table V: binary-source matching by optimisation level and compiler\n");
  std::printf("  paper (clang): O0 .88/.86/.87  O1 .87/.88/.88  O2 .86/.82/.84  "
              "O3 .86/.83/.85  Oz .90/.85/.87\n");
  std::printf("  paper (gcc):   O0 .87/.86/.87  O1 .89/.85/.85  O2 .87/.83/.85  "
              "O3 .84/.81/.83  Oz .87/.87/.87\n");
  auto cfg = data::poj_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);

  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;
  src_opts.opt_level = opt::OptLevel::O0;
  const bench::SideData src_side = bench::build_side(files, src_opts);

  const opt::OptLevel levels[] = {opt::OptLevel::O0, opt::OptLevel::O1,
                                  opt::OptLevel::O2, opt::OptLevel::O3,
                                  opt::OptLevel::Oz};
  for (auto style : {backend::CodegenStyle::VClang, backend::CodegenStyle::VGcc}) {
    bench::print_header(std::string("compiler style: ") + backend::style_name(style));
    long total_nodes = 0, count = 0;
    for (opt::OptLevel level : levels) {
      core::ArtifactOptions bin_opts;
      bin_opts.side = core::Side::Binary;
      bin_opts.opt_level = level;
      bin_opts.style = style;
      bench::SideData bin_side = bench::build_side(files, bin_opts);
      for (long n : bin_side.graph_nodes) {
        total_nodes += n;
        ++count;
      }
      bench::Experiment experiment(std::move(bin_side), src_side);
      bench::print_row(opt::opt_level_name(level),
                experiment.run_graphbinmatch(true).test);
    }
    std::printf("  mean lifted graph size: %.0f nodes\n",
                static_cast<double>(total_nodes) / static_cast<double>(count));
  }
  std::printf("  shape check: gcc-style binaries lift to larger graphs (the "
              "paper reports ~70%% larger IR bytes for gcc).\n");
  return 0;
}
