// Table III — cross-language binary ↔ source matching (threshold 0.5):
// C/C++ binaries vs Java sources, and Java binaries vs C/C++ sources,
// for BinPro, B2SFinder, XLIR(LSTM), XLIR(Transformer), GraphBinMatch
// (text featurisation) and GraphBinMatch(Tokenizer) (full_text).
#include "common.h"

using namespace gbm;

namespace {

void run_direction(const char* title, const std::vector<data::SourceFile>& bin_files,
                   const std::vector<data::SourceFile>& src_files,
                   const char* paper_rows) {
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  bin_opts.opt_level = opt::OptLevel::Oz;  // paper default "0z"
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;

  bench::Experiment experiment(bench::build_side(bin_files, bin_opts),
                               bench::build_side(src_files, src_opts));
  bench::print_header(title);
  std::printf("%s", paper_rows);
  bench::print_row("BinPro", experiment.run_binpro().test);
  bench::print_row("B2SFinder", experiment.run_b2sfinder().test);
  bench::print_row("XLIR(LSTM)", experiment.run_xlir(baselines::XlirBackbone::LSTM).test);
  bench::print_row("XLIR(Transformer)",
            experiment.run_xlir(baselines::XlirBackbone::Transformer).test);
  bench::print_row("GraphBinMatch",
            experiment.run_graphbinmatch(/*use_full_text=*/false).test);
  const auto gbm_tok = experiment.run_graphbinmatch(/*use_full_text=*/true, 7,
                                                    /*with_retrieval=*/true);
  bench::print_row("GraphBinMatch(Tokenizer)", gbm_tok.test);
  // Served through the embedding index (extension): each test binary
  // queries the source-side index, top-5 with score-head reranking.
  std::printf("  index retrieval (GBM-Tok): P@1=%.2f hit@5=%.2f MRR=%.2f "
              "over %ld queries\n",
              gbm_tok.retrieval.precision_at_1, gbm_tok.retrieval.hit_at_5,
              gbm_tok.retrieval.mrr, gbm_tok.retrieval.queries);
}

}  // namespace

int main() {
  std::printf("Table III: cross-language binary-source matching (threshold 0.5)\n");
  auto cfg = data::clcdsa_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);
  const auto c_like =
      bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp});
  const auto java = bench::filter_lang(files, {frontend::Lang::Java});

  run_direction("C/C++ binary vs Java source", c_like, java,
                "  paper: BinPro -/-/-; B2SFinder -/-/-; XLIR(LSTM) .62/.53/.57; "
                "XLIR(Tr) .73/.59/.65; GBM .75/.73/.74; GBM(Tok) .76/.82/.79\n");
  run_direction("Java binary vs C/C++ source", java, c_like,
                "  paper: BinPro .36/.37/.36; B2SFinder .35/.41/.38; "
                "XLIR(LSTM) .55/.51/.53; XLIR(Tr) .68/.55/.61; GBM .75/.78/.77; "
                "GBM(Tok) .76/.77/.77\n");
  return 0;
}
