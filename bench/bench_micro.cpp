// Micro-benchmarks (google-benchmark): throughput of the pipeline stages —
// front-end compilation, optimisation, codegen+lift, graph construction,
// tokenisation, GNN forward / forward+backward passes, serial vs parallel
// batch artifact production, pairwise vs two-stage (embed-once-then-head)
// pair scoring, per-graph vs chunked-GraphBatch embedding, per-sample vs
// batched data-parallel training, interned vs legacy graph encoding, cold
// compile vs warm ArtifactStore hits, MatchingSystem snapshot save/load
// round trips, single-index vs sharded fan-out topk, and MatchServer
// throughput with batched vs one-at-a-time query handling (GBM_FAST=1
// shrinks the batch corpus).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "backend/codegen.h"
#include "core/artifact_store.h"
#include "core/embedding_engine.h"
#include "core/pipeline.h"
#include "datasets/corpus.h"
#include "decompiler/lift.h"
#include "frontend/frontend.h"
#include "gnn/trainer.h"
#include "ir/printer.h"
#include "opt/passes.h"
#include "serve/match_server.h"
#include "serve/sharded_index.h"
#include "tensor/kernels/kernels.h"

using namespace gbm;

namespace {

const data::SourceFile& sample_file() {
  static const data::SourceFile file = [] {
    auto cfg = data::clcdsa_config();
    cfg.num_tasks = 10;
    cfg.solutions_per_task_per_lang = 1;
    cfg.broken_fraction = 0.0;
    auto files = data::generate_corpus(cfg);
    for (auto& f : files) {
      if (f.task_id == "sort_print" && f.lang == frontend::Lang::Cpp) return f;
    }
    return files.front();
  }();
  return file;
}

void BM_Frontend(benchmark::State& state) {
  const auto& file = sample_file();
  for (auto _ : state) {
    auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
    benchmark::DoNotOptimize(module->instruction_count());
  }
}
BENCHMARK(BM_Frontend);

void BM_Optimize_O2(benchmark::State& state) {
  const auto& file = sample_file();
  for (auto _ : state) {
    auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
    opt::optimize(*module, opt::OptLevel::O2);
    benchmark::DoNotOptimize(module->instruction_count());
  }
}
BENCHMARK(BM_Optimize_O2);

void BM_CompileAndLift(benchmark::State& state) {
  const auto& file = sample_file();
  auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
  for (auto _ : state) {
    auto binary = backend::compile_module(*module);
    auto lifted = decompiler::lift(binary);
    benchmark::DoNotOptimize(lifted->instruction_count());
  }
}
BENCHMARK(BM_CompileAndLift);

void BM_GraphBuild(benchmark::State& state) {
  const auto& file = sample_file();
  auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
  for (auto _ : state) {
    auto g = graph::build_graph(*module);
    benchmark::DoNotOptimize(g.num_nodes());
  }
}
BENCHMARK(BM_GraphBuild);

void BM_Tokenize(benchmark::State& state) {
  const auto& file = sample_file();
  auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
  const std::string text = ir::print_module(*module);
  std::vector<std::string> corpus{text};
  auto tk = tok::Tokenizer::train(corpus, 512);
  for (auto _ : state) {
    auto ids = tk.encode(text, 128);
    benchmark::DoNotOptimize(ids.size());
  }
}
BENCHMARK(BM_Tokenize);

struct GnnFixture {
  gnn::EncodedGraph encoded;
  std::unique_ptr<gnn::GraphBinMatchModel> model;
  GnnFixture() {
    const auto& file = sample_file();
    auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
    auto g = graph::build_graph(*module);
    std::vector<std::string> corpus;
    for (const auto& node : g.nodes) corpus.push_back(g.feature(node, true));
    auto tk = tok::Tokenizer::train(corpus, 256);
    encoded = gnn::encode_graph(g, tk, 16, true);
    gnn::ModelConfig cfg;
    cfg.vocab = 256;
    cfg.embed_dim = 32;
    cfg.hidden = 32;
    cfg.layers = 2;
    tensor::RNG rng(3);
    model = std::make_unique<gnn::GraphBinMatchModel>(cfg, rng);
  }
};

void BM_GnnForward(benchmark::State& state) {
  static GnnFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model->predict(fx.encoded, fx.encoded));
  }
}
BENCHMARK(BM_GnnForward);

void BM_GnnForwardBackward(benchmark::State& state) {
  static GnnFixture fx;
  tensor::RNG rng(5);
  for (auto _ : state) {
    auto logit = fx.model->forward_logit(fx.encoded, fx.encoded, true, rng);
    auto loss = tensor::bce_with_logits(logit, {1.0f});
    loss.backward();
    fx.model->zero_grad();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_GnnForwardBackward);

// --- batch artifact production: serial loop vs core::build_artifacts ------

const std::vector<data::SourceFile>& batch_corpus() {
  static const std::vector<data::SourceFile> files = [] {
    const char* env = std::getenv("GBM_FAST");
    const bool fast = env && std::string(env) == "1";
    auto cfg = data::clcdsa_config();
    cfg.num_tasks = fast ? 4 : 0;
    cfg.solutions_per_task_per_lang = fast ? 1 : 3;
    cfg.broken_fraction = 0.05;
    return data::generate_corpus(cfg);
  }();
  return files;
}

core::ArtifactOptions batch_options() {
  core::ArtifactOptions opts;
  opts.side = core::Side::Binary;  // the heavy path: codegen + lift + graph
  return opts;
}

void BM_BuildArtifactsSerial(benchmark::State& state) {
  const auto& files = batch_corpus();
  const auto opts = batch_options();
  for (auto _ : state) {
    long nodes = 0;
    for (const auto& f : files) nodes += core::build_artifact(f, opts).graph.num_nodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(files.size()));
}
BENCHMARK(BM_BuildArtifactsSerial)->Unit(benchmark::kMillisecond);

// Arg = worker threads; compare items_per_second against the serial run.
void BM_BuildArtifactsParallel(benchmark::State& state) {
  const auto& files = batch_corpus();
  const auto opts = batch_options();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto artifacts = core::build_artifacts(files, opts, threads);
    long nodes = 0;
    for (const auto& a : artifacts) nodes += a.graph.num_nodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(files.size()));
}
BENCHMARK(BM_BuildArtifactsParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(0)  // 0 = all hardware threads
    ->UseRealTime()  // wall clock — the honest metric for a worker pool
    ->Unit(benchmark::kMillisecond);

// --- pair scoring: pairwise forward vs two-stage embed-once-then-head -----
//
// Retrieval-style workload: many pairs over few graphs (here every ordered
// pair of the graph set). The pairwise path re-runs the full GNN on both
// graphs of every pair; the two-stage engine embeds each graph once and
// re-runs only the FC similarity head per pair.

struct PairScoringFixture {
  std::vector<gnn::EncodedGraph> graphs;  // <= 40 distinct graphs
  std::vector<gnn::PairSample> pairs;     // >= 100 pairs over them
  std::unique_ptr<gnn::GraphBinMatchModel> model;
  PairScoringFixture() {
    auto cfg = data::clcdsa_config();
    cfg.num_tasks = 8;
    cfg.solutions_per_task_per_lang = 1;
    cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(cfg);
    const auto artifacts = core::build_artifacts(files, {});
    std::vector<const graph::ProgramGraph*> ok;
    for (const auto& a : artifacts) {
      if (a.ok) ok.push_back(&a.graph);
      if (ok.size() == 12) break;
    }
    std::vector<std::string> corpus;
    for (const auto* g : ok)
      for (const auto& node : g->nodes) corpus.push_back(g->feature(node, true));
    const auto tk = tok::Tokenizer::train(corpus, 256);
    for (const auto* g : ok) graphs.push_back(gnn::encode_graph(*g, tk, 16, true));
    for (const auto& a : graphs)
      for (const auto& b : graphs) pairs.push_back({&a, &b, 0.0f});
    gnn::ModelConfig mcfg;
    mcfg.vocab = 256;
    mcfg.embed_dim = 32;
    mcfg.hidden = 32;
    mcfg.layers = 2;
    tensor::RNG rng(3);
    model = std::make_unique<gnn::GraphBinMatchModel>(mcfg, rng);
  }
};

const PairScoringFixture& pair_fixture() {
  static const PairScoringFixture fx;
  return fx;
}

void BM_ScorePairsPairwise(benchmark::State& state) {
  const auto& fx = pair_fixture();
  for (auto _ : state) {
    float acc = 0;
    for (const auto& p : fx.pairs) acc += fx.model->predict(*p.a, *p.b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(fx.pairs.size()));
}
BENCHMARK(BM_ScorePairsPairwise)->Unit(benchmark::kMillisecond);

// Arg = worker threads. A fresh engine per iteration: the measurement
// includes the one GNN pass per graph (cold cache), i.e. the full
// O(N·GNN + M·head) cost against pairwise O(2M·GNN + M·head).
void BM_ScorePairsTwoStage(benchmark::State& state) {
  const auto& fx = pair_fixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::EmbeddingEngine engine(*fx.model);
    const auto scores = engine.score_pairs(fx.pairs, threads);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(fx.pairs.size()));
}
BENCHMARK(BM_ScorePairsTwoStage)
    ->Arg(1)
    ->Arg(0)  // 0 = all hardware threads
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Steady-state serving: the cache already holds every fleet embedding, so
// each iteration pays only the M head evaluations.
void BM_ScorePairsWarmCache(benchmark::State& state) {
  const auto& fx = pair_fixture();
  static const core::EmbeddingEngine engine(*pair_fixture().model);
  for (auto _ : state) {
    const auto scores = engine.score_pairs(fx.pairs, 1);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(fx.pairs.size()));
}
BENCHMARK(BM_ScorePairsWarmCache)->Unit(benchmark::kMillisecond);

// --- batch embedding: one GNN pass per graph vs chunked GraphBatch passes --
//
// The per-graph path dispatches every tensor op once per graph; the batched
// path embeds `batch_chunk` graphs per pass over their disjoint union, so
// the op-dispatch overhead (autograd node + buffer allocations) amortises
// across the chunk. Arg = worker threads.

void BM_EmbedAllPerGraph(benchmark::State& state) {
  const auto& fx = pair_fixture();
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& g : fx.graphs) ptrs.push_back(&g);
  const int threads = static_cast<int>(state.range(0));
  core::EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 0;  // measure the GNN passes, not the cache
  cfg.batch_chunk = 1;
  const core::EmbeddingEngine engine(*fx.model, cfg);
  for (auto _ : state) {
    const auto embeddings = engine.embed_batch(ptrs, threads);
    benchmark::DoNotOptimize(embeddings.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(ptrs.size()));
}
BENCHMARK(BM_EmbedAllPerGraph)->Arg(1)->Arg(0)->UseRealTime()->Unit(benchmark::kMillisecond);

// Args = {worker threads, graphs per GraphBatch chunk}.
void BM_EmbedAllBatched(benchmark::State& state) {
  const auto& fx = pair_fixture();
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& g : fx.graphs) ptrs.push_back(&g);
  const int threads = static_cast<int>(state.range(0));
  core::EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 0;
  cfg.batch_chunk = static_cast<std::size_t>(state.range(1));
  const core::EmbeddingEngine engine(*fx.model, cfg);
  for (auto _ : state) {
    const auto embeddings = engine.embed_batch(ptrs, threads);
    benchmark::DoNotOptimize(embeddings.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(ptrs.size()));
}
BENCHMARK(BM_EmbedAllBatched)
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({0, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- training: per-sample serial loop vs batched data-parallel trainer -----
//
// One epoch over a 24-pair training set. The per-sample baseline is the
// pre-GraphBatch trainer shape: one forward_logit + backward per pair.
// BM_TrainEpoch/<threads> runs the sharded trainer (micro_batch 2) — /1
// isolates the batched-forward win, higher counts add data parallelism
// (losses are bit-identical across thread counts by construction).

std::vector<gnn::PairSample> train_pairs() {
  const auto& fx = pair_fixture();
  std::vector<gnn::PairSample> pairs;
  const std::size_t n = fx.graphs.size();
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back({&fx.graphs[i], &fx.graphs[i], 1.0f});
    pairs.push_back({&fx.graphs[i], &fx.graphs[(i + 1) % n], 0.0f});
  }
  return pairs;
}

std::unique_ptr<gnn::GraphBinMatchModel> fresh_model() {
  gnn::ModelConfig mcfg;
  mcfg.vocab = 256;
  mcfg.embed_dim = 32;
  mcfg.hidden = 32;
  mcfg.layers = 2;
  tensor::RNG rng(3);
  return std::make_unique<gnn::GraphBinMatchModel>(mcfg, rng);
}

void BM_TrainEpochPerSample(benchmark::State& state) {
  const auto pairs = train_pairs();
  for (auto _ : state) {
    state.PauseTiming();
    auto model = fresh_model();
    tensor::AdamConfig acfg;
    acfg.lr = 2e-3f;
    tensor::Adam adam(model->params(), acfg);
    tensor::RNG rng(7);
    state.ResumeTiming();
    double epoch_loss = 0.0;
    std::size_t i = 0;
    while (i < pairs.size()) {
      adam.zero_grad();
      const std::size_t batch_end = std::min(pairs.size(), i + 8);
      const std::size_t batch_n = batch_end - i;
      for (; i < batch_end; ++i) {
        const auto logit = model->forward_logit(*pairs[i].a, *pairs[i].b, true, rng);
        const auto loss = tensor::bce_with_logits(logit, {pairs[i].label});
        tensor::scale(loss, 1.0f / static_cast<float>(batch_n)).backward();
        epoch_loss += loss.item();
      }
      tensor::clip_grad_norm(model->params(), 5.0);
      adam.step();
    }
    benchmark::DoNotOptimize(epoch_loss);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pairs.size()));
}
BENCHMARK(BM_TrainEpochPerSample)->Unit(benchmark::kMillisecond);

void BM_TrainEpoch(benchmark::State& state) {
  const auto pairs = train_pairs();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto model = fresh_model();
    state.ResumeTiming();
    gnn::TrainConfig tcfg;
    tcfg.epochs = 1;
    tcfg.batch_size = 8;
    tcfg.micro_batch = 2;
    tcfg.threads = threads;
    benchmark::DoNotOptimize(gnn::train_model(*model, pairs, tcfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pairs.size()));
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)  // 0 = all hardware threads
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- interned encode vs legacy per-node tokenisation -----------------------
//
// encode_graph memoises tokenisation per interned feature id: each distinct
// feature string is split/encoded once per graph. The legacy baseline is the
// pre-interning shape — tokenize every node's feature string from scratch.

void BM_EncodeGraphInterned(benchmark::State& state) {
  const auto& file = sample_file();
  auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
  const auto g = graph::build_graph(*module);
  std::vector<std::string> corpus;
  for (const auto& node : g.nodes) corpus.push_back(g.feature(node, true));
  const auto tk = tok::Tokenizer::train(corpus, 256);
  for (auto _ : state) {
    const auto enc = gnn::encode_graph(g, tk, 16, true);
    benchmark::DoNotOptimize(enc.tokens.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EncodeGraphInterned);

void BM_EncodeGraphLegacy(benchmark::State& state) {
  const auto& file = sample_file();
  auto module = frontend::compile_source(file.source, file.lang, file.unit_name);
  const auto g = graph::build_graph(*module);
  std::vector<std::string> corpus;
  for (const auto& node : g.nodes) corpus.push_back(g.feature(node, true));
  const auto tk = tok::Tokenizer::train(corpus, 256);
  for (auto _ : state) {
    // Pre-interning encode: one tokenizer pass per node, no memoisation.
    gnn::EncodedGraph enc;
    enc.num_nodes = g.num_nodes();
    enc.bag_len = 16;
    enc.tokens.reserve(static_cast<std::size_t>(enc.num_nodes) * 16);
    for (const auto& node : g.nodes) {
      const auto ids = tk.encode(g.feature(node, true), 16);
      enc.tokens.insert(enc.tokens.end(), ids.begin(), ids.end());
    }
    for (std::size_t k = 0; k < graph::kNumEdgeKinds; ++k) {
      enc.edges[k].src = g.edges[k].src;
      enc.edges[k].dst = g.edges[k].dst;
      enc.edges[k].pos = g.edges[k].pos;
    }
    benchmark::DoNotOptimize(enc.tokens.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EncodeGraphLegacy);

// --- artifact store: cold compile vs warm store hit -------------------------
//
// Arg 0 = cold (fresh store per iteration, every file compiles + persists),
// Arg 1 = warm (store pre-populated, every file loads). The warm/cold
// items_per_second ratio is the compile-once/serve-many win; the acceptance
// bar for this PR is >= 5x.

void BM_BuildArtifactsColdVsStore(benchmark::State& state) {
  const auto& files = batch_corpus();
  const auto opts = batch_options();
  const bool warm = state.range(0) == 1;
  const std::string dir = "/tmp/gbm_bench_store." + std::to_string(::getpid());
  int round = 0;
  if (warm) {
    core::ArtifactStore store(dir + ".warm");
    core::build_artifacts(files, opts, store);
    for (auto _ : state) {
      const auto artifacts = core::build_artifacts(files, opts, store);
      benchmark::DoNotOptimize(artifacts.data());
    }
    core::ArtifactStore::destroy(dir + ".warm");
  } else {
    for (auto _ : state) {
      state.PauseTiming();
      const std::string cold_dir = dir + ".cold" + std::to_string(round++);
      state.ResumeTiming();
      core::ArtifactStore store(cold_dir);
      const auto artifacts = core::build_artifacts(files, opts, store);
      benchmark::DoNotOptimize(artifacts.data());
      state.PauseTiming();
      core::ArtifactStore::destroy(cold_dir);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(files.size()));
}
BENCHMARK(BM_BuildArtifactsColdVsStore)
    ->Arg(0)   // cold: compile + persist
    ->Arg(1)   // warm: load on hit
    ->Unit(benchmark::kMillisecond);

// --- snapshot save / load ---------------------------------------------------
//
// One round trip of the full MatchingSystem snapshot (config + tokenizer +
// params + index): trainer save, fresh-system load.

void BM_SnapshotSaveLoad(benchmark::State& state) {
  static const auto setup = [] {
    auto sys = std::make_unique<core::MatchingSystem>([] {
      core::MatchingSystem::Config cfg;
      cfg.model.vocab = 256;
      cfg.model.embed_dim = 32;
      cfg.model.hidden = 32;
      cfg.model.layers = 2;
      return cfg;
    }());
    auto graphs_cfg = data::clcdsa_config();
    graphs_cfg.num_tasks = 8;
    graphs_cfg.solutions_per_task_per_lang = 1;
    graphs_cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(graphs_cfg);
    static std::vector<graph::ProgramGraph> graphs;
    for (const auto& a : core::build_artifacts(files, {})) {
      if (a.ok) graphs.push_back(a.graph);
      if (graphs.size() == 12) break;
    }
    std::vector<const graph::ProgramGraph*> gptrs;
    for (const auto& g : graphs) gptrs.push_back(&g);
    sys->fit_tokenizer(gptrs);
    static std::vector<gnn::EncodedGraph> encoded;
    for (const auto* g : gptrs) encoded.push_back(sys->encode(*g));
    std::vector<gnn::PairSample> pairs = {{&encoded[0], &encoded[0], 1.0f},
                                          {&encoded[0], &encoded[1], 0.0f}};
    gnn::TrainConfig tcfg;
    tcfg.epochs = 1;
    sys->train(pairs, tcfg);
    std::vector<const gnn::EncodedGraph*> eptrs;
    for (const auto& e : encoded) eptrs.push_back(&e);
    sys->embed_all(eptrs);  // snapshot carries the index too
    return sys;
  }();
  const std::string path = "/tmp/gbm_bench_snapshot." + std::to_string(::getpid());
  for (auto _ : state) {
    setup->save(path);
    core::MatchingSystem fresh{core::MatchingSystem::Config{}};
    fresh.load(path);
    benchmark::DoNotOptimize(fresh.bag_len());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSaveLoad)->Unit(benchmark::kMillisecond);

// A serving-scale corpus: the 12 real embeddings plus deterministic
// perturbations of them, so the prefilter scans a realistic population
// (a 12-row index prices the rerank head, not retrieval).
std::vector<core::Embedding> index_corpus(const core::EmbeddingEngine& engine) {
  std::vector<core::Embedding> rows;
  for (const auto& g : pair_fixture().graphs) rows.push_back(engine.embed(g));
  const std::size_t real = rows.size();
  std::uint32_t x = 12345u;
  while (rows.size() < 2048) {
    core::Embedding e = rows[rows.size() % real];
    for (auto& v : e) {
      x ^= x << 13; x ^= x >> 17; x ^= x << 5;
      v += static_cast<float>(static_cast<int>(x % 200) - 100) / 1000.0f;
    }
    rows.push_back(std::move(e));
  }
  return rows;
}

// One serving query: cosine prefilter over the corpus + top-5 rerank.
void BM_IndexTopk(benchmark::State& state) {
  const auto& fx = pair_fixture();
  static const core::EmbeddingEngine engine(*pair_fixture().model);
  static const core::EmbeddingIndex index = [] {
    core::EmbeddingIndex idx(engine);
    for (auto& e : index_corpus(engine)) idx.add(std::move(e));
    return idx;
  }();
  const core::Embedding query = engine.embed(fx.graphs.front());
  for (auto _ : state) {
    const auto hits = index.topk(query, 5);
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_IndexTopk);

// --- sharded retrieval: fan-out topk vs the single index --------------------
//
// Arg = shard count. The hits are bit-identical to BM_IndexTopk at every
// shard count (the ShardedIndex parity guarantee); the interesting number
// is the per-query cost of the fan-out + deterministic merge as shards
// grow. On a large corpus the per-shard scans run in parallel; on this
// micro corpus the bench mostly prices the merge overhead.
void BM_ShardedTopk(benchmark::State& state) {
  const auto& fx = pair_fixture();
  static const core::EmbeddingEngine engine(*pair_fixture().model);
  const int shards = static_cast<int>(state.range(0));
  serve::ShardedIndex index(engine, shards);
  for (auto& e : index_corpus(engine)) index.add(std::move(e));
  const core::Embedding query = engine.embed(fx.graphs.front());
  for (auto _ : state) {
    const auto hits = index.topk(query, 5);
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_ShardedTopk)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- request server: batched vs one-at-a-time query handling ----------------
//
// Args = {concurrent clients, dispatcher max_batch}. max_batch 1 answers
// every request with its own embed pass (one-at-a-time handling);
// max_batch = clients lets the dispatcher coalesce the whole in-flight
// wave into shared GraphBatch passes (a short 300us window keeps the
// coalescing honest: the batch fills because clients are waiting, not
// because the dispatcher stalls). Every query is content-fresh (a
// perturbed token per request), so the embedding cache never
// short-circuits the comparison; results are identical either way — only
// throughput moves.

core::MatchingSystem server_system() {
  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 256;
  cfg.model.embed_dim = 32;
  cfg.model.hidden = 32;
  cfg.model.layers = 2;
  core::MatchingSystem sys(cfg);
  static std::vector<graph::ProgramGraph> graphs = [] {
    auto corpus_cfg = data::clcdsa_config();
    corpus_cfg.num_tasks = 8;
    corpus_cfg.solutions_per_task_per_lang = 1;
    corpus_cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(corpus_cfg);
    std::vector<graph::ProgramGraph> out;
    for (const auto& a : core::build_artifacts(files, {})) {
      if (a.ok) out.push_back(a.graph);
      if (out.size() == 12) break;
    }
    return out;
  }();
  std::vector<const graph::ProgramGraph*> gptrs;
  for (const auto& g : graphs) gptrs.push_back(&g);
  sys.fit_tokenizer(gptrs);
  static std::vector<gnn::EncodedGraph> encoded;
  encoded.clear();
  for (const auto* g : gptrs) encoded.push_back(sys.encode(*g));
  std::vector<gnn::PairSample> pairs = {{&encoded[0], &encoded[0], 1.0f},
                                        {&encoded[0], &encoded[1], 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 1;
  sys.train(pairs, tcfg);
  std::vector<const gnn::EncodedGraph*> eptrs;
  for (const auto& e : encoded) eptrs.push_back(&e);
  sys.embed_all(eptrs);
  return sys;
}

void BM_ServerThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerClient = 4;
  serve::MatchServerConfig cfg;
  cfg.num_shards = 4;
  cfg.max_batch = static_cast<std::size_t>(state.range(1));
  cfg.max_wait_us = cfg.max_batch > 1 ? 300 : 0;
  serve::MatchServer server(server_system(), cfg);
  // Base encodings under the server's tokenizer, perturbed per request so
  // every query is a cache miss.
  std::vector<gnn::EncodedGraph> base;
  {
    auto corpus_cfg = data::clcdsa_config();
    corpus_cfg.num_tasks = 4;
    corpus_cfg.solutions_per_task_per_lang = 1;
    corpus_cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(corpus_cfg);
    for (const auto& a : core::build_artifacts(files, {})) {
      if (a.ok) base.push_back(server.system().encode(a.graph));
      if (base.size() == 4) break;
    }
  }
  std::atomic<long> salt{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          gnn::EncodedGraph fresh = base[static_cast<std::size_t>(c + q) % base.size()];
          const long s = salt.fetch_add(1, std::memory_order_relaxed);
          fresh.tokens[static_cast<std::size_t>(s) % fresh.tokens.size()] =
              3 + static_cast<int>(s % 7);
          auto result = server.submit_encoded(std::move(fresh),
                                              core::QuerySide::A, 5).get();
          benchmark::DoNotOptimize(result.hits.data());
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  state.SetItemsProcessed(state.iterations() * clients * kQueriesPerClient);
}
BENCHMARK(BM_ServerThroughput)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({8, 1})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- kernel tiers: scalar vs the active SIMD tier -------------------------
//
// Arg 0 runs the scalar reference, Arg 1 the best available SIMD tier
// (skipped with an error when the host has none, so JSON consumers see the
// absence explicitly). CI writes these out with
//   bench_micro --benchmark_filter=BM_Kernel --benchmark_out=BENCH_kernels.json

const tensor::kernels::Kernels* tier_for_arg(benchmark::State& state) {
  if (state.range(0) == 0) return tensor::kernels::scalar_kernels();
  for (auto t : {tensor::kernels::Tier::kAvx2, tensor::kernels::Tier::kNeon})
    if (const auto* k = tensor::kernels::for_tier(t)) return k;
  state.SkipWithError("no SIMD kernel tier available on this host");
  return nullptr;
}

std::vector<float> bench_floats(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  std::uint32_t x = seed * 2654435761u + 1u;
  for (auto& f : v) {
    x ^= x << 13; x ^= x >> 17; x ^= x << 5;
    f = static_cast<float>(static_cast<int>(x % 2000) - 1000) / 500.0f;
  }
  return v;
}

void BM_KernelMatmul(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 128, kk = 96, m = 128;
  const auto A = bench_floats(static_cast<std::size_t>(n * kk), 1);
  const auto B = bench_floats(static_cast<std::size_t>(kk * m), 2);
  std::vector<float> C(static_cast<std::size_t>(n * m));
  for (auto _ : state) {
    std::fill(C.begin(), C.end(), 0.0f);
    k->matmul_fwd(A.data(), B.data(), C.data(), n, kk, m, 1);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * kk * m);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelMatmul)->Arg(0)->Arg(1);

void BM_KernelSegmentDot(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 4096, d = 64, nseg = 256;
  const auto a = bench_floats(static_cast<std::size_t>(n * d), 3);
  const auto b = bench_floats(static_cast<std::size_t>(nseg * d), 4);
  std::vector<int> seg(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) seg[static_cast<std::size_t>(i)] =
      static_cast<int>(i % nseg);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k->segment_rowwise_dot_fwd(a.data(), b.data(), seg.data(), n, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * d);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelSegmentDot)->Arg(0)->Arg(1);

void BM_KernelSegmentMax(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 4096, d = 64, nseg = 256;
  const auto a = bench_floats(static_cast<std::size_t>(n * d), 5);
  std::vector<int> seg(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) seg[static_cast<std::size_t>(i)] =
      static_cast<int>(i % nseg);
  std::vector<float> out(static_cast<std::size_t>(nseg * d));
  std::vector<int> argmax(out.size());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    k->segment_max_fwd(a.data(), seg.data(), n, d, nseg, out.data(), argmax.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * d);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelSegmentMax)->Arg(0)->Arg(1);

void BM_KernelSegmentWeightedSum(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 4096, d = 64, nseg = 256;
  const auto a = bench_floats(static_cast<std::size_t>(n * d), 6);
  const auto w = bench_floats(static_cast<std::size_t>(n), 7);
  std::vector<int> seg(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) seg[static_cast<std::size_t>(i)] =
      static_cast<int>(i % nseg);
  std::vector<float> out(static_cast<std::size_t>(nseg * d));
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    k->segment_weighted_sum_fwd(a.data(), w.data(), seg.data(), n, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * d);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelSegmentWeightedSum)->Arg(0)->Arg(1);

void BM_KernelElementwise(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 1 << 16;
  const auto a = bench_floats(static_cast<std::size_t>(n), 8);
  const auto b = bench_floats(static_cast<std::size_t>(n), 9);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k->mul_n(out.data(), a.data(), b.data(), n);
    k->add_n(out.data(), out.data(), a.data(), n);
    k->lrelu_fwd_n(out.data(), out.data(), 0.01f, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelElementwise)->Arg(0)->Arg(1);

void BM_KernelCenteredDot(benchmark::State& state) {
  const auto* k = tier_for_arg(state);
  if (!k) return;
  const long n = 2048, d = 64;
  const auto rows = bench_floats(static_cast<std::size_t>(n * d), 10);
  const auto q = bench_floats(static_cast<std::size_t>(d), 11);
  std::vector<double> norms(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    double nb = 0.0;
    for (long c = 0; c < d; ++c) {
      const float v = rows[static_cast<std::size_t>(i * d + c)];
      nb += static_cast<double>(v) * v;
    }
    norms[static_cast<std::size_t>(i)] = std::sqrt(nb);
  }
  double qn = 0.0;
  for (long c = 0; c < d; ++c)
    qn += static_cast<double>(q[static_cast<std::size_t>(c)]) *
          q[static_cast<std::size_t>(c)];
  qn = std::sqrt(qn);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k->centered_dot_batch(rows.data(), norms.data(), q.data(), qn, n, d,
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * d);
  state.SetLabel(k->name);
}
BENCHMARK(BM_KernelCenteredDot)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
