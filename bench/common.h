// Shared experiment harness for the per-table/figure bench binaries.
//
// Each bench reproduces one table or figure of the paper: it synthesises
// the corpus, builds artifacts through the full pipeline (front-end →
// optimiser → backend → decompiler → ProGraML graph), trains the models,
// and prints the paper's numbers next to the measured ones.
//
// Environment:
//   GBM_FAST=1   — shrink corpus/epochs for smoke runs (CI-sized).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/static_matchers.h"
#include "baselines/xlir.h"
#include "core/pipeline.h"
#include "datasets/pairs.h"
#include "eval/metrics.h"
#include "eval/retrieval.h"
#include "frontend/frontend.h"

namespace gbm::bench {

struct Scale {
  int solutions_per_task = 4;
  int epochs = 16;
  int xlir_epochs = 6;
  float lr = 5e-3f;
  int max_positives_per_task = 10;
};

bool fast_mode();
Scale scale();

/// Splits a corpus by language.
std::vector<data::SourceFile> filter_lang(const std::vector<data::SourceFile>& files,
                                          const std::vector<frontend::Lang>& langs);

/// One side of a matching experiment: program graphs + IR texts + labels.
struct SideData {
  std::vector<graph::ProgramGraph> graphs;
  std::vector<std::string> ir_texts;  // printed IR (XLIR / static matcher input)
  std::vector<std::string> sources;   // original source text (LICCA)
  std::vector<long> graph_nodes;      // per artifact, for Table VII / Fig. 4
  std::vector<int> tasks;
};

/// Builds graphs, IR texts and features for every compilable file.
SideData build_side(const std::vector<data::SourceFile>& files,
                    const core::ArtifactOptions& options);

/// A full matching experiment between two sides.
class Experiment {
 public:
  Experiment(SideData a, SideData b, std::uint64_t seed = 7);

  const SideData& a() const { return a_; }
  const SideData& b() const { return b_; }
  const data::SplitPairs& splits() const { return splits_; }

  struct Result {
    eval::Confusion test;
    std::vector<float> test_scores;
    std::vector<float> test_labels;
    // Node counts of the two graphs of each test pair (Table VII).
    std::vector<std::pair<long, long>> test_nodes;
    float threshold = 0.5f;
    // Index-backed retrieval quality (GraphBinMatch runs only): every
    // side-B graph is an index candidate, each distinct test side-A graph
    // is a query (paper §I reverse-engineering / vulnerability search).
    eval::RetrievalScores retrieval;
  };

  /// `with_retrieval` additionally fills Result::retrieval via index
  /// queries (costs one embed_all + an exact rerank per test query).
  Result run_graphbinmatch(bool use_full_text, std::uint64_t seed = 7,
                           bool with_retrieval = false) const;
  Result run_xlir(baselines::XlirBackbone backbone, std::uint64_t seed = 13) const;
  Result run_binpro() const;
  Result run_b2sfinder() const;
  Result run_licca() const;

 private:
  SideData a_;
  SideData b_;
  data::SplitPairs splits_;
};

/// Index-backed retrieval evaluation on a trained matcher: embeds every
/// side-B graph into the system's EmbeddingIndex, issues one exact top-k
/// query per distinct side-A graph appearing in `test_pairs`, and
/// aggregates eval::evaluate_retrieval metrics. A candidate is relevant if
/// it solves the query's task; queries with no relevant candidate are
/// skipped.
eval::RetrievalScores index_retrieval(core::MatchingSystem& sys,
                                      const std::vector<gnn::EncodedGraph>& ea,
                                      const std::vector<gnn::EncodedGraph>& eb,
                                      const std::vector<int>& a_tasks,
                                      const std::vector<int>& b_tasks,
                                      const std::vector<data::PairSpec>& test_pairs,
                                      int k = 5);

/// Prints "name  P R F1" next to the paper-reported numbers.
void print_row(const std::string& name, const eval::Confusion& c,
               const std::string& paper = "");
void print_header(const std::string& title);

}  // namespace gbm::bench
