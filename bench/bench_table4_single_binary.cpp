// Table IV — single-language (POJ-104-style, C++ only) binary-source
// matching at threshold 0.5: BinPro, B2SFinder, XLIR(LSTM/Transformer),
// GraphBinMatch.
#include "common.h"

using namespace gbm;

int main() {
  std::printf("Table IV: single-language binary-source matching (POJ substitute)\n");
  auto cfg = data::poj_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task + 1;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);

  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  bin_opts.opt_level = opt::OptLevel::O0;
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;

  bench::Experiment experiment(bench::build_side(files, bin_opts),
                               bench::build_side(files, src_opts));
  bench::print_header("C++ binary vs C++ source");
  std::printf("  paper: BinPro .38/.42/.40; B2SFinder .43/.46/.44; XLIR(LSTM) "
              ".67/.72/.44; XLIR(Tr) .85/.86/.85; GraphBinMatch .88/.86/.87\n");
  bench::print_row("BinPro", experiment.run_binpro().test);
  bench::print_row("B2SFinder", experiment.run_b2sfinder().test);
  bench::print_row("XLIR(LSTM)", experiment.run_xlir(baselines::XlirBackbone::LSTM).test);
  bench::print_row("XLIR(Transformer)",
            experiment.run_xlir(baselines::XlirBackbone::Transformer).test);
  bench::print_row("GraphBinMatch", experiment.run_graphbinmatch(true).test);
  return 0;
}
