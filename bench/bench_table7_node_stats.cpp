// Table VII — node-count statistics of the test-set confusion classes
// (TP/FP/TN/FN) for the cross-language model. The paper's finding: false
// positives have a much larger node-count gap than true positives.
#include <algorithm>

#include "common.h"

using namespace gbm;

namespace {

struct Bucket {
  std::vector<long> values;
  double mean() const {
    if (values.empty()) return 0.0;
    double s = 0;
    for (long v : values) s += static_cast<double>(v);
    return s / static_cast<double>(values.size());
  }
  long median() {
    if (values.empty()) return 0;
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  }
};

}  // namespace

int main() {
  std::printf("Table VII: node-count statistics per confusion class\n");
  std::printf("  paper (mean/median): TP 1506/864  FP 2133/1303  TN 2573/1680  "
              "FN 2293/1289\n");
  auto cfg = data::clcdsa_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;
  bench::Experiment experiment(
      bench::build_side(
          bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp}),
          bin_opts),
      bench::build_side(bench::filter_lang(files, {frontend::Lang::Java}), src_opts));

  const auto result = experiment.run_graphbinmatch(true);
  Bucket tp, fp, tn, fn;       // total nodes of the pair
  Bucket dtp, dfp, dtn, dfn;   // |node-count difference| of the pair
  for (std::size_t i = 0; i < result.test_scores.size(); ++i) {
    const bool predicted = result.test_scores[i] >= 0.5f;
    const bool actual = result.test_labels[i] >= 0.5f;
    const long total = result.test_nodes[i].first + result.test_nodes[i].second;
    const long diff =
        std::labs(result.test_nodes[i].first - result.test_nodes[i].second);
    Bucket* b = predicted ? (actual ? &tp : &fp) : (actual ? &fn : &tn);
    Bucket* d = predicted ? (actual ? &dtp : &dfp) : (actual ? &dfn : &dtn);
    b->values.push_back(total);
    d->values.push_back(diff);
  }
  std::printf("  %-16s %-8s %-8s %-10s %-8s\n", "class", "mean", "median",
              "mean|diff|", "count");
  auto row = [](const char* name, Bucket& b, Bucket& d) {
    std::printf("  %-16s %-8.0f %-8ld %-10.0f %-8zu\n", name, b.mean(), b.median(),
                d.mean(), b.values.size());
  };
  row("True Positive", tp, dtp);
  row("False Positive", fp, dfp);
  row("True Negative", tn, dtn);
  row("False Negative", fn, dfn);
  std::printf("  shape check: FP pairs show a larger node-count gap than TP "
              "pairs (paper: ~50%% larger median).\n");
  return 0;
}
