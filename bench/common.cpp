#include "common.h"

#include <set>

#include "core/parallel.h"
#include "ir/parser.h"

namespace gbm::bench {

bool fast_mode() {
  const char* env = std::getenv("GBM_FAST");
  return env && std::string(env) == "1";
}

Scale scale() {
  Scale s;
  if (fast_mode()) {
    s.solutions_per_task = 2;
    s.epochs = 2;
    s.xlir_epochs = 2;
    s.max_positives_per_task = 4;
  }
  return s;
}

std::vector<data::SourceFile> filter_lang(const std::vector<data::SourceFile>& files,
                                          const std::vector<frontend::Lang>& langs) {
  std::vector<data::SourceFile> out;
  for (const auto& f : files) {
    for (frontend::Lang l : langs) {
      if (f.lang == l) {
        out.push_back(f);
        break;
      }
    }
  }
  return out;
}

SideData build_side(const std::vector<data::SourceFile>& files,
                    const core::ArtifactOptions& options) {
  core::ArtifactOptions batch_options = options;
  batch_options.keep_ir_text = true;
  std::vector<core::Artifact> artifacts = core::build_artifacts(files, batch_options);

  SideData side;
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    core::Artifact& a = artifacts[i];
    if (!a.ok) continue;  // non-compilable file — discarded, as in the paper
    side.graph_nodes.push_back(a.graph.num_nodes());
    side.graphs.push_back(std::move(a.graph));
    side.ir_texts.push_back(std::move(a.ir_text));
    side.sources.push_back(files[i].source);
    side.tasks.push_back(files[i].task_index);
  }
  return side;
}

Experiment::Experiment(SideData a, SideData b, std::uint64_t seed)
    : a_(std::move(a)), b_(std::move(b)) {
  data::PairConfig pcfg;
  pcfg.seed = seed;
  pcfg.max_positives_per_task = scale().max_positives_per_task;
  splits_ = data::make_pairs(a_.tasks, b_.tasks, pcfg);
}

Experiment::Result Experiment::run_graphbinmatch(bool use_full_text,
                                                 std::uint64_t seed,
                                                 bool with_retrieval) const {
  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 384;
  cfg.model.embed_dim = 32;
  cfg.model.hidden = 32;
  cfg.model.layers = 2;
  cfg.model.interaction = true;
  cfg.use_full_text = use_full_text;
  cfg.seed = seed;
  core::MatchingSystem sys(cfg);
  std::vector<const graph::ProgramGraph*> all;
  for (const auto& g : a_.graphs) all.push_back(&g);
  for (const auto& g : b_.graphs) all.push_back(&g);
  sys.fit_tokenizer(all);

  std::vector<gnn::EncodedGraph> ea, eb;
  ea.reserve(a_.graphs.size());
  eb.reserve(b_.graphs.size());
  for (const auto& g : a_.graphs) ea.push_back(sys.encode(g));
  for (const auto& g : b_.graphs) eb.push_back(sys.encode(g));
  auto to_samples = [&](const std::vector<data::PairSpec>& specs) {
    std::vector<gnn::PairSample> out;
    out.reserve(specs.size());
    for (const auto& s : specs) out.push_back({&ea[s.a], &eb[s.b], s.label});
    return out;
  };
  const auto train = to_samples(splits_.train);
  const auto test = to_samples(splits_.test);

  gnn::TrainConfig tcfg;
  tcfg.epochs = scale().epochs;
  tcfg.lr = scale().lr;
  tcfg.seed = seed;
  sys.train(train, tcfg);

  Result result;
  result.test_scores = sys.score_pairs(test);
  for (const auto& s : splits_.test) {
    result.test_labels.push_back(s.label);
    result.test_nodes.emplace_back(a_.graph_nodes[s.a], b_.graph_nodes[s.b]);
  }
  result.test = eval::confusion(result.test_scores, result.test_labels, 0.5f);
  if (with_retrieval) {
    // Retrieval view through the real index: score_pairs already embedded
    // the test graphs, so embed_all mostly hits the engine's cache.
    result.retrieval =
        index_retrieval(sys, ea, eb, a_.tasks, b_.tasks, splits_.test);
  }
  return result;
}

eval::RetrievalScores index_retrieval(core::MatchingSystem& sys,
                                      const std::vector<gnn::EncodedGraph>& ea,
                                      const std::vector<gnn::EncodedGraph>& eb,
                                      const std::vector<int>& a_tasks,
                                      const std::vector<int>& b_tasks,
                                      const std::vector<data::PairSpec>& test_pairs,
                                      int k) {
  std::vector<const gnn::EncodedGraph*> candidates;
  candidates.reserve(eb.size());
  for (const auto& e : eb) candidates.push_back(&e);
  sys.embed_all(candidates);

  std::set<int> queries;
  for (const auto& s : test_pairs) queries.insert(s.a);

  std::vector<eval::RankedQuery> ranked;
  for (int q : queries) {
    std::vector<bool> relevant(eb.size());
    bool any_relevant = false;
    for (std::size_t j = 0; j < eb.size(); ++j) {
      relevant[j] = b_tasks[j] == a_tasks[static_cast<std::size_t>(q)];
      any_relevant |= relevant[j];
    }
    if (!any_relevant) continue;
    // Exact search (prefilter = index size): metrics reflect the head, not
    // the cosine approximation.
    const auto hits = sys.topk(ea[static_cast<std::size_t>(q)], k,
                               static_cast<int>(eb.size()));
    std::vector<int> ids;
    std::vector<float> scores;
    for (const auto& h : hits) {
      ids.push_back(h.id);
      scores.push_back(h.score);
    }
    ranked.push_back(eval::query_from_topk(ids, scores, relevant));
  }
  return eval::evaluate_retrieval(ranked);
}

Experiment::Result Experiment::run_xlir(baselines::XlirBackbone backbone,
                                        std::uint64_t seed) const {
  baselines::XlirConfig cfg;
  cfg.backbone = backbone;
  cfg.seed = seed;
  baselines::XlirSystem sys(cfg);
  std::vector<std::string> corpus = a_.ir_texts;
  corpus.insert(corpus.end(), b_.ir_texts.begin(), b_.ir_texts.end());
  sys.fit_tokenizer(corpus);
  std::vector<baselines::EncodedSeq> ea, eb;
  for (const auto& t : a_.ir_texts) ea.push_back(sys.encode(t));
  for (const auto& t : b_.ir_texts) eb.push_back(sys.encode(t));
  auto to_samples = [&](const std::vector<data::PairSpec>& specs) {
    std::vector<baselines::XlirSystem::Sample> out;
    for (const auto& s : specs) out.push_back({&ea[s.a], &eb[s.b], s.label});
    return out;
  };
  baselines::XlirSystem::TrainOptions topt;
  topt.epochs = scale().xlir_epochs;
  topt.lr = scale().lr;
  topt.seed = seed;
  sys.train(to_samples(splits_.train), topt);

  Result result;
  result.test_scores = sys.score(to_samples(splits_.test));
  for (const auto& s : splits_.test) result.test_labels.push_back(s.label);
  result.test = eval::confusion(result.test_scores, result.test_labels, 0.5f);
  return result;
}

namespace {

/// Parses each printed IR text back and extracts static-matcher features,
/// fanned across the worker pool (parse + feature extraction dominate the
/// BinPro/B2SFinder runs).
std::vector<baselines::ModuleFeatures> extract_all(
    const std::vector<std::string>& texts) {
  std::vector<baselines::ModuleFeatures> out(texts.size());
  core::parallel_for(texts.size(), [&](std::size_t i) {
    out[i] = baselines::extract_features(*ir::parse_module(texts[i]));
  });
  return out;
}

template <class ScoreFn>
Experiment::Result run_static_matcher(const data::SplitPairs& splits,
                                      const ScoreFn& score_pair) {
  Experiment::Result result;
  std::vector<float> train_scores, train_labels;
  for (const auto& s : splits.train) {
    train_scores.push_back(static_cast<float>(score_pair(s.a, s.b)));
    train_labels.push_back(s.label);
  }
  result.threshold = baselines::calibrate_threshold(train_scores, train_labels);
  for (const auto& s : splits.test) {
    result.test_scores.push_back(static_cast<float>(score_pair(s.a, s.b)));
    result.test_labels.push_back(s.label);
  }
  result.test =
      eval::confusion(result.test_scores, result.test_labels, result.threshold);
  return result;
}

}  // namespace

Experiment::Result Experiment::run_binpro() const {
  // Features are derived from the IR texts (parse back, in parallel).
  const auto fa = extract_all(a_.ir_texts);
  const auto fb = extract_all(b_.ir_texts);
  return run_static_matcher(splits_, [&](int i, int j) {
    return baselines::binpro_similarity(fa[i], fb[j]);
  });
}

Experiment::Result Experiment::run_b2sfinder() const {
  const auto fa = extract_all(a_.ir_texts);
  const auto fb = extract_all(b_.ir_texts);
  std::vector<const baselines::ModuleFeatures*> corpus;
  for (const auto& f : fa) corpus.push_back(&f);
  for (const auto& f : fb) corpus.push_back(&f);
  const auto weights = baselines::B2SWeights::fit(corpus);
  return run_static_matcher(splits_, [&](int i, int j) {
    return baselines::b2sfinder_similarity(fa[i], fb[j], weights);
  });
}

Experiment::Result Experiment::run_licca() const {
  return run_static_matcher(splits_, [&](int i, int j) {
    return baselines::licca_similarity(a_.sources[i], b_.sources[j]);
  });
}

void print_row(const std::string& name, const eval::Confusion& c,
               const std::string& paper) {
  std::printf("  %-28s %s", name.c_str(), eval::fmt_prf(c).c_str());
  if (!paper.empty()) std::printf("   | paper: %s", paper.c_str());
  std::printf("\n");
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("  %-28s %-6s %-6s %-6s\n", "system", "P", "R", "F1");
}

}  // namespace gbm::bench
