// Table VIII — node featurisation ablation: `text` (opcode only, the
// ProGraML default) vs `full_text` (complete instruction, the paper's
// proposal), on same-language (C++ vs C++) and cross-language (C/C++
// binary vs Java source) matching.
#include "common.h"

using namespace gbm;

int main() {
  std::printf("Table VIII: text vs full_text featurisation\n");
  std::printf("  paper: Cpp-Cpp text .86/.83/.85, full .89/.87/.88; "
              "C/Cpp-Java text .75/.73/.74, full .84/.75/.79\n");

  // Same-language: C++ binaries vs C++ sources (POJ substitute).
  {
    auto cfg = data::poj_config();
    cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
    cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(cfg);
    core::ArtifactOptions bin_opts;
    bin_opts.side = core::Side::Binary;
    core::ArtifactOptions src_opts;
    src_opts.side = core::Side::SourceIR;
    bench::Experiment experiment(bench::build_side(files, bin_opts),
                                 bench::build_side(files, src_opts));
    bench::print_header("Cpp vs Cpp (binary-source)");
    bench::print_row("text", experiment.run_graphbinmatch(false).test);
    bench::print_row("full_text", experiment.run_graphbinmatch(true).test);
  }

  // Cross-language: C/C++ binaries vs Java sources (CLCDSA substitute).
  {
    auto cfg = data::clcdsa_config();
    cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
    cfg.broken_fraction = 0.0;
    const auto files = data::generate_corpus(cfg);
    core::ArtifactOptions bin_opts;
    bin_opts.side = core::Side::Binary;
    core::ArtifactOptions src_opts;
    src_opts.side = core::Side::SourceIR;
    bench::Experiment experiment(
        bench::build_side(
            bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp}),
            bin_opts),
        bench::build_side(bench::filter_lang(files, {frontend::Lang::Java}),
                          src_opts));
    bench::print_header("Cpp/C vs Java (binary-source)");
    bench::print_row("text", experiment.run_graphbinmatch(false).test);
    bench::print_row("full_text", experiment.run_graphbinmatch(true).test);
  }
  return 0;
}
