// Ablation bench (extension beyond the paper's tables): measures the
// design choices DESIGN.md §5/§7 calls out, on the cross-language
// binary→source task —
//   * featurisation: text vs full_text (also in Table VIII);
//   * interaction head features on/off;
//   * 1 vs 2 hetero layers;
//   * retrieval quality (precision@1/5, MRR) of the final model, serving
//     the paper's §I reverse-engineering motivation.
#include "common.h"

#include "eval/retrieval.h"

using namespace gbm;

namespace {

bench::Experiment::Result run_variant(const bench::Experiment& experiment,
                                      bool full_text, bool interaction,
                                      int layers, bool with_retrieval = false) {
  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 384;
  cfg.model.embed_dim = 32;
  cfg.model.hidden = 32;
  cfg.model.layers = layers;
  cfg.model.interaction = interaction;
  cfg.use_full_text = full_text;
  core::MatchingSystem sys(cfg);
  std::vector<const graph::ProgramGraph*> all;
  for (const auto& g : experiment.a().graphs) all.push_back(&g);
  for (const auto& g : experiment.b().graphs) all.push_back(&g);
  sys.fit_tokenizer(all);
  std::vector<gnn::EncodedGraph> ea, eb;
  for (const auto& g : experiment.a().graphs) ea.push_back(sys.encode(g));
  for (const auto& g : experiment.b().graphs) eb.push_back(sys.encode(g));
  auto to_samples = [&](const std::vector<data::PairSpec>& specs) {
    std::vector<gnn::PairSample> out;
    for (const auto& s : specs) out.push_back({&ea[s.a], &eb[s.b], s.label});
    return out;
  };
  gnn::TrainConfig tcfg;
  tcfg.epochs = bench::scale().epochs;
  tcfg.lr = bench::scale().lr;
  sys.train(to_samples(experiment.splits().train), tcfg);
  bench::Experiment::Result result;
  result.test_scores = sys.score_pairs(to_samples(experiment.splits().test));
  for (const auto& s : experiment.splits().test)
    result.test_labels.push_back(s.label);
  result.test = eval::confusion(result.test_scores, result.test_labels, 0.5f);
  if (with_retrieval) {
    result.retrieval =
        bench::index_retrieval(sys, ea, eb, experiment.a().tasks,
                               experiment.b().tasks, experiment.splits().test);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: GraphBinMatch design choices (cross-language "
              "binary vs source)\n");
  auto cfg = data::clcdsa_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;
  bench::Experiment experiment(
      bench::build_side(
          bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp}),
          bin_opts),
      bench::build_side(bench::filter_lang(files, {frontend::Lang::Java}),
                        src_opts));

  bench::print_header("model variants");
  const auto full = run_variant(experiment, true, true, 2, /*with_retrieval=*/true);
  bench::print_row("full model (full_text,int,2L)", full.test);
  bench::print_row("- full_text (text feats)",
                   run_variant(experiment, false, true, 2).test);
  bench::print_row("- interaction features",
                   run_variant(experiment, true, false, 2).test);
  bench::print_row("- one hetero layer",
                   run_variant(experiment, true, true, 1).test);

  // Retrieval view of the full model, served by the embedding index: every
  // source graph is a candidate, each test binary issues one top-5 query
  // (cosine prefilter + score-head rerank via MatchingSystem::topk).
  const auto& retrieval = full.retrieval;
  std::printf("\n  index retrieval over %ld binary queries: P@1=%.2f P@5=%.2f "
              "hit@5=%.2f MRR=%.2f\n",
              retrieval.queries, retrieval.precision_at_1,
              retrieval.precision_at_5, retrieval.hit_at_5, retrieval.mrr);
  std::printf("  (extension bench — no direct paper counterpart; supports the "
              "paper's §I retrieval motivation)\n");
  return 0;
}
