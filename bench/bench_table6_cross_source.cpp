// Table VI — cross-language source-source matching: C vs Java, C++ vs Java
// and C/C++ vs Java, for GraphBinMatch, XLIR(LSTM/Transformer) and LICCA.
#include "common.h"

using namespace gbm;

namespace {

void run_combo(const char* title, const std::vector<data::SourceFile>& left,
               const std::vector<data::SourceFile>& right, const char* paper) {
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;
  bench::Experiment experiment(bench::build_side(left, src_opts),
                               bench::build_side(right, src_opts));
  bench::print_header(title);
  std::printf("%s", paper);
  bench::print_row("LICCA", experiment.run_licca().test);
  bench::print_row("XLIR(LSTM)", experiment.run_xlir(baselines::XlirBackbone::LSTM).test);
  bench::print_row("XLIR(Transformer)",
            experiment.run_xlir(baselines::XlirBackbone::Transformer).test);
  bench::print_row("GraphBinMatch", experiment.run_graphbinmatch(true).test);
}

}  // namespace

int main() {
  std::printf("Table VI: cross-language source-source matching\n");
  auto cfg = data::clcdsa_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);
  const auto c_only = bench::filter_lang(files, {frontend::Lang::C});
  const auto cpp_only = bench::filter_lang(files, {frontend::Lang::Cpp});
  const auto c_like =
      bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp});
  const auto java = bench::filter_lang(files, {frontend::Lang::Java});

  run_combo("C vs Java", c_only, java,
            "  paper: GBM .77/.80/.78; XLIR(LSTM) .62/.51/.56; "
            "XLIR(Tr) .75/.55/.63\n");
  run_combo("C++ vs Java", cpp_only, java,
            "  paper: GBM .76/.82/.79; XLIR(LSTM) .65/.53/.58; "
            "XLIR(Tr) .77/.57/.66\n");
  run_combo("C/C++ vs Java", c_like, java,
            "  paper: GBM .81/.73/.78 (XLIR not reported)\n");
  return 0;
}
