// Figure 3 — precision / recall / F1 as the decision threshold varies.
// The paper's shape: recall falls and precision rises with the threshold;
// F1 peaks below 0.5 but 0.5 is kept as the practical default.
#include "common.h"

using namespace gbm;

int main() {
  std::printf("Figure 3: metric curves over the decision threshold\n");
  auto cfg = data::clcdsa_config();
  cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  core::ArtifactOptions src_opts;
  src_opts.side = core::Side::SourceIR;
  bench::Experiment experiment(
      bench::build_side(
          bench::filter_lang(files, {frontend::Lang::C, frontend::Lang::Cpp}),
          bin_opts),
      bench::build_side(bench::filter_lang(files, {frontend::Lang::Java}), src_opts));
  const auto result = experiment.run_graphbinmatch(true);

  std::vector<float> grid;
  for (float t = 0.05f; t <= 0.951f; t += 0.05f) grid.push_back(t);
  const auto sweep = eval::threshold_sweep(result.test_scores, result.test_labels, grid);
  std::printf("  %-10s %-10s %-10s %-10s %-10s\n", "threshold", "precision",
              "recall", "f1", "accuracy");
  float best_t = 0.5f;
  double best_f1 = -1.0;
  for (const auto& point : sweep) {
    std::printf("  %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f\n", point.threshold,
                point.precision, point.recall, point.f1, point.accuracy);
    if (point.f1 > best_f1) {
      best_f1 = point.f1;
      best_t = point.threshold;
    }
  }
  std::printf("  best F1 at threshold %.2f; paper finds the optimum below 0.5 "
              "(≈0.2) but keeps 0.5 as the default — recall decreases and "
              "precision increases with the threshold.\n", best_t);
  return 0;
}
