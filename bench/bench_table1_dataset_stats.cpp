// Table I — dataset statistics: #sources, #LLVM-IR, #binaries,
// #decompiled-IR per language for the CLCDSA- and POJ-style corpora.
//
// The #Sources → #LLVM-IR gap comes from deliberately corrupted
// ("non-compilable") files; our deterministic toolchain succeeds on every
// compiled file afterwards, so the remaining columns track #LLVM-IR
// (documented deviation — the paper's RetDec also fails on a small
// fraction of real-world binaries).
#include "common.h"

using namespace gbm;

namespace {

void report(const char* corpus, const char* lang_name,
            const std::vector<data::SourceFile>& files) {
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  const core::CorpusStats stats = core::corpus_stats(files, bin_opts);
  std::printf("  %-8s %-6s  sources=%-5ld ir=%-5ld binaries=%-5ld decompiled=%-5ld\n",
              corpus, lang_name, stats.sources, stats.ir_ok, stats.binaries,
              stats.decompiled);
  // Interned-graph memory accounting: interned bytes (incl. string pool) vs
  // the legacy owned-string layout, and the feature dedup ratio behind it.
  std::printf("  %-8s %-6s  %s\n", "", "", stats.memory_summary().c_str());
}

}  // namespace

int main() {
  std::printf("Table I: dataset statistics (synthetic CLCDSA / POJ substitutes)\n");
  std::printf("  paper: CLCDSA C 15605/13929/14370/13929; C++ 16676/15375/15766/15589;"
              " Java 19836/15124/17072/15124; POJ C++ 52000/38598/38598/37909\n");

  auto clcdsa_cfg = data::clcdsa_config();
  clcdsa_cfg.solutions_per_task_per_lang = bench::scale().solutions_per_task + 1;
  clcdsa_cfg.broken_fraction = 0.08;
  const auto clcdsa = data::generate_corpus(clcdsa_cfg);
  report("CLCDSA", "C", bench::filter_lang(clcdsa, {frontend::Lang::C}));
  report("CLCDSA", "C++", bench::filter_lang(clcdsa, {frontend::Lang::Cpp}));
  report("CLCDSA", "Java", bench::filter_lang(clcdsa, {frontend::Lang::Java}));

  auto poj_cfg = data::poj_config();
  poj_cfg.solutions_per_task_per_lang = 2 * (bench::scale().solutions_per_task + 1);
  poj_cfg.broken_fraction = 0.08;
  const auto poj = data::generate_corpus(poj_cfg);
  report("POJ-104", "C++", poj);

  std::printf("  shape check: counts decrease monotonically source -> decompiled, "
              "as in the paper.\n");
  return 0;
}
