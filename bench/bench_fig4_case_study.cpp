// Figure 4 — case study: a matching Java/C++ pair whose IR graphs differ
// hugely in size (the paper's example: 330 nodes / 660 edges for Java vs
// 65 nodes / 115 edges for C++), explaining false negatives driven by
// language usage habits (boxed containers, bounds checks, class init).
#include "common.h"
#include "graph/program_graph.h"
#include "ir/printer.h"
#include "opt/passes.h"

using namespace gbm;

int main() {
  std::printf("Figure 4: false-negative case study — same task, two languages\n");
  std::printf("  paper: Java IR graph 330 nodes / 660 edges; C++ 65 nodes / 115 "
              "edges for one matching pair\n\n");
  const auto& tasks = data::all_tasks();
  // The inversions task has an ArrayList-based Java variant vs a plain
  // array C++ variant — the paper's "usage habits" scenario.
  for (const auto& task : tasks) {
    if (task.id != "inversions") continue;
    data::Style style;  // default style, deterministic
    const std::string java_src = task.emit(frontend::Lang::Java, 1, style);
    const std::string cpp_src = task.emit(frontend::Lang::Cpp, 0, style);
    auto java_mod = frontend::compile_source(java_src, frontend::Lang::Java, "Main");
    auto cpp_mod = frontend::compile_source(cpp_src, frontend::Lang::Cpp, "Main");
    const auto java_graph = graph::build_graph(*java_mod);
    const auto cpp_graph = graph::build_graph(*cpp_mod);
    std::printf("  task '%s' (count inversions):\n", task.id.c_str());
    std::printf("    Java (ArrayList + bounds checks + boxing): %s\n",
                java_graph.stats().c_str());
    std::printf("    C++  (plain loops):                        %s\n",
                cpp_graph.stats().c_str());
    const double ratio = static_cast<double>(java_graph.num_nodes()) /
                         static_cast<double>(cpp_graph.num_nodes());
    std::printf("    node ratio Java/C++ = %.1fx (paper's example: ~5x)\n", ratio);
    std::printf("\n  Java IR excerpt:\n");
    const std::string jtext = ir::print_module(*java_mod);
    std::printf("%.600s...\n", jtext.c_str());
    std::printf("\n  C++ IR excerpt:\n");
    const std::string ctext = ir::print_module(*cpp_mod);
    std::printf("%.600s...\n", ctext.c_str());
    return 0;
  }
  std::printf("  task template not found\n");
  return 1;
}
