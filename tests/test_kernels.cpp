// Kernel-tier parity tests (ctest label `kernel`): every SIMD tier compiled
// into this binary and usable on this host is checked against the scalar
// reference, per the contract in tensor/kernels/kernels.h —
//
//   * elementwise and segment kernels must be BIT-exact vs scalar, across
//     ragged lengths (n % vector-width != 0), empty segments, and 1-row
//     matrices;
//   * matmul fwd/bwd and the centered-cosine prefilter are tolerance class
//     (<= 1e-5 relative) but must be bit-stable within one tier at any
//     matmul thread count;
//   * zero-norm prefilter rows produce exactly 0 on every tier.
//
// On a host with no usable SIMD tier the cross-tier cases degenerate to
// scalar-vs-scalar (still exercising the shapes); the suite never fails
// solely because a tier is absent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "tensor/kernels/kernels.h"

namespace gbm::tensor::kernels {
namespace {

// Ragged on purpose: 1 (degenerate), below/at/above the 8-wide AVX2 and
// 4-wide NEON widths, and a few larger lengths with nonzero tails.
const long kSizes[] = {1, 3, 8, 17, 64, 100, 257};

std::vector<const Kernels*> simd_tiers() {
  std::vector<const Kernels*> out;
  for (Tier t : {Tier::kAvx2, Tier::kNeon})
    if (const Kernels* k = for_tier(t)) out.push_back(k);
  return out;
}

std::vector<float> random_floats(std::mt19937& rng, long n) {
  // Mix of signs, magnitudes, and exact zeros (matmul kernels skip zeros;
  // lrelu branches on sign).
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::bernoulli_distribution zero(0.1);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = zero(rng) ? 0.0f : dist(rng);
  return v;
}

std::vector<int> random_segments(std::mt19937& rng, long n, long nseg) {
  // Leaves some segments empty with high probability (nseg > n is allowed).
  std::uniform_int_distribution<int> dist(0, static_cast<int>(nseg) - 1);
  std::vector<int> seg(static_cast<std::size_t>(n));
  for (auto& s : seg) s = dist(rng);
  return seg;
}

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want, const char* what,
                          const char* tier, long n) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(float)), 0)
        << what << " tier=" << tier << " n=" << n << " i=" << i
        << " got=" << got[i] << " want=" << want[i];
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  const char* what, const char* tier) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max({1.0f, std::fabs(got[i]), std::fabs(want[i])});
    ASSERT_LE(std::fabs(got[i] - want[i]), 1e-5f * scale)
        << what << " tier=" << tier << " i=" << i << " got=" << got[i]
        << " want=" << want[i];
  }
}

// ---- dispatch plumbing ----------------------------------------------------

TEST(KernelRegistry, ScalarAlwaysAvailableAndActiveIsUsable) {
  ASSERT_NE(scalar_kernels(), nullptr);
  EXPECT_STREQ(scalar_kernels()->name, "scalar");
  EXPECT_TRUE(available(Tier::kScalar));
  const Kernels& k = active();
  EXPECT_NE(k.add_n, nullptr);
  EXPECT_NE(k.matmul_fwd, nullptr);
  EXPECT_NE(k.centered_dot_batch, nullptr);
  EXPECT_STREQ(k.name, tier_name(active_tier()));
}

TEST(KernelRegistry, ParseTier) {
  EXPECT_EQ(parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(parse_tier("avx2"), Tier::kAvx2);
  EXPECT_EQ(parse_tier("neon"), Tier::kNeon);
  EXPECT_EQ(parse_tier("auto"), std::nullopt);
  EXPECT_EQ(parse_tier("AVX2"), std::nullopt);
  EXPECT_EQ(parse_tier(""), std::nullopt);
}

TEST(KernelRegistry, ForTierHonoursCompileAndCpuGates) {
  // A non-null tier must self-report the right name; kScalar is the only
  // tier guaranteed non-null.
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kNeon}) {
    if (const Kernels* k = for_tier(t)) {
      EXPECT_STREQ(k->name, tier_name(t));
    }
    EXPECT_EQ(available(t), for_tier(t) != nullptr);
  }
#if !defined(__aarch64__)
  EXPECT_EQ(for_tier(Tier::kNeon), nullptr);
#endif
}

// ---- elementwise: bit-exact parity ----------------------------------------

TEST(KernelParity, ElementwiseBitExact) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(7);
  for (const Kernels* simd : simd_tiers()) {
    for (const long n : kSizes) {
      const auto a = random_floats(rng, n);
      const auto b = random_floats(rng, n);
      const auto base = random_floats(rng, n);  // accumulator seed
      const float s = 1.7f;

      std::vector<float> want(a.size()), got(a.size());
      ref.add_n(want.data(), a.data(), b.data(), n);
      simd->add_n(got.data(), a.data(), b.data(), n);
      expect_bitwise_equal(got, want, "add_n", simd->name, n);

      ref.mul_n(want.data(), a.data(), b.data(), n);
      simd->mul_n(got.data(), a.data(), b.data(), n);
      expect_bitwise_equal(got, want, "mul_n", simd->name, n);

      ref.adds_n(want.data(), a.data(), s, n);
      simd->adds_n(got.data(), a.data(), s, n);
      expect_bitwise_equal(got, want, "adds_n", simd->name, n);

      ref.scale_n(want.data(), a.data(), s, n);
      simd->scale_n(got.data(), a.data(), s, n);
      expect_bitwise_equal(got, want, "scale_n", simd->name, n);

      want = base;
      got = base;
      ref.acc_n(want.data(), a.data(), n);
      simd->acc_n(got.data(), a.data(), n);
      expect_bitwise_equal(got, want, "acc_n", simd->name, n);

      want = base;
      got = base;
      ref.axpy_n(want.data(), a.data(), s, n);
      simd->axpy_n(got.data(), a.data(), s, n);
      expect_bitwise_equal(got, want, "axpy_n", simd->name, n);

      want = base;
      got = base;
      ref.fma_acc_n(want.data(), a.data(), b.data(), n);
      simd->fma_acc_n(got.data(), a.data(), b.data(), n);
      expect_bitwise_equal(got, want, "fma_acc_n", simd->name, n);

      const float slope = 0.01f;
      ref.lrelu_fwd_n(want.data(), a.data(), slope, n);
      simd->lrelu_fwd_n(got.data(), a.data(), slope, n);
      expect_bitwise_equal(got, want, "lrelu_fwd_n", simd->name, n);

      want = base;
      got = base;
      ref.lrelu_bwd_n(want.data(), a.data(), b.data(), slope, n);
      simd->lrelu_bwd_n(got.data(), a.data(), b.data(), slope, n);
      expect_bitwise_equal(got, want, "lrelu_bwd_n", simd->name, n);
    }
  }
}

// ---- segment ops: bit-exact parity (incl. empty segments) -----------------

TEST(KernelParity, SegmentMaxBitExactWithEmptySegments) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(11);
  for (const Kernels* simd : simd_tiers()) {
    for (const long n : kSizes) {
      for (const long d : {1L, 3L, 8L, 33L}) {
        const long nseg = n + 2;  // at least two segments stay empty
        const auto a = random_floats(rng, n * d);
        const auto seg = random_segments(rng, n, nseg);
        std::vector<float> want_out(static_cast<std::size_t>(nseg * d), 0.0f);
        std::vector<float> got_out = want_out;
        std::vector<int> want_arg(want_out.size(), -7);
        std::vector<int> got_arg = want_arg;
        ref.segment_max_fwd(a.data(), seg.data(), n, d, nseg, want_out.data(),
                            want_arg.data());
        simd->segment_max_fwd(a.data(), seg.data(), n, d, nseg, got_out.data(),
                              got_arg.data());
        expect_bitwise_equal(got_out, want_out, "segment_max out", simd->name, n);
        ASSERT_EQ(got_arg, want_arg) << "segment_max argmax tier=" << simd->name
                                     << " n=" << n << " d=" << d;
      }
    }
  }
}

TEST(KernelParity, SegmentRowwiseDotBitExact) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(13);
  for (const Kernels* simd : simd_tiers()) {
    for (const long n : kSizes) {
      for (const long d : {1L, 7L, 8L, 65L}) {
        const long nseg = std::max(1L, n / 2);
        const auto a = random_floats(rng, n * d);
        const auto b = random_floats(rng, nseg * d);
        const auto seg = random_segments(rng, n, nseg);
        std::vector<float> want(static_cast<std::size_t>(n)), got(want.size());
        ref.segment_rowwise_dot_fwd(a.data(), b.data(), seg.data(), n, d,
                                    want.data());
        simd->segment_rowwise_dot_fwd(a.data(), b.data(), seg.data(), n, d,
                                      got.data());
        expect_bitwise_equal(got, want, "segment_rowwise_dot", simd->name, n);
      }
    }
  }
}

TEST(KernelParity, SegmentWeightedSumBitExact) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(17);
  for (const Kernels* simd : simd_tiers()) {
    for (const long n : kSizes) {
      for (const long d : {1L, 5L, 8L, 40L}) {
        const long nseg = n + 1;
        const auto a = random_floats(rng, n * d);
        const auto w = random_floats(rng, n);
        const auto seg = random_segments(rng, n, nseg);
        std::vector<float> want(static_cast<std::size_t>(nseg * d), 0.0f);
        std::vector<float> got = want;
        ref.segment_weighted_sum_fwd(a.data(), w.data(), seg.data(), n, d,
                                     want.data());
        simd->segment_weighted_sum_fwd(a.data(), w.data(), seg.data(), n, d,
                                       got.data());
        expect_bitwise_equal(got, want, "segment_weighted_sum", simd->name, n);
      }
    }
  }
}

// ---- matmul: tolerance parity + per-tier thread-count bit-stability -------

TEST(KernelParity, MatmulForwardBackwardWithinTolerance) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(19);
  // 1-row matrices, sub-tile shapes, and shapes straddling the 4x16 AVX2
  // tile with ragged remainders in every dimension.
  const long shapes[][3] = {{1, 1, 1},  {1, 9, 17},  {3, 8, 15},  {4, 16, 16},
                            {5, 33, 7}, {17, 20, 50}, {64, 31, 100}};
  for (const Kernels* simd : simd_tiers()) {
    for (const auto& s : shapes) {
      const long n = s[0], k = s[1], m = s[2];
      const auto A = random_floats(rng, n * k);
      const auto B = random_floats(rng, k * m);
      const auto G = random_floats(rng, n * m);

      std::vector<float> want(static_cast<std::size_t>(n * m), 0.0f);
      std::vector<float> got = want;
      ref.matmul_fwd(A.data(), B.data(), want.data(), n, k, m, 1);
      simd->matmul_fwd(A.data(), B.data(), got.data(), n, k, m, 1);
      expect_close(got, want, "matmul_fwd", simd->name);

      std::vector<float> want_da(static_cast<std::size_t>(n * k), 0.0f);
      std::vector<float> got_da = want_da;
      ref.matmul_bwd_a(G.data(), B.data(), want_da.data(), n, k, m, 1);
      simd->matmul_bwd_a(G.data(), B.data(), got_da.data(), n, k, m, 1);
      expect_close(got_da, want_da, "matmul_bwd_a", simd->name);

      std::vector<float> want_db(static_cast<std::size_t>(k * m), 0.0f);
      std::vector<float> got_db = want_db;
      ref.matmul_bwd_b(A.data(), G.data(), want_db.data(), n, k, m, 1);
      simd->matmul_bwd_b(A.data(), G.data(), got_db.data(), n, k, m, 1);
      expect_close(got_db, want_db, "matmul_bwd_b", simd->name);
    }
  }
}

TEST(KernelParity, MatmulBitStableAcrossThreadCountsPerTier) {
  std::mt19937 rng(23);
  const long n = 37, k = 19, m = 29;
  const auto A = random_floats(rng, n * k);
  const auto B = random_floats(rng, k * m);
  std::vector<const Kernels*> tiers = simd_tiers();
  tiers.push_back(scalar_kernels());
  for (const Kernels* tier : tiers) {
    std::vector<float> c1(static_cast<std::size_t>(n * m), 0.0f);
    std::vector<float> c4 = c1;
    tier->matmul_fwd(A.data(), B.data(), c1.data(), n, k, m, 1);
    tier->matmul_fwd(A.data(), B.data(), c4.data(), n, k, m, 4);
    expect_bitwise_equal(c4, c1, "matmul_fwd mt=4 vs mt=1", tier->name, n);
  }
}

// ---- retrieval prefilter --------------------------------------------------

TEST(KernelParity, CenteredDotBatchToleranceAndExactZeroNorms) {
  const Kernels& ref = *scalar_kernels();
  std::mt19937 rng(29);
  for (const Kernels* simd : simd_tiers()) {
    for (const long n : kSizes) {
      for (const long d : {1L, 8L, 19L, 64L}) {
        auto rows = random_floats(rng, n * d);
        auto q = random_floats(rng, d);
        // Zero out one row entirely so its norm is exactly 0.
        const long zero_row = n / 2;
        for (long c = 0; c < d; ++c) rows[zero_row * d + c] = 0.0f;
        std::vector<double> norms(static_cast<std::size_t>(n), 0.0);
        for (long i = 0; i < n; ++i) {
          double nb = 0.0;
          for (long c = 0; c < d; ++c) {
            const float v = rows[i * d + c];
            nb += static_cast<double>(v) * v;
          }
          norms[static_cast<std::size_t>(i)] = std::sqrt(nb);
        }
        double qn = 0.0;
        for (long c = 0; c < d; ++c)
          qn += static_cast<double>(q[c]) * q[c];
        qn = std::sqrt(qn);

        std::vector<float> want(static_cast<std::size_t>(n)), got(want.size());
        ref.centered_dot_batch(rows.data(), norms.data(), q.data(), qn, n, d,
                               want.data());
        simd->centered_dot_batch(rows.data(), norms.data(), q.data(), qn, n, d,
                                 got.data());
        expect_close(got, want, "centered_dot_batch", simd->name);
        // The zero-norm row is exactly 0 on every tier — never NaN/Inf.
        EXPECT_EQ(got[static_cast<std::size_t>(zero_row)], 0.0f);
        EXPECT_EQ(want[static_cast<std::size_t>(zero_row)], 0.0f);

        // Zero query norm: the whole batch is exactly 0.
        simd->centered_dot_batch(rows.data(), norms.data(), q.data(), 0.0, n,
                                 d, got.data());
        for (const float v : got) ASSERT_EQ(v, 0.0f);
      }
    }
  }
}

}  // namespace
}  // namespace gbm::tensor::kernels
