// IR object model, printer/parser round-trip and verifier tests.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace gbm::ir {
namespace {

TEST(Types, InterningAndProperties) {
  TypeContext ctx;
  EXPECT_EQ(ctx.i32(), ctx.i32());
  EXPECT_EQ(ctx.array(ctx.i64(), 5), ctx.array(ctx.i64(), 5));
  EXPECT_NE(ctx.array(ctx.i64(), 5), ctx.array(ctx.i64(), 6));
  EXPECT_EQ(ctx.i32()->size_bytes(), 4);
  EXPECT_EQ(ctx.i64()->size_bytes(), 8);
  EXPECT_EQ(ctx.array(ctx.i32(), 10)->size_bytes(), 40);
  EXPECT_EQ(ctx.f64()->str(), "double");
  EXPECT_EQ(ctx.array(ctx.i8(), 3)->str(), "[3 x i8]");
  EXPECT_TRUE(ctx.i1()->is_integer());
  EXPECT_FALSE(ctx.ptr()->is_integer());
  EXPECT_EQ(ctx.by_name("i32"), ctx.i32());
  EXPECT_EQ(ctx.by_name("bogus"), nullptr);
}

TEST(Values, ConstantPoolingAndRefs) {
  Module m("t");
  EXPECT_EQ(m.const_i64(42), m.const_i64(42));
  EXPECT_NE(m.const_i64(42), m.const_i32(42));
  EXPECT_EQ(m.const_i64(-3)->ref(), "-3");
  EXPECT_EQ(m.const_float(2.5)->ref(), "2.5");
  EXPECT_EQ(m.const_float(3.0)->ref(), "3.0");  // trailing .0 kept distinct
}

TEST(Values, StringLiteralInterning) {
  Module m("t");
  GlobalVar* a = m.string_literal("hello");
  GlobalVar* b = m.string_literal("hello");
  GlobalVar* c = m.string_literal("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a->is_string());
  EXPECT_EQ(a->data().size(), 6u);  // includes NUL
  EXPECT_EQ(a->pointee()->length(), 6);
}

TEST(Builder, UseDefBookkeeping) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().i64(), {m.types().i64()});
  BasicBlock* bb = fn->create_block("entry");
  IRBuilder b(m);
  b.set_insertion(bb);
  Instruction* x = b.binop(Opcode::Add, fn->arg(0), m.const_i64(1));
  Instruction* y = b.binop(Opcode::Mul, x, x);
  b.ret(y);
  EXPECT_EQ(x->users().size(), 2u);  // both mul operands
  EXPECT_EQ(fn->arg(0)->users().size(), 1u);
  // RAUW rewrites both uses.
  x->replace_all_uses_with(m.const_i64(7));
  EXPECT_TRUE(x->users().empty());
  EXPECT_EQ(y->operand(0), m.const_i64(7));
  EXPECT_EQ(y->operand(1), m.const_i64(7));
}

TEST(Builder, NamesAreUniquePerFunction) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().void_ty(), {});
  BasicBlock* bb = fn->create_block("entry");
  IRBuilder b(m);
  b.set_insertion(bb);
  Instruction* a = b.binop(Opcode::Add, m.const_i64(1), m.const_i64(2));
  Instruction* c = b.binop(Opcode::Add, m.const_i64(3), m.const_i64(4));
  EXPECT_NE(a->name(), c->name());
  b.ret();
}

TEST(Builder, BlockSuccessorsAndPredecessors) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().void_ty(), {});
  BasicBlock* entry = fn->create_block("entry");
  BasicBlock* then_bb = fn->create_block("then");
  BasicBlock* else_bb = fn->create_block("else");
  IRBuilder b(m);
  b.set_insertion(entry);
  b.cond_br(m.const_i1(true), then_bb, else_bb);
  b.set_insertion(then_bb);
  b.ret();
  b.set_insertion(else_bb);
  b.ret();
  EXPECT_EQ(entry->successors().size(), 2u);
  EXPECT_EQ(then_bb->predecessors().size(), 1u);
  EXPECT_EQ(then_bb->predecessors()[0], entry);
}

TEST(Printer, InstructionSpellings) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().i64(), {m.types().i64()});
  BasicBlock* bb = fn->create_block("entry");
  IRBuilder b(m);
  b.set_insertion(bb);
  Instruction* add = b.binop(Opcode::Add, fn->arg(0), m.const_i64(5));
  EXPECT_EQ(print_instruction(*add), "%v1 = add i64 %arg0, 5");
  Instruction* cmp = b.icmp(CmpPred::SLT, add, m.const_i64(10));
  EXPECT_EQ(print_instruction(*cmp), "%v2 = icmp slt i64 %v1, 10");
  Instruction* sel = b.select(cmp, add, m.const_i64(0));
  EXPECT_EQ(print_instruction(*sel), "%v3 = select i1 %v2, i64 %v1, i64 0");
  Instruction* ret = b.ret(sel);
  EXPECT_EQ(print_instruction(*ret), "ret i64 %v3");
}

// Round-trip: print → parse → print must be a fixpoint, and execution
// behaviour must be identical. Parameterised over the language front-ends.
struct RoundTripCase {
  const char* name;
  const char* source;
  frontend::Lang lang;
  std::vector<std::int64_t> input;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTripTest, PrintParseFixpointAndSemantics) {
  const auto& param = GetParam();
  auto module = frontend::compile_source(param.source, param.lang, "Main");
  ASSERT_TRUE(verify_module(*module).ok()) << verify_module(*module).str();

  const std::string text1 = print_module(*module);
  auto reparsed = parse_module(text1, module->name());
  ASSERT_TRUE(verify_module(*reparsed).ok()) << verify_module(*reparsed).str();
  const std::string text2 = print_module(*reparsed);
  EXPECT_EQ(text1, text2);

  interp::ExecOptions opts;
  opts.input = param.input;
  const auto r1 = interp::execute(*module, opts);
  const auto r2 = interp::execute(*reparsed, opts);
  EXPECT_FALSE(r1.trapped) << r1.trap_message;
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripTest,
    ::testing::Values(
        RoundTripCase{"arith", "int main(){ long a = read(); print(a*3+1); return 0; }",
                      frontend::Lang::C, {14}},
        RoundTripCase{"loops_arrays",
                      "int main(){ long v[4]; long i; for(i=0;i<4;i++){v[i]=read();}"
                      " sort(v,4); for(i=0;i<4;i++){print(v[i]);} return 0; }",
                      frontend::Lang::C, {9, 2, 7, 4}},
        RoundTripCase{"floats",
                      "int main(){ double x = 1.5; double y = x * 4.0 - 0.5;"
                      " print(y); puts(\"done\"); return 0; }",
                      frontend::Lang::C, {}},
        RoundTripCase{"functions",
                      "long f(long a, long b){ return a*b + 1; }"
                      "int main(){ print(f(read(), 6)); return 0; }",
                      frontend::Lang::C, {7}},
        RoundTripCase{"ternary_logic",
                      "int main(){ long a = read(); long b = read();"
                      " print(a > b && a % 2 == 0 ? a : b); return 0; }",
                      frontend::Lang::C, {8, 3}},
        RoundTripCase{"cpp_vec",
                      "int main(){ vec v; long i; for(i=0;i<5;i++){ v.push(read()); }"
                      " v.sort(); print(v.get(0)); print(v.get(4)); return 0; }",
                      frontend::Lang::Cpp, {5, 1, 9, 3, 7}},
        RoundTripCase{"java_basic",
                      "class A { public static void main(String[] args) {"
                      " int x = Reader.read(); System.out.println(x * 2); } }",
                      frontend::Lang::Java, {21}},
        RoundTripCase{"java_arrays",
                      "class A { public static void main(String[] args) {"
                      " int[] a = new int[3]; for (int i = 0; i < 3; i++) "
                      "{ a[i] = Reader.read(); } int s = 0; for (int i = 0; i < "
                      "a.length; i++) { s = s + a[i]; } System.out.println(s); } }",
                      frontend::Lang::Java, {4, 5, 6}},
        RoundTripCase{"java_list",
                      "class A { public static void main(String[] args) {"
                      " ArrayList l = new ArrayList(); l.add(10); l.add(20);"
                      " System.out.println(l.get(0) + l.get(1) + l.size()); } }",
                      frontend::Lang::Java, {}}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return std::string(info.param.name);
    });

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_module("define i32 @f("), ParseError);
  EXPECT_THROW(parse_module("define i32 @f() {\nentry0:\n  bogus i32 1\n}\n"),
               ParseError);
  EXPECT_THROW(parse_module("define i32 @f() {\nentry0:\n  ret i32 %undefined\n}\n"),
               ParseError);
}

TEST(Verifier, CatchesMissingTerminator) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().void_ty(), {});
  BasicBlock* bb = fn->create_block("entry");
  IRBuilder b(m);
  b.set_insertion(bb);
  b.binop(Opcode::Add, m.const_i64(1), m.const_i64(2));
  EXPECT_FALSE(verify_function(*fn).ok());
}

TEST(Verifier, CatchesTypeMismatch) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().void_ty(), {});
  BasicBlock* bb = fn->create_block("entry");
  auto* bad = new Instruction(Opcode::Add, m.types().i64(), "v1");
  bad->add_operand(m.const_i64(1));
  bad->add_operand(m.const_i32(2));  // mixed widths
  bb->append(std::unique_ptr<Instruction>(bad));
  IRBuilder b(m);
  b.set_insertion(bb);
  b.ret();
  EXPECT_FALSE(verify_function(*fn).ok());
}

TEST(Verifier, CatchesBadRetType) {
  Module m("t");
  Function* fn = m.create_function("f", m.types().i32(), {});
  BasicBlock* bb = fn->create_block("entry");
  IRBuilder b(m);
  b.set_insertion(bb);
  b.ret(m.const_i64(1));  // i64 returned from i32 function
  EXPECT_FALSE(verify_function(*fn).ok());
}

TEST(Verifier, CatchesCallArityMismatch) {
  Module m("t");
  Function* callee = m.create_function("g", m.types().void_ty(), {m.types().i64()});
  Function* fn = m.create_function("f", m.types().void_ty(), {});
  BasicBlock* bb = fn->create_block("entry");
  auto* call = new Instruction(Opcode::Call, m.types().void_ty(), "");
  call->set_callee(callee);
  bb->append(std::unique_ptr<Instruction>(call));
  IRBuilder b(m);
  b.set_insertion(bb);
  b.ret();
  EXPECT_FALSE(verify_function(*fn).ok());
}

TEST(Verifier, AcceptsWellFormedPhi) {
  const char* text =
      "define i64 @f(i64 %arg0) {\n"
      "entry0:\n"
      "  %v1 = icmp slt i64 %arg0, 0\n"
      "  br i1 %v1, label %a, label %b\n"
      "a:\n"
      "  br label %join\n"
      "b:\n"
      "  br label %join\n"
      "join:\n"
      "  %v2 = phi i64 [ 1, %a ], [ 2, %b ]\n"
      "  ret i64 %v2\n"
      "}\n";
  auto m = parse_module(text);
  EXPECT_TRUE(verify_module(*m).ok()) << verify_module(*m).str();
}

TEST(Verifier, CatchesPhiNotCoveringPreds) {
  const char* text =
      "define i64 @f(i64 %arg0) {\n"
      "entry0:\n"
      "  %v1 = icmp slt i64 %arg0, 0\n"
      "  br i1 %v1, label %a, label %b\n"
      "a:\n"
      "  br label %join\n"
      "b:\n"
      "  br label %join\n"
      "join:\n"
      "  %v2 = phi i64 [ 1, %a ]\n"
      "  ret i64 %v2\n"
      "}\n";
  auto m = parse_module(text);
  EXPECT_FALSE(verify_module(*m).ok());
}

}  // namespace
}  // namespace gbm::ir
