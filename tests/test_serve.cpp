// Serving subsystem tests.
//
// ShardedIndex: bit-identical parity with a single EmbeddingIndex for shard
// counts {1, 2, 7}, merge-order determinism under cosine AND head-score
// ties (always toward the lower global id), k beyond any shard's
// population, explicit shard keys, thread-count invariance, and the
// per-shard GBMX save/load round trip with its error paths.
//
// MatchServer: snapshot → server lifecycle, micro-batch coalescing with
// content dedup, per-query results identical between >= 8 concurrent
// clients and serial one-query-at-a-time execution (the batched embed pass
// is bitwise equal to a lone embed), compile-error reporting, the
// ArtifactStore compile cache, and shutdown drain semantics. The whole
// file runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <thread>

#include "core/embedding_engine.h"
#include "core/pipeline.h"
#include "frontend/frontend.h"
#include "gnn/trainer.h"
#include "serve/match_server.h"
#include "serve/sharded_index.h"

namespace gbm::serve {
namespace {

using core::Embedding;
using core::EmbeddingEngine;
using core::EmbeddingIndex;
using tensor::RNG;

gnn::EncodedGraph tiny_graph(long nodes, int token_salt = 0, int bag_len = 2) {
  gnn::EncodedGraph g;
  g.num_nodes = nodes;
  g.bag_len = bag_len;
  for (long i = 0; i < nodes; ++i)
    for (int k = 0; k < bag_len; ++k)
      g.tokens.push_back(static_cast<int>(3 + (i + k + token_salt) % 4));
  for (auto& list : g.edges) {
    for (long i = 0; i < nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  g.edges[0].src.push_back(0);
  g.edges[0].dst.push_back(static_cast<int>(nodes - 1));
  g.edges[0].pos.push_back(1);
  return g;
}

gnn::GraphBinMatchModel make_model(std::uint64_t seed = 7) {
  gnn::ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.interaction = true;
  RNG rng(seed);
  return gnn::GraphBinMatchModel(cfg, rng);
}

/// A pool of distinct embeddings plus deliberate duplicates (ties).
std::vector<Embedding> embedding_zoo(const EmbeddingEngine& engine, int distinct,
                                     int duplicates_of_first = 0) {
  std::vector<Embedding> out;
  for (int i = 0; i < distinct; ++i)
    out.push_back(engine.embed(tiny_graph(3 + i % 5, i)));
  for (int d = 0; d < duplicates_of_first; ++d) out.push_back(out.front());
  return out;
}

void expect_hits_equal(const std::vector<EmbeddingIndex::Hit>& want,
                       const std::vector<ShardedIndex::Hit>& got,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    EXPECT_EQ(got[i].cosine, want[i].cosine) << what << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

// ---- ShardedIndex ---------------------------------------------------------

TEST(ShardedIndex, BitIdenticalToSingleIndexForAnyShardCount) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto embeddings = embedding_zoo(engine, 15, /*duplicates_of_first=*/3);

  EmbeddingIndex single(engine);
  for (const auto& e : embeddings) single.add(e);

  const Embedding query = engine.embed(tiny_graph(4, 99));
  for (int shards : {1, 2, 7}) {
    ShardedIndex sharded(engine, shards);
    for (const auto& e : embeddings) sharded.add(e);
    ASSERT_EQ(sharded.size(), single.size());
    for (int k : {1, 3, 5, static_cast<int>(embeddings.size()), 100}) {
      for (int prefilter : {0, 4, static_cast<int>(embeddings.size())}) {
        for (QuerySide side : {QuerySide::A, QuerySide::B}) {
          const auto want = single.topk(query, k, prefilter, side);
          const auto got = sharded.topk(query, k, prefilter, side);
          expect_hits_equal(want, got,
                            "shards=" + std::to_string(shards) +
                                " k=" + std::to_string(k) +
                                " prefilter=" + std::to_string(prefilter));
        }
      }
    }
  }
}

// Satellite: merge-order determinism. Equal-cosine AND equal-head-score
// ties (duplicate embeddings scattered across different shards) must break
// toward the lower GLOBAL id for shard counts 1, 2 and 7 — including when
// k exceeds every single shard's population, so the answer must cross
// shard boundaries.
TEST(ShardedIndex, TiesBreakTowardLowerGlobalIdAcrossShards) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const Embedding dup = engine.embed(tiny_graph(4, 1));
  const Embedding other = engine.embed(tiny_graph(5, 2));
  const Embedding query = engine.embed(tiny_graph(6, 3));

  for (int shards : {1, 2, 7}) {
    ShardedIndex index(engine, shards);
    // Round-robin placement scatters the nine duplicates over every shard.
    std::vector<int> dup_ids;
    for (int i = 0; i < 9; ++i) dup_ids.push_back(index.add(dup));
    const int other_id = index.add(other);
    const int k = static_cast<int>(index.size());
    // For every multi-shard count, k exceeds any single shard's population
    // — the answer must cross shard boundaries.
    if (shards > 1) {
      for (int s = 0; s < shards; ++s)
        ASSERT_GT(static_cast<std::size_t>(k), index.shard_size(s));
    }

    const auto hits = index.topk(query, k);
    ASSERT_EQ(hits.size(), static_cast<std::size_t>(k));
    // The duplicates tie on cosine and head score; they must appear as one
    // run in ascending global-id order.
    std::vector<int> dup_ranks;
    for (std::size_t r = 0; r < hits.size(); ++r)
      if (hits[r].id != other_id) dup_ranks.push_back(static_cast<int>(r));
    ASSERT_EQ(dup_ranks.size(), dup_ids.size());
    for (std::size_t i = 0; i + 1 < dup_ranks.size(); ++i) {
      EXPECT_EQ(dup_ranks[i] + 1, dup_ranks[i + 1]) << "ties not adjacent";
      EXPECT_LT(hits[dup_ranks[i]].id, hits[dup_ranks[i + 1]].id)
          << "tie broke away from the lower global id (shards=" << shards << ")";
      EXPECT_EQ(hits[dup_ranks[i]].score, hits[dup_ranks[i + 1]].score);
      EXPECT_EQ(hits[dup_ranks[i]].cosine, hits[dup_ranks[i + 1]].cosine);
    }
  }
}

TEST(ShardedIndex, ExplicitShardKeysPreserveParity) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto embeddings = embedding_zoo(engine, 12);

  EmbeddingIndex single(engine);
  for (const auto& e : embeddings) single.add(e);

  // Skewed explicit placement: everything on shard 2 except every third id.
  ShardedIndex sharded(engine, 4);
  for (std::size_t i = 0; i < embeddings.size(); ++i) {
    const int shard = i % 3 == 0 ? static_cast<int>(i) % 4 : 2;
    const int id = sharded.add(embeddings[i], shard);
    EXPECT_EQ(id, static_cast<int>(i));
    EXPECT_EQ(sharded.shard_of(id), shard);
  }
  EXPECT_GT(sharded.shard_size(2), sharded.shard_size(0));

  const Embedding query = engine.embed(tiny_graph(7, 42));
  expect_hits_equal(single.topk(query, 6), sharded.topk(query, 6),
                    "explicit shard keys");

  EXPECT_THROW(sharded.add(embeddings[0], 4), std::invalid_argument);
  EXPECT_THROW(sharded.add(embeddings[0], -1), std::invalid_argument);
  EXPECT_THROW(ShardedIndex(engine, 0), std::invalid_argument);
}

TEST(ShardedIndex, ThreadCountInvariance) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  ShardedIndex index(engine, 3);
  for (const auto& e : embedding_zoo(engine, 10, 2)) index.add(e);
  const Embedding query = engine.embed(tiny_graph(5, 17));
  const auto t1 = index.topk(query, 6, 0, QuerySide::A, /*threads=*/1);
  const auto t4 = index.topk(query, 6, 0, QuerySide::A, /*threads=*/4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].id, t4[i].id);
    EXPECT_EQ(t1[i].cosine, t4[i].cosine);
    EXPECT_EQ(t1[i].score, t4[i].score);
  }
}

TEST(ShardedIndex, EmptyAndEdgeCases) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  ShardedIndex index(engine, 3);
  EXPECT_TRUE(index.topk(Embedding(), 5).empty());  // empty index
  index.add(engine.embed(tiny_graph(3, 0)));
  EXPECT_TRUE(index.topk(engine.embed(tiny_graph(3, 1)), 0).empty());  // k <= 0
  EXPECT_THROW(index.topk(Embedding(3, 0.0f), 2), std::invalid_argument);
  EXPECT_THROW(index.add(Embedding(3, 0.0f)), std::invalid_argument);
  index.clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_shards(), 3);
}

TEST(ShardedIndex, SaveLoadRoundTripServesBitIdentically) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  ShardedIndex index(engine, 3);
  const auto embeddings = embedding_zoo(engine, 11, 2);
  // Mixed placement: round-robin plus a few explicit keys.
  for (std::size_t i = 0; i < embeddings.size(); ++i) {
    if (i % 4 == 3)
      index.add(embeddings[i], 1);
    else
      index.add(embeddings[i]);
  }
  const std::string prefix = ::testing::TempDir() + "gbm_sharded_index";
  index.save(prefix);

  const ShardedIndex restored = ShardedIndex::load(engine, prefix);
  EXPECT_EQ(restored.num_shards(), index.num_shards());
  ASSERT_EQ(restored.size(), index.size());
  for (int id = 0; id < static_cast<int>(index.size()); ++id) {
    EXPECT_EQ(restored.shard_of(id), index.shard_of(id));
    EXPECT_EQ(restored.embedding(id), index.embedding(id));
  }
  const Embedding query = engine.embed(tiny_graph(6, 23));
  expect_hits_equal(
      [&] {  // the saved index's own answer, as EmbeddingIndex::Hit
        std::vector<EmbeddingIndex::Hit> want;
        for (const auto& h : index.topk(query, 7)) want.push_back(h);
        return want;
      }(),
      restored.topk(query, 7), "save/load round trip");
  for (int s = 0; s < index.num_shards(); ++s)
    std::remove(ShardedIndex::shard_path(prefix, s).c_str());
}

TEST(ShardedIndex, LoadErrorPaths) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  ShardedIndex index(engine, 2);
  for (const auto& e : embedding_zoo(engine, 6)) index.add(e);
  const std::string prefix = ::testing::TempDir() + "gbm_sharded_badload";
  index.save(prefix);

  // Missing shard file.
  std::remove(ShardedIndex::shard_path(prefix, 1).c_str());
  EXPECT_THROW(ShardedIndex::load(engine, prefix), std::runtime_error);

  // Truncated shard file.
  index.save(prefix);
  {
    std::FILE* fp = std::fopen(ShardedIndex::shard_path(prefix, 1).c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("GBMX", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(ShardedIndex::load(engine, prefix), std::runtime_error);

  // Wrong magic.
  index.save(prefix);
  {
    std::FILE* fp = std::fopen(ShardedIndex::shard_path(prefix, 0).c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fputs("NOPE", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(ShardedIndex::load(engine, prefix), std::runtime_error);

  // Corrupted total on a SINGLE-shard index (no cross-file header check
  // applies): a huge header count must fail descriptively against the ids
  // actually read, not drive a huge allocation.
  {
    ShardedIndex one(engine, 1);
    one.add(engine.embed(tiny_graph(3, 0)));
    const std::string one_prefix = ::testing::TempDir() + "gbm_sharded_onetotal";
    one.save(one_prefix);
    std::FILE* fp = std::fopen(ShardedIndex::shard_path(one_prefix, 0).c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fseek(fp, 16, SEEK_SET), 0);  // magic+version+shard+shards
    const std::uint64_t huge = 1ull << 48;
    ASSERT_EQ(std::fwrite(&huge, sizeof huge, 1, fp), 1u);
    std::fclose(fp);
    EXPECT_THROW(ShardedIndex::load(engine, one_prefix), std::runtime_error);
    std::remove(ShardedIndex::shard_path(one_prefix, 0).c_str());
  }

  // Nothing at all.
  for (int s = 0; s < 2; ++s)
    std::remove(ShardedIndex::shard_path(prefix, s).c_str());
  EXPECT_THROW(ShardedIndex::load(engine, prefix), std::runtime_error);
}

// ---- MatchServer ----------------------------------------------------------

const char* kCorpusSources[] = {
    "int main(){ print(1); return 0; }",
    "int main(){ long s=0; long i; for(i=0;i<7;i++){ s+=i*3; } print(s);"
    " return 0; }",
    "int main(){ puts(\"xyz\"); print(999983); return 0; }",
    "int main(){ long a = 2; long b = 40; print(a + b); return 0; }",
    "int main(){ long i; for(i=9;i>0;i--){ print(i); } return 0; }",
    "int main(){ long x = 5; if (x > 3) { print(x); } else { puts(\"no\"); }"
    " return 0; }",
};

/// Trains a small matcher over kCorpusSources, builds its index, and
/// returns the system (the in-memory equivalent of loading a snapshot).
core::MatchingSystem trained_system() {
  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 64;
  cfg.model.embed_dim = 8;
  cfg.model.hidden = 8;
  cfg.model.layers = 1;
  cfg.model.interaction = true;
  core::MatchingSystem sys(cfg);
  std::vector<graph::ProgramGraph> graphs;
  for (const char* src : kCorpusSources) {
    auto module = frontend::compile_source(src, frontend::Lang::C, "Main");
    graphs.push_back(graph::build_graph(*module));
  }
  std::vector<const graph::ProgramGraph*> gptrs;
  for (const auto& g : graphs) gptrs.push_back(&g);
  sys.fit_tokenizer(gptrs);
  std::vector<gnn::EncodedGraph> encoded;
  for (const auto& g : graphs) encoded.push_back(sys.encode(g));
  std::vector<gnn::PairSample> pairs = {{&encoded[0], &encoded[0], 1.0f},
                                        {&encoded[1], &encoded[1], 1.0f},
                                        {&encoded[0], &encoded[1], 0.0f},
                                        {&encoded[2], &encoded[3], 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 3;
  sys.train(pairs, tcfg);
  std::vector<const gnn::EncodedGraph*> eptrs;
  for (const auto& e : encoded) eptrs.push_back(&e);
  sys.embed_all(eptrs);
  return sys;
}

MatchServer::Query query_of(const char* src, int k = 3) {
  MatchServer::Query q;
  q.source = src;
  q.k = k;
  return q;
}

TEST(MatchServer, SnapshotLifecycleServesSystemTopk) {
  auto sys = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_server_snapshot.gbms";
  sys.save(path);

  MatchServerConfig cfg;
  cfg.num_shards = 3;
  MatchServer server(path, cfg);
  std::remove(path.c_str());

  // The server's answer equals the system's own topk on the same query,
  // compiled through the identical toolchain (build_artifact runs the
  // optimiser; the server's admission path does the same).
  data::SourceFile query_file;
  query_file.source = kCorpusSources[0];
  query_file.lang = frontend::Lang::C;
  query_file.unit_name = "Query";
  query_file.task_index = -1;
  const auto query_artifact = core::build_artifact(query_file, {});
  ASSERT_TRUE(query_artifact.ok) << query_artifact.error;
  const auto want = sys.topk(sys.encode(query_artifact.graph), 3);
  const MatchResult got = server.submit(query_of(kCorpusSources[0]));
  ASSERT_TRUE(got.ok) << got.error;
  ASSERT_EQ(got.hits.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.hits[i].id, want[i].id);
    EXPECT_EQ(got.hits[i].score, want[i].score);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(MatchServer, SnapshotWithoutIndexRejected) {
  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 32;
  cfg.model.embed_dim = 8;
  cfg.model.hidden = 8;
  cfg.model.layers = 1;
  core::MatchingSystem sys(cfg);
  auto module =
      frontend::compile_source(kCorpusSources[0], frontend::Lang::C, "Main");
  auto g = graph::build_graph(*module);
  sys.fit_tokenizer({&g});
  auto enc = sys.encode(g);
  std::vector<gnn::PairSample> pairs = {{&enc, &enc, 1.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 1;
  sys.train(pairs, tcfg);  // trained, but embed_all never ran
  const std::string path = ::testing::TempDir() + "gbm_server_noindex.gbms";
  sys.save(path);
  EXPECT_THROW(MatchServer(path, MatchServerConfig{}), std::runtime_error);
  std::remove(path.c_str());
}

// Acceptance bar: >= 8 concurrent clients receive per-query results
// identical to serial one-query-at-a-time execution. The concurrent server
// coalesces requests into shared GraphBatch passes; the serial baseline
// (fresh server, one in-flight query at a time) never batches — identical
// answers prove batching composition cannot leak into results.
TEST(MatchServer, ConcurrentClientsMatchSerialExecution) {
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 4;
  const int n_sources = static_cast<int>(std::size(kCorpusSources));

  // Serial baseline: one query at a time, in a fixed order.
  std::vector<std::vector<MatchResult>> want(kClients);
  {
    MatchServerConfig cfg;
    cfg.num_shards = 3;
    cfg.max_wait_us = 0;  // dispatch immediately, no coalescing
    MatchServer serial(trained_system(), cfg);
    for (int c = 0; c < kClients; ++c)
      for (int q = 0; q < kQueriesPerClient; ++q)
        want[c].push_back(
            serial.submit(query_of(kCorpusSources[(c + q) % n_sources], 1 + q)));
  }

  // Concurrent run: all clients hammer a fresh server at once with a long
  // coalescing window, so requests share batches in timing-dependent ways.
  MatchServerConfig cfg;
  cfg.num_shards = 3;
  cfg.max_batch = 8;
  cfg.max_wait_us = 20000;
  MatchServer server(trained_system(), cfg);
  std::vector<std::vector<MatchResult>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q)
        got[c].push_back(
            server.submit(query_of(kCorpusSources[(c + q) % n_sources], 1 + q)));
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      const MatchResult& w = want[c][static_cast<std::size_t>(q)];
      const MatchResult& g = got[c][static_cast<std::size_t>(q)];
      ASSERT_TRUE(w.ok);
      ASSERT_TRUE(g.ok) << g.error;
      ASSERT_EQ(g.hits.size(), w.hits.size()) << "client " << c << " query " << q;
      for (std::size_t i = 0; i < w.hits.size(); ++i) {
        EXPECT_EQ(g.hits[i].id, w.hits[i].id) << "client " << c << " query " << q;
        EXPECT_EQ(g.hits[i].cosine, w.hits[i].cosine);
        EXPECT_EQ(g.hits[i].score, w.hits[i].score);
      }
    }
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Histogram accounting: every completed request sits in exactly one batch.
  std::uint64_t hist_requests = 0, hist_batches = 0;
  for (std::size_t b = 0; b < stats.batch_size_hist.size(); ++b) {
    hist_batches += stats.batch_size_hist[b];
    hist_requests += stats.batch_size_hist[b] * (b + 1);
  }
  EXPECT_EQ(hist_batches, stats.batches);
  EXPECT_EQ(hist_requests, stats.completed);
}

TEST(MatchServer, CoalescesWaitingRequestsIntoOneBatch) {
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_batch = 8;
  cfg.max_wait_us = 200000;  // generous window: everyone shares one batch
  MatchServer server(trained_system(), cfg);

  // Pre-encode so admission is instant and all 8 land inside the window.
  std::vector<gnn::EncodedGraph> encoded;
  for (int i = 0; i < 8; ++i)
    encoded.push_back(
        server.system().encode([&] {
          auto module = frontend::compile_source(kCorpusSources[i % 2],
                                                 frontend::Lang::C, "Query");
          return graph::build_graph(*module);
        }()));
  std::vector<std::future<MatchResult>> futures;
  for (auto& e : encoded)
    futures.push_back(server.submit_encoded(e, QuerySide::A, 2));
  std::vector<MatchResult> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& r : results) EXPECT_TRUE(r.ok) << r.error;
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_LE(stats.batches, 2u);  // the window coalesces (usually 1 batch)
  // Identical content → identical answers (deduped inside the batch).
  for (int i = 2; i < 8; i += 2) {
    ASSERT_EQ(results[static_cast<std::size_t>(i)].hits.size(),
              results[0].hits.size());
    EXPECT_EQ(results[static_cast<std::size_t>(i)].hits[0].id, results[0].hits[0].id);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].hits[0].score,
              results[0].hits[0].score);
  }
}

TEST(MatchServer, CompileErrorsReportedNotFatal) {
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  MatchServer server(trained_system(), cfg);
  const MatchResult bad = server.submit(query_of("int main(){ this is not C"));
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_TRUE(bad.hits.empty());
  // The server keeps serving after a failed query.
  const MatchResult good = server.submit(query_of(kCorpusSources[0]));
  EXPECT_TRUE(good.ok) << good.error;
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(MatchServer, MalformedEncodedQueryRejectedAtAdmission) {
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  MatchServer server(trained_system(), cfg);
  // A malformed graph would make the dispatcher's batched embed pass throw
  // (or index out of bounds), poisoning every request sharing its batch;
  // admission must answer with an error result instead of enqueueing it.
  const MatchResult empty =
      server.submit_encoded(gnn::EncodedGraph{}, QuerySide::A, 3).get();
  EXPECT_FALSE(empty.ok);
  EXPECT_NE(empty.error.find("empty"), std::string::npos);

  gnn::EncodedGraph bad_edge = tiny_graph(3, 0);
  bad_edge.edges[1].src.push_back(0);
  bad_edge.edges[1].dst.push_back(7);  // out of node range
  bad_edge.edges[1].pos.push_back(0);
  const MatchResult edge =
      server.submit_encoded(std::move(bad_edge), QuerySide::A, 3).get();
  EXPECT_FALSE(edge.ok);
  EXPECT_NE(edge.error.find("edge endpoint"), std::string::npos);

  gnn::EncodedGraph bad_token = tiny_graph(3, 0);
  bad_token.tokens[0] = 9999;  // out of vocabulary range
  const MatchResult token =
      server.submit_encoded(std::move(bad_token), QuerySide::A, 3).get();
  EXPECT_FALSE(token.ok);
  EXPECT_NE(token.error.find("token id"), std::string::npos);

  const MatchResult good = server.submit(query_of(kCorpusSources[0]));
  EXPECT_TRUE(good.ok) << good.error;
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(MatchServer, ArtifactStoreActsAsCompileCache) {
  const std::string dir = ::testing::TempDir() + "gbm_server_store";
  core::ArtifactStore::destroy(dir);
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  cfg.store_dir = dir;
  MatchServer server(trained_system(), cfg);
  const MatchResult first = server.submit(query_of(kCorpusSources[1]));
  ASSERT_TRUE(first.ok) << first.error;
  const MatchResult second = server.submit(query_of(kCorpusSources[1]));
  ASSERT_TRUE(second.ok) << second.error;
  const auto stats = server.stats();
  EXPECT_EQ(stats.store.misses, 1u);  // first query compiled + stored
  EXPECT_EQ(stats.store.writes, 1u);
  EXPECT_EQ(stats.store.hits, 1u);  // second skipped the toolchain
  ASSERT_EQ(second.hits.size(), first.hits.size());
  for (std::size_t i = 0; i < first.hits.size(); ++i) {
    EXPECT_EQ(second.hits[i].id, first.hits[i].id);
    EXPECT_EQ(second.hits[i].score, first.hits[i].score);
  }
  core::ArtifactStore::destroy(dir);
}

TEST(MatchServer, ShutdownDrainsAdmittedAndRejectsNew) {
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50000;  // slow dispatcher: requests pile up
  MatchServer server(trained_system(), cfg);

  // Admit a burst asynchronously, then shut down while it is in flight.
  std::vector<std::future<MatchResult>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit_async(
        query_of(kCorpusSources[i % std::size(kCorpusSources)], 2)));
  server.shutdown();

  // Every admitted request was answered — none dropped, none failed.
  for (auto& f : futures) {
    const MatchResult r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.hits.empty());
  }
  // Admission after shutdown is a rejection result, not an exception.
  const MatchResult late = server.submit(query_of(kCorpusSources[0]));
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.error.find("shut down"), std::string::npos);
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  server.shutdown();  // idempotent
}

TEST(MatchServer, StatsTrackLatencyStages) {
  MatchServerConfig cfg;
  cfg.num_shards = 2;
  MatchServer server(trained_system(), cfg);
  for (int i = 0; i < 3; ++i) {
    const auto r = server.submit(query_of(kCorpusSources[i]));
    ASSERT_TRUE(r.ok) << r.error;
  }
  const auto stats = server.stats();
  EXPECT_GT(stats.compile_us, 0u);
  EXPECT_GT(stats.embed_us, 0u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
  EXPECT_EQ(stats.batch_size_hist.size(), cfg.max_batch);
}

}  // namespace
}  // namespace gbm::serve
