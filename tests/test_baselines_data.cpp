// Baseline, dataset, pairing and metric tests.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/static_matchers.h"
#include "baselines/xlir.h"
#include "datasets/corpus.h"
#include "datasets/pairs.h"
#include "eval/metrics.h"
#include "eval/retrieval.h"
#include "frontend/frontend.h"
#include "frontend/lexer.h"
#include "ir/printer.h"

namespace gbm {
namespace {

using frontend::Lang;

std::unique_ptr<ir::Module> compile(const char* src, Lang lang = Lang::C) {
  return frontend::compile_source(src, lang, "Main");
}

// ---- feature extraction ----------------------------------------------------

TEST(Features, CountsConstantsStringsLoops) {
  auto m = compile(
      "int main(){ long s = 0; long i; for (i = 0; i < 17; i++) { s += 13; }"
      " puts(\"marker\"); print(s); return 0; }");
  const auto f = baselines::extract_features(*m);
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_GT(f.functions[0].instructions, 0);
  EXPECT_GT(f.functions[0].loops, 0);
  EXPECT_TRUE(f.functions[0].int_constants.count(17));
  EXPECT_TRUE(f.functions[0].int_constants.count(13));
  EXPECT_FALSE(f.functions[0].int_constants.count(0));  // trivial consts skipped
  EXPECT_EQ(f.strings.size(), 1u);
  EXPECT_NE(f.strings.find("marker\n"), f.strings.end());
}

TEST(Features, CalleeNamesRecorded) {
  auto m = compile(
      "long f(long x){ return x; } int main(){ print(f(read())); return 0; }");
  const auto feat = baselines::extract_features(*m);
  bool saw_user_call = false;
  for (const auto& fn : feat.functions) saw_user_call |= fn.callees.count("f") > 0;
  EXPECT_TRUE(saw_user_call);
}

TEST(Features, ArraySizes) {
  auto m = compile("int main(){ long a[12]; a[0]=1; print(a[0]); return 0; }");
  const auto feat = baselines::extract_features(*m);
  EXPECT_TRUE(feat.functions[0].array_sizes.count(12));
}

// ---- BinPro / B2SFinder ------------------------------------------------------

TEST(BinPro, SelfSimilarityBeatsCrossTask) {
  auto a1 = compile("int main(){ long i; long s=0; for(i=0;i<9;i++){s+=i*7;}"
                    " print(s); return 0; }");
  auto a2 = compile("int main(){ long k; long t=0; for(k=0;k<9;k++){t+=k*7;}"
                    " print(t); return 0; }");
  auto b = compile("int main(){ puts(\"completely different\"); print(1234567);"
                   " return 0; }");
  const auto fa1 = baselines::extract_features(*a1);
  const auto fa2 = baselines::extract_features(*a2);
  const auto fb = baselines::extract_features(*b);
  const double same = baselines::binpro_similarity(fa1, fa2);
  const double diff = baselines::binpro_similarity(fa1, fb);
  EXPECT_GT(same, diff);
  EXPECT_GE(same, 0.0);
  EXPECT_LE(same, 1.0001);
}

TEST(B2SFinder, WeightsFavourRareFeatures) {
  auto common = compile("int main(){ print(2); return 0; }");
  auto rare = compile("int main(){ print(987654); return 0; }");
  const auto fc = baselines::extract_features(*common);
  const auto fr = baselines::extract_features(*rare);
  std::vector<const baselines::ModuleFeatures*> corpus = {&fc, &fc, &fc, &fr};
  const auto w = baselines::B2SWeights::fit(corpus);
  EXPECT_GT(w.weight_constant(987654), w.weight_constant(2));
}

TEST(B2SFinder, SimilarityInRange) {
  auto a = compile("int main(){ long i; for(i=0;i<31;i++){ print(i); } return 0; }");
  auto b = compile("int main(){ long j; for(j=0;j<31;j++){ print(j); } return 0; }");
  const auto fa = baselines::extract_features(*a);
  const auto fb = baselines::extract_features(*b);
  const auto w = baselines::B2SWeights::fit({&fa, &fb});
  const double s = baselines::b2sfinder_similarity(fa, fb, w);
  EXPECT_GT(s, 0.4);  // near-identical programs
  EXPECT_LE(s, 1.0001);
}

// ---- LICCA --------------------------------------------------------------------

TEST(Licca, IdenticalSourcesScoreHigh) {
  const std::string src = "int main(){ long a = 1; print(a); return 0; }";
  EXPECT_NEAR(baselines::licca_similarity(src, src), 1.0, 1e-9);
}

TEST(Licca, RenamedIdentifiersStillMatch) {
  const std::string a = "int main(){ long alpha = 5; print(alpha * 2); return 0; }";
  const std::string b = "int main(){ long beta = 9; print(beta * 3); return 0; }";
  EXPECT_GT(baselines::licca_similarity(a, b), 0.9);  // normalised identifiers
}

TEST(Licca, DifferentStructureScoresLower) {
  const std::string a = "int main(){ long x = 1; print(x); return 0; }";
  const std::string b =
      "long f(long n){ if (n < 2) { return n; } return f(n-1)+f(n-2); }"
      "int main(){ long i; for(i=0;i<9;i++){ print(f(i)); } return 0; }";
  EXPECT_LT(baselines::licca_similarity(a, b),
            baselines::licca_similarity(a, a));
}

TEST(Calibration, FindsSeparatingThreshold) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.3f, 0.8f, 0.9f, 0.95f};
  const std::vector<float> labels = {0, 0, 0, 1, 1, 1};
  const float t = baselines::calibrate_threshold(scores, labels);
  EXPECT_GT(t, 0.3f);
  EXPECT_LE(t, 0.8f);
  EXPECT_DOUBLE_EQ(eval::confusion(scores, labels, t).f1(), 1.0);
}

// ---- XLIR -----------------------------------------------------------------------

TEST(Xlir, EncodePadsToMaxSeqAndRecordsRealLength) {
  baselines::XlirConfig cfg;
  cfg.max_seq = 32;
  baselines::XlirSystem sys(cfg);
  sys.fit_tokenizer({"add i64 sub"});
  const auto seq = sys.encode("add i64");
  EXPECT_EQ(seq.ids.size(), 32u);
  EXPECT_EQ(seq.real_len, 2);
  // Very long input: real_len capped at max_seq.
  std::string longtext;
  for (int i = 0; i < 100; ++i) longtext += "add ";
  EXPECT_EQ(sys.encode(longtext).real_len, 32);
}

TEST(Xlir, BothBackbonesTrainAndScore) {
  auto m1 = compile("int main(){ print(1); return 0; }");
  auto m2 = compile("int main(){ long i; for(i=0;i<3;i++){ print(i*i); } return 0; }");
  const std::string t1 = ir::print_module(*m1);
  const std::string t2 = ir::print_module(*m2);
  for (auto backbone :
       {baselines::XlirBackbone::LSTM, baselines::XlirBackbone::Transformer}) {
    baselines::XlirConfig cfg;
    cfg.backbone = backbone;
    cfg.max_seq = 48;
    cfg.embed_dim = 8;
    cfg.hidden = 8;
    baselines::XlirSystem sys(cfg);
    sys.fit_tokenizer({t1, t2});
    auto e1 = sys.encode(t1);
    auto e2 = sys.encode(t2);
    std::vector<baselines::XlirSystem::Sample> samples = {{&e1, &e1, 1.0f},
                                                          {&e1, &e2, 0.0f}};
    baselines::XlirSystem::TrainOptions topt;
    topt.epochs = 2;
    const double loss = sys.train(samples, topt);
    EXPECT_TRUE(std::isfinite(loss));
    const auto scores = sys.score(samples);
    for (float s : scores) {
      EXPECT_GE(s, 0.0f);
      EXPECT_LE(s, 1.0f);
    }
  }
}

TEST(Xlir, TransformerSeparatesToySequences) {
  // Regression test for the missing attention residual: without `x +` in
  // the block, every row collapses to the sequence mean and this fails.
  baselines::XlirConfig cfg;
  cfg.backbone = baselines::XlirBackbone::Transformer;
  cfg.max_seq = 32;
  cfg.embed_dim = 16;
  cfg.hidden = 16;
  baselines::XlirSystem sys(cfg);
  sys.fit_tokenizer({"add i64 mul sub", "load store ptr gep load store"});
  auto a = sys.encode("add i64 mul sub add i64 mul");
  auto b = sys.encode("load store ptr gep load store ptr");
  std::vector<baselines::XlirSystem::Sample> train = {
      {&a, &a, 1}, {&b, &b, 1}, {&a, &b, 0}, {&b, &a, 0}};
  baselines::XlirSystem::TrainOptions topt;
  topt.epochs = 60;
  topt.lr = 0.01f;
  sys.train(train, topt);
  const auto s = sys.score(train);
  EXPECT_GT(s[0], 0.5f);
  EXPECT_GT(s[1], 0.5f);
  EXPECT_LT(s[2], 0.5f);
  EXPECT_LT(s[3], 0.5f);
}

// ---- datasets -------------------------------------------------------------------

TEST(Corpus, DeterministicForSeed) {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 5;
  const auto a = data::generate_corpus(cfg);
  const auto b = data::generate_corpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].source, b[i].source);
}

TEST(Corpus, BrokenFractionProducesUncompilableFiles) {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 8;
  cfg.broken_fraction = 0.5;
  const auto files = data::generate_corpus(cfg);
  long broken = 0, compile_failures = 0;
  for (const auto& f : files) {
    broken += !f.intact;
    if (!f.intact) {
      try {
        frontend::compile_source(f.source, f.lang, f.unit_name);
      } catch (const frontend::CompileError&) {
        ++compile_failures;
      }
    }
  }
  EXPECT_GT(broken, 0);
  EXPECT_EQ(broken, compile_failures);  // every corrupted file really fails
}

TEST(Corpus, IntactFilesAllCompile) {
  auto cfg = data::clcdsa_config();
  cfg.broken_fraction = 0.0;
  cfg.solutions_per_task_per_lang = 2;
  const auto files = data::generate_corpus(cfg);
  for (const auto& f : files) {
    EXPECT_NO_THROW(frontend::compile_source(f.source, f.lang, f.unit_name))
        << f.task_id << " " << frontend::lang_name(f.lang) << "\n" << f.source;
  }
}

TEST(Corpus, CoversRequestedLanguages) {
  const auto files = data::generate_corpus(data::clcdsa_config());
  bool has_c = false, has_cpp = false, has_java = false;
  for (const auto& f : files) {
    has_c |= f.lang == Lang::C;
    has_cpp |= f.lang == Lang::Cpp;
    has_java |= f.lang == Lang::Java;
  }
  EXPECT_TRUE(has_c);
  EXPECT_TRUE(has_cpp);
  EXPECT_TRUE(has_java);
}

TEST(Pairs, LabelsMatchTasks) {
  std::vector<int> ta = {0, 0, 1, 1, 2, 2};
  std::vector<int> tb = {0, 1, 1, 2, 2, 2};
  data::PairConfig cfg;
  cfg.protocol = data::SplitProtocol::ByPair;
  const auto splits = data::make_pairs(ta, tb, cfg);
  auto check = [&](const std::vector<data::PairSpec>& pairs) {
    for (const auto& p : pairs) {
      const bool same_task = ta[p.a] == tb[p.b];
      EXPECT_EQ(p.label >= 0.5f, same_task);
    }
  };
  check(splits.train);
  check(splits.val);
  check(splits.test);
}

TEST(Pairs, ByTaskSplitHasNoTaskLeakage) {
  std::vector<int> tasks;
  for (int t = 0; t < 10; ++t)
    for (int k = 0; k < 4; ++k) tasks.push_back(t);
  data::PairConfig cfg;
  const auto splits = data::make_pairs(tasks, tasks, cfg, true);
  auto tasks_of = [&](const std::vector<data::PairSpec>& pairs) {
    std::set<int> out;
    for (const auto& p : pairs) {
      out.insert(tasks[p.a]);
      out.insert(tasks[p.b]);
    }
    return out;
  };
  const auto train_tasks = tasks_of(splits.train);
  const auto test_tasks = tasks_of(splits.test);
  for (int t : test_tasks) EXPECT_EQ(train_tasks.count(t), 0u);
}

TEST(Pairs, RoughlyBalanced) {
  std::vector<int> tasks;
  for (int t = 0; t < 12; ++t)
    for (int k = 0; k < 4; ++k) tasks.push_back(t);
  const auto splits = data::make_pairs(tasks, tasks, {}, true);
  long pos = 0, neg = 0;
  for (const auto& p : splits.train) (p.label >= 0.5f ? pos : neg) += 1;
  EXPECT_GT(pos, 0);
  EXPECT_NEAR(static_cast<double>(pos), static_cast<double>(neg), pos * 0.2 + 2);
}

TEST(Pairs, ExcludeSameIndex) {
  std::vector<int> tasks = {0, 0, 0};
  data::PairConfig cfg;
  cfg.protocol = data::SplitProtocol::ByPair;
  cfg.train_frac = 1.0;
  cfg.val_frac = 0.0;
  const auto splits = data::make_pairs(tasks, tasks, cfg, true);
  for (const auto& p : splits.train) EXPECT_NE(p.a, p.b);
}

// ---- metrics ------------------------------------------------------------------

TEST(Metrics, ConfusionCounts) {
  const std::vector<float> scores = {0.9f, 0.2f, 0.7f, 0.4f};
  const std::vector<float> labels = {1, 1, 0, 0};
  const auto c = eval::confusion(scores, labels, 0.5f);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Metrics, EdgeCasesZeroDivision) {
  eval::Confusion c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Metrics, ThresholdSweepMonotoneRecall) {
  std::vector<float> scores, labels;
  tensor::RNG rng(3);
  for (int i = 0; i < 200; ++i) {
    const bool pos = rng.bernoulli(0.5);
    scores.push_back(static_cast<float>(rng.uniform(pos ? 0.3 : 0.0, pos ? 1.0 : 0.7)));
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const auto sweep =
      eval::threshold_sweep(scores, labels, {0.1f, 0.3f, 0.5f, 0.7f, 0.9f});
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LE(sweep[i].recall, sweep[i - 1].recall + 1e-9);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(eval::confusion({0.5f}, {1.0f, 0.0f}), std::invalid_argument);
}

// ---- retrieval metrics -------------------------------------------------------

TEST(Retrieval, PerfectRanking) {
  eval::RankedQuery q;
  q.scores = {0.9f, 0.5f, 0.1f};
  q.relevant = {true, false, false};
  const auto r = eval::evaluate_retrieval({q});
  EXPECT_DOUBLE_EQ(r.precision_at_1, 1.0);
  EXPECT_DOUBLE_EQ(r.mrr, 1.0);
  EXPECT_DOUBLE_EQ(r.hit_at_5, 1.0);
}

TEST(Retrieval, ReciprocalRankOfSecondPlace) {
  eval::RankedQuery q;
  q.scores = {0.9f, 0.8f, 0.1f};
  q.relevant = {false, true, false};
  const auto r = eval::evaluate_retrieval({q});
  EXPECT_DOUBLE_EQ(r.precision_at_1, 0.0);
  EXPECT_DOUBLE_EQ(r.mrr, 0.5);
}

TEST(Retrieval, AveragesOverQueries) {
  eval::RankedQuery hit;
  hit.scores = {0.9f, 0.1f};
  hit.relevant = {true, false};
  eval::RankedQuery miss;
  miss.scores = {0.9f, 0.1f};
  miss.relevant = {false, true};
  const auto r = eval::evaluate_retrieval({hit, miss});
  EXPECT_DOUBLE_EQ(r.precision_at_1, 0.5);
  EXPECT_DOUBLE_EQ(r.mrr, 0.75);
  EXPECT_EQ(r.queries, 2);
}

TEST(Retrieval, EmptyAndMismatch) {
  EXPECT_EQ(eval::evaluate_retrieval({}).queries, 0);
  eval::RankedQuery bad;
  bad.scores = {0.5f};
  EXPECT_THROW(eval::evaluate_retrieval({bad}), std::invalid_argument);
}

}  // namespace
}  // namespace gbm
