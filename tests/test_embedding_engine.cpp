// Two-stage inference engine tests: embed-then-head parity against the
// monolithic forward pass, cache hit/miss/eviction semantics, content-keyed
// deduplication, top-k determinism and tie-breaking, thread-count
// invariance, and the MatchingSystem save/load round trip (scores + topk).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/embedding_engine.h"
#include "core/pipeline.h"
#include "frontend/frontend.h"
#include "gnn/trainer.h"
#include "graph/program_graph.h"

namespace gbm::core {
namespace {

using tensor::RNG;
using tensor::Tensor;

gnn::EncodedGraph tiny_graph(long nodes, const std::vector<std::pair<int, int>>& edges,
                             int token_salt = 0, int bag_len = 2) {
  gnn::EncodedGraph g;
  g.num_nodes = nodes;
  g.bag_len = bag_len;
  for (long i = 0; i < nodes; ++i)
    for (int k = 0; k < bag_len; ++k)
      g.tokens.push_back(static_cast<int>(3 + (i + k + token_salt) % 4));
  for (auto [s, d] : edges) {
    g.edges[0].src.push_back(s);
    g.edges[0].dst.push_back(d);
    g.edges[0].pos.push_back(0);
  }
  for (auto& list : g.edges) {
    for (long i = 0; i < nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  return g;
}

gnn::GraphBinMatchModel make_model(std::uint64_t seed = 7, bool interaction = true) {
  gnn::ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.dropout = 0.2f;  // must not matter: all engine paths are inference mode
  cfg.interaction = interaction;
  RNG rng(seed);
  return gnn::GraphBinMatchModel(cfg, rng);
}

std::vector<gnn::EncodedGraph> graph_zoo() {
  std::vector<gnn::EncodedGraph> graphs;
  graphs.push_back(tiny_graph(3, {{0, 1}, {1, 2}}));
  graphs.push_back(tiny_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 1));
  graphs.push_back(tiny_graph(4, {{0, 3}, {3, 1}}, 2));
  graphs.push_back(tiny_graph(6, {{0, 1}, {2, 3}, {4, 5}, {5, 0}}, 3));
  return graphs;
}

TEST(ScoreHead, MatchesForwardLogit) {
  const auto model = make_model();
  const auto graphs = graph_zoo();
  for (const auto& a : graphs) {
    for (const auto& b : graphs) {
      RNG r1(1), r2(1);
      const float whole = model.forward_logit(a, b, false, r1).item();
      RNG ra(1), rb(1);
      const Tensor ea = model.embed_graph(a, false, ra);
      const Tensor eb = model.embed_graph(b, false, rb);
      const float staged = model.score_head(ea, eb, false, r2).item();
      EXPECT_NEAR(staged, whole, 1e-6f);
    }
  }
}

TEST(EmbeddingEngine, ScoreMatchesPredictOnEveryPair) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto graphs = graph_zoo();
  for (const auto& a : graphs) {
    for (const auto& b : graphs) {
      const float direct = model.predict(a, b);
      const float staged = engine.score(engine.embed(a), engine.embed(b));
      EXPECT_NEAR(staged, direct, 1e-6f);
    }
  }
}

TEST(EmbeddingEngine, ScorePairsMatchesPairwisePredict) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto graphs = graph_zoo();
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : graphs)
    for (const auto& b : graphs) pairs.push_back({&a, &b, 0.0f});
  const auto scores = engine.score_pairs(pairs, 2);
  ASSERT_EQ(scores.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_NEAR(scores[i], model.predict(*pairs[i].a, *pairs[i].b), 1e-6f);
}

TEST(EmbeddingEngine, ThreadCountInvariance) {
  const auto model = make_model();
  const auto graphs = graph_zoo();
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : graphs)
    for (const auto& b : graphs) pairs.push_back({&a, &b, 0.0f});
  // Fresh engine per worker count so the cache cannot mask differences.
  const auto s1 = EmbeddingEngine(model).score_pairs(pairs, 1);
  const auto s2 = EmbeddingEngine(model).score_pairs(pairs, 2);
  const auto s8 = EmbeddingEngine(model).score_pairs(pairs, 8);
  ASSERT_EQ(s1.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Bitwise equality: the same float ops run regardless of worker count.
    EXPECT_EQ(s1[i], s2[i]);
    EXPECT_EQ(s1[i], s8[i]);
  }
}

TEST(PredictScores, ThreadCountInvariantAndMatchesPredict) {
  const auto model = make_model();
  const auto graphs = graph_zoo();
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : graphs)
    for (const auto& b : graphs) pairs.push_back({&a, &b, 0.0f});
  const auto s1 = gnn::predict_scores(model, pairs, 1);
  const auto s4 = gnn::predict_scores(model, pairs, 4);
  ASSERT_EQ(s1.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(s1[i], s4[i]);
    EXPECT_NEAR(s1[i], model.predict(*pairs[i].a, *pairs[i].b), 1e-6f);
  }
}

TEST(EmbeddingEngine, ChunkedBatchMatchesPerGraphPath) {
  const auto model = make_model();
  const auto graphs = graph_zoo();
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);
  EmbeddingEngineConfig per_graph;
  per_graph.cache_capacity = 0;
  per_graph.batch_chunk = 1;
  const auto base = EmbeddingEngine(model, per_graph).embed_batch(ptrs, 1);
  for (std::size_t chunk : {2u, 3u, 100u}) {
    EmbeddingEngineConfig cfg;
    cfg.cache_capacity = 0;
    cfg.batch_chunk = chunk;
    const auto batched = EmbeddingEngine(model, cfg).embed_batch(ptrs, 1);
    ASSERT_EQ(batched.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(batched[i].size(), base[i].size());
      for (std::size_t c = 0; c < base[i].size(); ++c)
        EXPECT_NEAR(batched[i][c], base[i][c], 1e-5)
            << "chunk " << chunk << " graph " << i << " col " << c;
    }
  }
}

TEST(EmbeddingEngine, BatchDedupsByContentAndGroupsBagLens) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto a = tiny_graph(3, {{0, 1}, {1, 2}});
  const auto a_copy = tiny_graph(3, {{0, 1}, {1, 2}});  // same content
  const auto wide = tiny_graph(4, {{0, 3}}, 1, /*bag_len=*/4);
  const auto out = engine.embed_batch({&a, &wide, &a_copy}, 2);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], out[2]);  // deduplicated by content hash
  EXPECT_EQ(engine.cache_stats().misses, 3u);  // every input probed the cache
  EXPECT_EQ(EmbeddingEngine(model).embed(a), out[0]);
  EXPECT_EQ(EmbeddingEngine(model).embed(wide), out[1]);
}

TEST(EmbeddingCache, HitMissEvictionStats) {
  const auto model = make_model();
  EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 2;
  const EmbeddingEngine engine(model, cfg);
  const auto g1 = tiny_graph(3, {{0, 1}});
  const auto g2 = tiny_graph(4, {{0, 1}, {1, 2}}, 1);
  const auto g3 = tiny_graph(5, {{0, 1}, {2, 3}}, 2);

  engine.embed(g1);  // miss, cached
  engine.embed(g2);  // miss, cached
  engine.embed(g1);  // hit (refreshes g1 to most-recent)
  engine.embed(g3);  // miss, evicts g2 (LRU)
  engine.embed(g2);  // miss again
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
}

TEST(EmbeddingCache, ContentKeyedAcrossObjects) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  // Two distinct objects, identical content: one compute, one hit.
  const auto g1 = tiny_graph(4, {{0, 1}, {1, 2}});
  const auto g2 = tiny_graph(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(encoded_graph_key(g1), encoded_graph_key(g2));
  const auto e1 = engine.embed(g1);
  const auto e2 = engine.embed(g2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  // Different content hashes differently (with overwhelming probability).
  EXPECT_NE(encoded_graph_key(g1), encoded_graph_key(tiny_graph(4, {{0, 1}})));
}

TEST(EmbeddingCache, ZeroCapacityDisables) {
  const auto model = make_model();
  EmbeddingEngineConfig cfg;
  cfg.cache_capacity = 0;
  const EmbeddingEngine engine(model, cfg);
  const auto g = tiny_graph(3, {{0, 1}});
  engine.embed(g);
  engine.embed(g);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 2u);
}

TEST(EmbeddingIndex, TopkDeterministicWithIdTieBreak) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto graphs = graph_zoo();
  EmbeddingIndex index(engine);
  // ids 0 and 1 share one embedding → guaranteed score tie → id order.
  const Embedding dup = engine.embed(graphs[0]);
  index.add(dup);
  index.add(dup);
  index.add(engine.embed(graphs[1]));
  index.add(engine.embed(graphs[2]));

  const Embedding query = engine.embed(graphs[3]);
  const auto hits = index.topk(query, 4);
  ASSERT_EQ(hits.size(), 4u);
  // Exact rerank scores match the engine's head on the stored embeddings.
  for (const auto& h : hits)
    EXPECT_EQ(h.score, engine.score(query, index.embedding(h.id)));
  // The duplicate pair ties and must appear in id order, adjacently.
  for (std::size_t i = 0; i + 1 < hits.size(); ++i) {
    EXPECT_GE(hits[i].score, hits[i + 1].score);
    if (hits[i].score == hits[i + 1].score) {
      EXPECT_LT(hits[i].id, hits[i + 1].id);
    }
  }
  // Repeated queries are identical.
  const auto again = index.topk(query, 4);
  ASSERT_EQ(again.size(), hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(again[i].id, hits[i].id);
    EXPECT_EQ(again[i].score, hits[i].score);
  }
  // k larger than the index truncates to size; k <= 0 is empty.
  EXPECT_EQ(index.topk(query, 100).size(), index.size());
  EXPECT_TRUE(index.topk(query, 0).empty());
}

TEST(EmbeddingIndex, AddAfterQueryInvalidatesCenteredCache) {
  // topk caches mean-centered rows on first use; an add() moves the
  // centering mean, so a stale cache would score every old row against the
  // wrong mean. Parity oracle: a fresh index built with the final contents.
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto graphs = graph_zoo();
  EmbeddingIndex warm(engine);
  for (std::size_t i = 0; i + 2 < graphs.size(); ++i)
    warm.add(engine.embed(graphs[i]));
  const Embedding query = engine.embed(graphs.back());
  (void)warm.topk(query, 3);  // populate the cache
  warm.add(engine.embed(graphs[graphs.size() - 2]));  // mean moves

  EmbeddingIndex fresh(engine);
  for (std::size_t i = 0; i + 1 < graphs.size(); ++i)
    fresh.add(engine.embed(graphs[i]));
  const auto got = warm.topk(query, 4);
  const auto want = fresh.topk(query, 4);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].cosine, want[i].cosine);
    EXPECT_EQ(got[i].score, want[i].score);
  }

  // clear() also invalidates: a reused index matches a brand-new one.
  warm.clear();
  warm.add(engine.embed(graphs[0]));
  EmbeddingIndex tiny(engine);
  tiny.add(engine.embed(graphs[0]));
  const auto got2 = warm.topk(query, 1);
  const auto want2 = tiny.topk(query, 1);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(got2[0].cosine, want2[0].cosine);
}

TEST(EmbeddingIndex, QuerySideBUsesFlippedHead) {
  const auto model = make_model();
  const EmbeddingEngine engine(model);
  const auto graphs = graph_zoo();
  EmbeddingIndex index(engine);
  for (std::size_t i = 0; i + 1 < graphs.size(); ++i)
    index.add(engine.embed(graphs[i]));
  const Embedding query = engine.embed(graphs.back());
  const auto hits = index.topk(query, 3, 0, QuerySide::B);
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits)
    EXPECT_EQ(h.score, engine.score(index.embedding(h.id), query));
}

// ---- MatchingSystem-level behaviour on a real compiled corpus ------------

struct TrainedSystem {
  std::vector<graph::ProgramGraph> graphs;
  std::vector<gnn::EncodedGraph> encoded;
  std::unique_ptr<MatchingSystem> sys;
};

TrainedSystem trained_system() {
  const char* sources[] = {
      "int main(){ print(1); return 0; }",
      "int main(){ long s=0; long i; for(i=0;i<7;i++){ s+=i*3; } print(s);"
      " return 0; }",
      "int main(){ puts(\"xyz\"); print(999983); return 0; }",
      "int main(){ long a = 2; long b = 40; print(a + b); return 0; }",
  };
  TrainedSystem out;
  for (const char* src : sources) {
    auto module = frontend::compile_source(src, frontend::Lang::C, "Main");
    out.graphs.push_back(graph::build_graph(*module));
  }
  MatchingSystem::Config cfg;
  cfg.model.vocab = 64;
  cfg.model.embed_dim = 8;
  cfg.model.hidden = 8;
  cfg.model.layers = 1;
  cfg.model.interaction = true;
  out.sys = std::make_unique<MatchingSystem>(cfg);
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : out.graphs) ptrs.push_back(&g);
  out.sys->fit_tokenizer(ptrs);
  for (const auto& g : out.graphs) out.encoded.push_back(out.sys->encode(g));
  std::vector<gnn::PairSample> train = {{&out.encoded[0], &out.encoded[0], 1.0f},
                                        {&out.encoded[1], &out.encoded[1], 1.0f},
                                        {&out.encoded[0], &out.encoded[1], 0.0f},
                                        {&out.encoded[1], &out.encoded[2], 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 4;
  out.sys->train(train, tcfg);
  return out;
}

TEST(MatchingSystem, ScorePairsMatchesPairwiseScore) {
  auto ts = trained_system();
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : ts.encoded)
    for (const auto& b : ts.encoded) pairs.push_back({&a, &b, 0.0f});
  const auto batch = ts.sys->score_pairs(pairs);
  ASSERT_EQ(batch.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_NEAR(batch[i], ts.sys->score(*pairs[i].a, *pairs[i].b), 1e-6f);
}

TEST(MatchingSystem, TopkRequiresIndex) {
  auto ts = trained_system();
  EXPECT_THROW(ts.sys->topk(ts.encoded[0], 3), std::logic_error);
}

TEST(MatchingSystem, EngineRequiresModel) {
  MatchingSystem sys(MatchingSystem::Config{});
  EXPECT_THROW(sys.engine(), std::logic_error);
  EXPECT_THROW(sys.score_pairs({}), std::logic_error);
  EXPECT_THROW(sys.embed_all({}), std::logic_error);
}

TEST(MatchingSystem, TrainInvalidatesCacheAndIndex) {
  auto ts = trained_system();
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& e : ts.encoded) ptrs.push_back(&e);
  const auto before = ts.sys->embed_all(ptrs);
  // Further training changes the parameters → the old embeddings must not
  // be served from the cache, and the stale index is dropped.
  std::vector<gnn::PairSample> more = {{&ts.encoded[0], &ts.encoded[1], 1.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 3;
  ts.sys->train(more, tcfg);
  EXPECT_THROW(ts.sys->topk(ts.encoded[0], 1), std::logic_error);
  const auto after = ts.sys->embed_all(ptrs);
  EXPECT_NE(before[0], after[0]);
}

TEST(MatchingSystem, SaveLoadRoundTripScoresAndTopk) {
  auto ts = trained_system();
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : ts.encoded)
    for (const auto& b : ts.encoded) pairs.push_back({&a, &b, 0.0f});
  const auto scores_before = ts.sys->score_pairs(pairs);
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& e : ts.encoded) ptrs.push_back(&e);
  ts.sys->embed_all(ptrs);
  const auto hits_before =
      ts.sys->topk(ts.encoded[3], 3, static_cast<int>(ptrs.size()));

  const std::string path = ::testing::TempDir() + "gbm_engine_roundtrip.bin";
  ts.sys->save(path);

  // Fresh system: same config + same corpus → same tokenizer; load weights.
  MatchingSystem restored(ts.sys->config());
  std::vector<const graph::ProgramGraph*> gptrs;
  for (const auto& g : ts.graphs) gptrs.push_back(&g);
  restored.fit_tokenizer(gptrs);
  restored.load(path);
  std::remove(path.c_str());

  const auto scores_after = restored.score_pairs(pairs);
  ASSERT_EQ(scores_after.size(), scores_before.size());
  for (std::size_t i = 0; i < scores_before.size(); ++i)
    EXPECT_NEAR(scores_after[i], scores_before[i], 1e-6f);

  restored.embed_all(ptrs);
  const auto hits_after =
      restored.topk(ts.encoded[3], 3, static_cast<int>(ptrs.size()));
  ASSERT_EQ(hits_after.size(), hits_before.size());
  for (std::size_t i = 0; i < hits_before.size(); ++i) {
    EXPECT_EQ(hits_after[i].id, hits_before[i].id);
    EXPECT_NEAR(hits_after[i].score, hits_before[i].score, 1e-6f);
  }
}

}  // namespace
}  // namespace gbm::core
