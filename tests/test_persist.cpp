// Persistence layer tests: graph / encoded-graph / tokenizer round trips,
// the content-addressed ArtifactStore (miss → compile → hit, corrupt entry
// → quarantine → recompute), MatchingSystem snapshots (save → fresh-system
// load → bit-identical serving), and the error paths — truncated,
// corrupted, wrong-version, and legacy files fail with descriptive
// std::runtime_error instead of producing garbage.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <memory>

#include "core/artifact_store.h"
#include "core/pipeline.h"
#include "datasets/corpus.h"
#include "frontend/frontend.h"
#include "gnn/trainer.h"
#include "tensor/serialize.h"

namespace gbm::core {
namespace {

/// Removes any stale store at TempDir()/name (leftovers from earlier runs)
/// and returns the path, so every test starts from a clean slate.
std::string fresh_store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  ArtifactStore::destroy(dir);
  return dir;
}

graph::ProgramGraph graph_of(const char* src, frontend::Lang lang = frontend::Lang::C) {
  auto m = frontend::compile_source(src, lang, "Main");
  return graph::build_graph(*m);
}

void expect_graphs_equal(const graph::ProgramGraph& a, const graph::ProgramGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.pool.size(), b.pool.size());
  for (std::uint32_t id = 0; id < a.pool.size(); ++id)
    EXPECT_EQ(a.pool.str(id), b.pool.str(id));
  for (long i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.nodes[i].kind, b.nodes[i].kind);
    EXPECT_EQ(a.nodes[i].text, b.nodes[i].text);
    EXPECT_EQ(a.nodes[i].full_text, b.nodes[i].full_text);
    EXPECT_EQ(a.nodes[i].function, b.nodes[i].function);
  }
  for (std::size_t k = 0; k < graph::kNumEdgeKinds; ++k) {
    EXPECT_EQ(a.edges[k].src, b.edges[k].src);
    EXPECT_EQ(a.edges[k].dst, b.edges[k].dst);
    EXPECT_EQ(a.edges[k].pos, b.edges[k].pos);
    EXPECT_EQ(a.in_offsets[k], b.in_offsets[k]);
    EXPECT_EQ(a.in_edges[k], b.in_edges[k]);
  }
}

// ---- graph / encoded-graph round trips ------------------------------------

TEST(Persist, GraphRoundTripIsExact) {
  const auto g = graph_of(
      "long f(long x){ return x * 2 + 1; }"
      "int main(){ long i; for(i=0;i<5;i++){ print(f(i)); } puts(\"done\");"
      " return 0; }");
  const auto bytes = serialize_graph(g);
  const auto restored = deserialize_graph(bytes);
  EXPECT_TRUE(restored.finalized());
  expect_graphs_equal(g, restored);
}

TEST(Persist, EmptyGraphRoundTrips) {
  const graph::ProgramGraph g;
  auto restored = deserialize_graph(serialize_graph(g));
  EXPECT_EQ(restored.num_nodes(), 0);
  EXPECT_EQ(restored.num_edges(), 0);
}

TEST(Persist, EncodedGraphRoundTripIsExact) {
  const auto g = graph_of("int main(){ long a = read(); print(a + 41); return 0; }");
  const auto tk = tok::Tokenizer::train({"add i64 [VAR] , 41"}, 64);
  const auto enc = gnn::encode_graph(g, tk, 8, true);
  const auto restored = deserialize_encoded_graph(serialize_encoded_graph(enc));
  EXPECT_EQ(restored.num_nodes, enc.num_nodes);
  EXPECT_EQ(restored.bag_len, enc.bag_len);
  EXPECT_EQ(restored.tokens, enc.tokens);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(restored.edges[k].src, enc.edges[k].src);
    EXPECT_EQ(restored.edges[k].dst, enc.edges[k].dst);
    EXPECT_EQ(restored.edges[k].pos, enc.edges[k].pos);
  }
}

TEST(Persist, GraphTruncatedAtEveryPrefixThrows) {
  const auto g = graph_of("int main(){ print(7); return 0; }");
  const auto bytes = serialize_graph(g);
  // Every strict prefix must throw (never crash, never return junk).
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                          std::size_t{9}, bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(deserialize_graph(prefix), std::runtime_error) << "cut=" << cut;
  }
}

TEST(Persist, GraphBadMagicAndVersionThrow) {
  const auto g = graph_of("int main(){ print(7); return 0; }");
  auto bytes = serialize_graph(g);
  auto wrong_version = bytes;
  wrong_version[4] = 0x7f;  // version field follows the 4-byte magic
  EXPECT_THROW(deserialize_graph(wrong_version), std::runtime_error);
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(deserialize_graph(bad_magic), std::runtime_error);
}

TEST(Persist, GraphCorruptedEdgeEndpointThrows) {
  const auto g = graph_of("int main(){ print(7); return 0; }");
  auto bytes = serialize_graph(g);
  // Flip bytes in the trailing edge arrays until an endpoint leaves the
  // node range; deserialisation must catch it rather than build a graph
  // with dangling edges.
  bool threw = false;
  for (std::size_t at = bytes.size() - 5; at < bytes.size(); ++at) {
    auto corrupted = bytes;
    corrupted[at] = 0xff;
    try {
      (void)deserialize_graph(corrupted);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

// ---- tokenizer vocabulary persistence -------------------------------------

TEST(Persist, TokenizerSaveLoadRoundTrip) {
  const auto tk = tok::Tokenizer::train(
      {"%v1 = add i64 %v0, 42", "call void @gbm_print_i64(i64 %v3)", "ret"}, 128);
  const std::string path = ::testing::TempDir() + "gbm_vocab_roundtrip.bin";
  tk.save(path);
  const auto restored = tok::Tokenizer::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(restored.vocab_size(), tk.vocab_size());
  for (int i = 0; i < tk.vocab_size(); ++i)
    EXPECT_EQ(restored.token_of(i), tk.token_of(i));
  EXPECT_EQ(restored.fingerprint(), tk.fingerprint());
  EXPECT_EQ(restored.encode("%v9 = add i64 %v0, 42", 8),
            tk.encode("%v9 = add i64 %v0, 42", 8));
}

TEST(Persist, TokenizerLoadErrorPaths) {
  EXPECT_THROW(tok::Tokenizer::load("/nonexistent/vocab.bin"), std::runtime_error);
  const auto tk = tok::Tokenizer::train({"a b c"}, 16);
  tensor::io::Writer w;
  tk.write(w);
  auto bytes = w.buffer();
  bytes.resize(bytes.size() / 2);  // truncate
  tensor::io::Reader r(bytes, "test");
  EXPECT_THROW(tok::Tokenizer::read(r), std::runtime_error);
}

// ---- artifact store -------------------------------------------------------

std::vector<data::SourceFile> small_corpus() {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 3;
  cfg.solutions_per_task_per_lang = 1;
  cfg.broken_fraction = 0.2;  // include non-compilable files
  return data::generate_corpus(cfg);
}

TEST(ArtifactStore, ColdMissesThenWarmHits) {
  const std::string dir = fresh_store_dir("gbm_store_warm");
  const ArtifactStore store(dir);
  const auto files = small_corpus();
  ArtifactOptions opts;
  opts.side = Side::Binary;

  const auto cold = build_artifacts(files, opts, store, 2);
  const auto s1 = store.stats();
  EXPECT_EQ(s1.hits, 0u);
  EXPECT_EQ(s1.misses, files.size());
  long ok_count = 0;
  for (const auto& a : cold) ok_count += a.ok;
  EXPECT_EQ(s1.writes, static_cast<std::uint64_t>(ok_count));  // failures not stored

  const auto warm = build_artifacts(files, opts, store, 2);
  const auto s2 = store.stats();
  EXPECT_EQ(s2.hits, static_cast<std::uint64_t>(ok_count));
  EXPECT_EQ(s2.writes, s1.writes);  // nothing recompiled got re-stored

  // Store-served artifacts are identical to compiled ones.
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].ok, cold[i].ok);
    EXPECT_EQ(warm[i].stage, cold[i].stage);
    EXPECT_EQ(warm[i].task_index, cold[i].task_index);
    EXPECT_EQ(warm[i].lang, cold[i].lang);
    EXPECT_EQ(warm[i].error, cold[i].error);
    EXPECT_EQ(warm[i].ir_instructions, cold[i].ir_instructions);
    EXPECT_EQ(warm[i].binary_code_size, cold[i].binary_code_size);
    if (cold[i].ok) expect_graphs_equal(warm[i].graph, cold[i].graph);
  }
}

TEST(ArtifactStore, KeySeparatesContentAndOptions) {
  data::SourceFile f;
  f.source = "int main(){ print(1); return 0; }";
  f.lang = frontend::Lang::C;
  f.unit_name = "Main";
  ArtifactOptions a;
  ArtifactOptions b_side = a;
  b_side.side = Side::Binary;
  ArtifactOptions b_opt = a;
  b_opt.opt_level = opt::OptLevel::O0;
  data::SourceFile f2 = f;
  f2.source += " ";
  data::SourceFile f3 = f;
  f3.task_index = 9;
  EXPECT_NE(ArtifactStore::key(f, a), ArtifactStore::key(f, b_side));
  EXPECT_NE(ArtifactStore::key(f, a), ArtifactStore::key(f, b_opt));
  EXPECT_NE(ArtifactStore::key(f, a), ArtifactStore::key(f2, a));
  EXPECT_NE(ArtifactStore::key(f, a), ArtifactStore::key(f3, a));
  EXPECT_EQ(ArtifactStore::key(f, a), ArtifactStore::key(f, a));
}

TEST(ArtifactStore, CorruptedEntryQuarantinedAndRecomputed) {
  const std::string dir = fresh_store_dir("gbm_store_corrupt");
  const ArtifactStore store(dir);
  data::SourceFile f;
  f.source = "int main(){ print(1); return 0; }";
  f.lang = frontend::Lang::C;
  f.unit_name = "Main";
  const ArtifactOptions opts;
  const std::uint64_t key = ArtifactStore::key(f, opts);
  store.put(key, build_artifact(f, opts));
  ASSERT_TRUE(store.contains(key));
  const std::string path = store.path_for(key);
  // Truncate the stored file.
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("GBMA", fp);  // magic only
    std::fclose(fp);
  }
  // A poisoned entry must not take the service down: load() moves the bytes
  // aside to <store>/quarantine/ and reports a miss.
  EXPECT_FALSE(store.load(key).has_value());
  auto stats = store.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_FALSE(store.contains(key));  // moved out of the flat layout
  const std::string quarantined_path =
      store.quarantine_dir() + path.substr(path.find_last_of('/'));
  std::FILE* moved = std::fopen(quarantined_path.c_str(), "rb");
  ASSERT_NE(moved, nullptr);  // bytes preserved for post-mortem
  std::fclose(moved);

  // Store-aware builds fall through to recompute and re-persist.
  const auto rebuilt = build_artifacts({f}, opts, store, 1);
  ASSERT_EQ(rebuilt.size(), 1u);
  EXPECT_TRUE(rebuilt[0].ok);
  EXPECT_TRUE(store.contains(key));
  stats = store.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_TRUE(store.load(key).has_value());  // healthy again

  // destroy() removes the quarantine directory along with the store.
  ArtifactStore::destroy(dir);
  EXPECT_EQ(std::fopen(quarantined_path.c_str(), "rb"), nullptr);
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
}

TEST(ArtifactStore, EvictDropsLeastRecentlyUsedFirst) {
  const std::string dir = fresh_store_dir("gbm_store_evict");
  const ArtifactStore store(dir);
  data::SourceFile f;
  f.source = "int main(){ print(1); return 0; }";
  f.lang = frontend::Lang::C;
  f.unit_name = "Main";
  const ArtifactOptions opts;
  const Artifact artifact = build_artifact(f, opts);
  ASSERT_TRUE(artifact.ok);
  const std::uint64_t keys[3] = {101, 202, 303};
  for (const std::uint64_t k : keys) store.put(k, artifact);

  // Identical payloads → identical sizes; grab one for budget arithmetic.
  struct ::stat st;
  ASSERT_EQ(::stat(store.path_for(keys[0]).c_str(), &st), 0);
  const std::uint64_t sz = static_cast<std::uint64_t>(st.st_size);
  ASSERT_GT(sz, 0u);

  // Pin access times explicitly (mtime untouched): keys[0] oldest.
  const auto set_atime = [&](std::uint64_t key, long sec) {
    struct timespec times[2];
    times[0].tv_sec = sec;
    times[0].tv_nsec = 0;
    times[1].tv_sec = 0;
    times[1].tv_nsec = UTIME_OMIT;
    ASSERT_EQ(::utimensat(AT_FDCWD, store.path_for(key).c_str(), times, 0), 0);
  };
  set_atime(keys[0], 1000);
  set_atime(keys[1], 2000);
  set_atime(keys[2], 3000);

  // Under budget: nothing happens.
  EXPECT_EQ(store.evict(3 * sz), 0u);
  EXPECT_EQ(store.stats().evicted, 0u);

  // One entry over budget: the oldest-accessed entry goes, the rest stay.
  EXPECT_EQ(store.evict(2 * sz), 1u);
  EXPECT_FALSE(store.contains(keys[0]));
  EXPECT_TRUE(store.contains(keys[1]));
  EXPECT_TRUE(store.contains(keys[2]));
  EXPECT_EQ(store.stats().evicted, 1u);

  // A hit refreshes recency: re-age both, touch keys[1] through load(), and
  // the next eviction must take keys[2] even though its pinned atime was
  // newer before the hit.
  set_atime(keys[1], 1000);
  set_atime(keys[2], 2000);
  ASSERT_TRUE(store.load(keys[1]).has_value());
  EXPECT_EQ(store.evict(sz), 1u);
  EXPECT_TRUE(store.contains(keys[1]));
  EXPECT_FALSE(store.contains(keys[2]));

  // Budget 0 empties the store.
  EXPECT_EQ(store.evict(0), 1u);
  EXPECT_FALSE(store.contains(keys[1]));
  EXPECT_EQ(store.stats().evicted, 3u);
  ArtifactStore::destroy(dir);
}

TEST(ArtifactStore, MissingKeyIsMissNotError) {
  const std::string dir = fresh_store_dir("gbm_store_miss");
  const ArtifactStore store(dir);
  EXPECT_FALSE(store.contains(12345));
  EXPECT_FALSE(store.load(12345).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
}

// ---- MatchingSystem snapshots ---------------------------------------------

struct TrainedSystem {
  std::vector<graph::ProgramGraph> graphs;
  std::vector<gnn::EncodedGraph> encoded;
  std::unique_ptr<MatchingSystem> sys;
};

TrainedSystem trained_system(MatchingSystem::Config cfg = [] {
  MatchingSystem::Config c;
  c.model.vocab = 64;
  c.model.embed_dim = 8;
  c.model.hidden = 8;
  c.model.layers = 1;
  c.model.interaction = true;
  return c;
}()) {
  const char* sources[] = {
      "int main(){ print(1); return 0; }",
      "int main(){ long s=0; long i; for(i=0;i<7;i++){ s+=i*3; } print(s);"
      " return 0; }",
      "int main(){ puts(\"xyz\"); print(999983); return 0; }",
      "int main(){ long a = 2; long b = 40; print(a + b); return 0; }",
  };
  TrainedSystem out;
  for (const char* src : sources) out.graphs.push_back(graph_of(src));
  out.sys = std::make_unique<MatchingSystem>(cfg);
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : out.graphs) ptrs.push_back(&g);
  out.sys->fit_tokenizer(ptrs);
  for (const auto& g : out.graphs) out.encoded.push_back(out.sys->encode(g));
  std::vector<gnn::PairSample> train = {{&out.encoded[0], &out.encoded[0], 1.0f},
                                        {&out.encoded[1], &out.encoded[1], 1.0f},
                                        {&out.encoded[0], &out.encoded[1], 0.0f},
                                        {&out.encoded[1], &out.encoded[2], 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 4;
  out.sys->train(train, tcfg);
  return out;
}

TEST(Snapshot, FreshSystemServesBitIdentically) {
  auto ts = trained_system();
  std::vector<const gnn::EncodedGraph*> ptrs;
  for (const auto& e : ts.encoded) ptrs.push_back(&e);
  ts.sys->embed_all(ptrs);
  const auto hits_before = ts.sys->topk(ts.encoded[2], 3);
  std::vector<gnn::PairSample> pairs;
  for (const auto& a : ts.encoded)
    for (const auto& b : ts.encoded) pairs.push_back({&a, &b, 0.0f});
  const auto scores_before = ts.sys->score_pairs(pairs);

  const std::string path = ::testing::TempDir() + "gbm_snapshot.bin";
  ts.sys->save(path);

  // A DEFAULT-constructed system: no fit_tokenizer, no training — the
  // snapshot alone must carry everything (the compile-once/serve-many
  // contract).
  MatchingSystem fresh{MatchingSystem::Config{}};
  fresh.load(path);
  std::remove(path.c_str());

  EXPECT_EQ(fresh.bag_len(), ts.sys->bag_len());
  EXPECT_EQ(fresh.tokenizer().fingerprint(), ts.sys->tokenizer().fingerprint());

  // Re-encode from the adopted tokenizer: must be byte-identical encodings.
  std::vector<gnn::EncodedGraph> re_encoded;
  for (const auto& g : ts.graphs) re_encoded.push_back(fresh.encode(g));
  for (std::size_t i = 0; i < re_encoded.size(); ++i)
    EXPECT_EQ(re_encoded[i].tokens, ts.encoded[i].tokens);

  // Served results are bit-identical (same params, same encodings, same
  // restored index — no retraining, no re-embedding).
  const auto hits_after = fresh.topk(re_encoded[2], 3);
  ASSERT_EQ(hits_after.size(), hits_before.size());
  for (std::size_t i = 0; i < hits_before.size(); ++i) {
    EXPECT_EQ(hits_after[i].id, hits_before[i].id);
    EXPECT_EQ(hits_after[i].score, hits_before[i].score);
    EXPECT_EQ(hits_after[i].cosine, hits_before[i].cosine);
  }
  std::vector<gnn::PairSample> re_pairs;
  for (const auto& a : re_encoded)
    for (const auto& b : re_encoded) re_pairs.push_back({&a, &b, 0.0f});
  const auto scores_after = fresh.score_pairs(re_pairs);
  ASSERT_EQ(scores_after.size(), scores_before.size());
  for (std::size_t i = 0; i < scores_before.size(); ++i)
    EXPECT_EQ(scores_after[i], scores_before[i]);
}

TEST(Snapshot, IndexIsOptional) {
  auto ts = trained_system();  // no embed_all → no index in the snapshot
  const std::string path = ::testing::TempDir() + "gbm_snapshot_noindex.bin";
  ts.sys->save(path);
  MatchingSystem fresh{MatchingSystem::Config{}};
  fresh.load(path);
  std::remove(path.c_str());
  // Model + tokenizer served; topk needs embed_all first, as documented.
  EXPECT_GT(fresh.tokenizer().vocab_size(), 3);
  EXPECT_THROW(fresh.topk(ts.encoded[0], 2), std::logic_error);
  const float s = fresh.score(ts.encoded[0], ts.encoded[1]);
  EXPECT_EQ(s, ts.sys->score(ts.encoded[0], ts.encoded[1]));
}

// Regression for the pre-snapshot footgun: load() used to restore raw
// params into whatever tokenizer/model happened to be in-process, silently
// producing garbage scores when the vocabularies differed. It must throw.
TEST(Snapshot, VocabMismatchThrowsDescriptively) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_snapshot_vocab.bin";
  ts.sys->save(path);

  MatchingSystem other{ts.sys->config()};
  // Fit on a different corpus → different vocabulary.
  const auto g = graph_of("int main(){ puts(\"completely different\"); return 0; }");
  other.fit_tokenizer({&g});
  ASSERT_NE(other.tokenizer().fingerprint(), ts.sys->tokenizer().fingerprint());
  try {
    other.load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("vocabulary mismatch"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Snapshot, SameVocabLoadsIntoFittedSystem) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_snapshot_samevocab.bin";
  ts.sys->save(path);
  // Same corpus → same tokenizer → load is allowed (the PR-2-era workflow).
  MatchingSystem other{ts.sys->config()};
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : ts.graphs) ptrs.push_back(&g);
  other.fit_tokenizer(ptrs);
  other.load(path);
  std::remove(path.c_str());
  EXPECT_EQ(other.score(ts.encoded[0], ts.encoded[1]),
            ts.sys->score(ts.encoded[0], ts.encoded[1]));
}

TEST(Snapshot, ModelConfigMismatchThrows) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_snapshot_cfg.bin";
  ts.sys->save(path);
  MatchingSystem::Config other_cfg = ts.sys->config();
  other_cfg.model.hidden = 16;  // different architecture
  auto other = trained_system(other_cfg);
  try {
    other.sys->load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("architecture mismatch"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Snapshot, LegacyParamsFileRejectedDescriptively) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_legacy_params.bin";
  // A params-only "GBMT" file — what save() wrote before snapshots existed.
  auto params = ts.sys->model().params();
  tensor::save_params(params, path);
  MatchingSystem fresh{MatchingSystem::Config{}};
  try {
    fresh.load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("legacy params-only"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Snapshot, TruncatedAndWrongVersionThrow) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_snapshot_trunc.bin";
  ts.sys->save(path);
  auto bytes = tensor::io::read_file(path, "test");
  for (double frac : {0.1, 0.5, 0.9}) {
    tensor::io::Writer w;
    const auto cut = static_cast<std::size_t>(static_cast<double>(bytes.size()) * frac);
    w.raw(bytes.data(), cut);
    w.to_file(path);
    MatchingSystem fresh{MatchingSystem::Config{}};
    EXPECT_THROW(fresh.load(path), std::runtime_error) << "frac=" << frac;
  }
  auto wrong_version = bytes;
  wrong_version[4] = 0x7e;
  tensor::io::Writer w;
  w.raw(wrong_version.data(), wrong_version.size());
  w.to_file(path);
  MatchingSystem fresh{MatchingSystem::Config{}};
  try {
    fresh.load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos) << e.what();
  }
  EXPECT_THROW(MatchingSystem{MatchingSystem::Config{}}.load("/nonexistent/snap.bin"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Snapshot, FailedLoadLeavesSystemIntact) {
  auto ts = trained_system();
  const std::string path = ::testing::TempDir() + "gbm_snapshot_intact.bin";
  ts.sys->save(path);
  MatchingSystem other{ts.sys->config()};
  const auto g = graph_of("int main(){ puts(\"other corpus entirely\"); return 0; }");
  other.fit_tokenizer({&g});
  const auto fp_before = other.tokenizer().fingerprint();
  EXPECT_THROW(other.load(path), std::runtime_error);
  // The mismatch was detected before any mutation.
  EXPECT_EQ(other.tokenizer().fingerprint(), fp_before);
  std::remove(path.c_str());
}

TEST(Snapshot, MidStreamFailureLeavesTrainedSystemServing) {
  // Header + tokenizer parse fine but the parameter chunk is truncated: the
  // load must throw WITHOUT touching the live model/engine — the caller
  // keeps the old system and it must still serve identical scores (a
  // half-adopted load used to leave the engine pointing at a freed model).
  auto ts = trained_system();
  const float want = ts.sys->score(ts.encoded[0], ts.encoded[1]);
  const std::string path = ::testing::TempDir() + "gbm_snapshot_midstream.bin";
  ts.sys->save(path);
  auto bytes = tensor::io::read_file(path, "test");
  tensor::io::Writer w;
  w.raw(bytes.data(), bytes.size() - 64);  // cut inside the params chunk
  w.to_file(path);
  EXPECT_THROW(ts.sys->load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_EQ(ts.sys->score(ts.encoded[0], ts.encoded[1]), want);
  const auto scores = ts.sys->score_pairs({{&ts.encoded[0], &ts.encoded[1], 0.0f}});
  EXPECT_EQ(scores[0], want);
}

// ---- corpus stats memory accounting ---------------------------------------

TEST(CorpusStats, MemoryAccountingShowsInterningWin) {
  const auto files = small_corpus();
  ArtifactOptions opts;
  opts.side = Side::Binary;
  const auto stats = corpus_stats(files, opts, 2);
  EXPECT_GT(stats.graphs, 0);
  EXPECT_EQ(stats.graphs, stats.decompiled);  // every decompiled file graphed
  EXPECT_GT(stats.memory.pool_bytes, 0u);
  EXPECT_GT(stats.memory.feature_refs, stats.memory.distinct_features);
  EXPECT_GT(stats.memory.dedup_ratio(), 1.0);
  EXPECT_LT(stats.memory.node_bytes + stats.memory.pool_bytes,
            stats.memory.legacy_bytes);
  EXPECT_FALSE(stats.memory_summary().empty());
}

}  // namespace
}  // namespace gbm::core
