// Backend and decompiler tests: encoder/decoder round-trip, VM execution
// against the interpreter oracle, and the full binary→lift→re-interpret
// property over the task corpus.
#include <gtest/gtest.h>

#include "backend/codegen.h"
#include "backend/vm.h"
#include "datasets/tasks.h"
#include "decompiler/lift.h"
#include "frontend/frontend.h"
#include "interp/interp.h"
#include "ir/verifier.h"
#include "opt/passes.h"

namespace gbm::backend {
namespace {

TEST(Isa, EncodeDecodeRoundTrip) {
  VBinary bin;
  bin.data = {1, 2, 3, 4, 5};
  bin.global_offsets = {0};
  VFunction fn;
  fn.name = "main";
  fn.arity = 2;
  fn.code.push_back({VOp::ENTER, 0, 0, 0, 32});
  fn.code.push_back({VOp::LDI, 3, 0, 0, -123456789});
  fn.code.push_back({VOp::ADD, 1, 2, 3, 0});
  fn.code.push_back({VOp::RET, 0, 0, 0, 0});
  bin.functions.push_back(fn);
  bin.entry = 0;

  const auto bytes = encode(bin);
  const VBinary decoded = decode(bytes);
  ASSERT_EQ(decoded.functions.size(), 1u);
  EXPECT_EQ(decoded.data, bin.data);
  EXPECT_EQ(decoded.entry, 0);
  EXPECT_EQ(decoded.functions[0].name, "main");
  EXPECT_EQ(decoded.functions[0].arity, 2);
  ASSERT_EQ(decoded.functions[0].code.size(), 4u);
  EXPECT_EQ(decoded.functions[0].code[1].imm, -123456789);
  EXPECT_EQ(decoded.functions[0].code[2].op, VOp::ADD);
  EXPECT_EQ(decoded.functions[0].code[2].c, 3);
}

TEST(Isa, DecodeRejectsGarbage) {
  EXPECT_THROW(decode({1, 2, 3}), std::runtime_error);
  std::vector<std::uint8_t> bad = {'V', 'B', 'I', 'N', 9, 9, 9, 9};
  EXPECT_THROW(decode(bad), std::runtime_error);
}

TEST(Isa, DisassembleMentionsFunctions) {
  auto m = frontend::compile_source("int main(){ print(1); return 0; }",
                                    frontend::Lang::C, "Main");
  const auto bin = compile_module(*m);
  const std::string dis = disassemble(bin);
  EXPECT_NE(dis.find("fn 0 <main>"), std::string::npos);
  EXPECT_NE(dis.find("syscall"), std::string::npos);
}

TEST(Vm, ExitCodeAndOutput) {
  auto m = frontend::compile_source("int main(){ print(7); return 3; }",
                                    frontend::Lang::C, "Main");
  const auto r = run_binary(compile_module(*m));
  EXPECT_FALSE(r.trapped);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.output, "7\n");
}

TEST(Vm, TrapsOnDivisionByZero) {
  auto m = frontend::compile_source(
      "int main(){ long a = read(); print(1 / a); return 0; }",
      frontend::Lang::C, "Main");
  const auto r = run_binary(compile_module(*m));
  EXPECT_TRUE(r.trapped);
}

TEST(Vm, FuelLimitStopsInfiniteLoops) {
  auto m = frontend::compile_source(
      "int main(){ long i = 0; while (1 > 0) { i = i + 1; } return 0; }",
      frontend::Lang::C, "Main");
  interp::ExecOptions opts;
  opts.fuel = 10000;
  const auto r = run_binary(compile_module(*m), opts);
  EXPECT_TRUE(r.trapped);
  EXPECT_NE(r.trap_message.find("fuel"), std::string::npos);
}

TEST(Vm, GccStyleProducesLargerCode) {
  auto m = frontend::compile_source(
      "int main(){ long s = 0; long i; for (i = 0; i < 5; i++) { s += i; }"
      " print(s); return 0; }",
      frontend::Lang::C, "Main");
  const auto clang_bin = compile_module(*m, CodegenStyle::VClang);
  const auto gcc_bin = compile_module(*m, CodegenStyle::VGcc);
  EXPECT_GT(gcc_bin.code_size(), clang_bin.code_size());
  // Same behaviour regardless of style.
  EXPECT_EQ(run_binary(clang_bin).output, run_binary(gcc_bin).output);
}

TEST(Decompiler, LiftedModuleVerifies) {
  auto m = frontend::compile_source(
      "long f(long a, long b) { return a * b + 2; }"
      "int main(){ print(f(read(), read())); return 0; }",
      frontend::Lang::C, "Main");
  auto lifted = decompiler::lift(compile_module(*m));
  const auto vr = ir::verify_module(*lifted);
  EXPECT_TRUE(vr.ok()) << vr.str();
}

TEST(Decompiler, FunctionsAreRenamed) {
  auto m = frontend::compile_source(
      "long helper(long a) { return a + 1; }"
      "int main(){ print(helper(1)); return 0; }",
      frontend::Lang::C, "Main");
  auto lifted = decompiler::lift(compile_module(*m));
  EXPECT_EQ(lifted->function("helper"), nullptr);  // symbol not trusted
  EXPECT_NE(lifted->function("main"), nullptr);    // entry recovered
  bool has_fn_name = false;
  for (const auto& fn : lifted->functions())
    has_fn_name = has_fn_name || fn->name().rfind("fn", 0) == 0;
  EXPECT_TRUE(has_fn_name);
}

TEST(Decompiler, TypesCollapseToI64) {
  auto m = frontend::compile_source(
      "int main(){ int x = read(); print(x + 1); return 0; }",
      frontend::Lang::C, "Main");
  auto lifted = decompiler::lift(compile_module(*m));
  // Lifted arithmetic is i64 (type loss); i32 survives only at memory ops.
  long i64_ops = 0, i32_ops = 0;
  for (const auto& fn : lifted->functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!ir::is_binary_int(inst->opcode())) continue;
        i64_ops += inst->type()->kind() == ir::TypeKind::I64;
        i32_ops += inst->type()->kind() == ir::TypeKind::I32;
      }
    }
  }
  EXPECT_GT(i64_ops, 0);
  EXPECT_EQ(i32_ops, 0);
}

TEST(Decompiler, RuntimeCallsRecognised) {
  auto m = frontend::compile_source("int main(){ print(read()); return 0; }",
                                    frontend::Lang::C, "Main");
  auto lifted = decompiler::lift(compile_module(*m));
  EXPECT_NE(lifted->function("gbm_print_i64"), nullptr);
  EXPECT_NE(lifted->function("gbm_read_i64"), nullptr);
}

TEST(Decompiler, RawLiftWithoutCleanupIsBigger) {
  auto m = frontend::compile_source(
      "int main(){ long s = 0; long i; for (i = 0; i < 4; i++) { s += i; }"
      " print(s); return 0; }",
      frontend::Lang::C, "Main");
  const auto bin = compile_module(*m);
  decompiler::LiftOptions raw;
  raw.cleanup = false;
  auto lifted_raw = decompiler::lift(bin, raw);
  auto lifted_clean = decompiler::lift(bin);
  EXPECT_GT(lifted_raw->instruction_count(), lifted_clean->instruction_count());
  // Both re-execute identically.
  EXPECT_EQ(interp::execute(*lifted_raw).output, interp::execute(*lifted_clean).output);
}

// ---- corpus-wide property: interp == VM == decompiled re-interp ------------

struct BinCase {
  int task;
  frontend::Lang lang;
  CodegenStyle style;
  opt::OptLevel level;
  std::string name;
};

std::vector<BinCase> bin_cases() {
  std::vector<BinCase> cases;
  const auto& tasks = data::all_tasks();
  for (int t = 0; t < static_cast<int>(tasks.size()); ++t) {
    const frontend::Lang lang = t % 3 == 0   ? frontend::Lang::C
                                : t % 3 == 1 ? frontend::Lang::Cpp
                                             : frontend::Lang::Java;
    const CodegenStyle style = t % 2 == 0 ? CodegenStyle::VClang : CodegenStyle::VGcc;
    const opt::OptLevel level = t % 4 == 0   ? opt::OptLevel::O0
                                : t % 4 == 1 ? opt::OptLevel::O1
                                : t % 4 == 2 ? opt::OptLevel::O2
                                             : opt::OptLevel::Oz;
    BinCase c;
    c.task = t;
    c.lang = lang;
    c.style = style;
    c.level = level;
    c.name = tasks[t].id + "_" + frontend::lang_name(lang) + "_" +
             style_name(style) + "_" + opt::opt_level_name(level);
    cases.push_back(std::move(c));
  }
  return cases;
}

class BinaryRoundTripTest : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinaryRoundTripTest, InterpVmAndLiftedAgree) {
  const BinCase& c = GetParam();
  const auto& task = data::all_tasks()[static_cast<std::size_t>(c.task)];
  const std::string src = task.emit(c.lang, 0, data::Style{});
  auto module = frontend::compile_source(src, c.lang, "Main");
  opt::optimize(*module, c.level);
  interp::ExecOptions opts;
  opts.input = task.sample_input;
  const auto reference = interp::execute(*module, opts);
  ASSERT_FALSE(reference.trapped) << reference.trap_message;

  const VBinary bin = decode(encode(compile_module(*module, c.style)));
  const auto vm_result = run_binary(bin, opts);
  EXPECT_FALSE(vm_result.trapped) << vm_result.trap_message;
  EXPECT_EQ(vm_result.output, reference.output);
  EXPECT_EQ(vm_result.exit_code, reference.exit_code);

  auto lifted = decompiler::lift(bin);
  ASSERT_TRUE(ir::verify_module(*lifted).ok()) << ir::verify_module(*lifted).str();
  const auto relifted = interp::execute(*lifted, opts);
  EXPECT_FALSE(relifted.trapped) << relifted.trap_message;
  EXPECT_EQ(relifted.output, reference.output);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, BinaryRoundTripTest,
                         ::testing::ValuesIn(bin_cases()),
                         [](const ::testing::TestParamInfo<BinCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace gbm::backend
