// End-to-end pipeline tests: artifact production on both sides, corpus
// statistics, and a miniature train/score cycle through the public API.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datasets/pairs.h"
#include "interp/interp.h"

namespace gbm::core {
namespace {

data::SourceFile make_file(const char* src, frontend::Lang lang, int task = 0) {
  data::SourceFile f;
  f.source = src;
  f.lang = lang;
  f.task_index = task;
  f.unit_name = "Main";
  return f;
}

TEST(Artifacts, SourceSideProducesGraph) {
  const auto artifact = build_artifact(
      make_file("int main(){ print(1); return 0; }", frontend::Lang::C), {});
  ASSERT_TRUE(artifact.ok) << artifact.error;
  EXPECT_GT(artifact.graph.num_nodes(), 0);
  EXPECT_GT(artifact.ir_instructions, 0);
  EXPECT_EQ(artifact.binary_code_size, 0);  // source side: no binary
}

TEST(Artifacts, BinarySideGoesThroughDecompiler) {
  ArtifactOptions opts;
  opts.side = Side::Binary;
  const auto artifact = build_artifact(
      make_file("int main(){ print(1); return 0; }", frontend::Lang::C), opts);
  ASSERT_TRUE(artifact.ok) << artifact.error;
  EXPECT_GT(artifact.binary_code_size, 0);
  EXPECT_GT(artifact.graph.num_nodes(), 0);
}

TEST(Artifacts, BinarySideGraphIsLarger) {
  const auto file = make_file(
      "int main(){ long s = 0; long i; for(i=0;i<5;i++){ s += i; } print(s);"
      " return 0; }",
      frontend::Lang::C);
  const auto src_art = build_artifact(file, {});
  ArtifactOptions bin_opts;
  bin_opts.side = Side::Binary;
  const auto bin_art = build_artifact(file, bin_opts);
  // Decompiled IR is typeless register code: bigger graphs.
  EXPECT_GT(bin_art.graph.num_nodes(), src_art.graph.num_nodes());
}

TEST(Artifacts, CompileErrorReported) {
  const auto artifact =
      build_artifact(make_file("int main({", frontend::Lang::C), {});
  EXPECT_FALSE(artifact.ok);
  EXPECT_FALSE(artifact.error.empty());
  EXPECT_EQ(artifact.graph.num_nodes(), 0);
}

TEST(Artifacts, OptLevelChangesGraph) {
  const auto file = make_file(
      "int main(){ long a = 2 * 3 + 4; print(a); return 0; }", frontend::Lang::C);
  ArtifactOptions o0;
  o0.opt_level = opt::OptLevel::O0;
  ArtifactOptions o2;
  o2.opt_level = opt::OptLevel::O2;
  const auto a0 = build_artifact(file, o0);
  const auto a2 = build_artifact(file, o2);
  EXPECT_LT(a2.graph.num_nodes(), a0.graph.num_nodes());
}

TEST(CorpusStats, CountsDecreaseMonotonically) {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 6;
  cfg.solutions_per_task_per_lang = 2;
  cfg.broken_fraction = 0.3;
  const auto files = data::generate_corpus(cfg);
  ArtifactOptions bin_opts;
  bin_opts.side = Side::Binary;
  const auto stats = corpus_stats(files, bin_opts);
  EXPECT_EQ(stats.sources, static_cast<long>(files.size()));
  EXPECT_LT(stats.ir_ok, stats.sources);  // corrupted files rejected
  EXPECT_LE(stats.binaries, stats.ir_ok);
  EXPECT_LE(stats.decompiled, stats.binaries);
  EXPECT_GT(stats.decompiled, 0);
}

TEST(MatchingSystem, RequiresTokenizerBeforeEncode) {
  MatchingSystem::Config cfg;
  MatchingSystem sys(cfg);
  graph::ProgramGraph g;
  EXPECT_THROW(sys.encode(g), std::logic_error);
}

TEST(MatchingSystem, RequiresTrainingBeforeScore) {
  MatchingSystem::Config cfg;
  MatchingSystem sys(cfg);
  gnn::EncodedGraph g;
  EXPECT_THROW(sys.score(g, g), std::logic_error);
}

TEST(MatchingSystem, BagLenFollowsCorpusRule) {
  const auto a = build_artifact(
      make_file("int main(){ print(1); return 0; }", frontend::Lang::C), {});
  MatchingSystem::Config cfg;
  MatchingSystem sys(cfg);
  sys.fit_tokenizer({&a.graph});
  // Power of two, at least 4.
  const int len = sys.bag_len();
  EXPECT_GE(len, 4);
  EXPECT_EQ(len & (len - 1), 0);
}

TEST(MatchingSystem, EndToEndTrainAndScore) {
  // Two tasks, two languages: a miniature version of the Table III setup.
  std::vector<data::SourceFile> files;
  files.push_back(make_file(
      "int main(){ long s=0; long i; for(i=0;i<7;i++){ s+=i*3; } print(s);"
      " return 0; }",
      frontend::Lang::C, 0));
  files.push_back(make_file(
      "class A { public static void main(String[] args) { int s=0;"
      " for (int i=0;i<7;i++){ s=s+i*3; } System.out.println(s); } }",
      frontend::Lang::Java, 0));
  files.push_back(make_file(
      "int main(){ puts(\"xyz\"); print(999983); return 0; }", frontend::Lang::C,
      1));
  files.push_back(make_file(
      "class A { public static void main(String[] args) {"
      " System.out.println(\"xyz\"); System.out.println(999983); } }",
      frontend::Lang::Java, 1));

  ArtifactOptions bin_opts;
  bin_opts.side = Side::Binary;
  const auto bin0 = build_artifact(files[0], bin_opts);
  const auto bin1 = build_artifact(files[2], bin_opts);
  const auto src0 = build_artifact(files[1], {});
  const auto src1 = build_artifact(files[3], {});
  ASSERT_TRUE(bin0.ok && bin1.ok && src0.ok && src1.ok);

  MatchingSystem::Config cfg;
  cfg.model.vocab = 128;
  cfg.model.embed_dim = 16;
  cfg.model.hidden = 16;
  cfg.model.layers = 1;
  cfg.model.interaction = true;
  cfg.model.dropout = 0.0f;
  MatchingSystem sys(cfg);
  sys.fit_tokenizer({&bin0.graph, &bin1.graph, &src0.graph, &src1.graph});
  auto e_bin0 = sys.encode(bin0.graph);
  auto e_bin1 = sys.encode(bin1.graph);
  auto e_src0 = sys.encode(src0.graph);
  auto e_src1 = sys.encode(src1.graph);

  std::vector<gnn::PairSample> train = {{&e_bin0, &e_src0, 1.0f},
                                        {&e_bin1, &e_src1, 1.0f},
                                        {&e_bin0, &e_src1, 0.0f},
                                        {&e_bin1, &e_src0, 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 80;
  tcfg.lr = 0.02f;
  tcfg.batch_size = 4;
  sys.train(train, tcfg);
  EXPECT_GT(sys.score(e_bin0, e_src0), 0.5f);
  EXPECT_GT(sys.score(e_bin1, e_src1), 0.5f);
  EXPECT_LT(sys.score(e_bin0, e_src1), 0.5f);
  EXPECT_LT(sys.score(e_bin1, e_src0), 0.5f);
}

}  // namespace
}  // namespace gbm::core
