// Optimiser tests: pass-specific units plus the semantics-preservation
// property — every pipeline level must leave observable behaviour unchanged
// on every task template.
#include <gtest/gtest.h>

#include "datasets/tasks.h"
#include "frontend/frontend.h"
#include "interp/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "opt/passes.h"

namespace gbm::opt {
namespace {

std::unique_ptr<ir::Module> compile(const char* src,
                                    frontend::Lang lang = frontend::Lang::C) {
  return frontend::compile_source(src, lang, "Main");
}

long count_op(const ir::Module& m, ir::Opcode op) {
  long n = 0;
  for (const auto& fn : m.functions())
    for (const auto& bb : fn->blocks())
      for (const auto& inst : bb->instructions()) n += inst->opcode() == op;
  return n;
}

TEST(Mem2Reg, PromotesScalarsRemovesAllocas) {
  auto m = compile("int main(){ long a = 1; long b = a + 2; print(b); return 0; }");
  const long before = count_op(*m, ir::Opcode::Alloca);
  EXPECT_GT(before, 0);
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) mem2reg(*fn);
  EXPECT_EQ(count_op(*m, ir::Opcode::Alloca), 0);
  EXPECT_TRUE(ir::verify_module(*m).ok()) << ir::verify_module(*m).str();
}

TEST(Mem2Reg, KeepsArrayAllocas) {
  auto m = compile("int main(){ long a[4]; a[0] = 1; print(a[0]); return 0; }");
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) mem2reg(*fn);
  EXPECT_GE(count_op(*m, ir::Opcode::Alloca), 1);  // the array stays
}

TEST(Mem2Reg, InsertsPhisForLoops) {
  auto m = compile(
      "int main(){ long s = 0; long i; for (i = 0; i < 5; i++) { s += i; }"
      " print(s); return 0; }");
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) mem2reg(*fn);
  EXPECT_GT(count_op(*m, ir::Opcode::Phi), 0);
  auto r = interp::execute(*m);
  EXPECT_EQ(r.output, "10\n");
}

TEST(ConstantFold, FoldsArithmeticChain) {
  auto m = compile("int main(){ print(2 * 3 + 4); return 0; }");
  for (const auto& fn : m->functions()) {
    if (fn->is_declaration()) continue;
    mem2reg(*fn);
    constant_fold(*fn);
    dead_code_elim(*fn);
  }
  EXPECT_EQ(count_op(*m, ir::Opcode::Mul), 0);
  EXPECT_EQ(count_op(*m, ir::Opcode::Add), 0);
  EXPECT_EQ(interp::execute(*m).output, "10\n");
}

TEST(ConstantFold, DoesNotFoldDivByZero) {
  const char* text =
      "declare void @gbm_print_i64(i64 %arg0)\n"
      "define i32 @main() {\n"
      "entry0:\n"
      "  %v1 = sdiv i64 7, 0\n"
      "  call void @gbm_print_i64(i64 %v1)\n"
      "  ret i32 0\n"
      "}\n";
  auto m = ir::parse_module(text);
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) constant_fold(*fn);
  EXPECT_EQ(count_op(*m, ir::Opcode::SDiv), 1);  // preserved: traps at runtime
  EXPECT_TRUE(interp::execute(*m).trapped);
}

TEST(ConstantFold, FoldsConstantBranch) {
  auto m = compile("int main(){ if (1 < 2) { print(1); } else { print(2); } return 0; }");
  for (const auto& fn : m->functions()) {
    if (fn->is_declaration()) continue;
    mem2reg(*fn);
    bool changed = true;
    while (changed) {
      changed = constant_fold(*fn);
      changed |= dead_code_elim(*fn);
      changed |= simplify_cfg(*fn);
    }
  }
  EXPECT_EQ(count_op(*m, ir::Opcode::CondBr), 0);
  EXPECT_EQ(interp::execute(*m).output, "1\n");
}

TEST(ConstantFold, AlgebraicIdentities) {
  const char* text =
      "declare void @gbm_print_i64(i64 %arg0)\n"
      "declare i64 @gbm_read_i64()\n"
      "define i32 @main() {\n"
      "entry0:\n"
      "  %v0 = call i64 @gbm_read_i64()\n"
      "  %v1 = add i64 %v0, 0\n"
      "  %v2 = mul i64 %v1, 1\n"
      "  %v3 = mul i64 %v2, 0\n"
      "  call void @gbm_print_i64(i64 %v3)\n"
      "  ret i32 0\n"
      "}\n";
  auto m = ir::parse_module(text);
  for (const auto& fn : m->functions()) {
    if (fn->is_declaration()) continue;
    constant_fold(*fn);
    dead_code_elim(*fn);
  }
  EXPECT_EQ(count_op(*m, ir::Opcode::Add), 0);
  EXPECT_EQ(count_op(*m, ir::Opcode::Mul), 0);
}

TEST(Dce, RemovesUnusedComputation) {
  const char* text =
      "define i32 @main() {\n"
      "entry0:\n"
      "  %v1 = add i64 1, 2\n"
      "  %v2 = mul i64 %v1, 3\n"
      "  ret i32 0\n"
      "}\n";
  auto m = ir::parse_module(text);
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) dead_code_elim(*fn);
  EXPECT_EQ(m->function("main")->instruction_count(), 1);  // just ret
}

TEST(Dce, KeepsSideEffects) {
  auto m = compile("int main(){ print(5); return 0; }");
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) dead_code_elim(*fn);
  EXPECT_EQ(count_op(*m, ir::Opcode::Call), 1);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks) {
  auto m = compile(
      "int main(){ return 1; print(9); return 0; }");  // code after return
  std::size_t blocks_before = m->function("main")->blocks().size();
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) simplify_cfg(*fn);
  EXPECT_LT(m->function("main")->blocks().size(), blocks_before);
  EXPECT_EQ(interp::execute(*m).exit_code, 1);
}

TEST(SimplifyCfg, MergesStraightLineChains) {
  auto m = compile("int main(){ if (read() > 0) { print(1); } print(2); return 0; }");
  for (const auto& fn : m->functions()) {
    if (fn->is_declaration()) continue;
    mem2reg(*fn);
    simplify_cfg(*fn);
  }
  interp::ExecOptions opts;
  opts.input = {5};
  EXPECT_EQ(interp::execute(*m, opts).output, "1\n2\n");
}

TEST(Inline, InlinesSmallCallee) {
  auto m = compile(
      "long square(long x) { return x * x; }"
      "int main(){ print(square(read())); return 0; }");
  inline_functions(*m, 40);
  // The call to square is gone from main.
  bool has_user_call = false;
  for (const auto& bb : m->function("main")->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == ir::Opcode::Call && inst->callee()->name() == "square")
        has_user_call = true;
  EXPECT_FALSE(has_user_call);
  interp::ExecOptions opts;
  opts.input = {6};
  EXPECT_EQ(interp::execute(*m, opts).output, "36\n");
  EXPECT_TRUE(ir::verify_module(*m).ok()) << ir::verify_module(*m).str();
}

TEST(Inline, SkipsRecursiveCallee) {
  auto m = compile(
      "long f(long n) { if (n <= 0) { return 1; } return n * f(n - 1); }"
      "int main(){ print(f(5)); return 0; }");
  inline_functions(*m, 1000);
  EXPECT_NE(m->function("f"), nullptr);
  EXPECT_EQ(interp::execute(*m).output, "120\n");
}

TEST(StrengthReduce, MulPowerOfTwoBecomesShift) {
  const char* text =
      "declare void @gbm_print_i64(i64 %arg0)\n"
      "declare i64 @gbm_read_i64()\n"
      "define i32 @main() {\n"
      "entry0:\n"
      "  %v0 = call i64 @gbm_read_i64()\n"
      "  %v1 = mul i64 %v0, 8\n"
      "  call void @gbm_print_i64(i64 %v1)\n"
      "  ret i32 0\n"
      "}\n";
  auto m = ir::parse_module(text);
  for (const auto& fn : m->functions())
    if (!fn->is_declaration()) strength_reduce(*fn);
  EXPECT_EQ(count_op(*m, ir::Opcode::Mul), 0);
  EXPECT_EQ(count_op(*m, ir::Opcode::Shl), 1);
  interp::ExecOptions opts;
  opts.input = {5};
  EXPECT_EQ(interp::execute(*m, opts).output, "40\n");
}

TEST(Pipelines, O1ShrinksInstructionCount) {
  auto m0 = compile(
      "int main(){ long s = 0; long i; for (i = 0; i < 8; i++) { s += i * 2; }"
      " print(s); return 0; }");
  auto m1 = compile(
      "int main(){ long s = 0; long i; for (i = 0; i < 8; i++) { s += i * 2; }"
      " print(s); return 0; }");
  optimize(*m1, OptLevel::O1);
  EXPECT_LT(m1->instruction_count(), m0->instruction_count());
  EXPECT_EQ(interp::execute(*m0).output, interp::execute(*m1).output);
}

TEST(Pipelines, LevelNamesRoundTrip) {
  for (OptLevel level : {OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3,
                         OptLevel::Oz})
    EXPECT_EQ(opt_level_from_name(opt_level_name(level)), level);
  EXPECT_THROW(opt_level_from_name("O9"), std::invalid_argument);
}

// ---- semantics preservation property --------------------------------------

struct OptCase {
  int task;
  frontend::Lang lang;
  OptLevel level;
  std::string name;
};

std::vector<OptCase> opt_cases() {
  std::vector<OptCase> cases;
  const auto& tasks = data::all_tasks();
  const OptLevel levels[] = {OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Oz};
  for (int t = 0; t < static_cast<int>(tasks.size()); ++t) {
    // Rotate languages and levels across tasks to cover the matrix without
    // a full cross product (kept fast; the full sweep runs in benches).
    const frontend::Lang lang = t % 3 == 0   ? frontend::Lang::C
                                : t % 3 == 1 ? frontend::Lang::Cpp
                                             : frontend::Lang::Java;
    for (OptLevel level : levels) {
      OptCase c;
      c.task = t;
      c.lang = lang;
      c.level = level;
      c.name = tasks[t].id + "_" + frontend::lang_name(lang) + "_" +
               opt_level_name(level);
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

class OptSemanticsTest : public ::testing::TestWithParam<OptCase> {};

TEST_P(OptSemanticsTest, PipelinePreservesBehaviour) {
  const OptCase& c = GetParam();
  const auto& task = data::all_tasks()[static_cast<std::size_t>(c.task)];
  const std::string src =
      task.emit(c.lang, c.task % task.num_variants, data::Style{});
  auto reference = frontend::compile_source(src, c.lang, "Main");
  auto optimized = frontend::compile_source(src, c.lang, "Main");
  optimize(*optimized, c.level);
  const auto vr = ir::verify_module(*optimized);
  ASSERT_TRUE(vr.ok()) << vr.str();
  interp::ExecOptions opts;
  opts.input = task.sample_input;
  const auto r0 = interp::execute(*reference, opts);
  const auto r1 = interp::execute(*optimized, opts);
  EXPECT_EQ(r0.output, r1.output);
  EXPECT_EQ(r0.exit_code, r1.exit_code);
  EXPECT_EQ(r0.trapped, r1.trapped);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, OptSemanticsTest,
                         ::testing::ValuesIn(opt_cases()),
                         [](const ::testing::TestParamInfo<OptCase>& info) {
                           return info.param.name;
                         });

TEST(Pipelines, OptimizeIsIdempotent) {
  // Running the pipeline a second time must change nothing: the cleanup
  // rounds already run to fixpoint.
  const auto& tasks = data::all_tasks();
  for (int t = 0; t < 6; ++t) {
    const std::string src =
        tasks[static_cast<std::size_t>(t)].emit(frontend::Lang::C, 0, data::Style{});
    auto m = frontend::compile_source(src, frontend::Lang::C, "Main");
    optimize(*m, OptLevel::O2);
    const long once = m->instruction_count();
    const std::string text_once = ir::print_module(*m);
    optimize(*m, OptLevel::O2);
    EXPECT_EQ(m->instruction_count(), once) << tasks[t].id;
    EXPECT_EQ(ir::print_module(*m), text_once) << tasks[t].id;
  }
}

TEST(Pipelines, EveryLevelVerifiesOnEveryTask) {
  const auto& tasks = data::all_tasks();
  for (const auto& task : tasks) {
    for (frontend::Lang lang :
         {frontend::Lang::C, frontend::Lang::Cpp, frontend::Lang::Java}) {
      const std::string src = task.emit(lang, 0, data::Style{});
      for (OptLevel level : {OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Oz}) {
        auto m = frontend::compile_source(src, lang, "Main");
        optimize(*m, level);
        const auto vr = ir::verify_module(*m);
        EXPECT_TRUE(vr.ok()) << task.id << " " << frontend::lang_name(lang) << " "
                             << opt_level_name(level) << "\n" << vr.str();
      }
    }
  }
}

}  // namespace
}  // namespace gbm::opt
