// Program-graph schema and tokenizer policy tests.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "graph/program_graph.h"
#include "tokenizer/tokenizer.h"

namespace gbm {
namespace {

using frontend::Lang;

graph::ProgramGraph graph_of(const char* src, Lang lang = Lang::C) {
  auto m = frontend::compile_source(src, lang, "Main");
  return graph::build_graph(*m);
}

TEST(ProgramGraph, HasAllNodeKinds) {
  const auto g = graph_of(
      "int main(){ long a = read(); print(a + 41); puts(\"hi\"); return 0; }");
  EXPECT_GT(g.count_nodes(graph::NodeKind::Instruction), 0);
  EXPECT_GT(g.count_nodes(graph::NodeKind::Variable), 0);
  EXPECT_GT(g.count_nodes(graph::NodeKind::Constant), 0);
  EXPECT_EQ(g.num_nodes(), g.count_nodes(graph::NodeKind::Instruction) +
                               g.count_nodes(graph::NodeKind::Variable) +
                               g.count_nodes(graph::NodeKind::Constant));
}

TEST(ProgramGraph, EdgeEndpointsInRange) {
  const auto g = graph_of(
      "long f(long x){ return x * 2; } int main(){ print(f(3)); return 0; }");
  for (const auto& e : g.edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, g.num_nodes());
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, g.num_nodes());
    EXPECT_GE(e.position, 0);
  }
}

TEST(ProgramGraph, CallEdgesLinkFunctions) {
  const auto g = graph_of(
      "long f(long x){ return x + 1; } int main(){ print(f(1)); return 0; }");
  // call → entry and ret → call: at least two call edges.
  EXPECT_GE(g.count_edges(graph::EdgeKind::Call), 2);
}

TEST(ProgramGraph, NoCallEdgesWithoutUserCalls) {
  const auto g = graph_of("int main(){ long a = 1; print(a); return 0; }");
  // Runtime declarations don't produce call-flow edges (no body).
  EXPECT_EQ(g.count_edges(graph::EdgeKind::Call), 0);
}

TEST(ProgramGraph, ControlFlowFollowsBranches) {
  const auto g_straight = graph_of("int main(){ print(1); return 0; }");
  const auto g_branchy = graph_of(
      "int main(){ if (read() > 0) { print(1); } else { print(2); } return 0; }");
  EXPECT_GT(g_branchy.count_edges(graph::EdgeKind::Control),
            g_straight.count_edges(graph::EdgeKind::Control));
}

TEST(ProgramGraph, DataEdgePositionsAreOperandIndices) {
  const auto g = graph_of("int main(){ long a = read(); print(a - 5); return 0; }");
  bool saw_position_one = false;
  for (const auto& e : g.edges)
    if (e.kind == graph::EdgeKind::Data && e.position == 1) saw_position_one = true;
  EXPECT_TRUE(saw_position_one);  // second operands exist
}

TEST(ProgramGraph, FullTextFallsBackToText) {
  graph::Node node;
  node.text = "add";
  node.full_text = "";
  EXPECT_EQ(node.feature(true), "add");
  node.full_text = "%v1 = add i64 %v0, 1";
  EXPECT_EQ(node.feature(true), "%v1 = add i64 %v0, 1");
  EXPECT_EQ(node.feature(false), "add");
}

TEST(ProgramGraph, StringLiteralsAppearInConstantFeatures) {
  const auto g = graph_of("int main(){ puts(\"needle42\"); return 0; }");
  bool found = false;
  for (const auto& n : g.nodes)
    found = found || n.full_text.find("needle42") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(ProgramGraph, Deterministic) {
  const char* src =
      "int main(){ long s = 0; long i; for (i = 0; i < 4; i++){ s += i; }"
      " print(s); return 0; }";
  const auto a = graph_of(src);
  const auto b = graph_of(src);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (long i = 0; i < a.num_nodes(); ++i)
    EXPECT_EQ(a.nodes[i].full_text, b.nodes[i].full_text);
}

TEST(ProgramGraph, JavaGraphsBiggerThanC) {
  // Paper Fig. 4: Java usage habits (boxing, checks, runtime) inflate IR.
  const char* c_src =
      "int main(){ long a[3]; long i; for (i=0;i<3;i++){ a[i]=read(); }"
      " print(a[0]+a[1]+a[2]); return 0; }";
  const char* j_src =
      "class A { public static void main(String[] args) {"
      " int[] a = new int[3]; for (int i=0;i<3;i++){ a[i]=Reader.read(); }"
      " System.out.println(a[0]+a[1]+a[2]); } }";
  const auto gc = graph_of(c_src, Lang::C);
  const auto gj = graph_of(j_src, Lang::Java);
  EXPECT_GT(gj.num_nodes(), gc.num_nodes());
}

// ---- tokenizer ------------------------------------------------------------

TEST(Tokenizer, SplitRewritesVariables) {
  const auto toks = tok::Tokenizer::split("%v1 = add i64 %v0, 42");
  const std::vector<std::string> expected = {"[VAR]", "=", "add", "i64",
                                             "[VAR]", ",", "42"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, SplitKeepsSymbols) {
  const auto toks = tok::Tokenizer::split("call void @gbm_print_i64(i64 %v3)");
  EXPECT_NE(std::find(toks.begin(), toks.end(), "@gbm_print_i64"), toks.end());
}

TEST(Tokenizer, VocabularyCapRespected) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back("tok" + std::to_string(i));
  const auto tk = tok::Tokenizer::train(corpus, 50);
  EXPECT_LE(tk.vocab_size(), 50);
  EXPECT_GE(tk.vocab_size(), 4);  // specials + something
}

TEST(Tokenizer, SpecialsHaveFixedIds) {
  const auto tk = tok::Tokenizer::train({"a b c"}, 100);
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kPad), "[PAD]");
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kUnk), "[UNK]");
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kVar), "[VAR]");
}

TEST(Tokenizer, UnknownMapsToUnk) {
  const auto tk = tok::Tokenizer::train({"alpha beta"}, 100);
  const auto ids = tk.encode("gamma alpha", 4);
  EXPECT_EQ(ids[0], tok::Tokenizer::kUnk);
  EXPECT_EQ(ids[1], tk.id_of("alpha"));
  EXPECT_EQ(ids[2], tok::Tokenizer::kPad);
  EXPECT_EQ(ids[3], tok::Tokenizer::kPad);
}

TEST(Tokenizer, PadTruncatePolicy) {
  const auto tk = tok::Tokenizer::train({"a b c d e f"}, 100);
  EXPECT_EQ(tk.encode("a b c d e f", 3).size(), 3u);
  EXPECT_EQ(tk.encode("a", 5).size(), 5u);
}

TEST(Tokenizer, FrequencyOrderedVocab) {
  const auto tk =
      tok::Tokenizer::train({"x x x y y z"}, 100);
  EXPECT_LT(tk.id_of("x"), tk.id_of("y"));
  EXPECT_LT(tk.id_of("y"), tk.id_of("z"));
}

TEST(Tokenizer, BagLenIsNextPowerOfTwoOfMean) {
  // Mean token count 6 → 8.
  const std::vector<std::string> corpus = {"a b c d e f", "a b c d e f"};
  EXPECT_EQ(tok::Tokenizer::choose_bag_len(corpus), 8);
  // Mean 2 → 4 (minimum).
  EXPECT_EQ(tok::Tokenizer::choose_bag_len({"a b"}), 4);
}

TEST(Tokenizer, DeterministicTraining) {
  std::vector<std::string> corpus = {"add i64", "mul i64", "add i32"};
  const auto a = tok::Tokenizer::train(corpus, 64);
  const auto b = tok::Tokenizer::train(corpus, 64);
  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  for (int i = 0; i < a.vocab_size(); ++i) EXPECT_EQ(a.token_of(i), b.token_of(i));
}

}  // namespace
}  // namespace gbm
