// Program-graph schema and tokenizer policy tests.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "graph/program_graph.h"
#include "tokenizer/tokenizer.h"

namespace gbm {
namespace {

using frontend::Lang;

graph::ProgramGraph graph_of(const char* src, Lang lang = Lang::C) {
  auto m = frontend::compile_source(src, lang, "Main");
  return graph::build_graph(*m);
}

TEST(ProgramGraph, HasAllNodeKinds) {
  const auto g = graph_of(
      "int main(){ long a = read(); print(a + 41); puts(\"hi\"); return 0; }");
  EXPECT_GT(g.count_nodes(graph::NodeKind::Instruction), 0);
  EXPECT_GT(g.count_nodes(graph::NodeKind::Variable), 0);
  EXPECT_GT(g.count_nodes(graph::NodeKind::Constant), 0);
  EXPECT_EQ(g.num_nodes(), g.count_nodes(graph::NodeKind::Instruction) +
                               g.count_nodes(graph::NodeKind::Variable) +
                               g.count_nodes(graph::NodeKind::Constant));
}

TEST(ProgramGraph, EdgeEndpointsInRange) {
  const auto g = graph_of(
      "long f(long x){ return x * 2; } int main(){ print(f(3)); return 0; }");
  g.for_each_edge([&](graph::EdgeKind, int src, int dst, int position) {
    EXPECT_GE(src, 0);
    EXPECT_LT(src, g.num_nodes());
    EXPECT_GE(dst, 0);
    EXPECT_LT(dst, g.num_nodes());
    EXPECT_GE(position, 0);
  });
}

TEST(ProgramGraph, CallEdgesLinkFunctions) {
  const auto g = graph_of(
      "long f(long x){ return x + 1; } int main(){ print(f(1)); return 0; }");
  // call → entry and ret → call: at least two call edges.
  EXPECT_GE(g.count_edges(graph::EdgeKind::Call), 2);
}

TEST(ProgramGraph, NoCallEdgesWithoutUserCalls) {
  const auto g = graph_of("int main(){ long a = 1; print(a); return 0; }");
  // Runtime declarations don't produce call-flow edges (no body).
  EXPECT_EQ(g.count_edges(graph::EdgeKind::Call), 0);
}

TEST(ProgramGraph, ControlFlowFollowsBranches) {
  const auto g_straight = graph_of("int main(){ print(1); return 0; }");
  const auto g_branchy = graph_of(
      "int main(){ if (read() > 0) { print(1); } else { print(2); } return 0; }");
  EXPECT_GT(g_branchy.count_edges(graph::EdgeKind::Control),
            g_straight.count_edges(graph::EdgeKind::Control));
}

TEST(ProgramGraph, DataEdgePositionsAreOperandIndices) {
  const auto g = graph_of("int main(){ long a = read(); print(a - 5); return 0; }");
  bool saw_position_one = false;
  g.for_each_edge([&](graph::EdgeKind kind, int, int, int position) {
    if (kind == graph::EdgeKind::Data && position == 1) saw_position_one = true;
  });
  EXPECT_TRUE(saw_position_one);  // second operands exist
}

TEST(ProgramGraph, FullTextFallsBackToText) {
  graph::ProgramGraph g;
  const int with_full =
      g.add_node(graph::NodeKind::Instruction, "add", "%v1 = add i64 %v0, 1", 0);
  const int without_full = g.add_node(graph::NodeKind::Instruction, "add", "", 0);
  EXPECT_EQ(g.feature(g.nodes[without_full], true), "add");
  EXPECT_EQ(g.feature(g.nodes[with_full], true), "%v1 = add i64 %v0, 1");
  EXPECT_EQ(g.feature(g.nodes[with_full], false), "add");
}

TEST(ProgramGraph, InterningSharesFeatureStrings) {
  graph::ProgramGraph g;
  const int a = g.add_node(graph::NodeKind::Variable, "i64", "i64 %a", 0);
  const int b = g.add_node(graph::NodeKind::Variable, "i64", "i64 %b", 0);
  EXPECT_EQ(g.nodes[a].text, g.nodes[b].text);  // one pooled "i64"
  EXPECT_NE(g.nodes[a].full_text, g.nodes[b].full_text);
  // Pool: "", "i64", "i64 %a", "i64 %b".
  EXPECT_EQ(g.pool.size(), 4u);
  const auto mem = g.memory();
  EXPECT_EQ(mem.distinct_features, 3);
  EXPECT_EQ(mem.feature_refs, 4);
}

TEST(ProgramGraph, MemoryAccountingShrinksVsLegacy) {
  const auto g = graph_of(
      "int main(){ long s = 0; long i; for (i = 0; i < 9; i++){ s += i*2; }"
      " print(s); return 0; }");
  const auto mem = g.memory();
  EXPECT_GT(mem.node_bytes, 0u);
  EXPECT_GT(mem.pool_bytes, 0u);
  EXPECT_GT(mem.dedup_ratio(), 1.0);  // types/opcodes repeat
  // Interned nodes+pool beat per-node owned strings.
  EXPECT_LT(mem.node_bytes + mem.pool_bytes, mem.legacy_bytes);
}

TEST(ProgramGraph, CsrIndexMatchesEdgeLists) {
  const auto g = graph_of(
      "long f(long x){ return x + 1; } int main(){ print(f(1)); return 0; }");
  ASSERT_TRUE(g.finalized());
  for (std::size_t k = 0; k < graph::kNumEdgeKinds; ++k) {
    const auto kind = static_cast<graph::EdgeKind>(k);
    const auto& list = g.edges[k];
    // Row pointers partition exactly the edge list.
    ASSERT_EQ(g.in_offsets[k].size(), g.nodes.size() + 1);
    EXPECT_EQ(g.in_offsets[k].back(), list.size());
    long total = 0;
    for (long v = 0; v < g.num_nodes(); ++v) {
      const long deg = g.in_degree(kind, static_cast<int>(v));
      total += deg;
      for (long j = 0; j < deg; ++j) {
        const int e = g.in_edges[k][static_cast<std::size_t>(
            g.in_offsets[k][static_cast<std::size_t>(v)] + j)];
        EXPECT_EQ(list.dst[e], static_cast<int>(v));
      }
    }
    EXPECT_EQ(total, list.size());
  }
}

TEST(ProgramGraph, StringLiteralsAppearInConstantFeatures) {
  const auto g = graph_of("int main(){ puts(\"needle42\"); return 0; }");
  bool found = false;
  for (const auto& n : g.nodes)
    found = found || g.full_text_of(n).find("needle42") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(ProgramGraph, Deterministic) {
  const char* src =
      "int main(){ long s = 0; long i; for (i = 0; i < 4; i++){ s += i; }"
      " print(s); return 0; }";
  const auto a = graph_of(src);
  const auto b = graph_of(src);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (long i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.nodes[i].full_text, b.nodes[i].full_text);  // same pool ids
    EXPECT_EQ(a.full_text_of(a.nodes[i]), b.full_text_of(b.nodes[i]));
  }
}

TEST(ProgramGraph, JavaGraphsBiggerThanC) {
  // Paper Fig. 4: Java usage habits (boxing, checks, runtime) inflate IR.
  const char* c_src =
      "int main(){ long a[3]; long i; for (i=0;i<3;i++){ a[i]=read(); }"
      " print(a[0]+a[1]+a[2]); return 0; }";
  const char* j_src =
      "class A { public static void main(String[] args) {"
      " int[] a = new int[3]; for (int i=0;i<3;i++){ a[i]=Reader.read(); }"
      " System.out.println(a[0]+a[1]+a[2]); } }";
  const auto gc = graph_of(c_src, Lang::C);
  const auto gj = graph_of(j_src, Lang::Java);
  EXPECT_GT(gj.num_nodes(), gc.num_nodes());
}

// ---- tokenizer ------------------------------------------------------------

TEST(Tokenizer, SplitRewritesVariables) {
  const auto toks = tok::Tokenizer::split("%v1 = add i64 %v0, 42");
  const std::vector<std::string> expected = {"[VAR]", "=", "add", "i64",
                                             "[VAR]", ",", "42"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, SplitKeepsSymbols) {
  const auto toks = tok::Tokenizer::split("call void @gbm_print_i64(i64 %v3)");
  EXPECT_NE(std::find(toks.begin(), toks.end(), "@gbm_print_i64"), toks.end());
}

TEST(Tokenizer, VocabularyCapRespected) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back("tok" + std::to_string(i));
  const auto tk = tok::Tokenizer::train(corpus, 50);
  EXPECT_LE(tk.vocab_size(), 50);
  EXPECT_GE(tk.vocab_size(), 4);  // specials + something
}

TEST(Tokenizer, SpecialsHaveFixedIds) {
  const auto tk = tok::Tokenizer::train({"a b c"}, 100);
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kPad), "[PAD]");
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kUnk), "[UNK]");
  EXPECT_EQ(tk.token_of(tok::Tokenizer::kVar), "[VAR]");
}

TEST(Tokenizer, UnknownMapsToUnk) {
  const auto tk = tok::Tokenizer::train({"alpha beta"}, 100);
  const auto ids = tk.encode("gamma alpha", 4);
  EXPECT_EQ(ids[0], tok::Tokenizer::kUnk);
  EXPECT_EQ(ids[1], tk.id_of("alpha"));
  EXPECT_EQ(ids[2], tok::Tokenizer::kPad);
  EXPECT_EQ(ids[3], tok::Tokenizer::kPad);
}

TEST(Tokenizer, PadTruncatePolicy) {
  const auto tk = tok::Tokenizer::train({"a b c d e f"}, 100);
  EXPECT_EQ(tk.encode("a b c d e f", 3).size(), 3u);
  EXPECT_EQ(tk.encode("a", 5).size(), 5u);
}

TEST(Tokenizer, FrequencyOrderedVocab) {
  const auto tk =
      tok::Tokenizer::train({"x x x y y z"}, 100);
  EXPECT_LT(tk.id_of("x"), tk.id_of("y"));
  EXPECT_LT(tk.id_of("y"), tk.id_of("z"));
}

TEST(Tokenizer, BagLenIsNextPowerOfTwoOfMean) {
  // Mean token count 6 → 8.
  const std::vector<std::string> corpus = {"a b c d e f", "a b c d e f"};
  EXPECT_EQ(tok::Tokenizer::choose_bag_len(corpus), 8);
  // Mean 2 → 4 (minimum).
  EXPECT_EQ(tok::Tokenizer::choose_bag_len({"a b"}), 4);
}

TEST(Tokenizer, WeightedTrainingMatchesPerOccurrence) {
  // The interned-corpus path: {text → count} must train the same vocabulary
  // as repeating each text count times.
  const std::vector<std::string> flat = {"add i64", "add i64", "add i64",
                                         "mul i32", "mul i32", "ret"};
  const std::vector<std::pair<std::string, long>> weighted = {
      {"add i64", 3}, {"mul i32", 2}, {"ret", 1}};
  const auto a = tok::Tokenizer::train(flat, 64);
  const auto b = tok::Tokenizer::train_weighted(weighted, 64);
  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  for (int i = 0; i < a.vocab_size(); ++i) EXPECT_EQ(a.token_of(i), b.token_of(i));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(tok::Tokenizer::choose_bag_len(flat),
            tok::Tokenizer::choose_bag_len_weighted(weighted));
}

TEST(Tokenizer, FingerprintTracksVocabContent) {
  const auto a = tok::Tokenizer::train({"add i64", "mul i32"}, 64);
  const auto b = tok::Tokenizer::train({"add i64", "mul i32"}, 64);
  const auto c = tok::Tokenizer::train({"xor f32"}, 64);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Tokenizer, DeterministicTraining) {
  std::vector<std::string> corpus = {"add i64", "mul i64", "add i32"};
  const auto a = tok::Tokenizer::train(corpus, 64);
  const auto b = tok::Tokenizer::train(corpus, 64);
  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  for (int i = 0; i < a.vocab_size(); ++i) EXPECT_EQ(a.token_of(i), b.token_of(i));
}

}  // namespace
}  // namespace gbm
