// Unit and property tests for the tensor/autograd library: every op's
// gradient is validated against central finite differences, optimisers
// against hand-stepped references, and serialisation round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <tuple>

#include "tensor/nn.h"
#include "tensor/optim.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace gbm::tensor {
namespace {

using UnaryFn = std::function<Tensor(const Tensor&)>;

/// Max relative error between analytic and numeric gradients of
/// L = sum(f(x)^2).
double grad_check(Tensor x, const UnaryFn& f) {
  Tensor loss = sum_all(mul(f(x), f(x)));
  loss.backward();
  const std::vector<float> analytic = x.impl()->grad;
  double max_err = 0.0;
  const float eps = 1e-3f;
  for (long i = 0; i < x.size(); ++i) {
    const float orig = x.mutable_data()[i];
    x.mutable_data()[i] = orig + eps;
    const double lp = sum_all(mul(f(x), f(x))).item();
    x.mutable_data()[i] = orig - eps;
    const double lm = sum_all(mul(f(x), f(x))).item();
    x.mutable_data()[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    max_err = std::max(max_err,
                       std::fabs(num - analytic[i]) / std::max(1.0, std::fabs(num)));
  }
  return max_err;
}

struct GradCase {
  const char* name;
  long rows, cols;
  UnaryFn fn;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) {
  RNG rng(17);
  const GradCase& c = GetParam();
  Tensor x = Tensor::randn(c.rows, c.cols, rng, 1.0f, true);
  EXPECT_LT(grad_check(x, c.fn), 0.02) << c.name;
}

RNG g_rng(23);  // shared weights for the parameterised cases

INSTANTIATE_TEST_SUITE_P(
    Ops, GradCheckTest,
    ::testing::Values(
        GradCase{"add", 3, 4, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return add(x, b);
        }},
        GradCase{"add_row_broadcast", 1, 4, [](const Tensor& x) {
          static Tensor a = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return add(a, x);
        }},
        GradCase{"sub", 3, 4, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return sub(x, b);
        }},
        GradCase{"mul", 3, 4, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return mul(x, b);
        }},
        GradCase{"mul_row_broadcast", 1, 4, [](const Tensor& x) {
          static Tensor a = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return mul(a, x);
        }},
        GradCase{"scale", 3, 3, [](const Tensor& x) { return scale(x, -1.7f); }},
        GradCase{"abs", 3, 3, [](const Tensor& x) { return abs_t(x); }},
        GradCase{"maximum", 3, 3, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 3, g_rng, 1.0f, false);
          return maximum(x, b);
        }},
        GradCase{"matmul_lhs", 3, 4, [](const Tensor& x) {
          static Tensor w = Tensor::randn(4, 2, g_rng, 1.0f, false);
          return matmul(x, w);
        }},
        GradCase{"matmul_rhs", 4, 2, [](const Tensor& x) {
          static Tensor a = Tensor::randn(3, 4, g_rng, 1.0f, false);
          return matmul(a, x);
        }},
        GradCase{"transpose", 3, 4, [](const Tensor& x) { return transpose(x); }},
        GradCase{"sigmoid", 3, 3, [](const Tensor& x) { return sigmoid(x); }},
        GradCase{"tanh", 3, 3, [](const Tensor& x) { return tanh_t(x); }},
        GradCase{"exp", 3, 3, [](const Tensor& x) { return exp_t(x); }},
        GradCase{"relu", 3, 3, [](const Tensor& x) { return relu(x); }},
        GradCase{"leaky_relu", 3, 3,
                 [](const Tensor& x) { return leaky_relu(x, 0.2f); }},
        GradCase{"softmax_rows", 3, 5,
                 [](const Tensor& x) { return softmax_rows(x); }},
        GradCase{"sum_rows", 4, 3, [](const Tensor& x) { return sum_rows(x); }},
        GradCase{"mean_rows", 4, 3, [](const Tensor& x) { return mean_rows(x); }},
        GradCase{"max_rows", 5, 3, [](const Tensor& x) { return max_rows(x); }},
        GradCase{"segment_max", 6, 3, [](const Tensor& x) {
          return segment_max(x, {0, 0, 1, 1, 1, 2}, 3);
        }},
        GradCase{"segment_rowwise_dot_lhs", 6, 3, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 3, g_rng, 1.0f, false);
          return segment_rowwise_dot(x, b, {0, 0, 1, 1, 1, 2});
        }},
        GradCase{"segment_rowwise_dot_rhs", 3, 3, [](const Tensor& x) {
          static Tensor a = Tensor::randn(6, 3, g_rng, 1.0f, false);
          return segment_rowwise_dot(a, x, {0, 0, 1, 1, 1, 2});
        }},
        GradCase{"segment_weighted_sum_data", 6, 3, [](const Tensor& x) {
          static Tensor w = Tensor::randn(6, 1, g_rng, 1.0f, false);
          return segment_weighted_sum(x, w, {0, 0, 1, 1, 1, 2}, 3);
        }},
        GradCase{"segment_weighted_sum_weights", 6, 1, [](const Tensor& w) {
          static Tensor a = Tensor::randn(6, 3, g_rng, 1.0f, false);
          return segment_weighted_sum(a, w, {0, 0, 1, 1, 1, 2}, 3);
        }},
        GradCase{"slice_rows", 5, 3,
                 [](const Tensor& x) { return slice_rows(x, 1, 4); }},
        GradCase{"slice_cols", 3, 6,
                 [](const Tensor& x) { return slice_cols(x, 2, 5); }},
        GradCase{"concat_cols", 3, 2, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 3, g_rng, 1.0f, false);
          return concat_cols({x, b});
        }},
        GradCase{"concat_rows", 2, 3, [](const Tensor& x) {
          static Tensor b = Tensor::randn(3, 3, g_rng, 1.0f, false);
          return concat_rows({x, b});
        }},
        GradCase{"index_rows", 4, 3, [](const Tensor& x) {
          return index_rows(x, {0, 2, 2, 3, 1});
        }},
        GradCase{"scatter_add", 5, 3, [](const Tensor& x) {
          return scatter_add_rows(x, {0, 1, 0, 2, 1}, 3);
        }},
        GradCase{"segment_softmax", 6, 1, [](const Tensor& x) {
          return segment_softmax(x, {0, 0, 1, 1, 1, 2}, 3);
        }},
        GradCase{"scale_rows_data", 4, 3, [](const Tensor& x) {
          static Tensor s = Tensor::randn(4, 1, g_rng, 1.0f, false);
          return scale_rows(x, s);
        }},
        GradCase{"scale_rows_scale", 4, 1, [](const Tensor& s) {
          static Tensor a = Tensor::randn(4, 3, g_rng, 1.0f, false);
          return scale_rows(a, s);
        }},
        GradCase{"embedding_bag_max", 5, 3, [](const Tensor& t) {
          return embedding_bag_max(t, {1, 2, 0, 3, 0, 0, 4, 4, 1}, 3, 3, 0);
        }},
        GradCase{"layer_norm", 3, 6, [](const Tensor& x) {
          static Tensor g = Tensor::full(1, 6, 1.3f, false);
          static Tensor b = Tensor::full(1, 6, 0.2f, false);
          return layer_norm_rows(x, g, b);
        }}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return std::string(info.param.name);
    });

TEST(TensorBasics, FactoriesAndAccessors) {
  Tensor z = Tensor::zeros(2, 3);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.size(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::full(2, 2, 1.5f);
  EXPECT_FLOAT_EQ(f.at(1, 1), 1.5f);
  Tensor from = Tensor::from({1, 2, 3, 4}, 2, 2);
  EXPECT_FLOAT_EQ(from.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(from.at(1, 0), 3.0f);
}

TEST(TensorBasics, FromRejectsWrongSize) {
  EXPECT_THROW(Tensor::from({1, 2, 3}, 2, 2), std::invalid_argument);
}

TEST(TensorBasics, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros(2, 3);
  Tensor b = Tensor::zeros(3, 2);
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
  EXPECT_THROW(maximum(a, b), std::invalid_argument);
}

TEST(TensorBasics, ItemRequiresScalar) {
  EXPECT_THROW(Tensor::zeros(2, 2).item(), std::logic_error);
  EXPECT_FLOAT_EQ(Tensor::full(1, 1, 3.0f).item(), 3.0f);
}

TEST(TensorBasics, BackwardRequiresScalar) {
  Tensor x = Tensor::zeros(2, 2, true);
  EXPECT_THROW(x.backward(), std::logic_error);
}

TEST(TensorBasics, DetachDropsGraph) {
  Tensor x = Tensor::full(1, 1, 2.0f, true);
  Tensor y = scale(x, 3.0f).detach();
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.item(), 6.0f);
}

TEST(TensorBasics, MatmulValues) {
  Tensor a = Tensor::from({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from({5, 6, 7, 8}, 2, 2);
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorBasics, GradientAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::full(1, 1, 2.0f, true);
  scale(x, 3.0f).backward();
  scale(x, 3.0f).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);  // 3 + 3
}

TEST(TensorBasics, DiamondGraphGradient) {
  // y = x*x + x ⇒ dy/dx = 2x + 1.
  Tensor x = Tensor::full(1, 1, 3.0f, true);
  Tensor y = add(mul(x, x), x);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(TensorBasics, SegmentSoftmaxNormalisesPerSegment) {
  Tensor s = Tensor::from({1, 2, 3, 4, 5}, 5, 1);
  Tensor y = segment_softmax(s, {0, 0, 1, 1, 1}, 2);
  EXPECT_NEAR(y.at(0, 0) + y.at(1, 0), 1.0, 1e-5);
  EXPECT_NEAR(y.at(2, 0) + y.at(3, 0) + y.at(4, 0), 1.0, 1e-5);
}

// The fused segment ops must match the matmul forms they replace in the
// batched attention pooling (see GraphBinMatchModel::embed_batch).
TEST(TensorBasics, FusedSegmentOpsMatchMatmulForms) {
  RNG rng(41);
  const Tensor h = Tensor::randn(7, 4, rng, 1.0f, false);
  const Tensor c = Tensor::randn(2, 4, rng, 1.0f, false);
  const std::vector<int> seg = {0, 0, 0, 1, 1, 1, 1};
  // segment_rowwise_dot == per-segment matmul(h_g, transpose(c_g)).
  const Tensor scores = segment_rowwise_dot(h, c, seg);
  EXPECT_EQ(scores.rows(), 7);
  EXPECT_EQ(scores.cols(), 1);
  for (long i = 0; i < 7; ++i) {
    const long s = seg[static_cast<std::size_t>(i)];
    float want = 0.0f;
    for (long k = 0; k < 4; ++k) want += h.at(i, k) * c.at(s, k);
    EXPECT_NEAR(scores.at(i, 0), want, 1e-6);
  }
  // segment_weighted_sum == per-segment matmul(transpose(w_g), h_g).
  const Tensor w = Tensor::randn(7, 1, rng, 1.0f, false);
  const Tensor pooled = segment_weighted_sum(h, w, seg, 2);
  EXPECT_EQ(pooled.rows(), 2);
  EXPECT_EQ(pooled.cols(), 4);
  for (long s = 0; s < 2; ++s)
    for (long k = 0; k < 4; ++k) {
      float want = 0.0f;
      for (long i = 0; i < 7; ++i)
        if (seg[static_cast<std::size_t>(i)] == s) want += w.at(i, 0) * h.at(i, k);
      EXPECT_NEAR(pooled.at(s, k), want, 1e-6);
    }
}

TEST(TensorBasics, SegmentMaxValuesAndEmptySegment) {
  const Tensor x = Tensor::from({1, 9, 2, 8, 3, 7, 4, 6}, 4, 2);
  // Segments: rows {0,1} -> 0, row {2} -> 2 (segment 1 empty).
  const Tensor m = segment_max(x, {0, 0, 2, 2}, 3);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 9.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);  // empty segment -> zero row
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.at(2, 0), 4.0f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 7.0f);
  // Single-segment case reduces exactly like max_rows.
  RNG rng(7);
  const Tensor r = Tensor::randn(6, 4, rng, 1.0f, false);
  const Tensor a = segment_max(r, {0, 0, 0, 0, 0, 0}, 1);
  const Tensor b = max_rows(r);
  for (long c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(a.at(0, c), b.at(0, c));
}

TEST(TensorBasics, SegmentMaxRejectsBadSegmentCount) {
  const Tensor x = Tensor::from({1, 2}, 2, 1);
  EXPECT_THROW(segment_max(x, {0}, 1), std::invalid_argument);
}

// The row-parallel matmul contract: values and gradients are bit-identical
// to the serial path at any worker count, because every output row (and
// every dA row / dB row in the backward) is computed by exactly one worker
// in the serial loop order.
TEST(TensorBasics, MatmulParallelGuardBitIdentical) {
  EXPECT_EQ(matmul_threads(), 1);  // serial by default
  RNG rng(31);
  // Big enough to clear the parallel-work threshold (n*k*m >= 2^22).
  const Tensor a0 = Tensor::randn(320, 128, rng, 1.0f, true);
  const Tensor b0 = Tensor::randn(128, 112, rng, 1.0f, true);

  auto run = [&](int guard_threads) {
    const Tensor a = Tensor::from(a0.data(), 320, 128, true);
    const Tensor b = Tensor::from(b0.data(), 128, 112, true);
    Tensor c;
    if (guard_threads > 0) {
      MatmulParallelGuard guard(guard_threads);
      EXPECT_EQ(matmul_threads(), guard_threads);
      c = matmul(a, b);
    } else {
      c = matmul(a, b);
    }
    sum_all(mul(c, c)).backward();
    return std::make_tuple(c.data(), a.impl()->grad, b.impl()->grad);
  };

  const auto serial = run(0);
  for (int threads : {2, 3, 5}) {
    const auto par = run(threads);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(par)) << threads << " workers";
    EXPECT_EQ(std::get<1>(serial), std::get<1>(par)) << threads << " workers";
    EXPECT_EQ(std::get<2>(serial), std::get<2>(par)) << threads << " workers";
  }
  EXPECT_EQ(matmul_threads(), 1);  // guards restored the default
}

TEST(TensorBasics, EmbeddingBagMaxIgnoresPadding) {
  Tensor table = Tensor::from({0, 0, 1, 1, 2, 2, 3, 3}, 4, 2);
  // Bag 0: rows {1,2} → max (2,2); bag 1: all pad → zeros.
  Tensor out = embedding_bag_max(table, {1, 2, 0, 0}, 2, 2, 0);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 0.0f);
}

TEST(TensorBasics, DropoutTrainVsEval) {
  RNG rng(7);
  Tensor x = Tensor::full(10, 10, 1.0f, true);
  Tensor eval_out = dropout(x, 0.5f, false, rng);
  for (float v : eval_out.data()) EXPECT_FLOAT_EQ(v, 1.0f);
  Tensor train_out = dropout(x, 0.5f, true, rng);
  long zeros = 0;
  for (float v : train_out.data()) zeros += v == 0.0f;
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(TensorBasics, BceWithLogitsMatchesReference) {
  Tensor logits = Tensor::from({0.0f}, 1, 1);
  // BCE(σ(0), 1) = -ln(0.5) = ln 2.
  EXPECT_NEAR(bce_with_logits(logits, {1.0f}).item(), std::log(2.0), 1e-5);
  Tensor strong = Tensor::from({20.0f}, 1, 1);
  EXPECT_NEAR(bce_with_logits(strong, {1.0f}).item(), 0.0, 1e-4);
  Tensor wrong = Tensor::from({-20.0f}, 1, 1);
  EXPECT_NEAR(bce_with_logits(wrong, {1.0f}).item(), 20.0, 1e-3);
}

TEST(TensorBasics, MseLoss) {
  Tensor pred = Tensor::from({1, 2}, 1, 2);
  EXPECT_NEAR(mse_loss(pred, {0, 0}).item(), 2.5, 1e-6);
}

// ---- RNG -----------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  RNG a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  RNG rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const long v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NormalMoments) {
  RNG rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  RNG rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- nn modules -----------------------------------------------------------

TEST(Modules, LinearShapesAndParams) {
  RNG rng(1);
  Linear lin(4, 3, rng, true, "lin");
  Tensor x = Tensor::randn(5, 4, rng, 1.0f, false);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(lin.params().size(), 2u);
  EXPECT_EQ(lin.param_count(), 4 * 3 + 3);
}

TEST(Modules, LinearNoBias) {
  RNG rng(1);
  Linear lin(4, 3, rng, false, "lin");
  EXPECT_EQ(lin.params().size(), 1u);
}

TEST(Modules, LayerNormNormalisesRows) {
  RNG rng(2);
  LayerNorm norm(8, "ln");
  Tensor x = Tensor::randn(4, 8, rng, 5.0f, false);
  Tensor y = norm.forward(x);
  for (long r = 0; r < 4; ++r) {
    double mean = 0;
    for (long c = 0; c < 8; ++c) mean += y.at(r, c);
    EXPECT_NEAR(mean / 8, 0.0, 1e-4);
  }
}

TEST(Modules, LstmShapes) {
  RNG rng(3);
  LSTMCell lstm(6, 4, rng, "lstm");
  Tensor seq = Tensor::randn(7, 6, rng, 1.0f, false);
  Tensor all = lstm.forward_sequence(seq);
  EXPECT_EQ(all.rows(), 7);
  EXPECT_EQ(all.cols(), 4);
  Tensor last = lstm.forward_last(seq);
  EXPECT_EQ(last.rows(), 1);
  for (long c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(last.at(0, c), all.at(6, c));
}

TEST(Modules, LstmGradientFlows) {
  RNG rng(4);
  LSTMCell lstm(3, 3, rng, "lstm");
  Tensor seq = Tensor::randn(4, 3, rng, 1.0f, true);
  Tensor loss = sum_all(lstm.forward_last(seq));
  loss.backward();
  double grad_norm = 0;
  for (float g : seq.impl()->grad) grad_norm += std::fabs(g);
  EXPECT_GT(grad_norm, 0.0);
}

// ---- optimisers -------------------------------------------------------------

TEST(Optim, SgdStep) {
  Tensor w = Tensor::from({1.0f}, 1, 1, true);
  SGD sgd({{"w", w}}, 0.1f);
  mul(w, w).backward();  // d/dw w^2 = 2w = 2
  sgd.step();
  EXPECT_NEAR(w.item(), 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(Optim, AdamFirstStepIsLr) {
  // With bias correction, |first Adam update| ≈ lr regardless of grad scale.
  Tensor w = Tensor::from({5.0f}, 1, 1, true);
  AdamConfig cfg;
  cfg.lr = 0.1f;
  Adam adam({{"w", w}}, cfg);
  scale(w, 3.0f).backward();
  adam.step();
  EXPECT_NEAR(w.item(), 5.0f - 0.1f, 1e-3);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  RNG rng(5);
  Tensor w = Tensor::randn(1, 4, rng, 2.0f, true);
  Adam adam({{"w", w}}, {0.05f});
  for (int i = 0; i < 300; ++i) {
    adam.zero_grad();
    sum_all(mul(w, w)).backward();
    adam.step();
  }
  for (float v : w.data()) EXPECT_NEAR(v, 0.0f, 0.05f);
}

TEST(Optim, GradClipScalesDown) {
  Tensor w = Tensor::from({1, 1, 1, 1}, 2, 2, true);
  scale(sum_all(w), 10.0f).backward();  // grad = 10 everywhere, norm 20
  const double before = clip_grad_norm({{"w", w}}, 5.0);
  EXPECT_NEAR(before, 20.0, 1e-4);
  double norm = 0;
  for (float g : w.impl()->grad) norm += double(g) * g;
  EXPECT_NEAR(std::sqrt(norm), 5.0, 1e-4);
}

// ---- serialisation --------------------------------------------------------

TEST(Serialize, RoundTrip) {
  RNG rng(6);
  Tensor a = Tensor::randn(3, 4, rng, 1.0f, true);
  Tensor b = Tensor::randn(2, 2, rng, 1.0f, true);
  std::vector<NamedParam> params{{"a", a}, {"b", b}};
  const std::string path = ::testing::TempDir() + "gbm_params.bin";
  save_params(params, path);

  Tensor a2 = Tensor::zeros(3, 4, true);
  Tensor b2 = Tensor::zeros(2, 2, true);
  std::vector<NamedParam> loaded{{"a", a2}, {"b", b2}};
  EXPECT_EQ(load_params(loaded, path), 2u);
  for (long i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a2.data()[i], a.data()[i]);
  for (long i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(b2.data()[i], b.data()[i]);
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  RNG rng(7);
  Tensor a = Tensor::randn(3, 4, rng, 1.0f, true);
  std::vector<NamedParam> params{{"a", a}};
  const std::string path = ::testing::TempDir() + "gbm_params2.bin";
  save_params(params, path);
  Tensor wrong = Tensor::zeros(2, 2, true);
  std::vector<NamedParam> loaded{{"a", wrong}};
  EXPECT_THROW(load_params(loaded, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, UnknownNamesSkipped) {
  RNG rng(8);
  Tensor a = Tensor::randn(2, 2, rng, 1.0f, true);
  std::vector<NamedParam> params{{"a", a}};
  const std::string path = ::testing::TempDir() + "gbm_params3.bin";
  save_params(params, path);
  Tensor other = Tensor::zeros(2, 2, true);
  std::vector<NamedParam> loaded{{"other", other}};
  EXPECT_EQ(load_params(loaded, path), 0u);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  std::vector<NamedParam> none;
  EXPECT_THROW(load_params(none, "/nonexistent/path.bin"), std::runtime_error);
}

}  // namespace
}  // namespace gbm::tensor
