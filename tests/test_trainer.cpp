// Batched-forward and data-parallel trainer tests: GraphBatch structure,
// embed_batch row-parity with embed_graph, bit-identical losses across
// thread counts, GradStore semantics, and the partial-batch gradient
// scaling fix (verified against an op-by-op gradient-equivalent reference).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <unordered_map>

#include "core/parallel.h"
#include "gnn/trainer.h"
#include "tensor/optim.h"

namespace gbm::gnn {
namespace {

using tensor::RNG;
using tensor::Tensor;

// Builds a small graph with a controllable edge-type mix: `edges[k]` lists
// the (src, dst) pairs of edge type k. Self-loops are appended to every
// type, as encode_graph does.
EncodedGraph mixed_graph(long nodes,
                         const std::array<std::vector<std::pair<int, int>>, 3>& edges,
                         int bag_len = 2, int token_salt = 0) {
  EncodedGraph g;
  g.num_nodes = nodes;
  g.bag_len = bag_len;
  for (long i = 0; i < nodes; ++i)
    for (int k = 0; k < bag_len; ++k)
      g.tokens.push_back(static_cast<int>(3 + (i + k + token_salt) % 5));
  for (int k = 0; k < 3; ++k) {
    for (auto [s, d] : edges[static_cast<std::size_t>(k)]) {
      g.edges[k].src.push_back(s);
      g.edges[k].dst.push_back(d);
      g.edges[k].pos.push_back(static_cast<int>((s + d) % 3));
    }
  }
  for (auto& list : g.edges) {
    for (long i = 0; i < nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  return g;
}

EncodedGraph chain_graph(long nodes, int bag_len = 2, int token_salt = 0) {
  std::array<std::vector<std::pair<int, int>>, 3> edges;
  for (long i = 0; i + 1 < nodes; ++i)
    edges[0].emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
  return mixed_graph(nodes, edges, bag_len, token_salt);
}

ModelConfig small_config() {
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(MakeGraphBatch, OffsetsSegmentsAndShiftedEdges) {
  auto a = chain_graph(3);
  auto b = chain_graph(5, 2, 1);
  const GraphBatch batch = make_graph_batch({&a, &b});
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.total_nodes, 8);
  EXPECT_EQ(batch.bag_len, 2);
  ASSERT_EQ(batch.node_offset.size(), 3u);
  EXPECT_EQ(batch.node_offset[0], 0);
  EXPECT_EQ(batch.node_offset[1], 3);
  EXPECT_EQ(batch.node_offset[2], 8);
  ASSERT_EQ(batch.node_graph.size(), 8u);
  for (long i = 0; i < 8; ++i) EXPECT_EQ(batch.node_graph[i], i < 3 ? 0 : 1);
  EXPECT_EQ(batch.tokens.size(), a.tokens.size() + b.tokens.size());
  // Control: a's 2 chain edges + 3 loops, then b's 4 chain edges + 5 loops;
  // data/call: self-loops only.
  EXPECT_EQ(batch.edges[0].size(), 14);
  EXPECT_EQ(batch.edges[1].size(), 8);
  EXPECT_EQ(batch.edges[2].size(), 8);
  // Every edge stays within its owner's node-id range.
  for (const auto& list : batch.edges) {
    for (long e = 0; e < list.size(); ++e) {
      const bool src_in_b = list.src[e] >= 3;
      const bool dst_in_b = list.dst[e] >= 3;
      EXPECT_EQ(src_in_b, dst_in_b) << "edge crosses graph boundary";
    }
  }
  // Control edges of b appear shifted by a's node count.
  const EdgeList& ctl = batch.edges[0];
  EXPECT_EQ(ctl.src[0], 0);  // a: 0 -> 1
  EXPECT_EQ(ctl.dst[0], 1);
  EXPECT_EQ(ctl.src[2 + 3], 0 + 3);  // b's first edge after a's 2 edges + 3 loops
  EXPECT_EQ(ctl.dst[2 + 3], 1 + 3);
}

TEST(MakeGraphBatch, RejectsBadInput) {
  EXPECT_THROW(make_graph_batch({}), std::invalid_argument);
  auto a = chain_graph(3, 2);
  auto b = chain_graph(3, 4);
  EXPECT_THROW(make_graph_batch({&a, &b}), std::invalid_argument);
  EncodedGraph empty;
  empty.bag_len = 2;
  EXPECT_THROW(make_graph_batch({&a, &empty}), std::invalid_argument);
}

TEST(EmbedBatch, RowParityWithEmbedGraph) {
  RNG rng(11);
  GraphBinMatchModel model(small_config(), rng);
  // Varied sizes, bag lengths and edge-type mixes; one batch per bag length.
  for (int bag_len : {2, 3}) {
    std::vector<EncodedGraph> graphs;
    graphs.push_back(chain_graph(3, bag_len));
    graphs.push_back(chain_graph(9, bag_len, 2));
    graphs.push_back(mixed_graph(
        6, {{{{0, 1}, {1, 2}}, {{2, 3}, {3, 4}}, {{4, 5}, {5, 0}}}}, bag_len, 1));
    graphs.push_back(mixed_graph(4, {{{}, {{0, 3}, {3, 1}}, {}}}, bag_len, 3));
    std::vector<const EncodedGraph*> ptrs;
    for (const auto& g : graphs) ptrs.push_back(&g);
    RNG dummy(1);
    const Tensor rows = model.embed_batch(make_graph_batch(ptrs), false, dummy);
    ASSERT_EQ(rows.rows(), static_cast<long>(graphs.size()));
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      RNG d2(1);
      const Tensor one = model.embed_graph(graphs[i], false, d2);
      ASSERT_EQ(rows.cols(), one.cols());
      for (long c = 0; c < one.cols(); ++c)
        EXPECT_NEAR(rows.at(static_cast<long>(i), c), one.at(0, c), 1e-5)
            << "graph " << i << " col " << c << " bag_len " << bag_len;
    }
  }
}

TEST(EmbedBatch, DuplicateMembersGetIdenticalRows) {
  RNG rng(13);
  GraphBinMatchModel model(small_config(), rng);
  auto g = chain_graph(5);
  RNG dummy(1);
  const Tensor rows = model.embed_batch(make_graph_batch({&g, &g, &g}), false, dummy);
  for (long r = 1; r < 3; ++r)
    for (long c = 0; c < rows.cols(); ++c)
      EXPECT_FLOAT_EQ(rows.at(r, c), rows.at(0, c));
}

TEST(GradStore, CaptureAndAddRoundtrip) {
  RNG rng(5);
  tensor::Linear lin(3, 2, rng, true, "lin");
  const auto params = lin.params();
  // Produce some gradients.
  const Tensor x = Tensor::randn(4, 3, rng, 1.0f, false);
  tensor::sum_all(lin.forward(x)).backward();
  GradStore store;
  store.capture(params);
  ASSERT_EQ(store.grads.size(), params.size());
  lin.zero_grad();
  store.add_to(params);
  store.add_to(params);  // accumulates
  for (std::size_t p = 0; p < params.size(); ++p)
    for (std::size_t i = 0; i < store.grads[p].size(); ++i)
      EXPECT_FLOAT_EQ(params[p].tensor.grad()[i], 2.0f * store.grads[p][i]);
}

// The determinism contract: for a fixed seed, the loss trajectory and the
// final parameters are bit-identical at every worker count.
TEST(Trainer, BitIdenticalAcrossThreadCounts) {
  ModelConfig cfg = small_config();
  cfg.dropout = 0.2f;  // exercise the per-shard RNG streams
  auto a = chain_graph(4);
  auto b = chain_graph(7, 2, 1);
  auto c = mixed_graph(5, {{{{0, 1}}, {{1, 2}, {2, 3}}, {{3, 4}}}}, 2, 2);
  std::vector<PairSample> samples = {{&a, &a, 1.0f}, {&b, &b, 1.0f}, {&c, &c, 1.0f},
                                     {&a, &b, 0.0f}, {&b, &c, 0.0f}, {&c, &a, 0.0f}};

  std::vector<std::vector<double>> losses;
  std::vector<std::vector<float>> final_params;
  for (int threads : {1, 2, 0 /* all hardware */}) {
    RNG rng(23);
    GraphBinMatchModel model(cfg, rng);
    TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batch_size = 4;  // 6 samples -> a short final batch every epoch
    tcfg.micro_batch = 2;
    tcfg.threads = threads;
    tcfg.seed = 9;
    std::vector<double> trace;
    tcfg.on_epoch = [&](int, double l) { trace.push_back(l); };
    train_model(model, samples, tcfg);
    losses.push_back(trace);
    std::vector<float> flat;
    for (const auto& p : model.params())
      flat.insert(flat.end(), p.tensor.data().begin(), p.tensor.data().end());
    final_params.push_back(flat);
  }
  ASSERT_EQ(losses[0].size(), 4u);
  for (std::size_t v = 1; v < losses.size(); ++v) {
    for (std::size_t e = 0; e < losses[0].size(); ++e)
      EXPECT_EQ(losses[0][e], losses[v][e]) << "epoch " << e << " variant " << v;
    ASSERT_EQ(final_params[0].size(), final_params[v].size());
    for (std::size_t i = 0; i < final_params[0].size(); ++i)
      ASSERT_EQ(final_params[0][i], final_params[v][i]) << "param scalar " << i;
  }
  // And training actually trained.
  EXPECT_LT(losses[0].back(), losses[0].front());
}

// Gradient-equivalent reference for the partial-batch fix: 5 samples with
// batch_size 4 make batches of 4 and 1; the trainer must scale each batch's
// gradient by its ACTUAL size (4, then 1), not by config.batch_size. The
// reference below replays the trainer's exact op sequence — per-shard
// batched forward, backward of loss * shard/batch, shard-ordered GradStore
// reduction, clip, Adam — with the correct divisors, so results must match
// bit for bit. (Before the fix the final 1-sample batch was scaled by 1/4.)
TEST(Trainer, PartialBatchMatchesGradientReference) {
  const ModelConfig cfg = small_config();
  auto a = chain_graph(4);
  auto b = chain_graph(6, 2, 1);
  auto c = chain_graph(8, 2, 2);
  std::vector<PairSample> samples = {
      {&a, &a, 1.0f}, {&b, &b, 1.0f}, {&a, &b, 0.0f}, {&b, &c, 0.0f}, {&c, &c, 1.0f}};
  const std::uint64_t seed = 31;
  const float lr = 0.01f;

  RNG r1(41);
  GraphBinMatchModel trained(cfg, r1);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 4;
  tcfg.micro_batch = 1;
  tcfg.threads = 1;
  tcfg.seed = seed;
  tcfg.lr = lr;
  const double trained_loss = train_model(trained, samples, tcfg);

  // Reference: one epoch, hand-rolled.
  RNG r2(41);
  GraphBinMatchModel ref(cfg, r2);
  tensor::AdamConfig acfg;
  acfg.lr = lr;
  tensor::Adam adam(ref.params(), acfg);
  const auto params = ref.params();
  RNG rng(seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  double epoch_loss = 0.0;
  long batches = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::size_t batch_end = std::min<std::size_t>(order.size(), i + 4);
    const std::size_t batch_n = batch_end - i;
    std::vector<GradStore> stores;
    double batch_loss = 0.0;
    for (; i < batch_end; ++i) {  // micro_batch 1: one shard per sample
      RNG shard_rng = rng.fork();
      const PairSample& s = samples[order[i]];
      for (const auto& p : params) {
        Tensor t = p.tensor;
        t.zero_grad();
      }
      std::vector<const EncodedGraph*> uniq{s.a};
      std::vector<int> a_rows{0}, b_rows{0};
      if (s.b != s.a) {
        uniq.push_back(s.b);
        b_rows[0] = 1;
      }
      const Tensor embs = ref.embed_batch(make_graph_batch(uniq), true, shard_rng);
      const Tensor ga = tensor::index_rows(embs, a_rows);
      const Tensor gb = tensor::index_rows(embs, b_rows);
      const Tensor logits = ref.score_head(ga, gb, true, shard_rng);
      const Tensor loss = tensor::bce_with_logits(logits, {s.label});
      tensor::scale(loss, 1.0f / static_cast<float>(batch_n)).backward();
      stores.emplace_back();
      stores.back().capture(params);
      batch_loss += loss.item();
    }
    adam.zero_grad();
    for (const GradStore& st : stores) st.add_to(params);
    tensor::clip_grad_norm(params, tcfg.grad_clip);
    adam.step();
    epoch_loss += batch_loss / static_cast<double>(batch_n);
    ++batches;
  }
  const double ref_loss = epoch_loss / batches;

  EXPECT_EQ(trained_loss, ref_loss);
  const auto tp = trained.params();
  const auto rp = ref.params();
  ASSERT_EQ(tp.size(), rp.size());
  for (std::size_t p = 0; p < tp.size(); ++p) {
    ASSERT_EQ(tp[p].tensor.size(), rp[p].tensor.size());
    for (long j = 0; j < tp[p].tensor.size(); ++j)
      ASSERT_EQ(tp[p].tensor.data()[j], rp[p].tensor.data()[j])
          << tp[p].name << "[" << j << "]";
  }
}

// Pairs whose sides were encoded with different bag lengths trained fine
// through the old per-sample loop; the sharded trainer must keep accepting
// them (it batches per bag length within a shard and stacks the rows).
TEST(Trainer, AcceptsMixedBagLengthPairs) {
  RNG rng(29);
  GraphBinMatchModel model(small_config(), rng);
  auto narrow = chain_graph(4, /*bag_len=*/2);
  auto wide = chain_graph(6, /*bag_len=*/4, 1);
  std::vector<PairSample> samples = {
      {&narrow, &wide, 1.0f}, {&wide, &narrow, 0.0f}, {&narrow, &narrow, 1.0f}};
  TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 4;
  tcfg.micro_batch = 2;  // one shard holds both bag lengths
  tcfg.threads = 2;
  const double loss = train_model(model, samples, tcfg);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
}

// Data-parallel training still learns: same overfit target as the classic
// trainer test, forced through multiple workers and shards.
TEST(Trainer, DataParallelOverfitsTinyDataset) {
  ModelConfig cfg = small_config();
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.interaction = true;
  RNG rng(19);
  GraphBinMatchModel model(cfg, rng);
  auto a = chain_graph(3);
  auto b = mixed_graph(8, {{{{0, 7}, {7, 3}}, {{3, 1}, {1, 0}}, {{2, 6}}}}, 2, 1);
  std::vector<PairSample> samples = {
      {&a, &a, 1.0f}, {&b, &b, 1.0f}, {&a, &b, 0.0f}, {&b, &a, 0.0f}};
  TrainConfig tcfg;
  tcfg.epochs = 120;
  tcfg.lr = 0.02f;
  tcfg.batch_size = 4;
  tcfg.micro_batch = 1;
  tcfg.threads = 4;
  const double final_loss = train_model(model, samples, tcfg);
  EXPECT_LT(final_loss, 0.2);
  const auto scores = predict_scores(model, samples);
  EXPECT_GT(scores[0], 0.5f);
  EXPECT_GT(scores[1], 0.5f);
  EXPECT_LT(scores[2], 0.5f);
  EXPECT_LT(scores[3], 0.5f);
}

}  // namespace
}  // namespace gbm::gnn
