// GNN model tests: GATv2 attention against a hand-computed case, shape and
// invariance properties, gradient flow, overfitting capacity, persistence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "frontend/frontend.h"
#include "gnn/trainer.h"
#include "graph/program_graph.h"

namespace gbm::gnn {
namespace {

using tensor::RNG;
using tensor::Tensor;

EncodedGraph tiny_graph(long nodes, const std::vector<std::pair<int, int>>& edges,
                        int bag_len = 2) {
  EncodedGraph g;
  g.num_nodes = nodes;
  g.bag_len = bag_len;
  for (long i = 0; i < nodes; ++i)
    for (int k = 0; k < bag_len; ++k)
      g.tokens.push_back(static_cast<int>(3 + (i + k) % 4));
  for (auto [s, d] : edges) {
    g.edges[0].src.push_back(s);
    g.edges[0].dst.push_back(d);
    g.edges[0].pos.push_back(0);
  }
  // Self-loops on all three types (what encode_graph would add).
  for (auto& list : g.edges) {
    for (long i = 0; i < nodes; ++i) {
      list.src.push_back(static_cast<int>(i));
      list.dst.push_back(static_cast<int>(i));
      list.pos.push_back(0);
    }
  }
  return g;
}

TEST(GATv2, AttentionWeightsSumToOnePerNode) {
  RNG rng(3);
  GATv2Config cfg;
  cfg.in_dim = 4;
  cfg.out_dim = 4;
  GATv2Conv conv(cfg, rng, "t");
  // Hand-check via segment_softmax directly: attention over incoming edges
  // of each destination node normalises to 1.
  Tensor scores = Tensor::randn(5, 1, rng, 1.0f, false);
  std::vector<int> dst = {0, 0, 1, 1, 1};
  Tensor alpha = tensor::segment_softmax(scores, dst, 2);
  EXPECT_NEAR(alpha.at(0, 0) + alpha.at(1, 0), 1.0, 1e-5);
  EXPECT_NEAR(alpha.at(2, 0) + alpha.at(3, 0) + alpha.at(4, 0), 1.0, 1e-5);
}

TEST(GATv2, SingleEdgeCopiesTransformedSource) {
  // One incoming edge → attention 1 → output = W_r x_src exactly.
  RNG rng(5);
  GATv2Config cfg;
  cfg.in_dim = 3;
  cfg.out_dim = 3;
  GATv2Conv conv(cfg, rng, "t");
  Tensor x = Tensor::randn(2, 3, rng, 1.0f, false);
  EdgeList edges;
  edges.src = {0};
  edges.dst = {1};
  edges.pos = {0};
  Tensor out = conv.forward(x, edges, 2);
  // Node 0 has no incoming edges → zero row.
  for (long c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(out.at(0, c), 0.0f);
  // Node 1's row must be finite and generally nonzero.
  double norm = 0;
  for (long c = 0; c < 3; ++c) norm += std::fabs(out.at(1, c));
  EXPECT_GT(norm, 1e-6);
}

TEST(Model, EmbeddingShape) {
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 2;
  RNG rng(7);
  GraphBinMatchModel model(cfg, rng);
  auto g = tiny_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  RNG drng(9);
  Tensor emb = model.embed_graph(g, false, drng);
  EXPECT_EQ(emb.rows(), 1);
  EXPECT_EQ(emb.cols(), graph_embedding_dim(cfg));
}

TEST(Model, EmptyGraphRejected) {
  ModelConfig cfg;
  cfg.vocab = 16;
  RNG rng(7);
  GraphBinMatchModel model(cfg, rng);
  EncodedGraph empty;
  empty.bag_len = 2;
  RNG drng(9);
  EXPECT_THROW(model.embed_graph(empty, false, drng), std::invalid_argument);
}

TEST(Model, NodePermutationInvariance) {
  // Relabelling nodes (consistently) must not change the graph embedding:
  // pooling is permutation invariant.
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.dropout = 0.0f;
  RNG rng(11);
  GraphBinMatchModel model(cfg, rng);

  auto g = tiny_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  // Permutation: new id = 3 - old id.
  EncodedGraph p;
  p.num_nodes = 4;
  p.bag_len = g.bag_len;
  p.tokens.resize(g.tokens.size());
  for (long i = 0; i < 4; ++i)
    for (int k = 0; k < g.bag_len; ++k)
      p.tokens[(3 - i) * g.bag_len + k] = g.tokens[i * g.bag_len + k];
  for (int t = 0; t < 3; ++t) {
    for (long e = 0; e < g.edges[t].size(); ++e) {
      p.edges[t].src.push_back(3 - g.edges[t].src[e]);
      p.edges[t].dst.push_back(3 - g.edges[t].dst[e]);
      p.edges[t].pos.push_back(g.edges[t].pos[e]);
    }
  }
  RNG d1(1), d2(1);
  Tensor e1 = model.embed_graph(g, false, d1);
  Tensor e2 = model.embed_graph(p, false, d2);
  for (long c = 0; c < e1.cols(); ++c) EXPECT_NEAR(e1.at(0, c), e2.at(0, c), 1e-4);
}

TEST(Model, GradientsReachAllParameters) {
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.dropout = 0.0f;
  RNG rng(13);
  GraphBinMatchModel model(cfg, rng);
  auto g = tiny_graph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
  RNG drng(15);
  Tensor logit = model.forward_logit(g, g, true, drng);
  tensor::bce_with_logits(logit, {1.0f}).backward();
  int with_grad = 0, total = 0;
  bool emb_grad = false, fc1_grad = false, fc2_grad = false;
  for (const auto& p : model.params()) {
    ++total;
    double norm = 0;
    for (float v : p.tensor.impl()->grad) norm += std::fabs(v);
    with_grad += norm > 0;
    if (norm > 0) {
      emb_grad |= p.name.rfind("token_emb", 0) == 0;
      fc1_grad |= p.name.rfind("fc1", 0) == 0;
      fc2_grad |= p.name.rfind("fc2", 0) == 0;
    }
  }
  // The stack-&-max fusion routes gradient only through the winning
  // edge-type branch per element, so some conv branches may legitimately
  // receive none on a single sample. The essential path always must.
  EXPECT_TRUE(emb_grad);
  EXPECT_TRUE(fc1_grad);
  EXPECT_TRUE(fc2_grad);
  EXPECT_GE(with_grad, total / 2);
}

TEST(Model, PredictIsSymmetricInputsAreNot) {
  // The head is not symmetric (concat order matters) — scores may differ,
  // but both must be valid probabilities.
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 8;
  cfg.layers = 1;
  RNG rng(17);
  GraphBinMatchModel model(cfg, rng);
  auto a = tiny_graph(4, {{0, 1}, {1, 2}});
  auto b = tiny_graph(5, {{0, 1}, {3, 4}});
  const float s1 = model.predict(a, b);
  const float s2 = model.predict(b, a);
  EXPECT_GE(s1, 0.0f);
  EXPECT_LE(s1, 1.0f);
  EXPECT_GE(s2, 0.0f);
  EXPECT_LE(s2, 1.0f);
}

TEST(Trainer, OverfitsTinyDataset) {
  // Two distinguishable graphs; model must learn pair labels ~perfectly.
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 16;
  cfg.layers = 1;
  cfg.dropout = 0.0f;
  cfg.interaction = true;
  RNG rng(19);
  GraphBinMatchModel model(cfg, rng);
  auto a = tiny_graph(3, {{0, 1}, {1, 2}});
  auto b = tiny_graph(8, {{0, 7}, {7, 3}, {3, 1}, {1, 0}, {2, 6}});
  std::vector<PairSample> samples = {
      {&a, &a, 1.0f}, {&b, &b, 1.0f}, {&a, &b, 0.0f}, {&b, &a, 0.0f}};
  TrainConfig tcfg;
  tcfg.epochs = 120;
  tcfg.lr = 0.02f;
  tcfg.batch_size = 4;
  const double final_loss = train_model(model, samples, tcfg);
  EXPECT_LT(final_loss, 0.2);
  const auto scores = predict_scores(model, samples);
  EXPECT_GT(scores[0], 0.5f);
  EXPECT_GT(scores[1], 0.5f);
  EXPECT_LT(scores[2], 0.5f);
  EXPECT_LT(scores[3], 0.5f);
}

TEST(Trainer, EpochCallbackFires) {
  ModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 4;
  cfg.hidden = 4;
  cfg.layers = 1;
  RNG rng(21);
  GraphBinMatchModel model(cfg, rng);
  auto g = tiny_graph(3, {{0, 1}});
  std::vector<PairSample> samples = {{&g, &g, 1.0f}};
  TrainConfig tcfg;
  tcfg.epochs = 3;
  int calls = 0;
  tcfg.on_epoch = [&](int, double) { ++calls; };
  train_model(model, samples, tcfg);
  EXPECT_EQ(calls, 3);
}

TEST(EncodeGraph, SelfLoopsAdded) {
  auto m = frontend::compile_source("int main(){ print(1); return 0; }",
                                    frontend::Lang::C, "Main");
  auto g = graph::build_graph(*m);
  auto tk = tok::Tokenizer::train({"x"}, 16);
  auto enc = encode_graph(g, tk, 4, true);
  for (const auto& list : enc.edges) EXPECT_GE(list.size(), enc.num_nodes);
}

TEST(MatchingSystem, SaveLoadReproducesScores) {
  auto m1 = frontend::compile_source("int main(){ print(1); return 0; }",
                                     frontend::Lang::C, "Main");
  auto m2 = frontend::compile_source(
      "int main(){ long i; for (i=0;i<3;i++){ print(i); } return 0; }",
      frontend::Lang::C, "Main");
  auto g1 = graph::build_graph(*m1);
  auto g2 = graph::build_graph(*m2);

  core::MatchingSystem::Config cfg;
  cfg.model.vocab = 64;
  cfg.model.embed_dim = 8;
  cfg.model.hidden = 8;
  cfg.model.layers = 1;
  core::MatchingSystem sys(cfg);
  sys.fit_tokenizer({&g1, &g2});
  auto e1 = sys.encode(g1);
  auto e2 = sys.encode(g2);
  std::vector<PairSample> train = {{&e1, &e1, 1.0f}, {&e1, &e2, 0.0f}};
  TrainConfig tcfg;
  tcfg.epochs = 2;
  sys.train(train, tcfg);
  const float score_before = sys.score(e1, e2);

  const std::string path = ::testing::TempDir() + "gbm_model.bin";
  sys.save(path);
  core::MatchingSystem restored(cfg);
  restored.fit_tokenizer({&g1, &g2});
  restored.load(path);
  EXPECT_NEAR(restored.score(e1, e2), score_before, 1e-5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gbm::gnn
