// Thread-pool primitives and the parallel batch pipeline: build_artifacts
// must be indistinguishable from the serial build_artifact loop — same
// graphs, node counts, IR texts, errors and ordering — for any thread
// count, including corpora with non-compilable files and the empty corpus.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "datasets/corpus.h"

namespace gbm::core {
namespace {

// --- parallel primitives ---------------------------------------------------

TEST(ResolveThreads, PositiveTakenVerbatim) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
}

TEST(ResolveThreads, ZeroAndNegativeMeanHardware) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(0), resolve_threads(-3));
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 10 * (round + 1));
  }
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // nothing submitted — must not deadlock
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RethrowsWorkerException) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, SerialFallbackPreservesOrder) {
  std::vector<std::size_t> visited;
  parallel_for(8, [&](std::size_t i) { visited.push_back(i); }, 1);
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(visited, expected);
}

// --- batch pipeline parity -------------------------------------------------

std::vector<data::SourceFile> mixed_corpus() {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 6;
  cfg.solutions_per_task_per_lang = 2;
  cfg.broken_fraction = 0.25;  // guarantee non-compilable files in the batch
  return data::generate_corpus(cfg);
}

void expect_identical(const Artifact& got, const Artifact& want) {
  EXPECT_EQ(got.task_index, want.task_index);
  EXPECT_EQ(got.lang, want.lang);
  EXPECT_EQ(got.ok, want.ok);
  EXPECT_EQ(got.stage, want.stage);
  EXPECT_EQ(got.error, want.error);
  EXPECT_EQ(got.ir_text, want.ir_text);
  EXPECT_EQ(got.ir_instructions, want.ir_instructions);
  EXPECT_EQ(got.binary_code_size, want.binary_code_size);
  ASSERT_EQ(got.graph.num_nodes(), want.graph.num_nodes());
  ASSERT_EQ(got.graph.num_edges(), want.graph.num_edges());
  for (std::size_t i = 0; i < got.graph.nodes.size(); ++i) {
    const auto& a = got.graph.nodes[i];
    const auto& b = want.graph.nodes[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(got.graph.text_of(a), want.graph.text_of(b));
    EXPECT_EQ(got.graph.full_text_of(a), want.graph.full_text_of(b));
    EXPECT_EQ(a.function, b.function);
  }
  for (std::size_t k = 0; k < graph::kNumEdgeKinds; ++k) {
    const auto& a = got.graph.edges[k];
    const auto& b = want.graph.edges[k];
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.pos, b.pos);
  }
}

void check_parity(const ArtifactOptions& options) {
  const auto files = mixed_corpus();
  std::vector<Artifact> serial;
  serial.reserve(files.size());
  for (const auto& f : files) serial.push_back(build_artifact(f, options));
  ASSERT_FALSE(serial.empty());
  bool any_failed = false, any_ok = false;
  for (const auto& a : serial) (a.ok ? any_ok : any_failed) = true;
  EXPECT_TRUE(any_ok);
  EXPECT_TRUE(any_failed) << "corpus should contain non-compilable files";

  for (int threads : {1, 2, 4, 8, 0}) {
    const auto parallel = build_artifacts(files, options, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " file " +
                   std::to_string(i));
      expect_identical(parallel[i], serial[i]);
    }
  }
}

TEST(BuildArtifacts, SourceSideMatchesSerialLoop) {
  ArtifactOptions options;
  options.keep_ir_text = true;
  check_parity(options);
}

TEST(BuildArtifacts, BinarySideMatchesSerialLoop) {
  ArtifactOptions options;
  options.side = Side::Binary;
  options.keep_ir_text = true;
  check_parity(options);
}

TEST(BuildArtifacts, EmptyCorpus) {
  EXPECT_TRUE(build_artifacts({}, {}, 4).empty());
  EXPECT_TRUE(build_artifacts({}, {}, 0).empty());
}

TEST(BuildArtifacts, IrTextOmittedByDefault) {
  auto files = mixed_corpus();
  files.resize(3);
  for (const auto& a : build_artifacts(files, {}, 2)) EXPECT_TRUE(a.ir_text.empty());
}

TEST(BuildArtifacts, StageRecordsToolchainProgress) {
  data::SourceFile broken;
  broken.source = "int main( {";
  broken.lang = frontend::Lang::C;
  broken.unit_name = "Main";
  const auto failed = build_artifact(broken, {});
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.stage, Stage::None);
  EXPECT_FALSE(failed.error.empty());

  data::SourceFile good;
  good.source = "int main(){ print(1); return 0; }";
  good.lang = frontend::Lang::C;
  good.unit_name = "Main";
  EXPECT_EQ(build_artifact(good, {}).stage, Stage::Graph);
  ArtifactOptions bin;
  bin.side = Side::Binary;
  EXPECT_EQ(build_artifact(good, bin).stage, Stage::Graph);
}

TEST(BuildArtifacts, StopAfterCapsTheToolchain) {
  data::SourceFile good;
  good.source = "int main(){ print(1); return 0; }";
  good.lang = frontend::Lang::C;
  good.unit_name = "Main";
  ArtifactOptions opts;
  opts.side = Side::Binary;
  opts.stop_after = Stage::Decompiled;
  const auto a = build_artifact(good, opts);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.stage, Stage::Decompiled);
  EXPECT_EQ(a.graph.num_nodes(), 0);  // graph construction skipped
  EXPECT_GT(a.binary_code_size, 0);
}

TEST(CorpusStats, ParallelMatchesSerialCounters) {
  const auto files = mixed_corpus();
  ArtifactOptions bin;
  bin.side = Side::Binary;
  const auto serial = corpus_stats(files, bin, 1);
  for (int threads : {2, 4, 0}) {
    const auto stats = corpus_stats(files, bin, threads);
    EXPECT_EQ(stats.sources, serial.sources);
    EXPECT_EQ(stats.ir_ok, serial.ir_ok);
    EXPECT_EQ(stats.binaries, serial.binaries);
    EXPECT_EQ(stats.decompiled, serial.decompiled);
  }
  EXPECT_EQ(serial.sources, static_cast<long>(files.size()));
  EXPECT_GT(serial.ir_ok, 0);
  EXPECT_LT(serial.ir_ok, serial.sources);  // broken files dropped
}

}  // namespace
}  // namespace gbm::core
