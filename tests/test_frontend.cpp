// Front-end tests: lexer units, parser errors, and the big property suite —
// every task template × language × variant must compile, verify, and
// execute without trapping; MiniC and MiniJava solutions of the same task
// variant family must be deterministic.
#include <gtest/gtest.h>

#include "datasets/tasks.h"
#include "frontend/frontend.h"
#include "frontend/lexer.h"
#include "interp/interp.h"
#include "ir/verifier.h"

namespace gbm::frontend {
namespace {

TEST(Lexer, TokenKinds) {
  auto toks = lex("int x = 42; // comment\n x += 1.5e2; \"str\\n\" 'a'");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[3].kind, Tok::IntLit);
  EXPECT_EQ(toks[3].int_value, 42);
  // After ';': x += 1.5e2
  EXPECT_EQ(toks[6].kind, Tok::PlusAssign);
  EXPECT_EQ(toks[7].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[7].float_value, 150.0);
  EXPECT_EQ(toks[9].kind, Tok::StrLit);
  EXPECT_EQ(toks[9].text, "str\n");
  EXPECT_EQ(toks[10].kind, Tok::IntLit);
  EXPECT_EQ(toks[10].int_value, 'a');
}

TEST(Lexer, TracksLines) {
  auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(lex("\"unterminated"), CompileError);
  EXPECT_THROW(lex("/* unterminated"), CompileError);
  EXPECT_THROW(lex("a $ b"), CompileError);
}

TEST(ParserErrors, MiniC) {
  EXPECT_THROW(compile_source("int main() { return 0 }", Lang::C), CompileError);
  EXPECT_THROW(compile_source("int main() { long x = ; }", Lang::C), CompileError);
  EXPECT_THROW(compile_source("int main() { undefined_var = 1; return 0; }", Lang::C),
               CompileError);
  EXPECT_THROW(compile_source("int main() { vec v; return 0; }", Lang::C),
               CompileError);  // vec is a C++-dialect type
  EXPECT_THROW(compile_source("int main() { break; }", Lang::C), CompileError);
}

TEST(ParserErrors, MiniJava) {
  EXPECT_THROW(compile_source("class A { static int f() { return } }", Lang::Java),
               CompileError);
  EXPECT_THROW(compile_source("int main() { return 0; }", Lang::Java), CompileError);
  EXPECT_THROW(
      compile_source("class A { public static void main(String[] args) {"
                     " long x = 1; } }", Lang::Java),
      CompileError);  // no long in MiniJava
}

TEST(Semantics, CIntWidths) {
  // int is 32-bit (wraps), long is 64-bit.
  const char* src =
      "int main() { int x = 2000000000; x = x + x; print(x);"
      " long y = 2000000000; y = y + y; print(y); return 0; }";
  auto m = compile_source(src, Lang::C);
  auto r = interp::execute(*m);
  EXPECT_EQ(r.output, "-294967296\n4000000000\n");
}

TEST(Semantics, JavaIntWraps) {
  const char* src =
      "class A { public static void main(String[] args) {"
      " int x = 2000000000; System.out.println(x + x); } }";
  auto m = compile_source(src, Lang::Java);
  auto r = interp::execute(*m);
  EXPECT_EQ(r.output, "-294967296\n");
}

TEST(Semantics, ShortCircuit) {
  // RHS division by zero must not execute when LHS decides.
  const char* src =
      "int main() { long a = 0; if (a != 0 && 10 / a > 1) { print(1); }"
      " else { print(2); } return 0; }";
  auto r = interp::execute(*compile_source(src, Lang::C));
  EXPECT_FALSE(r.trapped);
  EXPECT_EQ(r.output, "2\n");
}

TEST(Semantics, BreakContinue) {
  const char* src =
      "int main() { long i; long s = 0;"
      " for (i = 0; i < 10; i++) { if (i == 3) { continue; }"
      " if (i == 6) { break; } s += i; } print(s); return 0; }";
  auto r = interp::execute(*compile_source(src, Lang::C));
  EXPECT_EQ(r.output, "12\n");  // 0+1+2+4+5
}

TEST(Semantics, DoWhile) {
  const char* src =
      "int main() { long i = 9; do { print(i); i++; } while (i < 9);"
      " return 0; }";
  auto r = interp::execute(*compile_source(src, Lang::C));
  EXPECT_EQ(r.output, "9\n");  // body runs at least once
}

TEST(Semantics, Recursion) {
  const char* src =
      "long ack(long m, long n) { if (m == 0) { return n + 1; }"
      " if (n == 0) { return ack(m - 1, 1); }"
      " return ack(m - 1, ack(m, n - 1)); }"
      "int main() { print(ack(2, 3)); return 0; }";
  auto r = interp::execute(*compile_source(src, Lang::C));
  EXPECT_EQ(r.output, "9\n");
}

TEST(Semantics, JavaBoundsCheckTraps) {
  const char* src =
      "class A { public static void main(String[] args) {"
      " int[] a = new int[3]; a[5] = 1; } }";
  auto r = interp::execute(*compile_source(src, Lang::Java));
  EXPECT_TRUE(r.trapped);
  EXPECT_NE(r.trap_message.find("ArrayIndexOutOfBounds"), std::string::npos);
}

TEST(Semantics, CStackArrayNoChecks) {
  // MiniC has no bounds checking: in-bounds is fine, semantics C-like.
  const char* src =
      "int main() { long a[3]; a[0]=1; a[1]=2; a[2]=3; print(a[0]+a[2]);"
      " return 0; }";
  auto r = interp::execute(*compile_source(src, Lang::C));
  EXPECT_EQ(r.output, "4\n");
}

TEST(Semantics, DivisionByZeroTraps) {
  auto r = interp::execute(
      *compile_source("int main(){ long a = read(); print(10 / a); return 0; }",
                      Lang::C),
      {});  // input empty → read() = 0
  EXPECT_TRUE(r.trapped);
}

TEST(Semantics, JavaClinitIsCalled) {
  auto m = compile_source(
      "class Foo { public static void main(String[] args) {"
      " System.out.println(1); } }",
      Lang::Java);
  EXPECT_NE(m->function("Foo_clinit"), nullptr);
}

TEST(Semantics, JavaMethodMangling) {
  auto m = compile_source(
      "class Foo { static int helper(int x) { return x; }"
      " public static void main(String[] args) {"
      " System.out.println(helper(3)); } }",
      Lang::Java);
  EXPECT_NE(m->function("Foo_helper"), nullptr);
  EXPECT_NE(m->function("main"), nullptr);
}

// ---- the task-template property suite ------------------------------------

struct TaskCase {
  int task;
  Lang lang;
  int variant;
  std::string name;
};

std::vector<TaskCase> all_task_cases() {
  std::vector<TaskCase> cases;
  const auto& tasks = data::all_tasks();
  for (int t = 0; t < static_cast<int>(tasks.size()); ++t) {
    for (Lang lang : {Lang::C, Lang::Cpp, Lang::Java}) {
      for (int v = 0; v < tasks[t].num_variants; ++v) {
        TaskCase c;
        c.task = t;
        c.lang = lang;
        c.variant = v;
        c.name = tasks[t].id + "_" + lang_name(lang) + "_v" + std::to_string(v);
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

class TaskTemplateTest : public ::testing::TestWithParam<TaskCase> {};

TEST_P(TaskTemplateTest, CompilesVerifiesAndRuns) {
  const TaskCase& c = GetParam();
  const auto& task = data::all_tasks()[static_cast<std::size_t>(c.task)];
  for (const data::Style style : {data::Style{}, data::Style{true, true, true, true, 2}}) {
    const std::string src = task.emit(c.lang, c.variant, style);
    auto module = compile_source(src, c.lang, "Main");
    const auto vr = ir::verify_module(*module);
    ASSERT_TRUE(vr.ok()) << vr.str() << "\nsource:\n" << src;
    interp::ExecOptions opts;
    opts.input = task.sample_input;
    const auto result = interp::execute(*module, opts);
    EXPECT_FALSE(result.trapped)
        << result.trap_message << "\nsource:\n" << src;
    EXPECT_FALSE(result.output.empty()) << "program produced no output";
    // Same style twice → deterministic output.
    const auto again = interp::execute(*module, opts);
    EXPECT_EQ(result.output, again.output);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskTemplateTest,
                         ::testing::ValuesIn(all_task_cases()),
                         [](const ::testing::TestParamInfo<TaskCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace gbm::frontend
