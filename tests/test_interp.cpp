// Interpreter and runtime-library tests: memory safety, trap semantics,
// runtime function behaviour, I/O, and execution limits.
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "interp/interp.h"
#include "interp/memory.h"
#include "interp/runtime.h"
#include "ir/parser.h"

namespace gbm::interp {
namespace {

ExecResult run(const char* src, std::vector<std::int64_t> input = {},
               frontend::Lang lang = frontend::Lang::C) {
  auto m = frontend::compile_source(src, lang, "Main");
  ExecOptions opts;
  opts.input = std::move(input);
  return execute(*m, opts);
}

// ---- RuntimeMemory ---------------------------------------------------------

TEST(Memory, NullAccessTraps) {
  RuntimeMemory mem;
  EXPECT_THROW(mem.load_int(0, 8), TrapError);
  EXPECT_THROW(mem.store_int(0, 1, 8), TrapError);
}

TEST(Memory, OutOfBoundsTraps) {
  RuntimeMemory mem(1024);
  EXPECT_THROW(mem.load_int(1020, 8), TrapError);
  EXPECT_THROW(mem.load_int(~0ULL - 4, 8), TrapError);  // overflow guard
}

TEST(Memory, AllocAlignsAndZeroes) {
  RuntimeMemory mem;
  const auto a = mem.alloc(3);
  const auto b = mem.alloc(8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 3);
  EXPECT_EQ(mem.load_int(b, 8), 0);
}

TEST(Memory, SignExtendingLoads) {
  RuntimeMemory mem;
  const auto p = mem.alloc(16);
  mem.store_int(p, -1, 1);
  EXPECT_EQ(mem.load_int(p, 1), -1);
  mem.store_int(p, 0x80000000LL, 4);
  EXPECT_EQ(mem.load_int(p, 4), static_cast<std::int32_t>(0x80000000));
}

TEST(Memory, F64RoundTrip) {
  RuntimeMemory mem;
  const auto p = mem.alloc(8);
  mem.store_f64(p, 3.14159);
  EXPECT_DOUBLE_EQ(mem.load_f64(p), 3.14159);
}

TEST(Memory, CStringTerminatorRequired) {
  RuntimeMemory mem(256);
  const auto p = mem.alloc(16);
  mem.store_bytes(p, reinterpret_cast<const std::uint8_t*>("hi"), 3);
  EXPECT_EQ(mem.load_cstring(p), "hi");
}

// ---- Runtime -----------------------------------------------------------------

TEST(RuntimeLib, SyscallTableIsConsistent) {
  const auto& table = Runtime::table();
  EXPECT_GT(table.size(), 20u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(Runtime::syscall_id(table[i].name), static_cast<int>(i));
    EXPECT_TRUE(Runtime::is_runtime_fn(table[i].name));
  }
  EXPECT_FALSE(Runtime::is_runtime_fn("no_such_function"));
  EXPECT_EQ(Runtime::syscall_id("no_such_function"), -1);
}

TEST(RuntimeLib, ListGrowsBeyondInitialCapacity) {
  RuntimeMemory mem;
  ProgramIO io;
  Runtime rt(mem, io);
  const auto list = rt.invoke("jrt_list_new", {});
  for (int i = 0; i < 50; ++i) rt.invoke("jrt_list_add", {list, i * 11});
  EXPECT_EQ(rt.invoke("jrt_list_size", {list}), 50);
  EXPECT_EQ(rt.invoke("jrt_list_get", {list, 49}), 49 * 11);
  EXPECT_THROW(rt.invoke("jrt_list_get", {list, 50}), TrapError);
}

TEST(RuntimeLib, SortSortsMemory) {
  RuntimeMemory mem;
  ProgramIO io;
  Runtime rt(mem, io);
  const auto base = rt.invoke("gbm_alloc", {4 * 8});
  const std::int64_t values[] = {42, 7, 19, 3};
  for (int i = 0; i < 4; ++i)
    mem.store_int(static_cast<std::uint64_t>(base + 8 * i), values[i], 8);
  rt.invoke("crt_sort_i64", {base, 4});
  EXPECT_EQ(mem.load_int(static_cast<std::uint64_t>(base), 8), 3);
  EXPECT_EQ(mem.load_int(static_cast<std::uint64_t>(base + 24), 8), 42);
}

TEST(RuntimeLib, BoundsCheckSemantics) {
  RuntimeMemory mem;
  ProgramIO io;
  Runtime rt(mem, io);
  const auto arr = rt.invoke("jrt_newarray_i32", {3});
  EXPECT_EQ(rt.invoke("jrt_arraylen", {arr}), 3);
  EXPECT_NO_THROW(rt.invoke("jrt_boundscheck", {arr, 2}));
  EXPECT_THROW(rt.invoke("jrt_boundscheck", {arr, 3}), TrapError);
  EXPECT_THROW(rt.invoke("jrt_boundscheck", {arr, -1}), TrapError);
  EXPECT_THROW(rt.invoke("jrt_newarray_i32", {-5}), TrapError);
}

TEST(RuntimeLib, ArityMismatchTraps) {
  RuntimeMemory mem;
  ProgramIO io;
  Runtime rt(mem, io);
  EXPECT_THROW(rt.invoke("crt_abs_i64", {1, 2}), TrapError);
}

TEST(RuntimeLib, PowMatchesReference) {
  RuntimeMemory mem;
  ProgramIO io;
  Runtime rt(mem, io);
  EXPECT_EQ(rt.invoke("crt_pow_i64", {2, 10}), 1024);
  EXPECT_EQ(rt.invoke("crt_pow_i64", {7, 0}), 1);
  EXPECT_EQ(rt.invoke("crt_pow_i64", {-3, 3}), -27);
}

// ---- interpreter ------------------------------------------------------------

TEST(Interp, ReadsInputInOrderThenZero) {
  const auto r = run("int main(){ print(read()); print(read()); print(read());"
                     " return 0; }", {11, 22});
  EXPECT_EQ(r.output, "11\n22\n0\n");
}

TEST(Interp, ExitCodeFromMain) {
  EXPECT_EQ(run("int main(){ return 42; }").exit_code, 42);
}

TEST(Interp, FuelExhaustionTrap) {
  auto m = frontend::compile_source(
      "int main(){ long i = 0; while (i >= 0) { i = i + 1; } return 0; }",
      frontend::Lang::C, "Main");
  ExecOptions opts;
  opts.fuel = 5000;
  const auto r = execute(*m, opts);
  EXPECT_TRUE(r.trapped);
  EXPECT_NE(r.trap_message.find("fuel"), std::string::npos);
  EXPECT_GT(r.steps, 4999);
}

TEST(Interp, StackOverflowTrap) {
  const auto r = run("long f(long n) { return f(n + 1); }"
                     "int main(){ print(f(0)); return 0; }");
  EXPECT_TRUE(r.trapped);
  EXPECT_NE(r.trap_message.find("stack"), std::string::npos);
}

TEST(Interp, SignedRemainderSemantics) {
  const auto r = run("int main(){ print(0 - 7 % 3); print((0 - 7) % 3);"
                     " return 0; }");
  // C semantics: -(7%3) = -1; (-7)%3 = -1.
  EXPECT_EQ(r.output, "-1\n-1\n");
}

TEST(Interp, ShiftSemantics) {
  const auto r = run("int main(){ long x = 1; print(x << 10);"
                     " long y = 0 - 1024; print(y >> 3); return 0; }");
  EXPECT_EQ(r.output, "1024\n-128\n");
}

TEST(Interp, FloatPrinting) {
  const auto r = run("int main(){ double x = 0.5; print(x + 0.25); return 0; }");
  EXPECT_EQ(r.output, "0.75\n");
}

TEST(Interp, MissingEntryThrows) {
  auto m = ir::parse_module("define i64 @foo() {\nentry0:\n  ret i64 0\n}\n");
  EXPECT_THROW(execute(*m), std::logic_error);
}

TEST(Interp, ExecuteNamedEntry) {
  auto m = ir::parse_module(
      "define i64 @helper() {\nentry0:\n  ret i64 99\n}\n");
  const auto r = execute(*m, {}, "helper");
  EXPECT_EQ(r.exit_code, 99);
}

TEST(Interp, UnreachableTraps) {
  auto m = ir::parse_module(
      "define i64 @main() {\nentry0:\n  unreachable\n}\n");
  const auto r = execute(*m);
  EXPECT_TRUE(r.trapped);
}

TEST(Interp, SwitchDispatch) {
  const char* text =
      "declare void @gbm_print_i64(i64 %arg0)\n"
      "declare i64 @gbm_read_i64()\n"
      "define i64 @main() {\n"
      "entry0:\n"
      "  %v1 = call i64 @gbm_read_i64()\n"
      "  switch i64 %v1, label %def [ i64 1, label %one, i64 2, label %two ]\n"
      "one:\n"
      "  call void @gbm_print_i64(i64 100)\n"
      "  ret i64 0\n"
      "two:\n"
      "  call void @gbm_print_i64(i64 200)\n"
      "  ret i64 0\n"
      "def:\n"
      "  call void @gbm_print_i64(i64 999)\n"
      "  ret i64 0\n"
      "}\n";
  auto m = ir::parse_module(text);
  ExecOptions opts;
  opts.input = {2};
  EXPECT_EQ(execute(*m, opts).output, "200\n");
  opts.input = {7};
  EXPECT_EQ(execute(*m, opts).output, "999\n");
}

TEST(Interp, JavaProgramEndToEnd) {
  const auto r = run(
      "class M { static int twice(int x) { return x * 2; }\n"
      "  public static void main(String[] args) {\n"
      "    ArrayList l = new ArrayList();\n"
      "    for (int i = 0; i < 4; i++) { l.add(twice(Reader.read())); }\n"
      "    int s = 0;\n"
      "    for (int i = 0; i < l.size(); i++) { s = s + l.get(i); }\n"
      "    System.out.println(s);\n"
      "  } }",
      {1, 2, 3, 4}, frontend::Lang::Java);
  EXPECT_FALSE(r.trapped) << r.trap_message;
  EXPECT_EQ(r.output, "20\n");
}

}  // namespace
}  // namespace gbm::interp
