// Compiler explorer: walk one program through every stage of the substrate —
// front-end IR at each optimisation level, VBin machine code for both
// code-generation styles, and the decompiler's lifted IR. This is the
// "what does the model actually see?" tour of Figure 1's left side.
//
//   ./examples/compiler_explorer
#include <cstdio>

#include "backend/codegen.h"
#include "backend/vm.h"
#include "decompiler/lift.h"
#include "frontend/frontend.h"
#include "graph/program_graph.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "opt/passes.h"

using namespace gbm;

int main() {
  const char* source =
      "long gcd(long a, long b) {\n"
      "  while (b != 0) { long t = b; b = a % b; a = t; }\n"
      "  return a;\n"
      "}\n"
      "int main() {\n"
      "  print(gcd(read(), read()));\n"
      "  return 0;\n"
      "}\n";
  std::printf("=== source (MiniC) ===\n%s\n", source);

  // IR at each optimisation level.
  for (auto level : {opt::OptLevel::O0, opt::OptLevel::O1, opt::OptLevel::O2}) {
    auto module = frontend::compile_source(source, frontend::Lang::C, "Main");
    opt::optimize(*module, level);
    const auto g = graph::build_graph(*module);
    std::printf("=== IR at -%s: %ld instructions, graph %s ===\n",
                opt::opt_level_name(level), module->instruction_count(),
                g.stats().c_str());
    if (level == opt::OptLevel::O2) std::printf("%s\n", ir::print_module(*module).c_str());
  }

  // Machine code, both toolchain styles.
  auto module = frontend::compile_source(source, frontend::Lang::C, "Main");
  opt::optimize(*module, opt::OptLevel::O1);
  for (auto style : {backend::CodegenStyle::VClang, backend::CodegenStyle::VGcc}) {
    const auto binary = backend::compile_module(*module, style);
    const auto encoded = backend::encode(binary);
    std::printf("=== %s binary: %ld instructions, %zu bytes encoded ===\n",
                backend::style_name(style), binary.code_size(), encoded.size());
  }
  const auto binary = backend::compile_module(*module);
  std::printf("\n=== disassembly (first 24 instructions of main) ===\n");
  const std::string dis = backend::disassemble(binary);
  std::size_t pos = 0;
  for (int line = 0; line < 26 && pos != std::string::npos; ++line) {
    const std::size_t next = dis.find('\n', pos);
    std::printf("%s\n", dis.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }

  // Execute: interpreter vs VM.
  interp::ExecOptions io;
  io.input = {252, 105};
  const auto interp_result = interp::execute(*module, io);
  const auto vm_result = backend::run_binary(binary, io);
  std::printf("\ninterp output: %svm output:     %s(equal: %s)\n",
              interp_result.output.c_str(), vm_result.output.c_str(),
              interp_result.output == vm_result.output ? "yes" : "NO");

  // Decompile and compare shapes.
  auto lifted = decompiler::lift(binary);
  const auto lifted_graph = graph::build_graph(*lifted);
  const auto source_graph = graph::build_graph(*module);
  std::printf("\n=== decompiled IR (RetDec substitute) ===\n");
  std::printf("source IR graph:     %s\n", source_graph.stats().c_str());
  std::printf("decompiled IR graph: %s\n", lifted_graph.stats().c_str());
  const auto relift = interp::execute(*lifted, io);
  std::printf("decompiled re-execution output equal: %s\n",
              relift.output == interp_result.output ? "yes" : "NO");
  std::printf("\n=== decompiled main (excerpt) ===\n%.900s...\n",
              ir::print_function(*lifted->function("main")).c_str());
  return 0;
}
