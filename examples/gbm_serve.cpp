// gbm_serve — the serving subsystem end to end: a MatchServer over one GBMS
// snapshot, driven by a stdin/stdout line protocol.
//
// usage:
//   gbm_serve <snapshot.gbms> [--shards N] [--store DIR]
//     Load the snapshot (train + embed_all + save one with
//     MatchingSystem::save) and answer queries over the protocol below
//     until EOF or `quit`.
//
//   gbm_serve --selftest
//     Self-contained smoke (the CI mode): builds a small corpus, trains a
//     matcher, snapshots it, then (1) replays the same query stream through
//     8 concurrent clients and through serial one-query-at-a-time execution
//     and demands bit-identical hits, (2) drives the line protocol through
//     an in-memory session. Exits non-zero on any divergence.
//
// protocol (one command per line):
//   query <src|bin> <c|cpp|java> <k>   start a query; the following lines
//   <source line(s)> ...               are the program text, terminated by
//   .                                  a lone "." — the response is
//                                      `hit <rank> <id> <score> <cosine>`
//                                      per match then `ok <n>`, or
//                                      `err <message>`
//   stats                              key=value counter lines, `ok stats`
//   quit                               `ok bye`, server drains and exits
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_store.h"
#include "core/pipeline.h"
#include "datasets/corpus.h"
#include "gnn/trainer.h"
#include "serve/match_server.h"

using namespace gbm;

namespace {

std::string temp_root() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp && *tmp ? tmp : "/tmp");
}

bool parse_side(const std::string& token, core::Side& side) {
  if (token == "src") side = core::Side::SourceIR;
  else if (token == "bin") side = core::Side::Binary;
  else return false;
  return true;
}

bool parse_lang(const std::string& token, frontend::Lang& lang) {
  if (token == "c") lang = frontend::Lang::C;
  else if (token == "cpp") lang = frontend::Lang::Cpp;
  else if (token == "java") lang = frontend::Lang::Java;
  else return false;
  return true;
}

void print_stats(const serve::ServerStats& stats, std::ostream& out) {
  out << "submitted=" << stats.submitted << "\ncompleted=" << stats.completed
      << "\nfailed=" << stats.failed << "\nrejected=" << stats.rejected
      << "\nbatches=" << stats.batches << "\nqueue_depth=" << stats.queue_depth
      << "\npeak_queue_depth=" << stats.peak_queue_depth << "\nbatch_size_hist=";
  for (std::size_t b = 0; b < stats.batch_size_hist.size(); ++b)
    out << (b ? "," : "") << stats.batch_size_hist[b];
  out << "\nembed_cache_hits=" << stats.cache.hits
      << "\nembed_cache_misses=" << stats.cache.misses
      << "\nstore_hits=" << stats.store.hits
      << "\nstore_misses=" << stats.store.misses
      << "\nstore_quarantined=" << stats.store.quarantined
      << "\ncompile_us=" << stats.compile_us << "\nembed_us=" << stats.embed_us
      << "\ntopk_us=" << stats.topk_us << "\n";
}

/// Runs one protocol session; returns 0 on a clean quit/EOF, 1 on a stream
/// that ends mid-query.
int run_protocol(serve::MatchServer& server, std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream cmd(line);
    std::string verb;
    cmd >> verb;
    if (verb.empty()) continue;
    if (verb == "quit") {
      out << "ok bye\n";
      return 0;
    }
    if (verb == "stats") {
      print_stats(server.stats(), out);
      out << "ok stats\n";
      continue;
    }
    if (verb != "query") {
      out << "err unknown command '" << verb << "'\n";
      continue;
    }
    std::string side_token, lang_token;
    int k = 0;
    cmd >> side_token >> lang_token >> k;
    serve::MatchServer::Query query;
    const bool header_ok = parse_side(side_token, query.side) &&
                           parse_lang(lang_token, query.lang) && k > 0;
    // Always drain the source body up to the lone "." — a bad header must
    // not desynchronise the stream into reading program text as commands.
    std::string source, source_line;
    bool terminated = false;
    while (std::getline(in, source_line)) {
      if (source_line == ".") {
        terminated = true;
        break;
      }
      source += source_line;
      source += '\n';
    }
    if (!terminated) {
      out << "err stream ended inside a query body\n";
      return 1;
    }
    if (!header_ok) {
      out << "err usage: query <src|bin> <c|cpp|java> <k>\n";
      continue;
    }
    query.k = k;
    query.source = source;
    const serve::MatchResult result = server.submit(query);
    if (!result.ok) {
      out << "err " << result.error << "\n";
      continue;
    }
    for (std::size_t r = 0; r < result.hits.size(); ++r)
      out << "hit " << r << " " << result.hits[r].id << " " << result.hits[r].score
          << " " << result.hits[r].cosine << "\n";
    out << "ok " << result.hits.size() << "\n";
  }
  return 0;
}

// ---- selftest ------------------------------------------------------------

/// Builds a corpus, trains a matcher over it, indexes every graph, and
/// snapshots the result. Returns the query-able source texts.
std::vector<std::string> build_snapshot(const std::string& snapshot_path) {
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 4;
  cfg.solutions_per_task_per_lang = 1;
  cfg.broken_fraction = 0.0;
  cfg.langs = {frontend::Lang::C, frontend::Lang::Cpp};
  const auto files = data::generate_corpus(cfg);
  const auto artifacts = core::build_artifacts(files, {});

  core::MatchingSystem::Config mcfg;
  mcfg.model.vocab = 128;
  mcfg.model.embed_dim = 16;
  mcfg.model.hidden = 16;
  mcfg.model.layers = 1;
  mcfg.model.interaction = true;
  mcfg.model.dropout = 0.0f;
  core::MatchingSystem trainer(mcfg);

  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<std::string> sources;
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    if (!artifacts[i].ok) continue;
    graphs.push_back(&artifacts[i].graph);
    if (files[i].lang == frontend::Lang::C) sources.push_back(files[i].source);
  }
  trainer.fit_tokenizer(graphs);
  std::vector<gnn::EncodedGraph> encoded;
  for (const auto* g : graphs) encoded.push_back(trainer.encode(*g));
  std::vector<gnn::PairSample> pairs;
  for (std::size_t i = 0; i + 1 < encoded.size(); i += 2) {
    pairs.push_back({&encoded[i], &encoded[i], 1.0f});
    pairs.push_back({&encoded[i], &encoded[i + 1], 0.0f});
  }
  gnn::TrainConfig tcfg;
  tcfg.epochs = 3;
  trainer.train(pairs, tcfg);
  std::vector<const gnn::EncodedGraph*> fleet;
  for (const auto& e : encoded) fleet.push_back(&e);
  trainer.embed_all(fleet);
  trainer.save(snapshot_path);
  std::printf("snapshot:   %zu graphs indexed → %s\n", fleet.size(),
              snapshot_path.c_str());
  return sources;
}

serve::MatchServer::Query nth_query(const std::vector<std::string>& sources, int n) {
  serve::MatchServer::Query q;
  q.source = sources[static_cast<std::size_t>(n) % sources.size()];
  q.lang = frontend::Lang::C;
  q.k = 1 + n % 3;
  return q;
}

int selftest() {
  const std::string snapshot_path =
      temp_root() + "/gbm_serve_selftest." + std::to_string(::getpid()) + ".gbms";
  const auto sources = build_snapshot(snapshot_path);
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 3;

  // Serial baseline: a server that never coalesces, one in-flight query.
  std::vector<std::vector<serve::MatchResult>> want(kClients);
  {
    serve::MatchServerConfig cfg;
    cfg.num_shards = 3;
    cfg.max_wait_us = 0;
    serve::MatchServer serial(snapshot_path, cfg);
    for (int c = 0; c < kClients; ++c)
      for (int q = 0; q < kQueriesPerClient; ++q)
        want[c].push_back(serial.submit(nth_query(sources, c * kQueriesPerClient + q)));
  }

  // Concurrent run: 8 clients, coalescing dispatcher, sharded fan-out.
  serve::MatchServerConfig cfg;
  cfg.num_shards = 3;
  cfg.max_batch = 8;
  cfg.max_wait_us = 20000;
  serve::MatchServer server(snapshot_path, cfg);
  std::vector<std::vector<serve::MatchResult>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q)
        got[c].push_back(server.submit(nth_query(sources, c * kQueriesPerClient + q)));
    });
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      const auto& w = want[c][static_cast<std::size_t>(q)];
      const auto& g = got[c][static_cast<std::size_t>(q)];
      if (!w.ok || !g.ok || w.hits.size() != g.hits.size()) {
        std::printf("FAIL: client %d query %d diverged (%s)\n", c, q,
                    g.error.c_str());
        return 1;
      }
      for (std::size_t i = 0; i < w.hits.size(); ++i) {
        if (g.hits[i].id != w.hits[i].id || g.hits[i].score != w.hits[i].score ||
            g.hits[i].cosine != w.hits[i].cosine) {
          std::printf("FAIL: client %d query %d rank %zu: id %d/%d score %.9g/%.9g\n",
                      c, q, i, g.hits[i].id, w.hits[i].id,
                      static_cast<double>(g.hits[i].score),
                      static_cast<double>(w.hits[i].score));
          return 1;
        }
      }
    }
  }
  const auto stats = server.stats();
  std::printf(
      "concurrent: %d clients x %d queries == serial bit-for-bit "
      "(%llu requests in %llu batches)\n",
      kClients, kQueriesPerClient, static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.batches));

  // Protocol session over the same server: a good query, a bad one, stats.
  std::ostringstream session;
  session << "query src c 3\n" << sources.front() << "\n.\n";
  session << "query src c 2\nint main(){ this does not parse\n.\n";
  session << "query src python 3\nint main(){ return 0; }\n.\n";  // bad header
  session << "bogus\nstats\nquit\n";
  std::istringstream in(session.str());
  std::ostringstream out;
  if (run_protocol(server, in, out) != 0) {
    std::printf("FAIL: protocol session did not quit cleanly\n");
    return 1;
  }
  const std::string transcript = out.str();
  std::printf("protocol:\n%s", transcript.c_str());
  for (const char* needle :
       {"hit 0 ", "ok 3", "err compile failed", "err usage", "err unknown command",
        "ok stats", "ok bye"}) {
    if (transcript.find(needle) == std::string::npos) {
      std::printf("FAIL: protocol transcript is missing '%s'\n", needle);
      return 1;
    }
  }
  // A rejected query header must still consume its body: the source line
  // after the bad header must never be echoed back as an unknown command.
  if (transcript.find("err unknown command 'int") != std::string::npos) {
    std::printf("FAIL: bad query header desynchronised the protocol stream\n");
    return 1;
  }
  std::remove(snapshot_path.c_str());
  std::printf("OK: serving selftest passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) return selftest();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <snapshot.gbms> [--shards N] [--store DIR]\n"
                 "       %s --selftest\n",
                 argv[0], argv[0]);
    return 2;
  }
  serve::MatchServerConfig cfg;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "option %s is missing its value\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--shards") == 0) cfg.num_shards = std::atoi(argv[i + 1]);
    else if (std::strcmp(argv[i], "--store") == 0) cfg.store_dir = argv[i + 1];
    else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  try {
    serve::MatchServer server(argv[1], cfg);
    std::printf("serving %zu indexed graphs over %d shards (protocol on stdin)\n",
                server.index().size(), server.index().num_shards());
    return run_protocol(server, std::cin, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gbm_serve: %s\n", e.what());
    return 1;
  }
}
