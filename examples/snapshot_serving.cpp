// Compile-once / serve-many: the persistence layer end to end.
//
// Phase 1 (the "trainer" process): build a small corpus through a
// content-addressed ArtifactStore (cold compile, then prove the warm path
// hits), train a matcher, build the retrieval index, and write one
// self-contained snapshot.
//
// Phase 2 (the "server" process): a freshly constructed MatchingSystem —
// no fit_tokenizer, no training — loads the snapshot and serves the same
// topk answers bit-for-bit. This doubles as the GBM_FAST persistence smoke
// in CI: any divergence exits non-zero.
//
//   ./examples/snapshot_serving
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/artifact_store.h"
#include "core/pipeline.h"
#include "datasets/corpus.h"
#include "gnn/trainer.h"

using namespace gbm;

namespace {

std::string temp_root() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp && *tmp ? tmp : "/tmp");
}

}  // namespace

int main() {
  // ---- phase 1: compile through the store ---------------------------------
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 4;
  cfg.solutions_per_task_per_lang = 1;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);

  const std::string store_dir =
      temp_root() + "/gbm_snapshot_serving_store." + std::to_string(::getpid());
  core::ArtifactStore::destroy(store_dir);  // stale leftovers break the cold pass
  const core::ArtifactStore store(store_dir);
  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;

  const auto cold = core::build_artifacts(files, bin_opts, store);
  const auto cold_stats = store.stats();
  std::printf("cold build:  %zu files, %llu store misses, %llu artifacts written\n",
              files.size(), static_cast<unsigned long long>(cold_stats.misses),
              static_cast<unsigned long long>(cold_stats.writes));

  const auto warm = core::build_artifacts(files, bin_opts, store);
  const auto warm_stats = store.stats();
  const auto warm_hits = warm_stats.hits - cold_stats.hits;
  std::printf("warm build:  %llu/%zu served from the store (no recompilation)\n",
              static_cast<unsigned long long>(warm_hits), files.size());
  if (warm_hits != cold_stats.writes) {
    std::printf("FAIL: warm pass should hit every stored artifact\n");
    return 1;
  }

  // ---- train + index + snapshot -------------------------------------------
  core::MatchingSystem::Config mcfg;
  mcfg.model.vocab = 128;
  mcfg.model.embed_dim = 16;
  mcfg.model.hidden = 16;
  mcfg.model.layers = 1;
  mcfg.model.interaction = true;
  mcfg.model.dropout = 0.0f;
  core::MatchingSystem trainer(mcfg);

  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& a : warm)
    if (a.ok) graphs.push_back(&a.graph);
  trainer.fit_tokenizer(graphs);
  std::vector<gnn::EncodedGraph> encoded;
  for (const auto* g : graphs) encoded.push_back(trainer.encode(*g));

  std::vector<gnn::PairSample> train_pairs;
  for (std::size_t i = 0; i + 1 < encoded.size(); i += 2) {
    train_pairs.push_back({&encoded[i], &encoded[i], 1.0f});
    train_pairs.push_back({&encoded[i], &encoded[i + 1], 0.0f});
  }
  gnn::TrainConfig tcfg;
  tcfg.epochs = 4;
  trainer.train(train_pairs, tcfg);

  std::vector<const gnn::EncodedGraph*> fleet;
  for (const auto& e : encoded) fleet.push_back(&e);
  trainer.embed_all(fleet);
  const auto want = trainer.topk(encoded.front(), 3);

  const std::string snapshot_path =
      temp_root() + "/gbm_snapshot_serving." + std::to_string(::getpid()) + ".gbms";
  trainer.save(snapshot_path);
  std::printf("snapshot:    %s (config + tokenizer + params + %zu-entry index)\n",
              snapshot_path.c_str(), fleet.size());

  // ---- phase 2: fresh system serves from the snapshot ---------------------
  core::MatchingSystem server{core::MatchingSystem::Config{}};
  server.load(snapshot_path);
  std::remove(snapshot_path.c_str());

  // Re-encode the query with the ADOPTED tokenizer and ask the RESTORED
  // index — nothing recomputed, answers must be bit-identical.
  const auto query = server.encode(*graphs.front());
  const auto got = server.topk(query, 3);
  if (got.size() != want.size()) {
    std::printf("FAIL: topk size %zu != %zu\n", got.size(), want.size());
    return 1;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::printf("topk[%zu]:    id=%d score=%.6f (trainer: id=%d score=%.6f)\n", i,
                got[i].id, static_cast<double>(got[i].score), want[i].id,
                static_cast<double>(want[i].score));
    if (got[i].id != want[i].id || got[i].score != want[i].score) {
      std::printf("FAIL: snapshot-served topk diverged at rank %zu\n", i);
      return 1;
    }
  }
  std::printf("OK: fresh system served bit-identical topk from the snapshot\n");
  core::ArtifactStore::destroy(store_dir);
  return 0;
}
