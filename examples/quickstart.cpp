// Quickstart: the five-minute tour of the GraphBinMatch public API.
//
// Compile a C program to a binary, decompile it back to IR, compile a Java
// program to source IR, turn both into ProGraML-style graphs, train a tiny
// matcher on a handful of labelled pairs, and score a new pair.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/pipeline.h"

using namespace gbm;

int main() {
  // 1. Two solutions of the same task ("sum of squares") in two languages,
  //    plus one unrelated program.
  data::SourceFile c_binary_side;
  c_binary_side.source =
      "int main() {\n"
      "  long s = 0;\n"
      "  long i;\n"
      "  for (i = 1; i <= 6; i++) { s += i * i; }\n"
      "  print(s);\n"
      "  return 0;\n"
      "}\n";
  c_binary_side.lang = frontend::Lang::C;
  c_binary_side.unit_name = "Main";

  data::SourceFile java_source_side = c_binary_side;
  java_source_side.source =
      "class Main {\n"
      "  public static void main(String[] args) {\n"
      "    int s = 0;\n"
      "    for (int i = 1; i <= 6; i++) { s = s + i * i; }\n"
      "    System.out.println(s);\n"
      "  }\n"
      "}\n";
  java_source_side.lang = frontend::Lang::Java;

  data::SourceFile unrelated = c_binary_side;
  unrelated.source =
      "int main() { puts(\"hello, reverse engineer\"); print(424242);"
      " return 0; }\n";

  // 2. Artifacts: the C program goes through compile → binary → decompile;
  //    the Java programs stay as front-end IR (the paper's Figure 1). Each
  //    side is one build_artifacts batch, fanned across hardware threads.
  core::ArtifactOptions binary_opts;
  binary_opts.side = core::Side::Binary;
  const auto binary_artifact =
      core::build_artifacts({c_binary_side}, binary_opts).front();
  const auto source_artifacts =
      core::build_artifacts({java_source_side, unrelated}, {});
  const auto& source_artifact = source_artifacts[0];
  const auto& unrelated_artifact = source_artifacts[1];
  std::printf("binary artifact:   %s\n", binary_artifact.graph.stats().c_str());
  std::printf("source artifact:   %s\n", source_artifact.graph.stats().c_str());
  std::printf("unrelated source:  %s\n", unrelated_artifact.graph.stats().c_str());

  // 3. A matching system: tokenizer fitted on the corpus, then a small
  //    GraphBinMatch model trained on labelled pairs.
  core::MatchingSystem::Config config;
  config.model.vocab = 128;
  config.model.embed_dim = 16;
  config.model.hidden = 16;
  config.model.layers = 1;
  config.model.interaction = true;
  config.model.dropout = 0.0f;
  core::MatchingSystem matcher(config);
  matcher.fit_tokenizer(
      {&binary_artifact.graph, &source_artifact.graph, &unrelated_artifact.graph});
  std::printf("tokenizer: vocab=%d, feature length=%d tokens\n",
              matcher.tokenizer().vocab_size(), matcher.bag_len());

  const auto bin_graph = matcher.encode(binary_artifact.graph);
  const auto src_graph = matcher.encode(source_artifact.graph);
  const auto other_graph = matcher.encode(unrelated_artifact.graph);

  std::vector<gnn::PairSample> train = {{&bin_graph, &src_graph, 1.0f},
                                        {&bin_graph, &other_graph, 0.0f}};
  gnn::TrainConfig tcfg;
  tcfg.epochs = 60;
  tcfg.lr = 0.02f;
  matcher.train(train, tcfg);

  // 4. Score: matching pair vs non-matching pair.
  std::printf("\nscore(C binary, Java source of same task)  = %.3f (want > 0.5)\n",
              matcher.score(bin_graph, src_graph));
  std::printf("score(C binary, unrelated program)         = %.3f (want < 0.5)\n",
              matcher.score(bin_graph, other_graph));
  return 0;
}
