// Reverse-engineering scenario (paper §I): given an unknown *binary*,
// retrieve the most similar *source files* from a corpus — "the retrieved
// source code snippet enables researchers to understand what a binary code
// fragment does".
//
// A GraphBinMatch model is trained on CLCDSA-style pairs; every source
// file is then embedded once into the matcher's EmbeddingIndex (the
// offline stage), and the unseen binary is answered with a single GNN
// pass plus a top-k index query (cosine prefilter + score-head rerank) —
// the two-stage serving shape of core/embedding_engine.h.
//
//   ./examples/reverse_engineering
#include <cstdio>

#include "core/pipeline.h"
#include "datasets/pairs.h"
#include "frontend/frontend.h"

using namespace gbm;

int main() {
  // Corpus: several tasks, Java sources + C/C++ binaries.
  auto cfg = data::clcdsa_config();
  cfg.num_tasks = 10;
  cfg.solutions_per_task_per_lang = 3;
  cfg.broken_fraction = 0.0;
  const auto files = data::generate_corpus(cfg);

  std::vector<data::SourceFile> binaries, sources;
  for (const auto& f : files) {
    if (f.lang == frontend::Lang::Java) sources.push_back(f);
    else binaries.push_back(f);
  }

  core::ArtifactOptions bin_opts;
  bin_opts.side = core::Side::Binary;
  const auto bin_artifacts = core::build_artifacts(binaries, bin_opts);
  const auto src_artifacts = core::build_artifacts(sources, {});

  core::MatchingSystem::Config mcfg;
  mcfg.model.vocab = 384;
  mcfg.model.embed_dim = 32;
  mcfg.model.hidden = 32;
  mcfg.model.layers = 2;
  mcfg.model.interaction = true;
  core::MatchingSystem matcher(mcfg);
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& a : bin_artifacts) graphs.push_back(&a.graph);
  for (const auto& a : src_artifacts) graphs.push_back(&a.graph);
  matcher.fit_tokenizer(graphs);

  std::vector<gnn::EncodedGraph> bin_enc, src_enc;
  for (const auto& a : bin_artifacts) bin_enc.push_back(matcher.encode(a.graph));
  for (const auto& a : src_artifacts) src_enc.push_back(matcher.encode(a.graph));

  // The "unknown" query binary is held out of training. Use a structurally
  // distinctive task (sorting) — trivially small accumulator loops (sum,
  // factorial, gcd) genuinely blur together even for humans.
  int query = 0;
  for (std::size_t i = 0; i < binaries.size(); ++i) {
    if (binaries[i].task_id == "sort_print") {
      query = static_cast<int>(i);
      break;
    }
  }
  std::vector<gnn::PairSample> train;
  tensor::RNG rng(5);
  for (std::size_t i = 0; i < bin_enc.size(); ++i) {
    if (static_cast<int>(i) == query) continue;
    for (std::size_t j = 0; j < src_enc.size(); ++j) {
      const bool same = bin_artifacts[i].task_index == src_artifacts[j].task_index;
      if (same || rng.bernoulli(0.15))
        train.push_back({&bin_enc[i], &src_enc[j], same ? 1.0f : 0.0f});
    }
  }
  std::printf("training retrieval model on %zu pairs...\n", train.size());
  gnn::TrainConfig tcfg;
  tcfg.epochs = 18;
  tcfg.lr = 6e-3f;
  matcher.train(train, tcfg);

  // Offline stage: embed the whole source corpus once into the index
  // (binaries play the graph-A side of the head, so sources are indexed).
  std::vector<const gnn::EncodedGraph*> candidates;
  for (const auto& e : src_enc) candidates.push_back(&e);
  matcher.embed_all(candidates);
  std::printf("indexed %zu source embeddings\n", candidates.size());

  // Online stage: one GNN pass for the query + a top-5 index lookup.
  std::printf("\nquery: stripped binary of task '%s' (%s, %ld VBin instructions)\n",
              binaries[query].task_id.c_str(),
              frontend::lang_name(binaries[query].lang),
              bin_artifacts[query].binary_code_size);
  const auto hits = matcher.topk(bin_enc[query], 5);

  std::printf("\ntop source candidates:\n");
  int correct_in_top5 = 0;
  for (const auto& hit : hits) {
    const std::size_t j = static_cast<std::size_t>(hit.id);
    const bool correct =
        src_artifacts[j].task_index == bin_artifacts[query].task_index;
    correct_in_top5 += correct;
    std::printf("  %.3f (cos %.2f)  task=%-16s %s\n", hit.score, hit.cosine,
                sources[j].task_id.c_str(), correct ? "<-- correct task" : "");
  }
  std::printf("\n%d of top-5 candidates solve the query's task.\n", correct_in_top5);
  return 0;
}
